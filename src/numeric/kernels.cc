#include "numeric/kernels.h"

namespace tsv::num {

KernelScratch& tls_kernel_scratch() {
  static thread_local KernelScratch scratch;
  return scratch;
}

}  // namespace tsv::num
