#include "numeric/cg.h"

#include <cmath>
#include <limits>
#include <memory>

#include "numeric/fault_injection.h"
#include "numeric/ichol.h"

namespace tsv::num {
namespace {

/// SSOR preconditioner application: z = (D/w + L)^{-1} D/w' ... implemented
/// in the standard symmetric Gauss-Seidel form
///   (D + wL) D^{-1} (D + wU) z = w(2-w) r  (up to a constant scaling, which
/// CG absorbs into the search direction).
class SsorApplier {
 public:
  SsorApplier(const SparseMatrix& a, double omega)
      : a_(a), omega_(omega), diag_(a.diagonal()) {}

  void apply(const Vector& r, Vector& z) const {
    const auto& rp = a_.row_ptr();
    const auto& ci = a_.col_idx();
    const auto& v = a_.values();
    const std::size_t n = a_.size();
    z.assign(n, 0.0);
    // Forward sweep: (D/omega + L) y = r.
    for (std::size_t i = 0; i < n; ++i) {
      double s = r[i];
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (ci[k] < i) s -= v[k] * z[ci[k]];
      }
      z[i] = s * omega_ / diag_[i];
    }
    // Scale by D/omega.
    for (std::size_t i = 0; i < n; ++i) z[i] *= diag_[i] / omega_;
    // Backward sweep: (D/omega + U) z = y.
    for (std::size_t ii = n; ii-- > 0;) {
      double s = z[ii];
      for (std::size_t k = rp[ii]; k < rp[ii + 1]; ++k) {
        if (ci[k] > ii) s -= v[k] * z[ci[k]];
      }
      z[ii] = s * omega_ / diag_[ii];
    }
  }

 private:
  const SparseMatrix& a_;
  double omega_;
  Vector diag_;
};

}  // namespace

std::string to_string(CgFailure f) {
  switch (f) {
    case CgFailure::kNone:
      return "none";
    case CgFailure::kMaxIterations:
      return "max-iterations";
    case CgFailure::kBreakdown:
      return "breakdown (matrix not SPD)";
    case CgFailure::kNanDetected:
      return "nan-detected";
    case CgFailure::kDiverged:
      return "diverged";
    case CgFailure::kStagnation:
      return "stagnation";
  }
  return "unknown";
}

std::string to_string(Preconditioner p) {
  switch (p) {
    case Preconditioner::kNone:
      return "none";
    case Preconditioner::kJacobi:
      return "jacobi";
    case Preconditioner::kSsor:
      return "ssor";
    case Preconditioner::kIncompleteCholesky:
      return "ic0";
  }
  return "unknown";
}

CgResult conjugate_gradient(const SparseMatrix& a, const Vector& b, Vector& x,
                            const CgOptions& options) {
  const std::size_t n = a.size();
  TSV_REQUIRE(b.size() == n, "rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  CgResult result;
  result.used = options.preconditioner;

  std::unique_ptr<IncompleteCholesky> ic;
  std::unique_ptr<SsorApplier> ssor;
  Vector diag;
  if (options.preconditioner == Preconditioner::kIncompleteCholesky) {
    ic = std::make_unique<IncompleteCholesky>(a);
    if (!ic->ok()) {
      // Retry with a diagonal shift; fall back to SSOR if it still breaks.
      ic = std::make_unique<IncompleteCholesky>(a, 0.05);
      if (!ic->ok()) {
        ic.reset();
        result.used = Preconditioner::kSsor;
      }
    }
  }
  if (result.used == Preconditioner::kSsor)
    ssor = std::make_unique<SsorApplier>(a, options.ssor_omega);
  if (result.used == Preconditioner::kJacobi) {
    diag = a.diagonal();
    for (double& d : diag)
      TSV_REQUIRE(d != 0.0, "Jacobi preconditioner needs nonzero diagonal");
  }

  const auto precondition = [&](const Vector& r, Vector& z) {
    switch (result.used) {
      case Preconditioner::kNone:
        z = r;
        break;
      case Preconditioner::kJacobi:
        z.resize(n);
        for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
        break;
      case Preconditioner::kSsor:
        ssor->apply(r, z);
        break;
      case Preconditioner::kIncompleteCholesky:
        ic->apply(r, z);
        break;
    }
  };

  const double norm_b = norm2(b);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }
  if (!std::isfinite(norm_b)) {
    result.failure = CgFailure::kNanDetected;
    result.relative_residual = std::numeric_limits<double>::quiet_NaN();
    return result;
  }

  Vector r = b;
  Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];

  Vector z;
  precondition(r, z);
  Vector p = z;
  double rz = dot(r, z);
  Vector ap(n);

  double best_residual = std::numeric_limits<double>::infinity();
  std::size_t best_iteration = 0;
  result.failure = CgFailure::kMaxIterations;
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.relative_residual = norm2(r) / norm_b;
    if (!std::isfinite(result.relative_residual)) {
      result.failure = CgFailure::kNanDetected;
      return result;
    }
    if (result.relative_residual <= options.rel_tolerance) {
      result.converged = true;
      result.failure = CgFailure::kNone;
      result.iterations = it;
      return result;
    }
    if (result.relative_residual < best_residual) {
      best_residual = result.relative_residual;
      best_iteration = it;
    } else {
      if (options.divergence_factor > 0.0 &&
          result.relative_residual >
              options.divergence_factor * best_residual) {
        result.failure = CgFailure::kDiverged;
        return result;
      }
      if (options.stagnation_window > 0 &&
          it - best_iteration >= options.stagnation_window) {
        result.failure = CgFailure::kStagnation;
        return result;
      }
    }
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) {
      // Not SPD (or breakdown): report non-convergence.
      result.failure = CgFailure::kBreakdown;
      break;
    }
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    if (fault::should_fire(fault::Site::kCgPoisonNan)) {
      x[0] = std::numeric_limits<double>::quiet_NaN();
      r[0] = std::numeric_limits<double>::quiet_NaN();
    }
    precondition(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    result.iterations = it + 1;
  }
  result.relative_residual = norm2(r) / norm_b;
  result.converged = result.relative_residual <= options.rel_tolerance &&
                     std::isfinite(result.relative_residual);
  if (result.converged) result.failure = CgFailure::kNone;
  return result;
}

}  // namespace tsv::num
