#include "numeric/cg.h"

#include <cmath>
#include <memory>

#include "numeric/ichol.h"

namespace tsv::num {
namespace {

/// SSOR preconditioner application: z = (D/w + L)^{-1} D/w' ... implemented
/// in the standard symmetric Gauss-Seidel form
///   (D + wL) D^{-1} (D + wU) z = w(2-w) r  (up to a constant scaling, which
/// CG absorbs into the search direction).
class SsorApplier {
 public:
  SsorApplier(const SparseMatrix& a, double omega)
      : a_(a), omega_(omega), diag_(a.diagonal()) {}

  void apply(const Vector& r, Vector& z) const {
    const auto& rp = a_.row_ptr();
    const auto& ci = a_.col_idx();
    const auto& v = a_.values();
    const std::size_t n = a_.size();
    z.assign(n, 0.0);
    // Forward sweep: (D/omega + L) y = r.
    for (std::size_t i = 0; i < n; ++i) {
      double s = r[i];
      for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
        if (ci[k] < i) s -= v[k] * z[ci[k]];
      }
      z[i] = s * omega_ / diag_[i];
    }
    // Scale by D/omega.
    for (std::size_t i = 0; i < n; ++i) z[i] *= diag_[i] / omega_;
    // Backward sweep: (D/omega + U) z = y.
    for (std::size_t ii = n; ii-- > 0;) {
      double s = z[ii];
      for (std::size_t k = rp[ii]; k < rp[ii + 1]; ++k) {
        if (ci[k] > ii) s -= v[k] * z[ci[k]];
      }
      z[ii] = s * omega_ / diag_[ii];
    }
  }

 private:
  const SparseMatrix& a_;
  double omega_;
  Vector diag_;
};

}  // namespace

std::string to_string(Preconditioner p) {
  switch (p) {
    case Preconditioner::kNone:
      return "none";
    case Preconditioner::kJacobi:
      return "jacobi";
    case Preconditioner::kSsor:
      return "ssor";
    case Preconditioner::kIncompleteCholesky:
      return "ic0";
  }
  return "unknown";
}

CgResult conjugate_gradient(const SparseMatrix& a, const Vector& b, Vector& x,
                            const CgOptions& options) {
  const std::size_t n = a.size();
  TSV_REQUIRE(b.size() == n, "rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  CgResult result;
  result.used = options.preconditioner;

  std::unique_ptr<IncompleteCholesky> ic;
  std::unique_ptr<SsorApplier> ssor;
  Vector diag;
  if (options.preconditioner == Preconditioner::kIncompleteCholesky) {
    ic = std::make_unique<IncompleteCholesky>(a);
    if (!ic->ok()) {
      // Retry with a diagonal shift; fall back to SSOR if it still breaks.
      ic = std::make_unique<IncompleteCholesky>(a, 0.05);
      if (!ic->ok()) {
        ic.reset();
        result.used = Preconditioner::kSsor;
      }
    }
  }
  if (result.used == Preconditioner::kSsor)
    ssor = std::make_unique<SsorApplier>(a, options.ssor_omega);
  if (result.used == Preconditioner::kJacobi) {
    diag = a.diagonal();
    for (double& d : diag)
      TSV_REQUIRE(d != 0.0, "Jacobi preconditioner needs nonzero diagonal");
  }

  const auto precondition = [&](const Vector& r, Vector& z) {
    switch (result.used) {
      case Preconditioner::kNone:
        z = r;
        break;
      case Preconditioner::kJacobi:
        z.resize(n);
        for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
        break;
      case Preconditioner::kSsor:
        ssor->apply(r, z);
        break;
      case Preconditioner::kIncompleteCholesky:
        ic->apply(r, z);
        break;
    }
  };

  const double norm_b = norm2(b);
  if (norm_b == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  Vector r = b;
  Vector ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];

  Vector z;
  precondition(r, z);
  Vector p = z;
  double rz = dot(r, z);
  Vector ap(n);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    result.relative_residual = norm2(r) / norm_b;
    if (result.relative_residual <= options.rel_tolerance) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // not SPD (or breakdown): report non-convergence
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    precondition(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    result.iterations = it + 1;
  }
  result.relative_residual = norm2(r) / norm_b;
  result.converged = result.relative_residual <= options.rel_tolerance;
  return result;
}

}  // namespace tsv::num
