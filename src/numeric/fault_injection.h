#pragma once
// Test-only fault-injection points. Production code calls
// fault::should_fire(site) at the places where the fault-tolerance layer
// promises recovery; the call is a single relaxed atomic load unless a test
// armed the site, so leaving the hooks compiled in costs nothing
// measurable. Tests arm a site for its Nth upcoming hit, run the scenario,
// and assert that the recovery path actually triggered:
//
//   fault::arm(fault::Site::kCgPoisonNan, 3);   // poison the 3rd iteration
//   const auto sol = fem::solve_thermo_elastic(...);
//   EXPECT_TRUE(sol.report.fallback_used);
//   fault::disarm_all();
//
// A site fires exactly once per arm() and then disarms itself, so a
// recovery retry of the same code path (e.g. the snapshot re-save after a
// failed write) runs clean. The registry is process-global and atomic;
// tests that arm sites must not run concurrently with each other.

#include <atomic>
#include <cstdint>

namespace tsv::fault {

enum class Site : int {
  /// numeric/cg.cc: poison the CG iterate and residual with NaN at the
  /// armed iteration, exercising the NaN guard + solver fallback chain.
  kCgPoisonNan = 0,
  /// io/atomic_file.cc: the armed atomic_write_file call writes a partial
  /// temp file and fails, exercising write-crash atomicity.
  kSnapshotWriteFail,
  /// io/snapshot.cc: truncate the checkpoint file right after a successful
  /// save, simulating a torn write discovered at resume time.
  kCheckpointTruncate,
  /// io/snapshot.cc: flip one payload byte of a surrogate snapshot right
  /// after a successful save, simulating bit rot the checksum must catch at
  /// load time (graceful degradation to the series path, not a crash).
  kSurrogateCorrupt,
  /// io/journal.cc: the armed journal append fails before writing any
  /// bytes (disk full / EIO), exercising the snapshot-fallback durability
  /// path in SessionManager.
  kJournalWriteFail,
  /// io/journal.cc: the armed journal append writes roughly half the
  /// record, then fails — a torn tail that recovery must cut back to the
  /// last complete record, loudly.
  kJournalTornTail,
  /// server/session_manager.cc: _exit(137) immediately after the journal
  /// append of the armed eco batch — the ack was never sent, the journal
  /// holds the batch. Crash recovery must replay it exactly once (the
  /// kill-via-fork chaos test).
  kEcoKillAfterJournal,
  kSiteCount_,  ///< sentinel, keep last
};

inline const char* to_string(Site s) {
  switch (s) {
    case Site::kCgPoisonNan:
      return "cg-poison-nan";
    case Site::kSnapshotWriteFail:
      return "snapshot-write-fail";
    case Site::kCheckpointTruncate:
      return "checkpoint-truncate";
    case Site::kSurrogateCorrupt:
      return "surrogate-corrupt";
    case Site::kJournalWriteFail:
      return "journal-write-fail";
    case Site::kJournalTornTail:
      return "journal-torn-tail";
    case Site::kEcoKillAfterJournal:
      return "eco-kill-after-journal";
    case Site::kSiteCount_:
      break;
  }
  return "unknown";
}

namespace detail {

struct SiteState {
  /// Hits remaining until the site fires; negative = disarmed.
  std::atomic<std::int64_t> countdown{-1};
  std::atomic<std::uint64_t> fired{0};
};

inline SiteState& state(Site s) {
  static SiteState states[static_cast<int>(Site::kSiteCount_)];
  return states[static_cast<int>(s)];
}

}  // namespace detail

/// Arms `site` to fire on its `nth_hit`-th upcoming should_fire() call
/// (1 = the very next hit). Re-arming overwrites the previous countdown.
inline void arm(Site site, std::uint64_t nth_hit = 1) {
  detail::state(site).countdown.store(static_cast<std::int64_t>(nth_hit),
                                      std::memory_order_relaxed);
}

inline void disarm(Site site) {
  detail::state(site).countdown.store(-1, std::memory_order_relaxed);
}

inline void disarm_all() {
  for (int i = 0; i < static_cast<int>(Site::kSiteCount_); ++i)
    disarm(static_cast<Site>(i));
}

/// Production-side hook: true exactly once, on the armed hit; the site then
/// disarms itself. Disarmed sites cost one relaxed load.
inline bool should_fire(Site site) {
  detail::SiteState& st = detail::state(site);
  if (st.countdown.load(std::memory_order_relaxed) < 0) return false;
  const std::int64_t prev =
      st.countdown.fetch_sub(1, std::memory_order_relaxed);
  if (prev == 1) {
    st.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

/// How many times `site` has fired since process start (test assertions).
inline std::uint64_t fired_count(Site site) {
  return detail::state(site).fired.load(std::memory_order_relaxed);
}

}  // namespace tsv::fault
