#pragma once
// Preconditioned conjugate gradient for symmetric positive-definite systems
// (the FEM stiffness equations). Preconditioners: Jacobi, SSOR, IC(0).

#include <cstddef>
#include <functional>
#include <string>

#include "numeric/sparse.h"

namespace tsv::num {

enum class Preconditioner { kNone, kJacobi, kSsor, kIncompleteCholesky };

struct CgOptions {
  double rel_tolerance = 1e-10;  ///< on ||r|| / ||b||
  std::size_t max_iterations = 20000;
  Preconditioner preconditioner = Preconditioner::kIncompleteCholesky;
  double ssor_omega = 1.2;
  /// Abort when the relative residual grows past `divergence_factor` times
  /// the best residual seen (0 disables). CG residuals oscillate, so this
  /// is deliberately loose; only a genuinely diverging run trips it.
  double divergence_factor = 1e8;
  /// Abort when the best relative residual has not improved for this many
  /// consecutive iterations (0 disables) — the classic symptom of asking
  /// for a tolerance below what the conditioning can deliver.
  std::size_t stagnation_window = 1000;
};

/// Why a solve stopped without converging. Detection is deliberately inside
/// the iteration loop: a NaN contaminates the whole Krylov basis, so every
/// iteration past the first bad one is wasted work, and callers (the FEM
/// fallback chain) want to know *why* so they can pick the right recovery.
enum class CgFailure {
  kNone,           ///< converged
  kMaxIterations,  ///< iteration budget exhausted while still improving
  kBreakdown,      ///< p' A p <= 0: the matrix is not SPD (or breakdown)
  kNanDetected,    ///< NaN/Inf in the rhs, iterate, or residual
  kDiverged,       ///< residual grew divergence_factor past the best seen
  kStagnation,     ///< no best-residual progress for stagnation_window its
};

struct CgResult {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  /// Which preconditioner actually ran (IC(0) falls back to SSOR on
  /// factorization breakdown).
  Preconditioner used = Preconditioner::kNone;
  CgFailure failure = CgFailure::kNone;
};

/// Solves A x = b; x is used as the initial guess and overwritten with the
/// solution. Throws std::invalid_argument on shape mismatch; a non-converged
/// run is reported through the result (converged == false plus a `failure`
/// classification), not an exception.
CgResult conjugate_gradient(const SparseMatrix& a, const Vector& b, Vector& x,
                            const CgOptions& options = {});

std::string to_string(Preconditioner p);
std::string to_string(CgFailure f);

}  // namespace tsv::num
