#pragma once
// Preconditioned conjugate gradient for symmetric positive-definite systems
// (the FEM stiffness equations). Preconditioners: Jacobi, SSOR, IC(0).

#include <cstddef>
#include <functional>
#include <string>

#include "numeric/sparse.h"

namespace tsv::num {

enum class Preconditioner { kNone, kJacobi, kSsor, kIncompleteCholesky };

struct CgOptions {
  double rel_tolerance = 1e-10;  ///< on ||r|| / ||b||
  std::size_t max_iterations = 20000;
  Preconditioner preconditioner = Preconditioner::kIncompleteCholesky;
  double ssor_omega = 1.2;
};

struct CgResult {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  /// Which preconditioner actually ran (IC(0) falls back to SSOR on
  /// factorization breakdown).
  Preconditioner used = Preconditioner::kNone;
};

/// Solves A x = b; x is used as the initial guess and overwritten with the
/// solution. Throws std::invalid_argument on shape mismatch; a non-converged
/// run is reported through the result, not an exception.
CgResult conjugate_gradient(const SparseMatrix& a, const Vector& b, Vector& x,
                            const CgOptions& options = {});

std::string to_string(Preconditioner p);

}  // namespace tsv::num
