#pragma once
// Laurent series over the complex plane: f(z) = sum_{n=n_min}^{n_max} c_n z^n.
// Used to represent Muskhelishvili complex potentials (and their derivatives)
// in the TSV core, liner and substrate regions.

#include <complex>
#include <vector>

#include "numeric/check.h"

namespace tsv::num {

using Complex = std::complex<double>;

class LaurentSeries {
 public:
  LaurentSeries() = default;

  /// Creates a series with powers n_min..n_max inclusive, all coefficients 0.
  LaurentSeries(int n_min, int n_max)
      : n_min_(n_min), coeff_(static_cast<std::size_t>(n_max - n_min + 1)) {
    TSV_REQUIRE(n_max >= n_min, "empty power range");
  }

  int n_min() const { return n_min_; }
  int n_max() const { return n_min_ + static_cast<int>(coeff_.size()) - 1; }
  bool empty() const { return coeff_.empty(); }

  Complex& coeff(int n) {
    TSV_REQUIRE(n >= n_min() && n <= n_max(), "power out of range");
    return coeff_[static_cast<std::size_t>(n - n_min_)];
  }
  Complex coeff(int n) const {
    if (coeff_.empty() || n < n_min() || n > n_max()) return {0.0, 0.0};
    return coeff_[static_cast<std::size_t>(n - n_min_)];
  }

  /// f(z). z must be nonzero if the series has negative powers.
  Complex evaluate(Complex z) const;
  /// f'(z). Convenience; hot paths should cache derivative_series().
  Complex derivative(Complex z) const;
  /// f''(z).
  Complex second_derivative(Complex z) const;

  /// The series of f' (one extra power slot on both ends removed/shifted).
  LaurentSeries derivative_series() const;

  /// Term-wise antiderivative; requires coeff(-1) == 0 (no log term).
  LaurentSeries antiderivative() const;

  LaurentSeries& operator+=(const LaurentSeries& other);
  LaurentSeries& operator*=(Complex s);

  /// Largest |c_n| in the series (0 for the empty series).
  double max_abs_coeff() const;

  /// Copy with edge coefficients below rel_eps * max_abs_coeff() dropped
  /// (shrinks the power range; interior small coefficients are kept).
  /// Used to cheapen hot-path evaluation of combined response series.
  LaurentSeries trimmed(double rel_eps) const;

 private:
  int n_min_ = 0;
  std::vector<Complex> coeff_;
};

}  // namespace tsv::num
