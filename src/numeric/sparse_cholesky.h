#pragma once
// Simplicial sparse Cholesky (LL^T) with RCM fill-reducing ordering — the
// direct-solver backend for small and mid-size FEM systems. Up-looking
// factorization in the style of CSparse: the pattern of each row of L is
// discovered through the elimination tree, so no separate symbolic phase is
// needed.
//
// Fill-in grows like n * bandwidth for 2D meshes; prefer the CG backend for
// systems beyond ~100k unknowns (the factor size is reported so callers can
// check).

#include <cstdint>
#include <vector>

#include "numeric/sparse.h"

namespace tsv::num {

class SparseCholesky {
 public:
  /// Factorizes the SPD matrix `a` (full symmetric storage). Throws
  /// std::runtime_error if a non-positive pivot appears (not SPD).
  /// `use_rcm` applies the reverse Cuthill-McKee ordering first.
  explicit SparseCholesky(const SparseMatrix& a, bool use_rcm = true);

  std::size_t size() const { return n_; }
  /// Nonzeros in the factor (fill-in indicator).
  std::size_t factor_nonzeros() const { return lx_.size(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint32_t> perm_;   // new -> old
  std::vector<std::uint32_t> iperm_;  // old -> new
  // L in compressed sparse column form, including the diagonal (first entry
  // of each column).
  std::vector<std::size_t> col_ptr_;
  std::vector<std::uint32_t> row_idx_;
  std::vector<double> lx_;
};

}  // namespace tsv::num
