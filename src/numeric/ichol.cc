#include "numeric/ichol.h"

#include <cmath>

namespace tsv::num {

IncompleteCholesky::IncompleteCholesky(const SparseMatrix& a, double shift) {
  n_ = a.size();
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& av = a.values();

  // Extract the strictly lower triangle pattern and the diagonal.
  row_ptr_.assign(n_ + 1, 0);
  diag_.assign(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = arp[i]; k < arp[i + 1]; ++k) {
      if (aci[k] < i) ++row_ptr_[i + 1];
      if (aci[k] == i) diag_[i] = av[k] * (1.0 + shift);
    }
  }
  for (std::size_t i = 0; i < n_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  col_idx_.resize(row_ptr_[n_]);
  values_.assign(row_ptr_[n_], 0.0);
  {
    std::vector<std::size_t> cursor(n_);
    for (std::size_t i = 0; i < n_; ++i) cursor[i] = row_ptr_[i];
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t k = arp[i]; k < arp[i + 1]; ++k) {
        if (aci[k] < i) {
          col_idx_[cursor[i]] = aci[k];
          values_[cursor[i]] = av[k];
          ++cursor[i];
        }
      }
    }
  }

  // Row-based IC(0): process rows in order; entries within a row are sorted
  // by column (inherited from the CSR input).
  ok_ = true;
  for (std::size_t i = 0; i < n_ && ok_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      // values_[k] -= sum over shared columns c < j of L(i,c) * L(j,c).
      double s = values_[k];
      std::size_t pi = row_ptr_[i];
      std::size_t pj = row_ptr_[j];
      while (pi < k && pj < row_ptr_[j + 1]) {
        if (col_idx_[pi] == col_idx_[pj]) {
          s -= values_[pi] * values_[pj];
          ++pi;
          ++pj;
        } else if (col_idx_[pi] < col_idx_[pj]) {
          ++pi;
        } else {
          ++pj;
        }
      }
      values_[k] = s / diag_[j];
    }
    double d = diag_[i];
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      d -= values_[k] * values_[k];
    if (d <= 0.0) {
      ok_ = false;
      break;
    }
    diag_[i] = std::sqrt(d);
  }
  if (!ok_) return;

  // Column-major view of the strictly-lower factor for the L^T solve.
  colT_ptr_.assign(n_ + 1, 0);
  for (std::size_t k = 0; k < col_idx_.size(); ++k) ++colT_ptr_[col_idx_[k] + 1];
  for (std::size_t i = 0; i < n_; ++i) colT_ptr_[i + 1] += colT_ptr_[i];
  colT_row_.resize(col_idx_.size());
  colT_pos_.resize(col_idx_.size());
  std::vector<std::size_t> cursor(n_);
  for (std::size_t i = 0; i < n_; ++i) cursor[i] = colT_ptr_[i];
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      colT_row_[cursor[c]] = static_cast<std::uint32_t>(i);
      colT_pos_[cursor[c]] = k;
      ++cursor[c];
    }
  }
}

void IncompleteCholesky::apply(const Vector& r, Vector& z) const {
  TSV_REQUIRE(ok_, "IncompleteCholesky::apply on failed factorization");
  TSV_REQUIRE(r.size() == n_, "dimension mismatch");
  z = r;
  // Forward solve L y = r.
  for (std::size_t i = 0; i < n_; ++i) {
    double s = z[i];
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      s -= values_[k] * z[col_idx_[k]];
    z[i] = s / diag_[i];
  }
  // Backward solve L^T z = y using the column-major view.
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = colT_ptr_[ii]; k < colT_ptr_[ii + 1]; ++k)
      s -= values_[colT_pos_[k]] * z[colT_row_[k]];
    z[ii] = s / diag_[ii];
  }
}

}  // namespace tsv::num
