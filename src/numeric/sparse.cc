#include "numeric/sparse.h"

#include <algorithm>
#include <cmath>

namespace tsv::num {

SparseMatrix SparseMatrix::from_triplets(std::size_t n,
                                         const std::vector<Triplet>& triplets) {
  SparseMatrix m;
  m.n_ = n;
  // Count entries per row (with duplicates), then sort-by-(row, col) via
  // counting into a scratch copy. Duplicates are merged in a second pass.
  std::vector<Triplet> sorted = triplets;
  for (const Triplet& t : sorted)
    TSV_REQUIRE(t.row < n && t.col < n, "triplet index out of range");
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  m.row_ptr_.assign(n + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.values_.reserve(sorted.size());
  std::size_t i = 0;
  for (std::size_t row = 0; row < n; ++row) {
    while (i < sorted.size() && sorted[i].row == row) {
      const std::uint32_t col = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == row && sorted[i].col == col) {
        sum += sorted[i].value;
        ++i;
      }
      m.col_idx_.push_back(col);
      m.values_.push_back(sum);
    }
    m.row_ptr_[row + 1] = m.col_idx_.size();
  }
  return m;
}

void SparseMatrix::multiply(const Vector& x, Vector& y) const {
  TSV_REQUIRE(x.size() == n_, "dimension mismatch in sparse multiply");
  y.assign(n_, 0.0);
  for (std::size_t row = 0; row < n_; ++row) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[row]; k < row_ptr_[row + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[row] = s;
  }
}

Vector SparseMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply(x, y);
  return y;
}

double SparseMatrix::at(std::size_t i, std::size_t j) const {
  TSV_REQUIRE(i < n_ && j < n_, "index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(j));
  if (it == end || *it != j) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector SparseMatrix::diagonal() const {
  Vector d(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) d[i] = at(i, i);
  return d;
}

double SparseMatrix::symmetry_error() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      worst = std::max(worst, std::abs(values_[k] - at(j, i)));
    }
  }
  return worst;
}

}  // namespace tsv::num
