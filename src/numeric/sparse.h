#pragma once
// Compressed-sparse-row matrix with triplet-based assembly, as needed for
// finite-element stiffness matrices.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/dense_matrix.h"

namespace tsv::num {

/// (row, col, value) contribution; duplicates are summed at build time.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// Square CSR matrix. Immutable after construction.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds an n x n CSR matrix from triplets, summing duplicates and
  /// dropping exact zeros that result from cancellation is NOT done (kept to
  /// preserve symbolic structure for preconditioners).
  static SparseMatrix from_triplets(std::size_t n,
                                    const std::vector<Triplet>& triplets);

  std::size_t size() const { return n_; }
  std::size_t nonzeros() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// y = A x
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// Returns entry (i, j), 0 if not stored. O(log nnz_row).
  double at(std::size_t i, std::size_t j) const;

  /// Diagonal entries (0 where the diagonal is not stored).
  Vector diagonal() const;

  /// Max |a_ij - a_ji| over stored entries; 0 for symmetric matrices.
  double symmetry_error() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace tsv::num
