#include "numeric/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tsv::num {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  TSV_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  TSV_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  TSV_REQUIRE(a.cols() == b.rows(), "shape mismatch in matrix product");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  TSV_REQUIRE(a.cols() == x.size(), "shape mismatch in matrix-vector product");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

void axpy(double a, const Vector& x, Vector& y) {
  TSV_REQUIRE(x.size() == y.size(), "shape mismatch in axpy");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

double dot(const Vector& a, const Vector& b) {
  TSV_REQUIRE(a.size() == b.size(), "shape mismatch in dot");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

Vector solve_lu(Matrix a, Vector b) {
  TSV_REQUIRE(a.rows() == a.cols(), "solve_lu needs a square matrix");
  TSV_REQUIRE(a.rows() == b.size(), "rhs size mismatch");
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        piv = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("solve_lu: singular matrix");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a(i, k) / a(k, k);
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= m * a(k, j);
      b[i] -= m * b[k];
    }
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

CVector solve_lu_complex(std::vector<CVector> a, CVector b) {
  const std::size_t n = b.size();
  TSV_REQUIRE(a.size() == n, "solve_lu_complex needs a square matrix");
  for (const auto& row : a)
    TSV_REQUIRE(row.size() == n, "solve_lu_complex needs a square matrix");
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(a[k][k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a[i][k]) > best) {
        best = std::abs(a[i][k]);
        piv = i;
      }
    }
    if (best == 0.0)
      throw std::runtime_error("solve_lu_complex: singular matrix");
    if (piv != k) {
      std::swap(a[k], a[piv]);
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const std::complex<double> m = a[i][k] / a[k][k];
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a[i][j] -= m * a[k][j];
      b[i] -= m * b[k];
    }
  }
  CVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    std::complex<double> s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a[ii][j] * x[j];
    x[ii] = s / a[ii][ii];
  }
  return x;
}

Vector solve_least_squares(Matrix a, Vector b) {
  TSV_REQUIRE(a.rows() >= a.cols(), "least squares needs rows >= cols");
  TSV_REQUIRE(a.rows() == b.size(), "rhs size mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  // Householder QR applied in place; b is transformed alongside.
  for (std::size_t k = 0; k < n; ++k) {
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += a(i, k) * a(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0)
      throw std::runtime_error("solve_least_squares: rank-deficient matrix");
    if (a(k, k) > 0.0) alpha = -alpha;
    // v = x - alpha e_k, stored in column k below the diagonal; v_k in vk.
    const double vk = a(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) = a(i, k);  // unchanged
    const double vnorm2 = alpha * alpha - a(k, k) * alpha;  // = ||v||^2 / 2
    TSV_ASSERT(vnorm2 > 0.0);
    a(k, k) = alpha;
    // Apply H = I - v v^T / vnorm2 to remaining columns and to b.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = vk * a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, j);
      s /= vnorm2;
      a(k, j) -= s * vk;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= s * a(i, k);
    }
    {
      double s = vk * b[k];
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * b[i];
      s /= vnorm2;
      b[k] -= s * vk;
      for (std::size_t i = k + 1; i < m; ++i) b[i] -= s * a(i, k);
    }
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= a(ii, j) * x[j];
    if (a(ii, ii) == 0.0)
      throw std::runtime_error("solve_least_squares: rank-deficient matrix");
    x[ii] = s / a(ii, ii);
  }
  return x;
}

Matrix solve_least_squares_multi(Matrix a, Matrix b) {
  TSV_REQUIRE(a.rows() >= a.cols(), "least squares needs rows >= cols");
  TSV_REQUIRE(a.rows() == b.rows(), "rhs row count mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t nrhs = b.cols();
  for (std::size_t k = 0; k < n; ++k) {
    double alpha = 0.0;
    for (std::size_t i = k; i < m; ++i) alpha += a(i, k) * a(i, k);
    alpha = std::sqrt(alpha);
    if (alpha == 0.0)
      throw std::runtime_error(
          "solve_least_squares_multi: rank-deficient matrix");
    if (a(k, k) > 0.0) alpha = -alpha;
    const double vk = a(k, k) - alpha;
    const double vnorm2 = alpha * alpha - a(k, k) * alpha;
    TSV_ASSERT(vnorm2 > 0.0);
    a(k, k) = alpha;
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = vk * a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * a(i, j);
      s /= vnorm2;
      a(k, j) -= s * vk;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= s * a(i, k);
    }
    for (std::size_t j = 0; j < nrhs; ++j) {
      double s = vk * b(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += a(i, k) * b(i, j);
      s /= vnorm2;
      b(k, j) -= s * vk;
      for (std::size_t i = k + 1; i < m; ++i) b(i, j) -= s * a(i, k);
    }
  }
  Matrix x(n, nrhs);
  for (std::size_t j = 0; j < nrhs; ++j) {
    for (std::size_t ii = n; ii-- > 0;) {
      double s = b(ii, j);
      for (std::size_t c = ii + 1; c < n; ++c) s -= a(ii, c) * x(c, j);
      x(ii, j) = s / a(ii, ii);
    }
  }
  return x;
}

double relative_residual(const Matrix& a, const Vector& x, const Vector& b) {
  Vector r = a * x;
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  const double nb = norm2(b);
  return nb > 0.0 ? norm2(r) / nb : norm2(r);
}

}  // namespace tsv::num
