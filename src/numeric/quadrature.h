#pragma once
// Gauss-Legendre quadrature rules on [-1, 1], as used by the Q4 element.

#include <array>
#include <cmath>

namespace tsv::num {

struct QuadraturePoint1D {
  double xi;
  double weight;
};

/// Two-point Gauss rule (exact for cubics) — the standard Q4 choice.
inline constexpr std::array<QuadraturePoint1D, 2> gauss2() {
  constexpr double g = 0.57735026918962576451;  // 1/sqrt(3)
  return {{{-g, 1.0}, {g, 1.0}}};
}

/// Three-point Gauss rule (exact for quintics) — used by recovery tests.
inline constexpr std::array<QuadraturePoint1D, 3> gauss3() {
  constexpr double g = 0.77459666924148337704;  // sqrt(3/5)
  return {{{-g, 5.0 / 9.0}, {0.0, 8.0 / 9.0}, {g, 5.0 / 9.0}}};
}

}  // namespace tsv::num
