#pragma once
// Reverse Cuthill-McKee ordering: a bandwidth-reducing permutation for
// symmetric sparse matrices, used by the direct Cholesky backend to curb
// fill-in on FEM systems.

#include <cstdint>
#include <vector>

#include "numeric/sparse.h"

namespace tsv::num {

/// Returns a permutation `perm` such that row/column perm[i] of A becomes
/// row/column i of the reordered matrix. Works on the symmetrized pattern;
/// handles disconnected graphs.
std::vector<std::uint32_t> reverse_cuthill_mckee(const SparseMatrix& a);

/// B = P A P^T for the permutation returned above (B(i,j) =
/// A(perm[i], perm[j])).
SparseMatrix permute_symmetric(const SparseMatrix& a,
                               const std::vector<std::uint32_t>& perm);

/// Bandwidth max |i - j| over stored nonzeros.
std::size_t bandwidth(const SparseMatrix& a);

}  // namespace tsv::num
