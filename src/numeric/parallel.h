#pragma once
// Shared-memory parallelism for the framework's embarrassingly parallel
// loops: Stage I is point-parallel, Stage II is pair-parallel, and the FEM
// element loops are element-parallel.
//
// Design rules (all enforced here so callers stay simple):
//   * Static chunking: [0, n) splits into at most `num_threads` contiguous
//     chunks, so every index is owned by exactly one chunk and results are
//     deterministic for a fixed thread count.
//   * `num_threads` semantics everywhere: 0 = hardware concurrency,
//     1 = exact serial path (no pool involvement, bitwise-identical to a
//     plain loop), n = n.
//   * parallel_reduce gives each chunk a private accumulator and merges the
//     partials in chunk index order, making write ownership and merge order
//     explicit (the serial path returns the single accumulator untouched).
//   * Nested calls from inside a worker run serially instead of
//     deadlocking; exceptions thrown by a chunk rethrow on the caller.

#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "numeric/check.h"

namespace tsv::num {

/// Number of hardware threads (>= 1 even when the runtime reports 0).
std::size_t hardware_thread_count();

/// Resolves a user-facing `num_threads` knob: 0 = hardware concurrency,
/// anything else is taken literally.
std::size_t resolve_thread_count(std::size_t requested);

/// True while the calling thread executes inside a parallel region (worker
/// or participating caller). Nested parallel calls detect this and run
/// serially.
bool in_parallel_region();

/// Persistent worker pool. One region runs at a time; concurrent run()
/// callers serialize on an internal mutex. Most code should go through
/// parallel_for / parallel_reduce instead of using the pool directly.
class ThreadPool {
 public:
  /// Pool with `worker_threads` background threads (the run() caller also
  /// participates, so 0 workers means strictly serial execution).
  explicit ThreadPool(std::size_t worker_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_threads() const;

  /// Runs fn(chunk) for every chunk in [0, chunks), distributing chunks over
  /// the caller plus the workers; blocks until all chunks finish. The first
  /// exception thrown by a chunk aborts the remaining chunks and rethrows
  /// here. Called from inside a region (nested), runs inline serially.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool with hardware_thread_count() - 1 workers.
  static ThreadPool& shared();

 private:
  struct Impl;
  Impl* impl_;
};

/// Bounds of chunk `c` when [0, n) splits into `chunks` contiguous chunks.
inline std::pair<std::size_t, std::size_t> chunk_bounds(std::size_t n,
                                                        std::size_t chunks,
                                                        std::size_t c) {
  TSV_ASSERT(chunks > 0 && c < chunks);
  return {n * c / chunks, n * (c + 1) / chunks};
}

/// Splits [0, n) into at most resolve_thread_count(num_threads) contiguous
/// chunks and runs body(begin, end, chunk_index) for each. With one chunk
/// (n <= 1, num_threads == 1, or a nested call) the body runs inline as
/// body(0, n, 0) — the exact serial path.
template <typename Body>
void parallel_for_chunks(std::size_t n, std::size_t num_threads, Body&& body) {
  if (n == 0) return;
  const std::size_t chunks =
      std::min(resolve_thread_count(num_threads), n);
  if (chunks <= 1 || in_parallel_region()) {
    body(std::size_t{0}, n, std::size_t{0});
    return;
  }
  ThreadPool::shared().run(chunks, [&](std::size_t c) {
    const auto [begin, end] = chunk_bounds(n, chunks, c);
    body(begin, end, c);
  });
}

/// Element-wise parallel loop: body(i) for i in [0, n), statically chunked.
/// Safe whenever body(i) only writes state owned by index i.
template <typename Body>
void parallel_for(std::size_t n, std::size_t num_threads, Body&& body) {
  parallel_for_chunks(n, num_threads,
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

/// Chunked reduction with explicit write ownership: every chunk builds a
/// private accumulator `make()` and folds its range with
/// body(acc, begin, end); partials then merge on the caller in chunk index
/// order via merge(total, partial). Deterministic for a fixed thread count;
/// with a single chunk the lone accumulator is returned without any merge,
/// bitwise-identical to the serial loop.
template <typename T, typename Make, typename Body, typename Merge>
T parallel_reduce(std::size_t n, std::size_t num_threads, Make&& make,
                  Body&& body, Merge&& merge) {
  const std::size_t chunks =
      n == 0 ? 1 : std::min(resolve_thread_count(num_threads), n);
  if (chunks <= 1 || in_parallel_region()) {
    T acc = make();
    if (n > 0) body(acc, std::size_t{0}, n);
    return acc;
  }
  std::vector<std::optional<T>> parts(chunks);
  ThreadPool::shared().run(chunks, [&](std::size_t c) {
    const auto [begin, end] = chunk_bounds(n, chunks, c);
    parts[c].emplace(make());
    body(*parts[c], begin, end);
  });
  T total = std::move(*parts[0]);
  for (std::size_t c = 1; c < chunks; ++c) merge(total, *parts[c]);
  return total;
}

}  // namespace tsv::num
