#include "numeric/rcm.h"

#include <algorithm>
#include <queue>

namespace tsv::num {
namespace {

/// Degree of each node on the symmetrized pattern.
std::vector<std::uint32_t> degrees(const SparseMatrix& a) {
  std::vector<std::uint32_t> deg(a.size(), 0);
  const auto& rp = a.row_ptr();
  for (std::size_t i = 0; i < a.size(); ++i)
    deg[i] = static_cast<std::uint32_t>(rp[i + 1] - rp[i]);
  return deg;
}

}  // namespace

std::vector<std::uint32_t> reverse_cuthill_mckee(const SparseMatrix& a) {
  const std::size_t n = a.size();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const std::vector<std::uint32_t> deg = degrees(a);

  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<std::uint32_t> neighbors;

  for (std::size_t start_scan = 0; order.size() < n; ++start_scan) {
    // Pick an unvisited node of minimal degree as the next component seed.
    std::uint32_t seed = 0;
    std::uint32_t best_deg = 0xffffffffu;
    bool found = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!visited[i] && deg[i] < best_deg) {
        best_deg = deg[i];
        seed = i;
        found = true;
      }
    }
    TSV_ASSERT(found);

    std::queue<std::uint32_t> queue;
    queue.push(seed);
    visited[seed] = true;
    while (!queue.empty()) {
      const std::uint32_t u = queue.front();
      queue.pop();
      order.push_back(u);
      neighbors.clear();
      for (std::size_t k = rp[u]; k < rp[u + 1]; ++k) {
        const std::uint32_t v = ci[k];
        if (v != u && !visited[v]) {
          visited[v] = true;
          neighbors.push_back(v);
        }
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [&](std::uint32_t x, std::uint32_t y) {
                  return deg[x] != deg[y] ? deg[x] < deg[y] : x < y;
                });
      for (const std::uint32_t v : neighbors) queue.push(v);
    }
  }
  // Reverse for RCM.
  std::reverse(order.begin(), order.end());
  return order;
}

SparseMatrix permute_symmetric(const SparseMatrix& a,
                               const std::vector<std::uint32_t>& perm) {
  const std::size_t n = a.size();
  TSV_REQUIRE(perm.size() == n, "permutation size mismatch");
  // inv[old] = new index.
  std::vector<std::uint32_t> inv(n);
  for (std::uint32_t i = 0; i < n; ++i) inv[perm[i]] = i;
  std::vector<Triplet> t;
  t.reserve(a.nonzeros());
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  const auto& v = a.values();
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k)
      t.push_back({inv[i], inv[ci[k]], v[k]});
  }
  return SparseMatrix::from_triplets(n, t);
}

std::size_t bandwidth(const SparseMatrix& a) {
  std::size_t bw = 0;
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t j = ci[k];
      bw = std::max(bw, i > j ? i - j : j - i);
    }
  }
  return bw;
}

}  // namespace tsv::num
