#pragma once
// Lightweight precondition / invariant checking used across the library.
//
// TSV_REQUIRE is always on (cheap argument validation on public APIs, throws
// std::invalid_argument). TSV_ASSERT guards internal invariants and throws
// std::logic_error; it compiles away in TSV_NO_INTERNAL_CHECKS builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace tsv {

[[noreturn]] inline void fail_require(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement failed: " << cond;
  if (!msg.empty()) os << " (" << msg << ')';
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void fail_assert(const char* cond, const char* file,
                                     int line) {
  std::ostringstream os;
  os << file << ':' << line << ": internal invariant violated: " << cond;
  throw std::logic_error(os.str());
}

}  // namespace tsv

#define TSV_REQUIRE(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) ::tsv::fail_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef TSV_NO_INTERNAL_CHECKS
#define TSV_ASSERT(cond) \
  do {                   \
  } while (false)
#else
#define TSV_ASSERT(cond)                                  \
  do {                                                    \
    if (!(cond)) ::tsv::fail_assert(#cond, __FILE__, __LINE__); \
  } while (false)
#endif
