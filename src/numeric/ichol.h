#pragma once
// Zero-fill incomplete Cholesky factorization IC(0), used as a CG
// preconditioner for the FEM stiffness systems. Falls back gracefully
// (caller-visible failure flag) when the factorization breaks down, in which
// case CG should use a Jacobi or SSOR preconditioner instead.

#include <cstdint>
#include <vector>

#include "numeric/sparse.h"

namespace tsv::num {

/// Lower-triangular IC(0) factor of a symmetric positive-definite CSR matrix.
/// Applies M^{-1} = (L L^T)^{-1} via forward/backward substitution.
class IncompleteCholesky {
 public:
  /// Factorizes the lower triangle of `a` in the sparsity pattern of `a`.
  /// `shift` adds shift*diag(a) before factorization (0 = plain IC(0)).
  /// Check ok() before use: breakdown (non-positive pivot) sets ok() false.
  explicit IncompleteCholesky(const SparseMatrix& a, double shift = 0.0);

  bool ok() const { return ok_; }
  std::size_t size() const { return n_; }

  /// z = (L L^T)^{-1} r
  void apply(const Vector& r, Vector& z) const;

 private:
  std::size_t n_ = 0;
  bool ok_ = false;
  // CSR of strictly-lower part + separate diagonal of L.
  std::vector<std::size_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
  Vector diag_;
  // Column-major access for the transposed solve.
  std::vector<std::size_t> colT_ptr_;
  std::vector<std::uint32_t> colT_row_;
  std::vector<std::size_t> colT_pos_;
};

}  // namespace tsv::num
