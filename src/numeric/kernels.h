#pragma once
// Trig-free helpers and reusable scratch for the Stage I/II batch kernels.
//
// The tensor rotation of paper eq. (2) enters the hot loops only through the
// double angle: for a displacement (dx, dy) with r^2 = dx^2 + dy^2 > 0 and
// rotation angle theta = atan2(dy, dx),
//
//     cos 2theta = (dx^2 - dy^2) / r^2,   sin 2theta = 2 dx dy / r^2,
//
// so the cylindrical -> Cartesian transform needs no atan2/sin/cos at all.
// The identities below are exact algebraic rewrites of
// num::cylindrical_to_cartesian in mean/deviator form; batch kernels built on
// them agree with the scalar trig path to floating-point regrouping
// (<= ~1e-15 relative, locked down by test_kernels).
//
// KernelScratch holds the gather/accumulate buffers the batch kernels reuse
// between calls. One instance lives per thread (tls_kernel_scratch), so the
// hot paths allocate only until every buffer has reached its steady-state
// capacity — no per-call vectors, and no sharing between pool workers.

#include <cstdint>
#include <vector>

#include "numeric/tensor.h"

namespace tsv::num {

/// Cartesian tensor of an axisymmetric cylindrical tensor (srr, stt, srt=0)
/// whose r-axis points along the double angle (cos2t, sin2t). Equals
/// cylindrical_to_cartesian({srr, stt, 0}, theta) with cos2t = cos 2theta,
/// sin2t = sin 2theta.
inline SymTensor2 rotate_axisymmetric(double srr, double stt, double cos2t,
                                      double sin2t) {
  const double mean = 0.5 * (srr + stt);
  const double dev = 0.5 * (srr - stt);
  return {mean + dev * cos2t, mean - dev * cos2t, dev * sin2t};
}

/// Full double-angle form of cylindrical_to_cartesian(t, theta) with
/// cos2t = cos 2theta, sin2t = sin 2theta. Used where the rotation angle is
/// hoisted out of a point loop (Stage II's per-pair beta).
inline SymTensor2 rotate_double_angle(const SymTensor2& t, double cos2t,
                                      double sin2t) {
  const double mean = 0.5 * (t.s11 + t.s22);
  const double dev = 0.5 * (t.s11 - t.s22);
  return {mean + dev * cos2t - t.s12 * sin2t,
          mean - dev * cos2t + t.s12 * sin2t,
          dev * sin2t + t.s12 * cos2t};
}

/// Reusable buffers for the batch kernels. Members are assigned to fixed
/// roles so nested users never alias:
///   * idx / idx2 — spatial-query results (caller-side gather lists);
///   * ax / ay    — displacement / coordinate SoA gathers inside the
///                  RadialStressTable kernel;
///   * acc        — per-point tensor contributions (scatter-add staging).
struct KernelScratch {
  std::vector<std::uint32_t> idx;
  std::vector<std::uint32_t> idx2;
  std::vector<double> ax;
  std::vector<double> ay;
  std::vector<SymTensor2> acc;
};

/// The calling thread's scratch instance. Pool workers are persistent, so
/// each thread's buffers warm up once and are reused for the rest of the
/// process.
KernelScratch& tls_kernel_scratch();

}  // namespace tsv::num
