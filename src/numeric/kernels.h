#pragma once
// Trig-free helpers and reusable scratch for the Stage I/II batch kernels.
//
// The tensor rotation of paper eq. (2) enters the hot loops only through the
// double angle: for a displacement (dx, dy) with r^2 = dx^2 + dy^2 > 0 and
// rotation angle theta = atan2(dy, dx),
//
//     cos 2theta = (dx^2 - dy^2) / r^2,   sin 2theta = 2 dx dy / r^2,
//
// so the cylindrical -> Cartesian transform needs no atan2/sin/cos at all.
// The identities below are exact algebraic rewrites of
// num::cylindrical_to_cartesian in mean/deviator form; batch kernels built on
// them agree with the scalar trig path to floating-point regrouping
// (<= ~1e-15 relative, locked down by test_kernels).
//
// KernelScratch holds the gather/accumulate buffers the batch kernels reuse
// between calls. One instance lives per thread (tls_kernel_scratch), so the
// hot paths allocate only until every buffer has reached its steady-state
// capacity — no per-call vectors, and no sharing between pool workers.

#include <cstdint>
#include <vector>

#include "numeric/tensor.h"

namespace tsv::num {

namespace detail {

/// Odd-polynomial atan on the folded range |t| <= tan(pi/8): atan(t) =
/// t * q(t^2) with q a degree-11 Chebyshev-fitted polynomial in t^2.
/// Regenerate with tools/gen_atan_poly.py; the comment records the fit's
/// measured truncation error.
// max |poly - atan| over [-tan(pi/8), tan(pi/8)]: 3.886e-16 rad
inline constexpr double kAtanCoeffs[] = {
    0.9999999999999991,
    -0.3333333333331765,
    0.200000000010762,
    -0.14285714655446272,
    0.111111374401368,
    -0.09091799063950162,
    0.07709404389346143,
    -0.06867007089345288,
    0.07341770445111352,
    -0.11703401630802347,
    0.2038582642659698,
    -0.19440506095997984,
};

inline double atan_core(double t) {
  const double s = t * t;
  double q = kAtanCoeffs[11];
  q = q * s + kAtanCoeffs[10];
  q = q * s + kAtanCoeffs[9];
  q = q * s + kAtanCoeffs[8];
  q = q * s + kAtanCoeffs[7];
  q = q * s + kAtanCoeffs[6];
  q = q * s + kAtanCoeffs[5];
  q = q * s + kAtanCoeffs[4];
  q = q * s + kAtanCoeffs[3];
  q = q * s + kAtanCoeffs[2];
  q = q * s + kAtanCoeffs[1];
  q = q * s + kAtanCoeffs[0];
  return t * q;
}

}  // namespace detail

/// atan2(y, x) for y >= 0 — the Stage II table-lookup angle in [0, pi] —
/// via an octant fold onto detail::atan_core (one division, no libm).
/// Matches std::atan2 to < 1e-15 rad absolute over the full half-plane
/// (test_kernels sweeps this); (0, 0) maps to 0 like std::atan2.
inline double atan2_upper(double y, double x) {
  constexpr double kTanPi8 = 0.41421356237309503;  // tan(pi/8)
  constexpr double kPi = 3.14159265358979323846;
  const double ax = x < 0.0 ? -x : x;
  double base;
  if (y <= kTanPi8 * ax) {
    base = ax > 0.0 ? detail::atan_core(y / ax) : 0.0;
  } else if (ax <= kTanPi8 * y) {
    base = 0.5 * kPi - detail::atan_core(ax / y);
  } else {
    // Octant midzone: atan(t) = pi/4 + atan((t-1)/(t+1)) with
    // t = y/ax folds to one division on (y-ax)/(y+ax).
    base = 0.25 * kPi + detail::atan_core((y - ax) / (y + ax));
  }
  return x < 0.0 ? kPi - base : base;
}

/// Cartesian tensor of an axisymmetric cylindrical tensor (srr, stt, srt=0)
/// whose r-axis points along the double angle (cos2t, sin2t). Equals
/// cylindrical_to_cartesian({srr, stt, 0}, theta) with cos2t = cos 2theta,
/// sin2t = sin 2theta.
inline SymTensor2 rotate_axisymmetric(double srr, double stt, double cos2t,
                                      double sin2t) {
  const double mean = 0.5 * (srr + stt);
  const double dev = 0.5 * (srr - stt);
  return {mean + dev * cos2t, mean - dev * cos2t, dev * sin2t};
}

/// Full double-angle form of cylindrical_to_cartesian(t, theta) with
/// cos2t = cos 2theta, sin2t = sin 2theta. Used where the rotation angle is
/// hoisted out of a point loop (Stage II's per-pair beta).
inline SymTensor2 rotate_double_angle(const SymTensor2& t, double cos2t,
                                      double sin2t) {
  const double mean = 0.5 * (t.s11 + t.s22);
  const double dev = 0.5 * (t.s11 - t.s22);
  return {mean + dev * cos2t - t.s12 * sin2t,
          mean - dev * cos2t + t.s12 * sin2t,
          dev * sin2t + t.s12 * cos2t};
}

/// Reusable buffers for the batch kernels. Members are assigned to fixed
/// roles so nested users never alias:
///   * idx / idx2 — spatial-query results (caller-side gather lists);
///   * ax / ay    — displacement / coordinate SoA gathers inside the
///                  RadialStressTable kernel;
///   * acc        — per-point tensor contributions (scatter-add staging).
struct KernelScratch {
  std::vector<std::uint32_t> idx;
  std::vector<std::uint32_t> idx2;
  std::vector<double> ax;
  std::vector<double> ay;
  std::vector<SymTensor2> acc;
};

/// The calling thread's scratch instance. Pool workers are persistent, so
/// each thread's buffers warm up once and are reused for the rest of the
/// process.
KernelScratch& tls_kernel_scratch();

}  // namespace tsv::num
