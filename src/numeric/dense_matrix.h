#pragma once
// Small dense linear algebra: row-major matrices, vectors, LU with partial
// pivoting, Householder-QR least squares. Sized for the library's needs
// (element stiffness blocks, layered-cylinder systems, collocation fits of a
// few hundred unknowns); not a BLAS replacement.

#include <complex>
#include <cstddef>
#include <vector>

#include "numeric/check.h"

namespace tsv::num {

using Vector = std::vector<double>;
using CVector = std::vector<std::complex<double>>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    TSV_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    TSV_ASSERT(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& a, const Vector& x);
Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// y += a * x
void axpy(double a, const Vector& x, Vector& y);
double dot(const Vector& a, const Vector& b);
double norm2(const Vector& v);
/// max_i |v[i]|
double norm_inf(const Vector& v);

/// Solves A x = b by LU with partial pivoting. A must be square and
/// nonsingular (throws std::runtime_error on numerical singularity).
Vector solve_lu(Matrix a, Vector b);

/// Solves the complex square system A x = b by LU with partial pivoting.
CVector solve_lu_complex(std::vector<CVector> a, CVector b);

/// Minimizes ||A x - b||_2 via Householder QR. Requires rows >= cols and
/// full column rank (throws std::runtime_error otherwise). Returns x of
/// size A.cols().
Vector solve_least_squares(Matrix a, Vector b);

/// Multi-right-hand-side least squares: minimizes ||A X - B||_F column by
/// column with a single QR factorization. Returns X (A.cols() x B.cols()).
Matrix solve_least_squares_multi(Matrix a, Matrix b);

/// Relative residual ||Ax-b|| / ||b|| (returns ||Ax|| when b = 0).
double relative_residual(const Matrix& a, const Vector& x, const Vector& b);

}  // namespace tsv::num
