#include "numeric/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

namespace tsv::num {
namespace {

// Region nesting depth of the calling thread (workers and participating
// callers both count). A depth > 0 makes nested parallel calls run inline.
thread_local int tls_region_depth = 0;

struct RegionGuard {
  RegionGuard() { ++tls_region_depth; }
  ~RegionGuard() { --tls_region_depth; }
};

}  // namespace

std::size_t hardware_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_thread_count(std::size_t requested) {
  return requested == 0 ? hardware_thread_count() : requested;
}

bool in_parallel_region() { return tls_region_depth > 0; }

struct ThreadPool::Impl {
  // Serializes whole regions: one run() at a time touches the job state.
  std::mutex run_mutex;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  const std::function<void(std::size_t)>* job = nullptr;
  std::size_t job_chunks = 0;
  std::uint64_t generation = 0;
  std::size_t acked = 0;  ///< workers finished with the current generation
  std::exception_ptr error;
  bool stop = false;

  std::atomic<std::size_t> next_chunk{0};
  std::atomic<bool> abort{false};

  std::vector<std::thread> workers;

  // Consumes chunks until exhausted or a chunk threw (first error wins).
  void work(const std::function<void(std::size_t)>& fn, std::size_t chunks) {
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      try {
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t chunks = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        fn = job;
        chunks = job_chunks;
      }
      {
        RegionGuard guard;
        work(*fn, chunks);
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++acked;
      }
      done_cv.notify_one();
    }
  }
};

ThreadPool::ThreadPool(std::size_t worker_threads) : impl_(new Impl) {
  impl_->workers.reserve(worker_threads);
  for (std::size_t i = 0; i < worker_threads; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
  delete impl_;
}

std::size_t ThreadPool::worker_threads() const { return impl_->workers.size(); }

void ThreadPool::run(std::size_t chunks,
                     const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (impl_->workers.empty() || in_parallel_region()) {
    RegionGuard guard;
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  std::lock_guard<std::mutex> region(impl_->run_mutex);
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->job_chunks = chunks;
    impl_->next_chunk.store(0, std::memory_order_relaxed);
    impl_->abort.store(false, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->acked = 0;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  {
    RegionGuard guard;
    impl_->work(fn, chunks);
  }
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock,
                      [&] { return impl_->acked == impl_->workers.size(); });
  impl_->job = nullptr;
  if (impl_->error) {
    const std::exception_ptr error = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::shared() {
  // hw - 1 workers (the caller participates), but never fewer than 3: on
  // low-core hosts an explicit num_threads > 1 request still runs on real
  // threads (the OS timeslices), which is what the sanitizer suite needs to
  // exercise actual concurrency. Oversubscription only affects timing —
  // the chunk -> data mapping is static, so results are unchanged.
  static ThreadPool pool(std::max<std::size_t>(
      hardware_thread_count() > 1 ? hardware_thread_count() - 1 : 0, 3));
  return pool;
}

}  // namespace tsv::num
