#include "numeric/sparse_cholesky.h"

#include <cmath>
#include <stdexcept>

#include "numeric/rcm.h"

namespace tsv::num {
namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

/// Elimination tree of the Cholesky factor from the full-symmetric CSR
/// pattern (Liu's algorithm with path compression).
std::vector<std::uint32_t> elimination_tree(const SparseMatrix& a) {
  const std::size_t n = a.size();
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  std::vector<std::uint32_t> parent(n, kNone), ancestor(n, kNone);
  for (std::uint32_t k = 0; k < n; ++k) {
    for (std::size_t p = rp[k]; p < rp[k + 1]; ++p) {
      std::uint32_t i = ci[p];
      if (i >= k) continue;
      while (i != kNone && i < k) {
        const std::uint32_t next = ancestor[i];
        ancestor[i] = k;
        if (next == kNone) {
          parent[i] = k;
          break;
        }
        i = next;
      }
    }
  }
  return parent;
}

/// Row pattern of L(k, :): climbs the elimination tree from the nonzeros of
/// the strict lower part of row k. Returns the top index into `stack`
/// (pattern is stack[top..n-1], in topological order).
std::size_t ereach(const SparseMatrix& a,
                   const std::vector<std::uint32_t>& parent, std::uint32_t k,
                   std::vector<std::uint32_t>& mark,
                   std::vector<std::uint32_t>& stack,
                   std::vector<std::uint32_t>& path) {
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_idx();
  std::size_t top = a.size();
  mark[k] = k + 1;  // mark value is k+1 so 0 means "never touched"
  for (std::size_t p = rp[k]; p < rp[k + 1]; ++p) {
    std::uint32_t i = ci[p];
    if (i >= k) continue;
    std::size_t len = 0;
    while (mark[i] != k + 1) {
      path[len++] = i;
      mark[i] = k + 1;
      i = parent[i];
      TSV_ASSERT(i != kNone);  // the path must terminate at k
    }
    while (len > 0) stack[--top] = path[--len];
  }
  return top;
}

}  // namespace

SparseCholesky::SparseCholesky(const SparseMatrix& a, bool use_rcm) {
  n_ = a.size();
  TSV_REQUIRE(n_ > 0, "empty matrix");

  if (use_rcm) {
    perm_ = reverse_cuthill_mckee(a);
  } else {
    perm_.resize(n_);
    for (std::uint32_t i = 0; i < n_; ++i) perm_[i] = i;
  }
  iperm_.resize(n_);
  for (std::uint32_t i = 0; i < n_; ++i) iperm_[perm_[i]] = i;
  const SparseMatrix c = use_rcm ? permute_symmetric(a, perm_) : a;

  const std::vector<std::uint32_t> parent = elimination_tree(c);
  std::vector<std::uint32_t> mark(n_, 0), stack(n_), path(n_);

  // Symbolic pass: column counts of L (diagonal included).
  std::vector<std::size_t> count(n_, 1);
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::size_t top = ereach(c, parent, k, mark, stack, path);
    for (std::size_t t = top; t < n_; ++t) ++count[stack[t]];
  }
  col_ptr_.assign(n_ + 1, 0);
  for (std::size_t j = 0; j < n_; ++j) col_ptr_[j + 1] = col_ptr_[j] + count[j];
  row_idx_.resize(col_ptr_[n_]);
  lx_.assign(col_ptr_[n_], 0.0);

  // Numeric pass (up-looking LL^T).
  std::vector<std::size_t> cursor(n_);
  for (std::size_t j = 0; j < n_; ++j) cursor[j] = col_ptr_[j];
  std::fill(mark.begin(), mark.end(), 0);
  Vector x(n_, 0.0);
  const auto& rp = c.row_ptr();
  const auto& ci = c.col_idx();
  const auto& cv = c.values();
  for (std::uint32_t k = 0; k < n_; ++k) {
    const std::size_t top = ereach(c, parent, k, mark, stack, path);
    // Scatter row k of the lower triangle (and diagonal) of C.
    double d = 0.0;
    for (std::size_t p = rp[k]; p < rp[k + 1]; ++p) {
      const std::uint32_t j = ci[p];
      if (j < k) {
        x[j] = cv[p];
      } else if (j == k) {
        d = cv[p];
      }
    }
    for (std::size_t t = top; t < n_; ++t) {
      const std::uint32_t j = stack[t];
      const double diag_j = lx_[col_ptr_[j]];
      const double lkj = x[j] / diag_j;
      x[j] = 0.0;
      for (std::size_t p = col_ptr_[j] + 1; p < cursor[j]; ++p)
        x[row_idx_[p]] -= lx_[p] * lkj;
      d -= lkj * lkj;
      row_idx_[cursor[j]] = k;
      lx_[cursor[j]] = lkj;
      ++cursor[j];
    }
    if (d <= 0.0)
      throw std::runtime_error(
          "SparseCholesky: matrix is not positive definite");
    row_idx_[cursor[k]] = k;
    lx_[cursor[k]] = std::sqrt(d);
    ++cursor[k];
  }
}

Vector SparseCholesky::solve(const Vector& b) const {
  TSV_REQUIRE(b.size() == n_, "rhs size mismatch");
  // Permute: y = P b.
  Vector y(n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[perm_[i]];
  // Forward: L z = y (in place).
  for (std::size_t j = 0; j < n_; ++j) {
    y[j] /= lx_[col_ptr_[j]];
    const double yj = y[j];
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p)
      y[row_idx_[p]] -= lx_[p] * yj;
  }
  // Backward: L^T x = z (in place).
  for (std::size_t jj = n_; jj-- > 0;) {
    double s = y[jj];
    for (std::size_t p = col_ptr_[jj] + 1; p < col_ptr_[jj + 1]; ++p)
      s -= lx_[p] * y[row_idx_[p]];
    y[jj] = s / lx_[col_ptr_[jj]];
  }
  // Unpermute: x = P^T y.
  Vector x(n_);
  for (std::size_t i = 0; i < n_; ++i) x[perm_[i]] = y[i];
  return x;
}

}  // namespace tsv::num
