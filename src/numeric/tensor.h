#pragma once
// Small symmetric stress/strain tensors and coordinate transforms.
//
// The library mostly works with the in-plane (device layer) components.
// SymTensor2 holds {s11, s22, s12}; in Cartesian frame these are
// (sxx, syy, sxy), in a cylindrical frame (srr, stt, srt). rotate_* implement
// eq. (2) of the paper for the in-plane 2x2 block.

#include <array>
#include <cmath>

namespace tsv::num {

/// Symmetric rank-2 tensor in two dimensions.
struct SymTensor2 {
  double s11 = 0.0;  ///< sxx (Cartesian) or srr (cylindrical)
  double s22 = 0.0;  ///< syy (Cartesian) or s_theta_theta (cylindrical)
  double s12 = 0.0;  ///< sxy (Cartesian) or s_r_theta (cylindrical)

  SymTensor2& operator+=(const SymTensor2& o) {
    s11 += o.s11;
    s22 += o.s22;
    s12 += o.s12;
    return *this;
  }
  SymTensor2& operator-=(const SymTensor2& o) {
    s11 -= o.s11;
    s22 -= o.s22;
    s12 -= o.s12;
    return *this;
  }
  SymTensor2& operator*=(double a) {
    s11 *= a;
    s22 *= a;
    s12 *= a;
    return *this;
  }

  double trace() const { return s11 + s22; }
};

inline SymTensor2 operator+(SymTensor2 a, const SymTensor2& b) { return a += b; }
inline SymTensor2 operator-(SymTensor2 a, const SymTensor2& b) { return a -= b; }
inline SymTensor2 operator*(SymTensor2 a, double s) { return a *= s; }
inline SymTensor2 operator*(double s, SymTensor2 a) { return a *= s; }

/// Transforms a tensor given in a cylindrical frame whose r-axis makes angle
/// `theta` with the x-axis into the Cartesian frame: sigma_xy = Q sigma_rt Q^T
/// with Q = [[c,-s],[s,c]] (paper eq. (2) restricted to the plane).
inline SymTensor2 cylindrical_to_cartesian(const SymTensor2& t, double theta) {
  const double c = std::cos(theta);
  const double s = std::sin(theta);
  const double c2 = c * c;
  const double s2 = s * s;
  const double cs = c * s;
  SymTensor2 out;
  out.s11 = c2 * t.s11 + s2 * t.s22 - 2.0 * cs * t.s12;
  out.s22 = s2 * t.s11 + c2 * t.s22 + 2.0 * cs * t.s12;
  out.s12 = cs * (t.s11 - t.s22) + (c2 - s2) * t.s12;
  return out;
}

/// Inverse of cylindrical_to_cartesian: Cartesian components expressed in the
/// cylindrical frame at angle `theta`.
inline SymTensor2 cartesian_to_cylindrical(const SymTensor2& t, double theta) {
  return cylindrical_to_cartesian(t, -theta);
}

/// In-plane principal stresses, returned as {s_max, s_min}.
inline std::array<double, 2> principal_stresses(const SymTensor2& t) {
  const double mid = 0.5 * (t.s11 + t.s22);
  const double rad =
      std::sqrt(0.25 * (t.s11 - t.s22) * (t.s11 - t.s22) + t.s12 * t.s12);
  return {mid + rad, mid - rad};
}

/// Von Mises equivalent stress under plane stress (szz = syz = szx = 0):
/// sqrt(sxx^2 - sxx*syy + syy^2 + 3 sxy^2).
inline double von_mises_plane_stress(const SymTensor2& t) {
  return std::sqrt(t.s11 * t.s11 - t.s11 * t.s22 + t.s22 * t.s22 +
                   3.0 * t.s12 * t.s12);
}

/// Maximum in-plane tensile stress (largest principal value, floored at 0).
inline double max_tensile(const SymTensor2& t) {
  const double p = principal_stresses(t)[0];
  return p > 0.0 ? p : 0.0;
}

}  // namespace tsv::num
