#include "numeric/laurent.h"

#include <algorithm>
#include <cmath>

namespace tsv::num {
namespace {

/// z^n for integer n (n may be negative; z must then be nonzero).
Complex ipow(Complex z, int n) {
  if (n == 0) return {1.0, 0.0};
  const bool neg = n < 0;
  unsigned int e = static_cast<unsigned int>(neg ? -static_cast<long>(n) : n);
  Complex base = z;
  Complex acc{1.0, 0.0};
  while (e != 0) {
    if (e & 1u) acc *= base;
    base *= base;
    e >>= 1u;
  }
  return neg ? Complex{1.0, 0.0} / acc : acc;
}

}  // namespace

Complex LaurentSeries::evaluate(Complex z) const {
  if (coeff_.empty()) return {0.0, 0.0};
  TSV_REQUIRE((n_min_ >= 0 || z != Complex{0.0, 0.0}),
              "evaluating negative powers at z = 0");
  // Horner in two halves around n = 0 for numerical stability.
  Complex sum{0.0, 0.0};
  // Non-negative powers, descending Horner.
  const int hi = n_max();
  if (hi >= 0) {
    Complex acc{0.0, 0.0};
    for (int n = hi; n >= std::max(0, n_min_); --n) {
      acc = acc * z + coeff(n);
    }
    // Account for a gap when n_min_ > 0.
    if (n_min_ > 0) acc *= ipow(z, n_min_);
    sum += acc;
  }
  // Negative powers, Horner in w = 1/z.
  if (n_min_ < 0) {
    const Complex w = Complex{1.0, 0.0} / z;
    Complex acc{0.0, 0.0};
    for (int n = n_min_; n <= std::min(-1, hi); ++n) {
      acc = acc * w + coeff(n);
    }
    // Horner built acc relative to the highest included negative power
    // n_top = min(-1, n_max); finish by multiplying with w^{-n_top}.
    const int n_top = std::min(-1, hi);
    acc *= ipow(w, -n_top);
    sum += acc;
  }
  return sum;
}

LaurentSeries LaurentSeries::derivative_series() const {
  if (coeff_.empty()) return {};
  // Derivative powers are {n - 1 : n != 0}; a series starting at n = 0 must
  // not grow a (zero) z^-1 slot, which would poison evaluation at z = 0.
  const int lo = n_min_ == 0 ? 0 : n_min_ - 1;
  const int hi = std::max(lo, n_max() == 0 ? lo : n_max() - 1);
  LaurentSeries d(lo, hi);
  for (int n = n_min_; n <= n_max(); ++n) {
    if (n != 0) d.coeff(n - 1) = static_cast<double>(n) * coeff(n);
  }
  return d;
}

Complex LaurentSeries::derivative(Complex z) const {
  return derivative_series().evaluate(z);
}

Complex LaurentSeries::second_derivative(Complex z) const {
  return derivative_series().derivative_series().evaluate(z);
}

LaurentSeries LaurentSeries::antiderivative() const {
  TSV_REQUIRE(std::abs(coeff(-1)) == 0.0,
              "antiderivative of a 1/z term is not a Laurent series");
  LaurentSeries out(n_min_ + 1, n_max() + 1);
  for (int n = n_min_; n <= n_max(); ++n) {
    if (n == -1) continue;
    out.coeff(n + 1) = coeff(n) / static_cast<double>(n + 1);
  }
  return out;
}

LaurentSeries& LaurentSeries::operator+=(const LaurentSeries& other) {
  if (other.empty()) return *this;
  if (empty()) {
    *this = other;
    return *this;
  }
  const int lo = std::min(n_min(), other.n_min());
  const int hi = std::max(n_max(), other.n_max());
  const LaurentSeries& self = *this;  // range-checked const accessor
  LaurentSeries out(lo, hi);
  for (int n = lo; n <= hi; ++n) out.coeff(n) = self.coeff(n) + other.coeff(n);
  *this = out;
  return *this;
}

LaurentSeries& LaurentSeries::operator*=(Complex s) {
  for (auto& c : coeff_) c *= s;
  return *this;
}

LaurentSeries LaurentSeries::trimmed(double rel_eps) const {
  if (coeff_.empty()) return {};
  const double cutoff = rel_eps * max_abs_coeff();
  int lo = n_min();
  int hi = n_max();
  while (lo < hi && std::abs(coeff(lo)) <= cutoff) ++lo;
  while (hi > lo && std::abs(coeff(hi)) <= cutoff) --hi;
  if (lo == hi && std::abs(coeff(lo)) <= cutoff) return {};
  LaurentSeries out(lo, hi);
  for (int n = lo; n <= hi; ++n) out.coeff(n) = coeff(n);
  return out;
}

double LaurentSeries::max_abs_coeff() const {
  double m = 0.0;
  for (const auto& c : coeff_) m = std::max(m, std::abs(c));
  return m;
}

}  // namespace tsv::num
