#pragma once
// Linear elastic, isotropic material properties and the material set used by
// the paper (Sec. 5): copper TSV body, BCB or SiO2 liner, silicon substrate.
//
// Unit system used throughout the library:
//   length  um
//   stress  MPa   (1 MPa = 1e6 Pa; Young's moduli below are in MPa)
//   temperature K
//   CTE     1/K
// With these units forces come out in MPa*um^2 = uN, which never needs to be
// inspected directly.

#include <string>

#include "numeric/check.h"

namespace tsv::mat {

/// Isotropic linear-elastic material with thermal expansion.
struct Material {
  std::string name;
  double youngs_modulus = 0.0;   ///< E, MPa
  double poisson_ratio = 0.0;    ///< nu, dimensionless
  double cte = 0.0;              ///< alpha, 1/K

  /// Shear modulus mu = E / (2(1+nu)), MPa.
  double shear_modulus() const { return youngs_modulus / (2.0 * (1.0 + poisson_ratio)); }
  /// Kolosov constant for plane stress: kappa = (3 - nu) / (1 + nu).
  double kolosov_plane_stress() const {
    return (3.0 - poisson_ratio) / (1.0 + poisson_ratio);
  }

  void validate() const {
    TSV_REQUIRE(youngs_modulus > 0.0, "Young's modulus must be positive");
    TSV_REQUIRE(poisson_ratio > -1.0 && poisson_ratio < 0.5,
                "Poisson ratio out of (-1, 0.5)");
  }
};

/// Paper's material table (DAC'13 Sec. 5), E in MPa.
Material copper();
Material bcb();
Material silicon_dioxide();
Material silicon();

/// Bundle-effective carbon-nanotube via fill (arXiv:1601.04107): far stiffer
/// axially than radially, but the radial/transverse bundle response that
/// matters for in-plane stress is well approximated by E ~= 100 GPa,
/// nu ~= 0.2, with a near-zero CTE (~1 ppm/K) — the low CTE is the reason
/// CNT fill slashes thermal stress relative to copper.
Material cnt_fill();

/// Thermal loading of the anneal process: stress-free at anneal temperature,
/// observed after cooling by delta_t (the paper uses delta_t = -250 K).
struct ThermalLoad {
  double delta_t = -250.0;  ///< K (cooling is negative)
};

}  // namespace tsv::mat
