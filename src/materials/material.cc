#include "materials/material.h"

namespace tsv::mat {

// Values from the paper, Sec. 5: Young's modulus (GPa) Cu=110, BCB=3,
// SiO2=71, Si=188; CTE (ppm/K) Cu=17, BCB=40, SiO2=0.5, Si=2.3.
// Poisson ratios are not listed in the paper; we use the standard values
// from the cited TSV-stress literature (Jung et al., DAC'11 / Ryu et al.).

Material copper() { return {"Cu", 110.0e3, 0.35, 17.0e-6}; }
Material bcb() { return {"BCB", 3.0e3, 0.34, 40.0e-6}; }
Material silicon_dioxide() { return {"SiO2", 71.0e3, 0.16, 0.5e-6}; }
Material silicon() { return {"Si", 188.0e3, 0.28, 2.3e-6}; }
Material cnt_fill() { return {"CNT", 100.0e3, 0.2, 1.0e-6}; }

}  // namespace tsv::mat
