#pragma once
// Plane-stress / plane-strain constitutive matrices and eigenstrain handling.

#include "materials/material.h"
#include "numeric/dense_matrix.h"
#include "numeric/tensor.h"

namespace tsv::mat {

enum class PlaneAssumption { kPlaneStress, kPlaneStrain };

/// 3x3 constitutive matrix D mapping engineering strain (exx, eyy, gxy) to
/// stress (sxx, syy, sxy).
num::Matrix constitutive_matrix(const Material& m, PlaneAssumption plane);

/// Thermal eigenstrain vector (exx, eyy, gxy) for a temperature change
/// delta_t, measured relative to a reference CTE (pass 0 for absolute).
/// Using the substrate CTE as reference removes the stress-free uniform
/// expansion of the chip and makes far-field displacements vanish.
num::Vector thermal_eigenstrain(const Material& m, double delta_t,
                                double reference_cte,
                                PlaneAssumption plane);

/// sigma = D * (eps - eps_thermal) for in-plane symmetric tensors with
/// engineering shear (gxy = 2 exy).
num::SymTensor2 stress_from_strain(const num::Matrix& d,
                                   const num::SymTensor2& strain,
                                   const num::Vector& eigenstrain);

}  // namespace tsv::mat
