#include "materials/elasticity.h"

namespace tsv::mat {

num::Matrix constitutive_matrix(const Material& m, PlaneAssumption plane) {
  m.validate();
  const double e = m.youngs_modulus;
  const double nu = m.poisson_ratio;
  num::Matrix d(3, 3);
  if (plane == PlaneAssumption::kPlaneStress) {
    const double f = e / (1.0 - nu * nu);
    d(0, 0) = f;
    d(0, 1) = f * nu;
    d(1, 0) = f * nu;
    d(1, 1) = f;
    d(2, 2) = f * (1.0 - nu) / 2.0;
  } else {
    const double f = e / ((1.0 + nu) * (1.0 - 2.0 * nu));
    d(0, 0) = f * (1.0 - nu);
    d(0, 1) = f * nu;
    d(1, 0) = f * nu;
    d(1, 1) = f * (1.0 - nu);
    d(2, 2) = f * (1.0 - 2.0 * nu) / 2.0;
  }
  return d;
}

num::Vector thermal_eigenstrain(const Material& m, double delta_t,
                                double reference_cte, PlaneAssumption plane) {
  double eps = (m.cte - reference_cte) * delta_t;
  if (plane == PlaneAssumption::kPlaneStrain) {
    // Out-of-plane constraint amplifies the in-plane thermal strain.
    eps *= (1.0 + m.poisson_ratio);
  }
  return {eps, eps, 0.0};
}

num::SymTensor2 stress_from_strain(const num::Matrix& d,
                                   const num::SymTensor2& strain,
                                   const num::Vector& eigenstrain) {
  TSV_REQUIRE(eigenstrain.size() == 3, "eigenstrain must have 3 components");
  const double exx = strain.s11 - eigenstrain[0];
  const double eyy = strain.s22 - eigenstrain[1];
  const double gxy = 2.0 * strain.s12 - eigenstrain[2];
  num::SymTensor2 s;
  s.s11 = d(0, 0) * exx + d(0, 1) * eyy + d(0, 2) * gxy;
  s.s22 = d(1, 0) * exx + d(1, 1) * eyy + d(1, 2) * gxy;
  s.s12 = d(2, 0) * exx + d(2, 1) * eyy + d(2, 2) * gxy;
  return s;
}

}  // namespace tsv::mat
