#pragma once
// Read-only memory-mapped file access for bulk snapshot payloads.
//
// Snapshot loads used to slurp the whole file through an ifstream into a
// std::string and then substr the payload out of it — two transient copies
// of a file that is ~100 MB for a warm 10k-TSV engine. Mapping the file
// instead lets the snapshot Reader decode straight out of the page cache:
// the only copies made are the final destination vectors, and clean pages
// can be dropped by the kernel under memory pressure instead of sitting in
// the heap.
//
// Falls back to a plain read() buffer when mmap is unavailable or fails
// (empty files, exotic filesystems), so callers never need to care which
// path they got: data()/size() behave identically.

#include <cstddef>
#include <string>

namespace tsv::io {

class MappedFile {
 public:
  /// Opens and maps `path`. Throws InvalidInputError when the file cannot
  /// be opened or read (a missing path is the caller's mistake, mirroring
  /// the snapshot layer's contract).
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when the contents are an actual mmap (false = read() fallback).
  bool is_mapped() const { return mapped_; }

 private:
  void release() noexcept;

  char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace tsv::io
