#pragma once
// Crash-safe file writes. A plain ofstream that dies mid-write leaves a
// torn file behind — fatal for snapshots (the checksum only *detects* the
// damage) and for the JSONL trajectory artifacts CI uploads. The helpers
// here write to `<path>.tmp`, flush and fsync, then rename over the target,
// so at every instant the target path holds either the complete old
// contents or the complete new contents, never a mixture.

#include <string>

namespace tsv::io {

/// Atomically replaces `path` with `bytes` (write temp, flush+fsync,
/// rename). Throws tsv::IoCorruptionError if any step fails; the original
/// file is left untouched in that case.
///
/// `durable=false` skips the fsync: the rename still guarantees the target
/// is never torn against *process* death (the page cache survives a killed
/// process), but a power loss right after the rename may leave an empty
/// file. Checkpoints use this — their fault model is a killed run, their
/// consumer tolerates a bad file, and the fsync wait is the bulk of the
/// checkpoint overhead on large fields.
void atomic_write_file(const std::string& path, const std::string& bytes,
                       bool durable = true);

/// Atomically appends `line` + '\n' to `path` (creating it if missing) via
/// read + rewrite of the whole file. Intended for small append-mostly
/// artifacts (bench JSONL rows), where the simplicity of full-file rewrite
/// beats journaling; an interrupted append leaves the previous rows intact.
void atomic_append_line(const std::string& path, const std::string& line);

}  // namespace tsv::io
