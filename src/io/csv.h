#pragma once
// Minimal CSV writing for field dumps and experiment outputs.

#include <fstream>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::io {

/// Streaming CSV writer: header row then value rows. Throws on I/O failure.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void header(const std::vector<std::string>& columns);
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
};

/// Writes a scalar field sampled at points: x,y,value.
void write_scalar_field(const std::string& path,
                        const std::vector<geo::Point>& points,
                        const std::vector<double>& values);

/// Writes a tensor field: x,y,sxx,syy,sxy.
void write_tensor_field(const std::string& path,
                        const std::vector<geo::Point>& points,
                        const std::vector<num::SymTensor2>& values);

}  // namespace tsv::io
