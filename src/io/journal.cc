#include "io/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/error.h"
#include "io/atomic_file.h"
#include "numeric/fault_injection.h"

namespace tsv::io {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'V', 'J', 'R', 'N', 'L', '\0'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(std::uint32_t);
// A record is one eco batch (or a tiny open/anchor); anything past this is
// a corrupt length field, not a real payload.
constexpr std::uint64_t kMaxRecordBytes = 64ull << 20;

// Same checksum the snapshots use; kept local because the journal checks
// per record (kind byte + payload), not per file.
std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

[[noreturn]] void journal_error(const std::string& path,
                                const std::string& what) {
  throw IoCorruptionError("journal '" + path + "': " + what);
}

template <typename T>
void put_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Thrown internally by the payload decoders; read() converts it into a
/// torn-tail report instead of propagating (the valid prefix still counts).
struct ParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Bounds-checked cursor over one record payload.
class Cursor {
 public:
  Cursor(const char* data, std::size_t n) : data_(data), n_(n) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  double f64() { return get<double>(); }
  std::string bytes(std::size_t n) {
    need(n);
    std::string s(data_ + off_, n);
    off_ += n;
    return s;
  }
  std::size_t remaining() const { return n_ - off_; }
  void expect_end() const {
    if (off_ != n_) throw ParseError("trailing bytes in record payload");
  }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (off_ + n > n_) throw ParseError("truncated record payload");
  }
  const char* data_;
  std::size_t n_;
  std::size_t off_ = 0;
};

std::uint8_t op_kind_code(core::EcoOp::Kind k) {
  switch (k) {
    case core::EcoOp::Kind::kAdd:
      return 1;
    case core::EcoOp::Kind::kMove:
      return 2;
    case core::EcoOp::Kind::kRemove:
      return 3;
  }
  throw ParseError("unknown eco op kind");
}

core::EcoOp::Kind op_kind_from_code(std::uint8_t code) {
  switch (code) {
    case 1:
      return core::EcoOp::Kind::kAdd;
    case 2:
      return core::EcoOp::Kind::kMove;
    case 3:
      return core::EcoOp::Kind::kRemove;
  }
  throw ParseError("unknown eco op kind code");
}

std::string encode_payload(const JournalRecord& rec) {
  std::string p;
  switch (rec.kind) {
    case JournalRecord::Kind::kOpen: {
      const JournalOpen& o = rec.open;
      put_pod(p, static_cast<std::uint64_t>(o.placement_payload.size()));
      p.append(o.placement_payload);
      put_pod(p, o.spacing);
      put_pod(p, o.margin);
      put_pod(p, static_cast<std::uint8_t>(o.lookup ? 1 : 0));
      put_pod(p, o.quant_step);
      put_pod(p, static_cast<std::uint8_t>(o.surrogate ? 1 : 0));
      break;
    }
    case JournalRecord::Kind::kEco: {
      const JournalEco& e = rec.eco;
      put_pod(p, e.sequence);
      put_pod(p, static_cast<std::uint64_t>(e.delta.size()));
      for (const core::EcoOp& op : e.delta) {
        put_pod(p, op_kind_code(op.kind));
        put_pod(p, op.id);
        put_pod(p, op.center.x);
        put_pod(p, op.center.y);
      }
      break;
    }
    case JournalRecord::Kind::kAnchor: {
      put_pod(p, rec.anchor.snapshot_checksum);
      put_pod(p, rec.anchor.last_sequence);
      break;
    }
  }
  return p;
}

JournalRecord decode_payload(JournalRecord::Kind kind, const char* data,
                             std::size_t n) {
  Cursor c(data, n);
  JournalRecord rec;
  rec.kind = kind;
  switch (kind) {
    case JournalRecord::Kind::kOpen: {
      const std::uint64_t len = c.u64();
      if (len > c.remaining()) throw ParseError("impossible placement size");
      rec.open.placement_payload = c.bytes(static_cast<std::size_t>(len));
      rec.open.spacing = c.f64();
      rec.open.margin = c.f64();
      rec.open.lookup = c.u8() != 0;
      rec.open.quant_step = c.f64();
      rec.open.surrogate = c.u8() != 0;
      break;
    }
    case JournalRecord::Kind::kEco: {
      rec.eco.sequence = c.u64();
      const std::uint64_t nops = c.u64();
      // 21 bytes per op (u8 + u32 + 2*f64): an op count the payload cannot
      // hold is a corrupt length field.
      if (nops > c.remaining() / 21) throw ParseError("impossible op count");
      rec.eco.delta.reserve(static_cast<std::size_t>(nops));
      for (std::uint64_t i = 0; i < nops; ++i) {
        core::EcoOp op;
        op.kind = op_kind_from_code(c.u8());
        op.id = c.u32();
        op.center.x = c.f64();
        op.center.y = c.f64();
        rec.eco.delta.push_back(op);
      }
      break;
    }
    case JournalRecord::Kind::kAnchor: {
      rec.anchor.snapshot_checksum = c.u64();
      rec.anchor.last_sequence = c.u64();
      break;
    }
  }
  c.expect_end();
  return rec;
}

std::string encode_header(std::uint32_t flags) {
  std::string h;
  h.append(kMagic, sizeof(kMagic));
  put_pod(h, kJournalVersion);
  put_pod(h, flags);
  return h;
}

std::string encode_record(const JournalRecord& rec) {
  const std::string payload = encode_payload(rec);
  std::string bytes;
  bytes.reserve(1 + sizeof(std::uint32_t) + payload.size() +
                sizeof(std::uint64_t));
  const std::uint8_t kind = static_cast<std::uint8_t>(rec.kind);
  put_pod(bytes, kind);
  put_pod(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.append(payload);
  // Checksum covers the kind byte too, so a flipped kind cannot pair with
  // a stale payload and still verify.
  std::string checked;
  checked.reserve(1 + payload.size());
  checked.push_back(static_cast<char>(kind));
  checked.append(payload);
  put_pod(bytes, fnv1a64(checked.data(), checked.size()));
  return bytes;
}

void write_all_fd(int fd, const char* data, std::size_t n,
                  const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      journal_error(path, std::string("append write failed: ") +
                              std::strerror(err));
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

JournalRecord JournalRecord::make_open(JournalOpen o) {
  JournalRecord r;
  r.kind = Kind::kOpen;
  r.open = std::move(o);
  return r;
}

JournalRecord JournalRecord::make_eco(JournalEco e) {
  JournalRecord r;
  r.kind = Kind::kEco;
  r.eco = std::move(e);
  return r;
}

JournalRecord JournalRecord::make_anchor(JournalAnchor a) {
  JournalRecord r;
  r.kind = Kind::kAnchor;
  r.anchor = a;
  return r;
}

EcoJournal::EcoJournal(std::string path, bool fsync_on_append)
    : path_(std::move(path)), fsync_on_append_(fsync_on_append) {}

void EcoJournal::append(const JournalRecord& record) {
  if (fault::should_fire(fault::Site::kJournalWriteFail))
    journal_error(path_, "injected append failure (no bytes written)");

  const std::string bytes = encode_record(record);
  const int fd = ::open(path_.c_str(),
                        O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    const int err = errno;
    journal_error(path_, std::string("cannot open for append: ") +
                             std::strerror(err));
  }
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    journal_error(path_, std::string("fstat failed: ") + std::strerror(err));
  }
  if (st.st_size == 0) {
    const std::string header =
        encode_header(fsync_on_append_ ? 0u : kJournalFlagNoFsync);
    write_all_fd(fd, header.data(), header.size(), path_);
  }

  if (fault::should_fire(fault::Site::kJournalTornTail)) {
    // A crash mid-append: half the record reaches the disk, then the
    // process is gone. Recovery must cut this back, loudly.
    write_all_fd(fd, bytes.data(), bytes.size() / 2, path_);
    journal_error(path_, "injected torn append (partial record written)");
  }

  write_all_fd(fd, bytes.data(), bytes.size(), path_);
  if (fsync_on_append_ && ::fsync(fd) != 0) {
    const int err = errno;
    journal_error(path_, std::string("fsync failed: ") + std::strerror(err));
  }
}

void EcoJournal::reset_to_anchor(const JournalAnchor& anchor) {
  std::string bytes =
      encode_header(fsync_on_append_ ? 0u : kJournalFlagNoFsync);
  bytes.append(encode_record(JournalRecord::make_anchor(anchor)));
  atomic_write_file(path_, bytes, /*durable=*/fsync_on_append_);
}

void EcoJournal::reset_to_open(const JournalOpen& open) {
  std::string bytes =
      encode_header(fsync_on_append_ ? 0u : kJournalFlagNoFsync);
  bytes.append(encode_record(JournalRecord::make_open(open)));
  atomic_write_file(path_, bytes, /*durable=*/fsync_on_append_);
}

void EcoJournal::remove() {
  if (::unlink(path_.c_str()) != 0 && errno != ENOENT) {
    const int err = errno;
    journal_error(path_, std::string("cannot remove: ") + std::strerror(err));
  }
}

JournalReplay EcoJournal::read(const std::string& path) {
  JournalReplay replay;

  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return replay;  // never journaled: clean empty
    const int err = errno;
    journal_error(path, std::string("cannot stat: ") + std::strerror(err));
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) journal_error(path, "cannot open for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = std::move(buf).str();

  const auto torn = [&](std::uint64_t valid, const std::string& why) {
    replay.torn_tail = true;
    replay.torn_reason = why;
    replay.valid_bytes = valid;
    return replay;
  };

  if (bytes.size() < kHeaderBytes)
    return torn(0, "truncated header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    return torn(0, "bad magic (not a tsvstress journal)");
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kJournalVersion) {
    std::ostringstream os;
    os << "unsupported journal version " << version;
    return torn(0, os.str());
  }
  std::memcpy(&replay.flags, bytes.data() + sizeof(kMagic) + sizeof(version),
              sizeof(replay.flags));
  replay.valid_bytes = kHeaderBytes;

  std::size_t off = kHeaderBytes;
  while (off < bytes.size()) {
    constexpr std::size_t kRecHeader = 1 + sizeof(std::uint32_t);
    if (bytes.size() - off < kRecHeader)
      return torn(off, "truncated record header");
    const std::uint8_t kind_code = static_cast<std::uint8_t>(bytes[off]);
    if (kind_code < 1 || kind_code > 3)
      return torn(off, "unknown record kind");
    std::uint32_t payload_len = 0;
    std::memcpy(&payload_len, bytes.data() + off + 1, sizeof(payload_len));
    if (payload_len > kMaxRecordBytes)
      return torn(off, "impossible record size");
    if (bytes.size() - off - kRecHeader <
        payload_len + sizeof(std::uint64_t))
      return torn(off, "truncated record");

    // Verify the checksum over kind byte + payload before decoding.
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + off + kRecHeader + payload_len,
                sizeof(stored));
    std::string checked;
    checked.reserve(1 + payload_len);
    checked.push_back(static_cast<char>(kind_code));
    checked.append(bytes, off + kRecHeader, payload_len);
    if (fnv1a64(checked.data(), checked.size()) != stored)
      return torn(off, "record checksum mismatch");

    try {
      replay.records.push_back(decode_payload(
          static_cast<JournalRecord::Kind>(kind_code),
          bytes.data() + off + kRecHeader, payload_len));
    } catch (const ParseError& e) {
      return torn(off, std::string("malformed record: ") + e.what());
    }
    off += kRecHeader + payload_len + sizeof(std::uint64_t);
    replay.valid_bytes = off;
  }
  return replay;
}

void EcoJournal::truncate_to_valid(const std::string& path,
                                   const JournalReplay& replay) {
  if (::truncate(path.c_str(),
                 static_cast<off_t>(replay.valid_bytes)) != 0) {
    if (errno == ENOENT) return;  // nothing to repair
    const int err = errno;
    journal_error(path,
                  std::string("truncate failed: ") + std::strerror(err));
  }
}

}  // namespace tsv::io
