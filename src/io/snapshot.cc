#include "io/snapshot.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "analytic/mode_solver.h"
#include "core/error.h"
#include "io/atomic_file.h"
#include "io/mapped_file.h"
#include "numeric/fault_injection.h"

namespace tsv::io {
namespace {

constexpr char kMagic[8] = {'T', 'S', 'V', 'S', 'N', 'A', 'P', '\0'};

std::uint64_t fnv1a64(const char* bytes, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(bytes[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a64(const std::string& bytes) {
  return fnv1a64(bytes.data(), bytes.size());
}

[[noreturn]] void snapshot_error(const std::string& path,
                                 const std::string& what) {
  throw IoCorruptionError("snapshot '" + path + "': " + what);
}

/// Accumulates a payload; integers and doubles are appended as raw native
/// little-endian bytes.
class Writer {
 public:
  void reserve(std::size_t bytes) { buffer_.reserve(bytes); }
  void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i32(std::int32_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void str(const std::string& s) {
    size(s.size());
    buffer_.append(s);
  }
  void f64_vec(const std::vector<double>& v) {
    size(v.size());
    for (const double x : v) f64(x);
  }
  void f32_vec(const std::vector<float>& v) {
    // Bulk append (native little-endian IEEE floats) — the float32 storage
    // tier for bulk table tensors.
    size(v.size());
    raw(v.data(), v.size() * sizeof(float));
  }
  void point(const geo::Point& p) {
    f64(p.x);
    f64(p.y);
  }
  void tensor(const num::SymTensor2& t) {
    f64(t.s11);
    f64(t.s22);
    f64(t.s12);
  }
  void tensor_vec(const std::vector<num::SymTensor2>& v) {
    // Bulk append: the on-disk layout (s11, s22, s12 doubles per tensor) is
    // exactly the in-memory layout, and per-element f64 calls dominate the
    // checkpoint write time on full-chip fields.
    static_assert(sizeof(num::SymTensor2) == 3 * sizeof(double));
    size(v.size());
    raw(v.data(), v.size() * sizeof(num::SymTensor2));
  }

  /// The accumulated payload bytes (for embedding a sub-encoding inside
  /// another container, e.g. the eco journal's open record).
  const std::string& payload() const { return buffer_; }

  /// Writes header + payload + checksum to `path` atomically (temp file +
  /// rename), so a crash mid-save can never leave a torn snapshot behind —
  /// either the previous file survives intact or the new one is complete.
  /// `durable=false` skips the fsync (see atomic_write_file). Returns the
  /// payload checksum — the identity the eco journal anchors replay to.
  std::uint64_t commit(const std::string& path, SnapshotKind kind,
                       bool durable = true,
                       std::uint32_t version = kSnapshotVersion) const {
    std::string bytes;
    bytes.reserve(sizeof(kMagic) + 2 * sizeof(std::uint32_t) +
                  2 * sizeof(std::uint64_t) + buffer_.size());
    bytes.append(kMagic, sizeof(kMagic));
    const std::uint32_t kind_u = static_cast<std::uint32_t>(kind);
    const std::uint64_t payload = buffer_.size();
    const std::uint64_t checksum = fnv1a64(buffer_);
    const auto append_pod = [&](const auto& v) {
      bytes.append(reinterpret_cast<const char*>(&v), sizeof(v));
    };
    append_pod(version);
    append_pod(kind_u);
    append_pod(payload);
    bytes.append(buffer_);
    append_pod(checksum);
    atomic_write_file(path, bytes, durable);
    return checksum;
  }

 private:
  void raw(const void* p, std::size_t n) {
    if (n != 0) buffer_.append(static_cast<const char*>(p), n);
  }
  std::string buffer_;
};

/// Validated payload cursor: every get_* bounds-checks before reading, so
/// malformed payloads fail with a clear error instead of reading garbage.
/// Non-owning: decodes straight out of the caller's buffer (a MappedFile
/// for snapshot loads, a std::string for embedded payloads), which must
/// outlive the Reader.
class Reader {
 public:
  Reader(const char* payload, std::size_t payload_size, std::string path,
         std::uint32_t version = kSnapshotVersion)
      : payload_(payload),
        payload_size_(payload_size),
        path_(std::move(path)),
        version_(version) {}

  Reader(const std::string& payload, std::string path,
         std::uint32_t version = kSnapshotVersion)
      : Reader(payload.data(), payload.size(), std::move(path), version) {}

  /// Format version of the file this payload came from; decoders branch on
  /// it for sections added after version 1.
  std::uint32_t version() const { return version_; }

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  double f64() { return get<double>(); }
  std::size_t size() {
    const std::uint64_t n = u64();
    // An impossible element count (larger than the remaining payload)
    // means a corrupt length field; fail before trying to allocate it.
    if (n > payload_size_ - cursor_)
      snapshot_error(path_, "malformed payload (impossible element count)");
    return static_cast<std::size_t>(n);
  }

  std::string str() {
    const std::size_t n = size();
    need(n);
    std::string s(payload_ + cursor_, n);
    cursor_ += n;
    return s;
  }
  std::vector<double> f64_vec() {
    const std::size_t n = size();
    std::vector<double> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = f64();
    return v;
  }
  std::vector<float> f32_vec() {
    // Bulk read, mirroring Writer::f32_vec.
    const std::size_t n = size();
    std::vector<float> v(n);
    const std::size_t bytes = n * sizeof(float);
    need(bytes);
    if (bytes != 0) std::memcpy(v.data(), payload_ + cursor_, bytes);
    cursor_ += bytes;
    return v;
  }
  geo::Point point() {
    geo::Point p;
    p.x = f64();
    p.y = f64();
    return p;
  }
  num::SymTensor2 tensor() {
    num::SymTensor2 t;
    t.s11 = f64();
    t.s22 = f64();
    t.s12 = f64();
    return t;
  }
  std::vector<num::SymTensor2> tensor_vec() {
    // Bulk read, mirroring Writer::tensor_vec (same byte layout).
    const std::size_t n = size();
    std::vector<num::SymTensor2> v(n);
    const std::size_t bytes = n * sizeof(num::SymTensor2);
    need(bytes);
    // n == 0 leaves v.data() null, and memcpy's pointer arguments must be
    // valid even for a zero count (UBSan enforces this).
    if (bytes != 0) std::memcpy(v.data(), payload_ + cursor_, bytes);
    cursor_ += bytes;
    return v;
  }

  void expect_end() const {
    if (cursor_ != payload_size_)
      snapshot_error(path_, "malformed payload (trailing bytes)");
  }

 private:
  template <typename T>
  T get() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, payload_ + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (cursor_ + n > payload_size_)
      snapshot_error(path_, "malformed payload (truncated field)");
  }

  const char* payload_ = nullptr;
  std::size_t payload_size_ = 0;
  std::string path_;
  std::uint32_t version_ = kSnapshotVersion;
  std::size_t cursor_ = 0;
};

/// A validated, still-open snapshot file: `reader` decodes directly out of
/// the mapping, so this object must stay alive until decoding finishes.
struct OpenedSnapshot {
  MappedFile file;
  SnapshotInfo info;
  Reader reader;
};

/// Maps the file and validates magic, version, size, and checksum. The
/// returned reader points into the mapping — no heap copy of the payload.
OpenedSnapshot read_file(const std::string& path) {
  MappedFile file(path);
  const char* bytes = file.data();
  const std::size_t total = file.size();

  constexpr std::size_t kHeader = sizeof(kMagic) + 2 * sizeof(std::uint32_t) +
                                  sizeof(std::uint64_t);
  if (total < kHeader + sizeof(std::uint64_t))
    snapshot_error(path, "truncated file (shorter than the header)");
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0)
    snapshot_error(path, "not a tsvstress snapshot (bad magic)");

  SnapshotInfo info;
  std::size_t off = sizeof(kMagic);
  const auto read_pod = [&](auto& v) {
    std::memcpy(&v, bytes + off, sizeof(v));
    off += sizeof(v);
  };
  std::uint32_t kind_u = 0;
  read_pod(info.version);
  read_pod(kind_u);
  read_pod(info.payload_bytes);
  info.kind = static_cast<SnapshotKind>(kind_u);

  if (info.version < kMinSnapshotVersion ||
      info.version > kSnapshotVersion) {
    std::ostringstream os;
    os << "format version mismatch: file has version " << info.version
       << ", this build reads versions " << kMinSnapshotVersion << ".."
       << kSnapshotVersion;
    snapshot_error(path, os.str());
  }
  if (total != off + info.payload_bytes + sizeof(std::uint64_t))
    snapshot_error(path, "truncated file (payload size does not match)");

  const char* payload = bytes + off;
  const std::size_t payload_bytes =
      static_cast<std::size_t>(info.payload_bytes);
  std::uint64_t stored = 0;
  std::memcpy(&stored, payload + payload_bytes, sizeof(stored));
  info.checksum = stored;
  const std::uint64_t computed = fnv1a64(payload, payload_bytes);
  if (computed != stored) {
    std::ostringstream os;
    os << "checksum mismatch (file is corrupt): stored " << std::hex << stored
       << ", computed " << computed;
    snapshot_error(path, os.str());
  }
  Reader reader(payload, payload_bytes, path, info.version);
  return OpenedSnapshot{std::move(file), info, std::move(reader)};
}

OpenedSnapshot open_kind(const std::string& path, SnapshotKind expected) {
  OpenedSnapshot opened = read_file(path);
  if (opened.info.kind != expected) {
    std::ostringstream os;
    os << "kind mismatch: expected " << to_string(expected) << ", file holds "
       << to_string(opened.info.kind);
    snapshot_error(path, os.str());
  }
  return opened;
}

// --- shared sub-encoders -------------------------------------------------

void put_material(Writer& w, const mat::Material& m) {
  w.str(m.name);
  w.f64(m.youngs_modulus);
  w.f64(m.poisson_ratio);
  w.f64(m.cte);
}

mat::Material get_material(Reader& r) {
  mat::Material m;
  m.name = r.str();
  m.youngs_modulus = r.f64();
  m.poisson_ratio = r.f64();
  m.cte = r.f64();
  return m;
}

void put_structure(Writer& w, const tsvlib::TsvStructure& s) {
  w.f64(s.body_radius);
  w.f64(s.liner_thickness);
  w.f64(s.landing_pad);
  put_material(w, s.body);
  put_material(w, s.liner);
  put_material(w, s.substrate);
}

tsvlib::TsvStructure get_structure(Reader& r) {
  tsvlib::TsvStructure s;
  s.body_radius = r.f64();
  s.liner_thickness = r.f64();
  s.landing_pad = r.f64();
  s.body = get_material(r);
  s.liner = get_material(r);
  s.substrate = get_material(r);
  s.validate();
  return s;
}

void put_radial_table(Writer& w, const core::RadialStressTable& t) {
  w.f64(t.max_radius());
  w.f64_vec(t.srr());
  w.f64_vec(t.stt());
}

core::RadialStressTable get_radial_table(Reader& r) {
  const double max_radius = r.f64();
  std::vector<double> srr = r.f64_vec();
  std::vector<double> stt = r.f64_vec();
  return core::RadialStressTable(std::move(srr), std::move(stt), max_radius);
}

void put_pair_tables(Writer& w,
                     const std::vector<ana::PairStressTable::Data>& tables,
                     std::uint32_t version = kSnapshotVersion) {
  // Format v3: the float32 SoA samples are written verbatim (they ARE the
  // table's storage), so save -> load -> save round-trips bitwise and the
  // section is ~6x smaller than the v2 f64 tensor layout. The compat
  // writers (version < 3) widen the floats back into the old f64 tensor
  // layout; re-narrowing on load restores the identical bits.
  w.size(tables.size());
  for (const ana::PairStressTable::Data& t : tables) {
    w.f64(t.pitch);
    w.f64(t.r_max);
    w.size(t.n_theta);
    for (const auto& seg : t.segments) {
      w.f64(seg.r0);
      w.f64(seg.r1);
      w.size(seg.nr);
      if (version >= 3) {
        w.f32_vec(seg.s11);
        w.f32_vec(seg.s22);
        w.f32_vec(seg.s12);
      } else {
        std::vector<num::SymTensor2> values(seg.s11.size());
        for (std::size_t k = 0; k < values.size(); ++k) {
          values[k] = num::SymTensor2{static_cast<double>(seg.s11[k]),
                                      static_cast<double>(seg.s22[k]),
                                      static_cast<double>(seg.s12[k])};
        }
        w.tensor_vec(values);
      }
    }
  }
}

std::vector<ana::PairStressTable::Data> get_pair_tables(Reader& r) {
  const std::size_t count = r.size();
  std::vector<ana::PairStressTable::Data> tables(count);
  for (ana::PairStressTable::Data& t : tables) {
    t.pitch = r.f64();
    t.r_max = r.f64();
    t.n_theta = r.size();
    for (auto& seg : t.segments) {
      seg.r0 = r.f64();
      seg.r1 = r.f64();
      seg.nr = r.size();
      if (r.version() >= 3) {
        seg.s11 = r.f32_vec();
        seg.s22 = r.f32_vec();
        seg.s12 = r.f32_vec();
      } else {
        // v1/v2 payloads stored f64 AoS tensors; narrow them into the
        // float tier exactly like a fresh table build would (the same
        // static_cast, so upgraded and cold tables stay bitwise equal).
        const std::vector<num::SymTensor2> values = r.tensor_vec();
        seg.s11.reserve(values.size());
        seg.s22.reserve(values.size());
        seg.s12.reserve(values.size());
        for (const num::SymTensor2& v : values) {
          seg.s11.push_back(static_cast<float>(v.s11));
          seg.s22.push_back(static_cast<float>(v.s22));
          seg.s12.push_back(static_cast<float>(v.s12));
        }
      }
    }
  }
  return tables;
}

void put_surrogate(Writer& w, const ana::PairSurrogate& surrogate) {
  const ana::PairSurrogate::Data d = surrogate.to_data();
  w.f64(d.pitch_min);
  w.f64(d.pitch_max);
  w.f64(d.r_max);
  w.size(d.pitch_order);
  w.size(d.segments.size());
  for (const auto& seg : d.segments) {
    w.u8(seg.inverse_radial ? 1 : 0);
    w.f64(seg.r0);
    w.f64(seg.r1);
    w.size(seg.nr);
    w.size(seg.nx);
    w.f64_vec(seg.coeffs);
  }
  const ana::SurrogateCertificate& c = d.certificate;
  w.f64(c.pitch_min);
  w.f64(c.pitch_max);
  w.f64(c.r_max);
  w.u64(c.coefficient_count);
  w.u64(c.sample_count);
  w.f64(c.field_scale);
  w.f64(c.max_abs_error);
  w.f64(c.certified_rel_bound);
}

ana::PairSurrogate get_surrogate(Reader& r) {
  ana::PairSurrogate::Data d;
  d.pitch_min = r.f64();
  d.pitch_max = r.f64();
  d.r_max = r.f64();
  d.pitch_order = r.size();
  d.segments.resize(r.size());
  for (auto& seg : d.segments) {
    seg.inverse_radial = r.u8() != 0;
    seg.r0 = r.f64();
    seg.r1 = r.f64();
    seg.nr = r.size();
    seg.nx = r.size();
    seg.coeffs = r.f64_vec();
  }
  ana::SurrogateCertificate& c = d.certificate;
  c.pitch_min = r.f64();
  c.pitch_max = r.f64();
  c.r_max = r.f64();
  c.coefficient_count = r.u64();
  c.sample_count = r.u64();
  c.field_scale = r.f64();
  c.max_abs_error = r.f64();
  c.certified_rel_bound = r.f64();
  return ana::PairSurrogate(std::move(d));
}

}  // namespace

const char* to_string(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kRadialTable:
      return "radial-table";
    case SnapshotKind::kPairTableCache:
      return "pair-table-cache";
    case SnapshotKind::kPlacement:
      return "placement";
    case SnapshotKind::kEngineState:
      return "engine-state";
    case SnapshotKind::kTiledCheckpoint:
      return "tiled-checkpoint";
    case SnapshotKind::kSurrogate:
      return "surrogate";
  }
  return "unknown";
}

SnapshotInfo read_snapshot_info(const std::string& path) {
  return read_file(path).info;
}

void save_radial_table(const std::string& path,
                       const core::RadialStressTable& table) {
  Writer w;
  put_radial_table(w, table);
  w.commit(path, SnapshotKind::kRadialTable);
}

core::RadialStressTable load_radial_table(const std::string& path) {
  OpenedSnapshot opened = open_kind(path, SnapshotKind::kRadialTable);
  Reader& r = opened.reader;
  core::RadialStressTable table = get_radial_table(r);
  r.expect_end();
  return table;
}

std::size_t save_pair_table_cache(const std::string& path,
                                  const ana::InteractiveStressModel& model) {
  Writer w;
  const std::vector<ana::PairStressTable::Data> tables =
      model.export_table_cache();
  put_pair_tables(w, tables);
  w.commit(path, SnapshotKind::kPairTableCache);
  return tables.size();
}

std::size_t load_pair_table_cache(const std::string& path,
                                  const ana::InteractiveStressModel& model) {
  OpenedSnapshot opened = open_kind(path, SnapshotKind::kPairTableCache);
  Reader& r = opened.reader;
  std::vector<ana::PairStressTable::Data> tables = get_pair_tables(r);
  r.expect_end();
  return model.import_table_cache(std::move(tables));
}

void save_surrogate(const std::string& path,
                    const ana::PairSurrogate& surrogate) {
  Writer w;
  put_surrogate(w, surrogate);
  w.commit(path, SnapshotKind::kSurrogate);
  // Fault harness: the atomic commit rules out torn writes, so model
  // *external* bit rot (disk/filesystem damage after a successful save) by
  // flipping one payload byte. Loads must reject the file via the checksum
  // and degrade to the exact series path, never evaluate damaged
  // coefficients.
  if (fault::should_fire(fault::Site::kSurrogateCorrupt)) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = std::move(buf).str();
    bytes[bytes.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

ana::PairSurrogate load_surrogate(const std::string& path) {
  OpenedSnapshot opened = open_kind(path, SnapshotKind::kSurrogate);
  Reader& r = opened.reader;
  ana::PairSurrogate surrogate = get_surrogate(r);
  r.expect_end();
  return surrogate;
}

std::optional<ana::PairSurrogate> try_load_surrogate(const std::string& path) {
  try {
    return load_surrogate(path);
  } catch (const std::exception&) {
    // Missing, truncated, corrupt, wrong kind, or structurally invalid:
    // the exact series path is always available, so a surrogate snapshot is
    // pure opportunism — skip it rather than fail the run.
    return std::nullopt;
  }
}

void save_placement(const std::string& path, const tsvlib::Placement& p) {
  Writer w;
  put_structure(w, p.structure());
  w.size(p.size());
  for (const geo::Point& c : p.centers()) w.point(c);
  w.commit(path, SnapshotKind::kPlacement);
}

tsvlib::Placement load_placement(const std::string& path) {
  OpenedSnapshot opened = open_kind(path, SnapshotKind::kPlacement);
  Reader& r = opened.reader;
  tsvlib::TsvStructure structure = get_structure(r);
  const std::size_t n = r.size();
  std::vector<geo::Point> centers(n);
  for (geo::Point& c : centers) c = r.point();
  r.expect_end();
  return tsvlib::Placement(structure, std::move(centers));
}

std::string encode_placement(const tsvlib::Placement& p) {
  Writer w;
  put_structure(w, p.structure());
  w.size(p.size());
  for (const geo::Point& c : p.centers()) w.point(c);
  return w.payload();
}

tsvlib::Placement decode_placement(const std::string& bytes) {
  Reader r(bytes, "<embedded placement>");
  tsvlib::TsvStructure structure = get_structure(r);
  const std::size_t n = r.size();
  std::vector<geo::Point> centers(n);
  for (geo::Point& c : centers) c = r.point();
  r.expect_end();
  return tsvlib::Placement(structure, std::move(centers));
}

namespace {

std::uint64_t save_engine_state_as(const std::string& path,
                                   const core::IncrementalEngine& engine,
                                   std::uint32_t version) {
  const auto* radial =
      dynamic_cast<const core::RadialStressTable*>(&engine.table());
  TSV_REQUIRE(radial != nullptr,
              "engine snapshots require a RadialStressTable Stage-I field");
  const core::IncrementalEngine::State state = engine.state();
  const core::IncrementalOptions& opt = state.options;

  Writer w;
  put_structure(w, state.structure);
  w.point(state.grid_box.lo);
  w.point(state.grid_box.hi);
  w.size(state.grid_nx);
  w.size(state.grid_ny);
  w.f64(opt.stage1.influence_radius);
  w.size(opt.stage1.num_threads);
  w.f64(opt.stage2.pair_pitch_cutoff);
  w.f64(opt.stage2.influence_radius);
  w.u8(opt.stage2.use_lookup_table ? 1 : 0);
  w.f64(opt.stage2.pitch_quant_step);
  w.u8(opt.stage2.allow_surrogate ? 1 : 0);
  w.f64(opt.stage2.surrogate_tolerance);
  w.size(opt.stage2.num_threads);
  if (version >= 3) {
    // Far-field routing (format version 3; absent and defaulted in older
    // payloads).
    w.u8(opt.stage2.use_far_field ? 1 : 0);
    w.f64(opt.stage2.far_field_tolerance);
    w.f64(opt.stage2.far_field.cell_size);
    w.f64(opt.stage2.far_field.tile_spacing);
    w.f64(opt.stage2.far_field.blend_r0);
    w.f64(opt.stage2.far_field.blend_r1);
    w.f64(opt.stage2.far_field.edge_width);
    w.size(opt.stage2.far_field.cert_max_clusters);
    w.size(opt.stage2.far_field.cert_samples_per_cluster);
    w.f64(opt.stage2.far_field.cert_margin);
  }
  w.u8(opt.enable_interactive ? 1 : 0);
  w.size(opt.num_threads);

  // Stage-II characterization: k_hat plus the response options, enough to
  // re-derive the InteractiveStressModel exactly.
  const std::shared_ptr<const ana::InteractiveStressModel> model =
      engine.model();
  w.f64(model != nullptr ? model->k_hat() : 0.0);
  const ana::InclusionResponseOptions ropt =
      model != nullptr ? model->response().options()
                       : ana::InclusionResponseOptions{};
  w.i32(ropt.max_basis_power);
  w.i32(ropt.series_order);
  w.i32(ropt.collocation_points);

  w.size(state.centers.size());
  for (const geo::Point& c : state.centers) w.point(c);
  for (const std::uint8_t a : state.active) w.u8(a);
  w.tensor_vec(state.stage1);
  w.tensor_vec(state.stage2);

  put_radial_table(w, *radial);
  put_pair_tables(w,
                  model != nullptr
                      ? model->export_table_cache()
                      : std::vector<ana::PairStressTable::Data>{},
                  version);

  // Optional embedded surrogate (format version 2): ECO warm starts reuse
  // the fitted-and-certified coefficients instead of refitting per process.
  if (version >= 2) {
    const std::shared_ptr<const ana::PairSurrogate> surrogate =
        model != nullptr ? model->surrogate() : nullptr;
    w.u8(surrogate != nullptr ? 1 : 0);
    if (surrogate != nullptr) put_surrogate(w, *surrogate);
  }

  return w.commit(path, SnapshotKind::kEngineState, /*durable=*/true, version);
}

}  // namespace

std::uint64_t save_engine_state(const std::string& path,
                                const core::IncrementalEngine& engine) {
  return save_engine_state_as(path, engine, kSnapshotVersion);
}

std::uint64_t save_engine_state_compat(const std::string& path,
                                       const core::IncrementalEngine& engine,
                                       std::uint32_t version) {
  TSV_REQUIRE(version >= kMinSnapshotVersion && version <= kSnapshotVersion,
              "engine snapshot: unsupported compat version");
  return save_engine_state_as(path, engine, version);
}

core::IncrementalEngine load_engine_state(const std::string& path) {
  OpenedSnapshot opened = open_kind(path, SnapshotKind::kEngineState);
  Reader& r = opened.reader;
  core::IncrementalEngine::State state;
  state.structure = get_structure(r);
  const geo::Point lo = r.point();
  const geo::Point hi = r.point();
  state.grid_box = geo::Box{lo, hi};
  state.grid_nx = r.size();
  state.grid_ny = r.size();
  core::IncrementalOptions& opt = state.options;
  opt.stage1.influence_radius = r.f64();
  opt.stage1.num_threads = r.size();
  opt.stage2.pair_pitch_cutoff = r.f64();
  opt.stage2.influence_radius = r.f64();
  opt.stage2.use_lookup_table = r.u8() != 0;
  opt.stage2.pitch_quant_step = r.f64();
  opt.stage2.allow_surrogate = r.u8() != 0;
  opt.stage2.surrogate_tolerance = r.f64();
  opt.stage2.num_threads = r.size();
  if (r.version() >= 3) {
    opt.stage2.use_far_field = r.u8() != 0;
    opt.stage2.far_field_tolerance = r.f64();
    opt.stage2.far_field.cell_size = r.f64();
    opt.stage2.far_field.tile_spacing = r.f64();
    opt.stage2.far_field.blend_r0 = r.f64();
    opt.stage2.far_field.blend_r1 = r.f64();
    opt.stage2.far_field.edge_width = r.f64();
    opt.stage2.far_field.cert_max_clusters = r.size();
    opt.stage2.far_field.cert_samples_per_cluster = r.size();
    opt.stage2.far_field.cert_margin = r.f64();
  }
  opt.enable_interactive = r.u8() != 0;
  opt.num_threads = r.size();

  const double k_hat = r.f64();
  ana::InclusionResponseOptions ropt;
  ropt.max_basis_power = r.i32();
  ropt.series_order = r.i32();
  ropt.collocation_points = r.i32();

  const std::size_t slots = r.size();
  state.centers.resize(slots);
  for (geo::Point& c : state.centers) c = r.point();
  state.active.resize(slots);
  for (std::uint8_t& a : state.active) a = r.u8();
  state.stage1 = r.tensor_vec();
  state.stage2 = r.tensor_vec();

  auto table =
      std::make_shared<const core::RadialStressTable>(get_radial_table(r));
  std::vector<ana::PairStressTable::Data> pair_tables = get_pair_tables(r);
  // Version-1 payloads end at the pair tables (no surrogate section): the
  // model comes back surrogate-free and callers re-fit on demand.
  std::shared_ptr<const ana::PairSurrogate> surrogate;
  if (r.version() >= 2 && r.u8() != 0)
    surrogate = std::make_shared<const ana::PairSurrogate>(get_surrogate(r));
  r.expect_end();

  std::shared_ptr<const ana::InteractiveStressModel> model;
  if (opt.enable_interactive) {
    // Re-characterize the inclusion response (cheap relative to the table
    // builds the warmed cache now skips) and restore the cache.
    model = std::make_shared<const ana::InteractiveStressModel>(
        std::make_shared<const ana::InclusionResponse>(state.structure, ropt),
        k_hat);
    model->import_table_cache(std::move(pair_tables));
    // Reattach the embedded surrogate; its persisted certificate still
    // gates use per evaluation (surrogate_for checks the bound and domain).
    if (surrogate != nullptr) model->attach_surrogate(std::move(surrogate));
  }
  return core::IncrementalEngine::restore(std::move(state), std::move(table),
                                          std::move(model));
}

void save_tiled_checkpoint(const std::string& path,
                           const core::TiledCheckpoint& cp) {
  Writer w;
  w.reserve(4 * sizeof(std::uint64_t) +
            (cp.stress.size() + cp.interactive.size()) *
                sizeof(num::SymTensor2));
  w.u64(cp.fingerprint);
  w.size(cp.tiles_done);
  w.tensor_vec(cp.stress);
  w.tensor_vec(cp.interactive);
  // Not fsynced: a checkpoint defends against a killed run (the page cache
  // survives that), its reader tolerates a damaged file, and the fsync wait
  // would dominate the checkpoint overhead on full-chip fields.
  w.commit(path, SnapshotKind::kTiledCheckpoint, /*durable=*/false);
  // Fault harness: the atomic commit above makes torn writes from crashes
  // impossible, so simulate *external* damage (disk/filesystem corruption
  // after a successful save) by chopping the finished file in half. Resume
  // must survive this by discarding the checkpoint, not by crashing.
  if (fault::should_fire(fault::Site::kCheckpointTruncate)) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = std::move(buf).str();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
}

core::TiledCheckpoint load_tiled_checkpoint(const std::string& path) {
  OpenedSnapshot opened = open_kind(path, SnapshotKind::kTiledCheckpoint);
  Reader& r = opened.reader;
  core::TiledCheckpoint cp;
  cp.fingerprint = r.u64();
  cp.tiles_done = r.size();
  cp.stress = r.tensor_vec();
  cp.interactive = r.tensor_vec();
  r.expect_end();
  return cp;
}

std::optional<core::TiledCheckpoint> try_load_tiled_checkpoint(
    const std::string& path) {
  try {
    return load_tiled_checkpoint(path);
  } catch (const std::exception&) {
    // Missing, truncated, corrupt, or wrong kind: resume is impossible,
    // restarting from scratch is always correct.
    return std::nullopt;
  }
}

core::TiledStats evaluate_with_checkpoint(const core::TiledEvaluator& evaluator,
                                          const geo::SampleGrid& grid,
                                          const core::TileConsumer& consume,
                                          const std::string& checkpoint_path,
                                          std::size_t every_tiles) {
  std::optional<core::TiledCheckpoint> resume =
      try_load_tiled_checkpoint(checkpoint_path);
  // A checkpoint from a different placement/grid/tiling must not be
  // resumed; treat it like a corrupt one and start clean.
  if (resume && resume->fingerprint != evaluator.fingerprint(grid))
    resume.reset();

  core::CheckpointConfig config;
  config.every_tiles = every_tiles;
  config.writer = [&checkpoint_path](const core::TiledCheckpoint& cp) {
    try {
      save_tiled_checkpoint(checkpoint_path, cp);
    } catch (const std::exception& e) {
      // Checkpoints are insurance, not output: a failed write (disk full,
      // permissions) must not kill the run it is protecting. The previous
      // checkpoint, if any, is still intact thanks to the atomic save.
      std::fprintf(stderr, "warning: checkpoint write failed: %s\n", e.what());
    }
  };
  config.resume = resume ? &*resume : nullptr;
  core::TiledStats stats = evaluator.evaluate(grid, consume, config);
  std::remove(checkpoint_path.c_str());
  return stats;
}

}  // namespace tsv::io
