#include "io/csv.h"

#include <stdexcept>

#include "core/error.h"
#include "numeric/check.h"

namespace tsv::io {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw InvalidInputError("cannot open for write: " + path);
  out_.precision(10);
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  TSV_REQUIRE(!columns.empty(), "empty header");
  columns_ = columns.size();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << columns[i];
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<double>& values) {
  TSV_REQUIRE(columns_ == 0 || values.size() == columns_,
              "row width does not match header");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  if (!out_) throw IoCorruptionError("write failed: " + path_);
}

void CsvWriter::row(const std::vector<std::string>& values) {
  TSV_REQUIRE(columns_ == 0 || values.size() == columns_,
              "row width does not match header");
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out_ << ',';
    out_ << values[i];
  }
  out_ << '\n';
  if (!out_) throw IoCorruptionError("write failed: " + path_);
}

void write_scalar_field(const std::string& path,
                        const std::vector<geo::Point>& points,
                        const std::vector<double>& values) {
  TSV_REQUIRE(points.size() == values.size(), "size mismatch");
  CsvWriter w(path);
  w.header({"x", "y", "value"});
  for (std::size_t i = 0; i < points.size(); ++i)
    w.row(std::vector<double>{points[i].x, points[i].y, values[i]});
}

void write_tensor_field(const std::string& path,
                        const std::vector<geo::Point>& points,
                        const std::vector<num::SymTensor2>& values) {
  TSV_REQUIRE(points.size() == values.size(), "size mismatch");
  CsvWriter w(path);
  w.header({"x", "y", "sxx", "syy", "sxy"});
  for (std::size_t i = 0; i < points.size(); ++i)
    w.row(std::vector<double>{points[i].x, points[i].y, values[i].s11,
                              values[i].s22, values[i].s12});
}

}  // namespace tsv::io
