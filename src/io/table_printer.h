#pragma once
// Fixed-width console tables for the benchmark harnesses (the paper-table
// reproductions print through this).

#include <iosfwd>
#include <string>
#include <vector>

namespace tsv::io {

class TablePrinter {
 public:
  /// Column headers; widths adapt to the longest cell per column.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Formats doubles with the given precision (significant digits).
  void add_row(const std::vector<double>& cells, int precision = 3);
  /// Mixed row: first cell text, rest numeric.
  void add_row(const std::string& label, const std::vector<double>& cells,
               int precision = 3);

  void print(std::ostream& out) const;

  static std::string format(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsv::io
