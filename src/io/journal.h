#pragma once
// Per-session write-ahead eco journal: the durability half of the stress
// service.
//
// A session's engine lives in memory; its snapshot is only rewritten on
// eviction. Without a journal every eco batch acknowledged since the last
// snapshot dies with the process. The journal closes that window: each
// batch is appended (checksummed, optionally fsynced) after the engine
// applied it and *before* the ack goes out, so an acknowledged edit is
// always recoverable. The apply-then-journal order is deliberate:
// IncrementalEngine::apply validates a batch before touching any field, so
// an invalid batch throws before reaching the journal and can never pollute
// replay.
//
// File layout (native little-endian, written raw):
//
//   bytes 0..7   magic "TSVJRNL\0"
//   u32          format version (kJournalVersion)
//   u32          flags (bit 0: appends are NOT fsynced)
//   ...          records
//
// Each record:
//
//   u8           kind (1 = open, 2 = eco, 3 = anchor)
//   u32          payload size in bytes
//   ...          payload
//   u64          FNV-1a 64 checksum of kind byte + payload
//
// Record payloads:
//
//   open    — the session's recipe: an embedded binary placement
//             (io::encode_placement — bitwise doubles; placement *text*
//             only round-trips at print precision) plus the engine spec
//             knobs. Recovery can rebuild a session that never reached its
//             first snapshot from this record alone.
//   eco     — client sequence number + the edit batch (kind/id/x/y per
//             op). Replayed on top of the snapshot at recovery.
//   anchor  — written when a snapshot lands: the snapshot's payload
//             checksum + the session's sequence watermark. Replay starts
//             after the last anchor whose checksum matches the on-disk
//             snapshot; records before it are already folded in. An
//             unmatched anchor set means the snapshot is *newer* than the
//             whole journal (a crash hit between snapshot write and
//             journal reset) — replay nothing, keep the watermark.
//
// Append crash model: records are appended tail-first, so a crash leaves
// at most one torn record at the end. read() validates record-by-record
// and stops at the first damaged one, reporting the torn tail and the
// byte offset of the last valid prefix; truncate_to_valid() cuts the file
// back so future appends start from a clean tail.

#include <cstdint>
#include <string>
#include <vector>

#include "core/incremental_engine.h"

namespace tsv::io {

inline constexpr std::uint32_t kJournalVersion = 1;

/// Header flag bit 0: this journal's appends skip fsync. Persisted so a
/// reload keeps the session's durability mode without needing the spec.
inline constexpr std::uint32_t kJournalFlagNoFsync = 1u << 0;

/// Session recipe, enough to rebuild the engine bitwise from nothing.
struct JournalOpen {
  std::string placement_payload;  ///< io::encode_placement bytes
  double spacing = 0.5;
  double margin = 25.0;
  bool lookup = false;
  double quant_step = 0.25;
  bool surrogate = false;
};

/// One acknowledged (or about-to-be-acknowledged) eco batch.
struct JournalEco {
  std::uint64_t sequence = 0;  ///< client idempotency token; 0 = none
  core::Delta delta;
};

/// Snapshot marker: everything before this record is folded into the
/// snapshot whose payload checksum matches `snapshot_checksum`.
struct JournalAnchor {
  std::uint64_t snapshot_checksum = 0;
  std::uint64_t last_sequence = 0;
};

struct JournalRecord {
  enum class Kind : std::uint8_t { kOpen = 1, kEco = 2, kAnchor = 3 };
  Kind kind = Kind::kEco;
  JournalOpen open;      // valid when kind == kOpen
  JournalEco eco;        // valid when kind == kEco
  JournalAnchor anchor;  // valid when kind == kAnchor

  static JournalRecord make_open(JournalOpen o);
  static JournalRecord make_eco(JournalEco e);
  static JournalRecord make_anchor(JournalAnchor a);
};

/// Result of scanning a journal file. A missing file is a clean empty
/// journal (no session has journaled yet); a damaged tail is reported, not
/// thrown — the valid prefix is still authoritative.
struct JournalReplay {
  std::vector<JournalRecord> records;
  bool torn_tail = false;
  std::string torn_reason;        ///< empty unless torn_tail
  std::uint64_t valid_bytes = 0;  ///< file prefix covered by `records`
  std::uint32_t flags = 0;        ///< header flags (durability mode)

  bool fsync_on_append() const { return (flags & kJournalFlagNoFsync) == 0; }
};

/// Append-side handle for one session's journal. Each append opens the
/// file O_APPEND, writes one complete record, optionally fsyncs, and
/// closes — the fd is not held between batches, so evict/reload cycles
/// and the recovery reader never race an open handle.
class EcoJournal {
 public:
  /// `fsync_on_append=false` trades power-loss durability for latency
  /// (process death still cannot lose an acked batch — the page cache
  /// survives it). The flag is persisted in the header of any file this
  /// handle (re)writes.
  EcoJournal(std::string path, bool fsync_on_append = true);

  const std::string& path() const { return path_; }
  bool fsync_on_append() const { return fsync_on_append_; }

  /// Appends one record (writing the file header first when the file is
  /// missing or empty). Throws tsv::IoCorruptionError on any I/O failure;
  /// a failed append may leave a torn record at the tail, which read()
  /// reports and truncate_to_valid() repairs.
  void append(const JournalRecord& record);

  /// Atomically resets the journal to header + a single anchor record —
  /// the normal compaction after a snapshot landed. Everything journaled
  /// so far is folded into that snapshot; only the watermark survives.
  void reset_to_anchor(const JournalAnchor& anchor);

  /// Atomically resets the journal to header + a single open record (a
  /// fresh session that has no snapshot yet).
  void reset_to_open(const JournalOpen& open);

  /// Deletes the journal file (close --discard). Missing file is fine.
  void remove();

  /// Scans `path`, validating record-by-record. Missing file -> empty
  /// replay. Damaged header or record -> torn_tail set, records holding
  /// the valid prefix. Throws only for environmental errors (e.g. the
  /// path exists but cannot be read).
  static JournalReplay read(const std::string& path);

  /// Cuts the file back to `replay.valid_bytes` (down to an empty file
  /// when even the header was damaged — append() rewrites one), so
  /// subsequent appends extend a clean tail instead of burying bytes
  /// after a torn record.
  static void truncate_to_valid(const std::string& path,
                                const JournalReplay& replay);

 private:
  std::string path_;
  bool fsync_on_append_ = true;
};

}  // namespace tsv::io
