#include "io/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "numeric/check.h"

namespace tsv::io {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TSV_REQUIRE(!headers_.empty(), "table needs at least one column");
}

std::string TablePrinter::format(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  TSV_REQUIRE(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) s.push_back(format(v, precision));
  add_row(std::move(s));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& cells, int precision) {
  std::vector<std::string> s;
  s.reserve(cells.size() + 1);
  s.push_back(label);
  for (double v : cells) s.push_back(format(v, precision));
  add_row(std::move(s));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
          << cells[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace tsv::io
