#pragma once
// Versioned, checksummed binary snapshots for the framework's expensive
// state: characterized tables, placements, and the incremental engine.
//
// Cold starts pay for every radial-table characterization and every
// Stage-II pair-table build; in an ECO loop (bench_eco) or a long-lived
// service those are pure re-derivations of state that never changes. A
// snapshot lets a warm start skip them entirely: save once, load in
// milliseconds.
//
// File layout (all integers and IEEE doubles in native little-endian byte
// order, written raw):
//
//   bytes 0..7   magic "TSVSNAP\0"
//   u32          format version (kSnapshotVersion)
//   u32          object kind (SnapshotKind)
//   u64          payload size in bytes
//   ...          payload
//   u64          FNV-1a 64 checksum of the payload
//
// Readers reject wrong magic, wrong version, wrong kind, truncation, and
// checksum mismatches with distinct std::runtime_error messages. Doubles
// are stored bitwise, so save -> load -> save round-trips byte-identically
// (std::map iteration makes the pair-cache export order deterministic).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analytic/interaction.h"
#include "analytic/surrogate.h"
#include "core/incremental_engine.h"
#include "core/stress_table.h"
#include "core/tiled_evaluator.h"
#include "tsv/placement.h"

namespace tsv::io {

// Version 2: engine-state snapshots gained an optional embedded surrogate
// section (has_surrogate byte + coefficients/certificate), so warm starts
// skip the ~40 ms fit as well as the table builds. Version-1 files still
// load — their engine-state payload simply ends at the pair tables, so the
// restored model has no surrogate and callers re-fit on demand — and the
// next save writes the current version (the upgrade path). Versions
// outside [kMinSnapshotVersion, kSnapshotVersion] are rejected with a
// clear mismatch error.
//
// Version 3: (a) pair-table samples are stored as float32 SoA — the
// table's native storage tier — shrinking pair-table-cache and
// engine-state payloads ~6x for that section (v1/v2 payloads still load;
// their f64 tensors are narrowed into the float tier on read, and the
// next save writes v3); (b) engine-state options gained the Stage II
// far-field fields (use_far_field, tolerance, FarFieldOptions), absent
// and defaulted in older payloads. Reads go through a memory-mapped view
// (io/mapped_file.h) instead of double-buffering the file in the heap.
// Fields that remain f64 (engine stage fields, radial table, surrogate
// coefficients) still round-trip bitwise.
inline constexpr std::uint32_t kSnapshotVersion = 3;
inline constexpr std::uint32_t kMinSnapshotVersion = 1;

enum class SnapshotKind : std::uint32_t {
  kRadialTable = 1,
  kPairTableCache = 2,
  kPlacement = 3,
  kEngineState = 4,
  kTiledCheckpoint = 5,
  kSurrogate = 6,
};

const char* to_string(SnapshotKind kind);

/// Parsed header of a snapshot file (payload checksum already verified).
struct SnapshotInfo {
  std::uint32_t version = 0;
  SnapshotKind kind = SnapshotKind::kRadialTable;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

/// Reads and validates a snapshot header + checksum without decoding the
/// payload (any kind). Throws std::runtime_error on malformed files.
SnapshotInfo read_snapshot_info(const std::string& path);

// --- Stage-I radial table ------------------------------------------------

void save_radial_table(const std::string& path,
                       const core::RadialStressTable& table);
core::RadialStressTable load_radial_table(const std::string& path);

// --- Stage-II pair-table cache -------------------------------------------

/// Saves every PairStressTable cached on `model` (the pitch-quantized
/// Stage-II cache). Returns the number of tables written.
std::size_t save_pair_table_cache(const std::string& path,
                                  const ana::InteractiveStressModel& model);

/// Pre-warms `model`'s table cache from a snapshot; returns the number of
/// tables inserted (existing entries win on collision).
std::size_t load_pair_table_cache(const std::string& path,
                                  const ana::InteractiveStressModel& model);

// --- Stage-II certified surrogate ----------------------------------------

/// Saves a fitted surrogate — coefficients plus its SurrogateCertificate —
/// so warm starts skip the fit *and* the certification (the certificate is
/// the recorded verification, protected by the payload checksum).
void save_surrogate(const std::string& path,
                    const ana::PairSurrogate& surrogate);

/// Loads a surrogate snapshot; bitwise the saved one (coefficients and
/// certificate alike). Throws IoCorruptionError on damage.
ana::PairSurrogate load_surrogate(const std::string& path);

/// Best-effort load: nullopt when the file is missing, truncated, corrupt,
/// or not a surrogate — all cases where the right recovery is to keep the
/// exact series path (and optionally re-fit).
std::optional<ana::PairSurrogate> try_load_surrogate(const std::string& path);

// --- Placements ----------------------------------------------------------

void save_placement(const std::string& path, const tsvlib::Placement& p);
tsvlib::Placement load_placement(const std::string& path);

/// In-memory equivalents of save/load_placement: the same payload bytes
/// (structure + bitwise f64 centers) without the file header. The eco
/// journal's open record embeds these so a session can be rebuilt exactly —
/// placement *text* round-trips at print precision, these round-trip bits.
std::string encode_placement(const tsvlib::Placement& p);
tsvlib::Placement decode_placement(const std::string& bytes);

// --- Incremental engine --------------------------------------------------

/// Saves the full warm state of an engine: placement slots, options, both
/// accumulated fields, the Stage-I radial table, the Stage-II model
/// characterization settings (k_hat + response options), every cached
/// pair table, and — when one is attached to the model — the fitted
/// certified surrogate (bitwise, certificate included). Requires the
/// engine's single-TSV field to be a RadialStressTable (throws
/// std::invalid_argument otherwise). Returns the payload checksum, which
/// the eco journal records in its anchor so replay can tell whether a
/// journal suffix is already folded into the on-disk snapshot.
std::uint64_t save_engine_state(const std::string& path,
                                const core::IncrementalEngine& engine);

/// Writes an engine snapshot in an OLDER format version's exact layout
/// (f64 pair tables and no surrogate section for v1, no far-field option
/// fields below v3), stamped with that version. Exists so downgrade
/// interop and the version-upgrade tests exercise the real old layouts
/// instead of re-stamped current payloads. Throws std::invalid_argument
/// outside [kMinSnapshotVersion, kSnapshotVersion].
std::uint64_t save_engine_state_compat(const std::string& path,
                                       const core::IncrementalEngine& engine,
                                       std::uint32_t version);

/// Rebuilds an engine from a snapshot without re-evaluating anything: the
/// radial table is decoded, the interactive model is re-characterized from
/// the stored structure/options and its pair-table cache warmed from the
/// stored tables, and the accumulated fields are restored verbatim.
core::IncrementalEngine load_engine_state(const std::string& path);

// --- Tiled-run checkpoints -----------------------------------------------

void save_tiled_checkpoint(const std::string& path,
                           const core::TiledCheckpoint& cp);
core::TiledCheckpoint load_tiled_checkpoint(const std::string& path);

/// Best-effort load for resume: returns nullopt (instead of throwing) when
/// the file is missing, truncated, corrupt, or not a checkpoint — all cases
/// where the right recovery is to start the run from scratch.
std::optional<core::TiledCheckpoint> try_load_tiled_checkpoint(
    const std::string& path);

/// Runs `evaluator.evaluate(grid, consume)` with crash resilience: resumes
/// from `checkpoint_path` when a usable checkpoint with a matching
/// fingerprint exists (stale/corrupt ones are ignored), writes a fresh
/// checkpoint every `every_tiles` computed tiles, and removes the file once
/// the run completes. Interrupt-and-rerun therefore streams the exact tiles
/// an uninterrupted run would have.
core::TiledStats evaluate_with_checkpoint(const core::TiledEvaluator& evaluator,
                                          const geo::SampleGrid& grid,
                                          const core::TileConsumer& consume,
                                          const std::string& checkpoint_path,
                                          std::size_t every_tiles = 16);

}  // namespace tsv::io
