#include "io/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/error.h"

namespace tsv::io {
namespace {

[[noreturn]] void open_error(const std::string& path, const char* what) {
  throw InvalidInputError("mapped file '" + path + "': " + what + " (" +
                          std::strerror(errno) + ")");
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) open_error(path, "cannot open for reading");
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    open_error(path, "cannot stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    // mmap rejects zero-length mappings; an empty file needs no buffer at
    // all (data() may be null, size() is 0 — readers reject it as
    // truncated before ever dereferencing).
    ::close(fd);
    return;
  }
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map != MAP_FAILED) {
    data_ = static_cast<char*>(map);
    mapped_ = true;
    ::close(fd);
    return;
  }
  // Fallback: plain buffered read (e.g. filesystems without mmap support).
  data_ = new char[size_];
  std::size_t off = 0;
  while (off < size_) {
    const ssize_t got = ::read(fd, data_ + off, size_ - off);
    if (got <= 0) {
      const int saved = errno;
      delete[] data_;
      data_ = nullptr;
      ::close(fd);
      errno = got == 0 ? EIO : saved;
      open_error(path, "short read");
    }
    off += static_cast<std::size_t>(got);
  }
  ::close(fd);
}

void MappedFile::release() noexcept {
  if (data_ != nullptr) {
    if (mapped_) {
      ::munmap(data_, size_);
    } else {
      delete[] data_;
    }
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MappedFile::~MappedFile() { release(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    release();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

}  // namespace tsv::io
