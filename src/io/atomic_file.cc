#include "io/atomic_file.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/error.h"
#include "numeric/fault_injection.h"

namespace tsv::io {
namespace {

[[noreturn]] void write_error(const std::string& path,
                              const std::string& what) {
  throw IoCorruptionError("atomic write '" + path + "': " + what);
}

/// RAII for the temp file: closes and unlinks on destruction unless the
/// rename succeeded (release()).
class TempFile {
 public:
  explicit TempFile(std::string path)
      : path_(std::move(path)), f_(std::fopen(path_.c_str(), "wb")) {}
  ~TempFile() {
    if (f_ != nullptr) std::fclose(f_);
    if (!released_) std::remove(path_.c_str());
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  std::FILE* get() const { return f_; }
  const std::string& path() const { return path_; }
  void close() {
    if (f_ != nullptr && std::fclose(f_) != 0) {
      f_ = nullptr;
      write_error(path_, "close failed");
    }
    f_ = nullptr;
  }
  void release() { released_ = true; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  bool released_ = false;
};

}  // namespace

void atomic_write_file(const std::string& path, const std::string& bytes,
                       bool durable) {
  TempFile tmp(path + ".tmp");
  if (tmp.get() == nullptr) write_error(path, "cannot open temp file");

  if (fault::should_fire(fault::Site::kSnapshotWriteFail)) {
    // Simulated crash mid-write: leave a torn temp file and fail before the
    // rename, so the target must survive untouched.
    std::fwrite(bytes.data(), 1, bytes.size() / 2, tmp.get());
    write_error(path, "injected write failure (fault harness)");
  }

  if (std::fwrite(bytes.data(), 1, bytes.size(), tmp.get()) != bytes.size())
    write_error(path, "short write to temp file");
  if (std::fflush(tmp.get()) != 0) write_error(path, "flush failed");
  // Durability before the rename: a rename that lands while the data blocks
  // are still in the page cache could survive a *power loss* as an empty
  // file. Against process death alone the flush + rename already suffice.
  if (durable && ::fsync(::fileno(tmp.get())) != 0)
    write_error(path, "fsync failed");
  tmp.close();

  if (std::rename(tmp.path().c_str(), path.c_str()) != 0)
    write_error(path, "rename failed");
  tmp.release();
}

void atomic_append_line(const std::string& path, const std::string& line) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      contents = std::move(buf).str();
    }
  }
  contents += line;
  contents += '\n';
  atomic_write_file(path, contents);
}

}  // namespace tsv::io
