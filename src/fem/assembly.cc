#include "fem/assembly.h"

#include <memory>

#include "fem/blending.h"
#include "fem/element.h"
#include "numeric/parallel.h"

namespace tsv::fem {
namespace {

const mat::Material& material_of(const tsvlib::TsvStructure& s,
                                 MaterialRegion r) {
  switch (r) {
    case MaterialRegion::kBody:
      return s.body;
    case MaterialRegion::kLiner:
      return s.liner;
    case MaterialRegion::kSubstrate:
      return s.substrate;
  }
  TSV_ASSERT(false);
  return s.substrate;
}

}  // namespace

AssembledSystem assemble(const StructuredMesh& mesh,
                         const tsvlib::TsvStructure& structure,
                         const mat::ThermalLoad& load,
                         mat::PlaneAssumption plane,
                         const BoundaryDisplacement& boundary,
                         bool blend_interfaces, std::size_t num_threads) {
  AssembledSystem sys;
  const std::size_t n_nodes = mesh.node_count();

  // Dof numbering: skip boundary (Dirichlet) nodes; record their values.
  sys.dof_map.assign(2 * n_nodes, AssembledSystem::kConstrained);
  sys.prescribed.assign(2 * n_nodes, 0.0);
  std::uint32_t next = 0;
  for (std::size_t iy = 0; iy <= mesh.ny(); ++iy) {
    for (std::size_t ix = 0; ix <= mesh.nx(); ++ix) {
      const std::size_t node = mesh.node_index(ix, iy);
      if (mesh.is_boundary_node(ix, iy)) {
        if (boundary != nullptr) {
          const geo::Point u = boundary(mesh.node(ix, iy));
          sys.prescribed[2 * node] = u.x;
          sys.prescribed[2 * node + 1] = u.y;
        }
        continue;
      }
      sys.dof_map[2 * node] = next++;
      sys.dof_map[2 * node + 1] = next++;
    }
  }
  sys.free_dof_count = next;

  // Element matrices per pure material (uniform mesh: one per region);
  // interface elements get a Voigt-blended constitutive law below.
  const double dx = mesh.dx();
  const double dy = mesh.dy();
  std::array<num::Matrix, 3> d_mat;
  std::array<num::Vector, 3> eps_th;
  std::array<num::Matrix, 3> ke;
  std::array<num::Vector, 3> fe;
  for (int r = 0; r < 3; ++r) {
    const auto region = static_cast<MaterialRegion>(r);
    const mat::Material& m = material_of(structure, region);
    d_mat[r] = mat::constitutive_matrix(m, plane);
    eps_th[r] = mat::thermal_eigenstrain(m, load.delta_t,
                                         structure.substrate.cte, plane);
    ke[r] = element_stiffness(d_mat[r], dx, dy);
    fe[r] = element_thermal_load(d_mat[r], eps_th[r], dx, dy);
  }

  // Element-parallel precompute of the blended laws on interface-cut
  // elements (the only per-element matrix work not covered by the three
  // per-region prototypes). Each element owns its slot; the scatter below
  // stays serial in element order so the triplet stream — and therefore the
  // assembled floating-point sums — match the serial path exactly.
  struct MixedElement {
    num::Matrix ke;
    num::Vector fe;
  };
  std::vector<std::unique_ptr<MixedElement>> mixed;
  if (blend_interfaces) {
    mixed.resize(mesh.element_count());
    num::parallel_for(mesh.element_count(), num_threads, [&](std::size_t e) {
      const std::size_t ex = e % mesh.nx();
      const std::size_t ey = e / mesh.nx();
      if (!mesh.is_mixed(ex, ey)) return;
      const BlendedLaw law = hill_blend(d_mat, eps_th, mesh.fractions(ex, ey));
      auto m = std::make_unique<MixedElement>();
      m->ke = element_stiffness(law.d, dx, dy);
      m->fe = element_load_from_eigenstress(law.eigenstress, dx, dy);
      mixed[mesh.element_index(ex, ey)] = std::move(m);
    });
  }

  std::vector<num::Triplet> triplets;
  triplets.reserve(mesh.element_count() * 64);
  sys.load.assign(sys.free_dof_count, 0.0);

  for (std::size_t ey = 0; ey < mesh.ny(); ++ey) {
    for (std::size_t ex = 0; ex < mesh.nx(); ++ex) {
      const int r = static_cast<int>(mesh.material(ex, ey));
      const num::Matrix* ke_e = &ke[r];
      const num::Vector* fe_e = &fe[r];
      if (blend_interfaces) {
        if (const MixedElement* m = mixed[mesh.element_index(ex, ey)].get()) {
          ke_e = &m->ke;
          fe_e = &m->fe;
        }
      }
      const auto nodes = mesh.element_nodes(ex, ey);
      std::array<std::uint32_t, 8> dofs;
      for (std::size_t a = 0; a < 4; ++a) {
        dofs[2 * a] = sys.dof_map[2 * nodes[a]];
        dofs[2 * a + 1] = sys.dof_map[2 * nodes[a] + 1];
      }
      std::array<std::size_t, 8> full_dofs;
      for (std::size_t a = 0; a < 4; ++a) {
        full_dofs[2 * a] = 2 * nodes[a];
        full_dofs[2 * a + 1] = 2 * nodes[a] + 1;
      }
      for (std::size_t i = 0; i < 8; ++i) {
        if (dofs[i] == AssembledSystem::kConstrained) continue;
        sys.load[dofs[i]] += (*fe_e)[i];
        for (std::size_t j = 0; j < 8; ++j) {
          if (dofs[j] == AssembledSystem::kConstrained) {
            // Inhomogeneous Dirichlet: move K_ij * u_j to the load.
            const double u_j = sys.prescribed[full_dofs[j]];
            if (u_j != 0.0) sys.load[dofs[i]] -= (*ke_e)(i, j) * u_j;
            continue;
          }
          triplets.push_back({dofs[i], dofs[j], (*ke_e)(i, j)});
        }
      }
    }
  }
  sys.stiffness = num::SparseMatrix::from_triplets(sys.free_dof_count, triplets);
  return sys;
}

num::Vector expand_solution(const AssembledSystem& system,
                            const num::Vector& reduced,
                            std::size_t node_count) {
  TSV_REQUIRE(reduced.size() == system.free_dof_count,
              "reduced solution size mismatch");
  num::Vector full = system.prescribed;
  full.resize(2 * node_count, 0.0);
  for (std::size_t d = 0; d < 2 * node_count; ++d) {
    if (system.dof_map[d] != AssembledSystem::kConstrained)
      full[d] = reduced[system.dof_map[d]];
  }
  return full;
}

}  // namespace tsv::fem
