#include "fem/thermo_solver.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analytic/single_tsv.h"
#include "fem/assembly.h"
#include "fem/stress_recovery.h"
#include "numeric/sparse_cholesky.h"

namespace tsv::fem {

FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 const geo::Box& domain,
                                 const FemOptions& options) {
  TSV_REQUIRE(!placement.empty(), "placement has no TSVs");
  const geo::Box full_domain = domain.expanded(options.margin);
  auto mesh = std::make_shared<const StructuredMesh>(
      full_domain, options.element_size, placement);

  // Prescribe the exact asymptotic far field on the clamped boundary: the
  // superposed radial displacement of the isolated TSVs (exact up to
  // interaction terms, which decay an order faster). A plain u = 0 boundary
  // would leave an O(E u(L) / L) hydrostatic artifact across the domain.
  BoundaryDisplacement boundary;
  if (options.analytic_far_field) {
    const auto single = std::make_shared<ana::SingleTsvModel>(
        placement.structure(), load);
    const std::vector<geo::Point> centers = placement.centers();
    boundary = [single, centers](const geo::Point& p) {
      geo::Point u{0.0, 0.0};
      for (const geo::Point& c : centers) {
        const double r = geo::distance(c, p);
        if (r <= 0.0) continue;
        const double ur = single->radial_displacement(r);
        u += geo::Point{(p.x - c.x) / r * ur, (p.y - c.y) / r * ur};
      }
      return u;
    };
  }

  AssembledSystem sys =
      assemble(*mesh, placement.structure(), load, options.plane, boundary,
               options.blend_interfaces, options.num_threads);

  num::Vector reduced;
  num::CgResult cg;
  if (options.solver == LinearSolver::kDirectCholesky) {
    const num::SparseCholesky chol(sys.stiffness);
    reduced = chol.solve(sys.load);
    cg.converged = true;
    cg.iterations = 1;
    const num::Vector r = sys.stiffness.multiply(reduced);
    double rn = 0.0, bn = 0.0;
    for (std::size_t i = 0; i < r.size(); ++i) {
      rn += (r[i] - sys.load[i]) * (r[i] - sys.load[i]);
      bn += sys.load[i] * sys.load[i];
    }
    cg.relative_residual = bn > 0.0 ? std::sqrt(rn / bn) : 0.0;
  } else {
    cg = num::conjugate_gradient(sys.stiffness, sys.load, reduced, options.cg);
  }
  if (!cg.converged) {
    std::ostringstream os;
    os << "FEM linear solve did not converge: " << cg.iterations
       << " iterations, relative residual " << cg.relative_residual;
    throw std::runtime_error(os.str());
  }

  num::Vector full = expand_solution(sys, reduced, mesh->node_count());
  StressField stress = recover_stress(mesh, placement.structure(), load,
                                      options.plane, full,
                                      options.blend_interfaces,
                                      options.num_threads);
  return FemSolution{std::move(stress), std::move(full), cg,
                     sys.free_dof_count};
}

FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 double roi_margin, const FemOptions& options) {
  return solve_thermo_elastic(placement, load,
                              placement.bounding_box().expanded(roi_margin),
                              options);
}

}  // namespace tsv::fem
