#include "fem/thermo_solver.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analytic/single_tsv.h"
#include "core/error.h"
#include "fem/assembly.h"
#include "fem/stress_recovery.h"
#include "numeric/sparse_cholesky.h"

namespace tsv::fem {
namespace {

/// Verified relative residual ||A x - b|| / ||b||, recomputed from scratch
/// so the acceptance decision never trusts a backend's own bookkeeping.
double verified_residual(const num::SparseMatrix& a, const num::Vector& b,
                         const num::Vector& x) {
  const num::Vector ax = a.multiply(x);
  double rn = 0.0, bn = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    rn += (ax[i] - b[i]) * (ax[i] - b[i]);
    bn += b[i] * b[i];
  }
  return bn > 0.0 ? std::sqrt(rn / bn) : std::sqrt(rn);
}

}  // namespace

const char* to_string(LinearSolver s) {
  switch (s) {
    case LinearSolver::kConjugateGradient:
      return "pcg";
    case LinearSolver::kDirectCholesky:
      return "direct-cholesky";
  }
  return "unknown";
}

FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 const geo::Box& domain,
                                 const FemOptions& options) {
  TSV_REQUIRE(!placement.empty(), "placement has no TSVs");
  const geo::Box full_domain = domain.expanded(options.margin);
  auto mesh = std::make_shared<const StructuredMesh>(
      full_domain, options.element_size, placement);

  // Prescribe the exact asymptotic far field on the clamped boundary: the
  // superposed radial displacement of the isolated TSVs (exact up to
  // interaction terms, which decay an order faster). A plain u = 0 boundary
  // would leave an O(E u(L) / L) hydrostatic artifact across the domain.
  BoundaryDisplacement boundary;
  if (options.analytic_far_field) {
    const auto single = std::make_shared<ana::SingleTsvModel>(
        placement.structure(), load);
    const std::vector<geo::Point> centers = placement.centers();
    boundary = [single, centers](const geo::Point& p) {
      geo::Point u{0.0, 0.0};
      for (const geo::Point& c : centers) {
        const double r = geo::distance(c, p);
        if (r <= 0.0) continue;
        const double ur = single->radial_displacement(r);
        u += geo::Point{(p.x - c.x) / r * ur, (p.y - c.y) / r * ur};
      }
      return u;
    };
  }

  AssembledSystem sys =
      assemble(*mesh, placement.structure(), load, options.plane, boundary,
               options.blend_interfaces, options.num_threads);

  // Solve through the fallback chain: the configured backend first, then —
  // when that backend is PCG and it failed — the direct sparse Cholesky.
  // Every accepted solution passes an independent residual verification; a
  // hard throw happens only when no backend can produce an acceptable one.
  num::Vector reduced;
  num::CgResult cg;
  SolveReport report;

  const auto direct_solve = [&](bool is_fallback) {
    const num::SparseCholesky chol(sys.stiffness);
    reduced = chol.solve(sys.load);
    report.backend = LinearSolver::kDirectCholesky;
    report.fallback_used = is_fallback;
    report.iterations = 1;
    report.residual = verified_residual(sys.stiffness, sys.load, reduced);
    if (!is_fallback) {
      cg.converged = true;
      cg.iterations = 1;
      cg.relative_residual = report.residual;
    }
    const double acceptance = is_fallback
                                  ? options.fallback_residual
                                  : std::max(options.fallback_residual,
                                             options.cg.rel_tolerance);
    if (!std::isfinite(report.residual) || report.residual > acceptance) {
      std::ostringstream os;
      os << "FEM direct Cholesky solve failed residual verification: "
         << report.residual << " > " << acceptance;
      if (is_fallback)
        os << " (after CG failure: " << num::to_string(report.cg_failure)
           << ")";
      throw NumericFailureError(os.str());
    }
  };

  if (options.solver == LinearSolver::kDirectCholesky) {
    try {
      direct_solve(/*is_fallback=*/false);
    } catch (const NumericFailureError&) {
      throw;
    } catch (const std::runtime_error& e) {
      // SparseCholesky throws std::runtime_error on a non-SPD pivot.
      throw NumericFailureError(
          std::string("FEM direct Cholesky solve failed: ") + e.what());
    }
  } else {
    cg = num::conjugate_gradient(sys.stiffness, sys.load, reduced, options.cg);
    report.backend = LinearSolver::kConjugateGradient;
    report.iterations = cg.iterations;
    report.residual = cg.relative_residual;
    if (cg.converged) {
      report.residual = verified_residual(sys.stiffness, sys.load, reduced);
      // CG tracks its residual through a recurrence that can drift from the
      // true one; demote a solution whose *verified* residual is far off.
      if (!std::isfinite(report.residual) ||
          report.residual > std::max(options.fallback_residual,
                                     100.0 * options.cg.rel_tolerance)) {
        cg.converged = false;
        cg.failure = num::CgFailure::kDiverged;
      }
    }
    if (!cg.converged) {
      report.cg_failure = cg.failure;
      std::ostringstream os;
      os << "FEM CG solve failed (" << num::to_string(cg.failure) << "): "
         << cg.iterations << " iterations, relative residual "
         << cg.relative_residual;
      if (!options.allow_fallback) throw NumericFailureError(os.str());
      // A NaN-poisoned iterate must not leak into the retry.
      reduced.assign(sys.load.size(), 0.0);
      try {
        direct_solve(/*is_fallback=*/true);
      } catch (const NumericFailureError&) {
        throw;
      } catch (const std::runtime_error& e) {
        throw NumericFailureError(os.str() +
                                  "; direct Cholesky fallback also failed: " +
                                  e.what());
      }
    }
  }

  num::Vector full = expand_solution(sys, reduced, mesh->node_count());
  StressField stress = recover_stress(mesh, placement.structure(), load,
                                      options.plane, full,
                                      options.blend_interfaces,
                                      options.num_threads);
  return FemSolution{std::move(stress), std::move(full), cg, report,
                     sys.free_dof_count};
}

FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 double roi_margin, const FemOptions& options) {
  return solve_thermo_elastic(placement, load,
                              placement.bounding_box().expanded(roi_margin),
                              options);
}

}  // namespace tsv::fem
