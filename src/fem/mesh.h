#pragma once
// Structured quadrilateral mesh over a rectangular domain with per-element
// material regions defined by the TSV placement (copper body, liner ring,
// silicon substrate, assigned by element centroid).

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "tsv/placement.h"

namespace tsv::fem {

enum class MaterialRegion : std::uint8_t {
  kSubstrate = 0,
  kBody = 1,
  kLiner = 2,
};

class StructuredMesh {
 public:
  /// Covers `domain` with square-ish elements of size ~element_size
  /// (adjusted so the counts divide the domain exactly). Materials come from
  /// the placement: centroid inside body circle -> kBody, inside liner ring
  /// -> kLiner, otherwise substrate.
  StructuredMesh(const geo::Box& domain, double element_size,
                 const tsvlib::Placement& placement);

  const geo::Box& domain() const { return domain_; }
  std::size_t nx() const { return nx_; }  ///< elements along x
  std::size_t ny() const { return ny_; }  ///< elements along y
  double dx() const { return dx_; }
  double dy() const { return dy_; }

  std::size_t node_count() const { return (nx_ + 1) * (ny_ + 1); }
  std::size_t element_count() const { return nx_ * ny_; }

  std::size_t node_index(std::size_t ix, std::size_t iy) const {
    TSV_ASSERT(ix <= nx_ && iy <= ny_);
    return iy * (nx_ + 1) + ix;
  }
  geo::Point node(std::size_t ix, std::size_t iy) const {
    return {domain_.lo.x + static_cast<double>(ix) * dx_,
            domain_.lo.y + static_cast<double>(iy) * dy_};
  }

  std::size_t element_index(std::size_t ex, std::size_t ey) const {
    TSV_ASSERT(ex < nx_ && ey < ny_);
    return ey * nx_ + ex;
  }
  /// Counter-clockwise corner nodes of element (ex, ey):
  /// (ix,iy), (ix+1,iy), (ix+1,iy+1), (ix,iy+1).
  std::array<std::size_t, 4> element_nodes(std::size_t ex, std::size_t ey) const;

  geo::Point element_center(std::size_t ex, std::size_t ey) const {
    return {domain_.lo.x + (static_cast<double>(ex) + 0.5) * dx_,
            domain_.lo.y + (static_cast<double>(ey) + 0.5) * dy_};
  }

  /// Majority material of the element (used for recovery bucketing).
  MaterialRegion material(std::size_t ex, std::size_t ey) const {
    return materials_[element_index(ex, ey)];
  }

  /// Volume fractions {substrate, body, liner} of the element, from
  /// sub-cell sampling. Pure elements have a single 1.0 entry; elements cut
  /// by a TSV interface carry fractional values, which the assembly uses to
  /// blend the constitutive data (Voigt average). This removes most of the
  /// staircase bias of centroid-only stamping.
  const std::array<double, 3>& fractions(std::size_t ex, std::size_t ey) const {
    return fractions_[element_index(ex, ey)];
  }

  /// True if the element is cut by a material interface.
  bool is_mixed(std::size_t ex, std::size_t ey) const {
    const auto& f = fractions(ex, ey);
    return f[0] != 1.0 && f[1] != 1.0 && f[2] != 1.0;
  }

  /// True for nodes on the outer boundary of the domain.
  bool is_boundary_node(std::size_t ix, std::size_t iy) const {
    return ix == 0 || iy == 0 || ix == nx_ || iy == ny_;
  }

  /// Element containing p (clamped to the domain edge elements) plus local
  /// isoparametric coordinates (xi, eta) in [-1, 1].
  struct Location {
    std::size_t ex = 0;
    std::size_t ey = 0;
    double xi = 0.0;
    double eta = 0.0;
  };
  Location locate(const geo::Point& p) const;

 private:
  geo::Box domain_;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  double dx_ = 0.0;
  double dy_ = 0.0;
  std::vector<MaterialRegion> materials_;
  std::vector<std::array<double, 3>> fractions_;
};

}  // namespace tsv::fem
