#include "fem/mesh.h"

#include <algorithm>
#include <cmath>

namespace tsv::fem {

StructuredMesh::StructuredMesh(const geo::Box& domain, double element_size,
                               const tsvlib::Placement& placement)
    : domain_(domain) {
  TSV_REQUIRE(element_size > 0.0, "element size must be positive");
  TSV_REQUIRE(domain.width() > 0.0 && domain.height() > 0.0,
              "domain must have positive area");
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(domain.width() / element_size)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(domain.height() / element_size)));
  dx_ = domain.width() / static_cast<double>(nx_);
  dy_ = domain.height() / static_cast<double>(ny_);

  const auto& s = placement.structure();
  const double r_body2 = s.body_radius * s.body_radius;
  const double r_outer2 = s.outer_radius() * s.outer_radius();
  materials_.assign(nx_ * ny_, MaterialRegion::kSubstrate);
  fractions_.assign(nx_ * ny_, {1.0, 0.0, 0.0});

  // Sub-cell sampling resolution for interface elements.
  constexpr int kSub = 6;
  const auto region_of = [&](const geo::Point& pt,
                             const geo::Point& c) -> int {
    const double d2 = geo::distance_squared(pt, c);
    if (d2 < r_body2) return 1;   // body
    if (d2 < r_outer2) return 2;  // liner
    return 0;                     // substrate
  };

  // Only elements near a TSV need the circle test; iterate TSVs and stamp.
  for (const geo::Point& c : placement.centers()) {
    const double r_outer = s.outer_radius();
    const long ex0 = std::max(
        0L, static_cast<long>((c.x - r_outer - domain_.lo.x) / dx_) - 1);
    const long ex1 = std::min(
        static_cast<long>(nx_) - 1,
        static_cast<long>((c.x + r_outer - domain_.lo.x) / dx_) + 1);
    const long ey0 = std::max(
        0L, static_cast<long>((c.y - r_outer - domain_.lo.y) / dy_) - 1);
    const long ey1 = std::min(
        static_cast<long>(ny_) - 1,
        static_cast<long>((c.y + r_outer - domain_.lo.y) / dy_) + 1);
    for (long ey = ey0; ey <= ey1; ++ey) {
      for (long ex = ex0; ex <= ex1; ++ex) {
        const std::size_t e = element_index(static_cast<std::size_t>(ex),
                                            static_cast<std::size_t>(ey));
        const geo::Point lo{domain_.lo.x + static_cast<double>(ex) * dx_,
                            domain_.lo.y + static_cast<double>(ey) * dy_};
        std::array<double, 3> frac{0.0, 0.0, 0.0};
        for (int sy = 0; sy < kSub; ++sy) {
          for (int sx = 0; sx < kSub; ++sx) {
            const geo::Point pt{
                lo.x + (static_cast<double>(sx) + 0.5) * dx_ / kSub,
                lo.y + (static_cast<double>(sy) + 0.5) * dy_ / kSub};
            frac[static_cast<std::size_t>(region_of(pt, c))] += 1.0;
          }
        }
        for (double& f : frac) f /= static_cast<double>(kSub * kSub);
        if (frac[1] == 0.0 && frac[2] == 0.0) continue;  // untouched by TSV
        // Merge with any previous TSV's stamp (TSVs never overlap, so the
        // substrate fraction just shrinks).
        std::array<double, 3>& dst = fractions_[e];
        dst[1] += frac[1];
        dst[2] += frac[2];
        dst[0] = 1.0 - dst[1] - dst[2];
        // Majority material for recovery bucketing.
        const std::size_t major = static_cast<std::size_t>(
            std::max_element(dst.begin(), dst.end()) - dst.begin());
        materials_[e] = static_cast<MaterialRegion>(
            major == 0 ? 0 : (major == 1 ? 1 : 2));
      }
    }
  }
}

std::array<std::size_t, 4> StructuredMesh::element_nodes(std::size_t ex,
                                                         std::size_t ey) const {
  return {node_index(ex, ey), node_index(ex + 1, ey), node_index(ex + 1, ey + 1),
          node_index(ex, ey + 1)};
}

StructuredMesh::Location StructuredMesh::locate(const geo::Point& p) const {
  Location loc;
  const double fx = (p.x - domain_.lo.x) / dx_;
  const double fy = (p.y - domain_.lo.y) / dy_;
  const auto clamp_cell = [](double f, std::size_t n) {
    if (f < 0.0) return std::size_t{0};
    std::size_t c = static_cast<std::size_t>(f);
    return std::min(c, n - 1);
  };
  loc.ex = clamp_cell(fx, nx_);
  loc.ey = clamp_cell(fy, ny_);
  loc.xi = std::clamp(2.0 * (fx - static_cast<double>(loc.ex)) - 1.0, -1.0, 1.0);
  loc.eta = std::clamp(2.0 * (fy - static_cast<double>(loc.ey)) - 1.0, -1.0, 1.0);
  return loc;
}

}  // namespace tsv::fem
