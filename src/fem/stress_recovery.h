#pragma once
// Stress recovery: Gauss-point stresses extrapolated to element corners,
// then averaged per (node, material) so that interfaces remain sharp.

#include <memory>

#include "fem/assembly.h"
#include "fem/field.h"
#include "fem/mesh.h"
#include "materials/elasticity.h"
#include "numeric/dense_matrix.h"

namespace tsv::fem {

/// Builds a sampled stress field from the full displacement vector
/// (2 * node_count entries, constrained dofs included as zeros).
/// `num_threads` (0 = hardware concurrency, 1 = serial) parallelizes the
/// element-local work; the per-(node, material) accumulation runs serially
/// in element order, so results are identical for every thread count.
StressField recover_stress(std::shared_ptr<const StructuredMesh> mesh,
                           const tsvlib::TsvStructure& structure,
                           const mat::ThermalLoad& load,
                           mat::PlaneAssumption plane,
                           const num::Vector& displacement,
                           bool blend_interfaces = false,
                           std::size_t num_threads = 1);

}  // namespace tsv::fem
