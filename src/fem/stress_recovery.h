#pragma once
// Stress recovery: Gauss-point stresses extrapolated to element corners,
// then averaged per (node, material) so that interfaces remain sharp.

#include <memory>

#include "fem/assembly.h"
#include "fem/field.h"
#include "fem/mesh.h"
#include "materials/elasticity.h"
#include "numeric/dense_matrix.h"

namespace tsv::fem {

/// Builds a sampled stress field from the full displacement vector
/// (2 * node_count entries, constrained dofs included as zeros).
StressField recover_stress(std::shared_ptr<const StructuredMesh> mesh,
                           const tsvlib::TsvStructure& structure,
                           const mat::ThermalLoad& load,
                           mat::PlaneAssumption plane,
                           const num::Vector& displacement,
                           bool blend_interfaces = false);

}  // namespace tsv::fem
