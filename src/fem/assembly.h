#pragma once
// Global assembly of the thermo-elastic system K u = f with Dirichlet
// conditions on the outer boundary. Eigenstrains are measured relative to
// the substrate CTE, so the exact far field decays; the boundary values can
// either be zero (crude, leaves an O(u(L)/L * E) hydrostatic artifact) or
// prescribed from the analytic far-field asymptote (default in the solver).

#include <functional>
#include <vector>

#include "fem/mesh.h"
#include "materials/elasticity.h"
#include "numeric/sparse.h"

namespace tsv::fem {

struct AssembledSystem {
  num::SparseMatrix stiffness;  ///< reduced (free dofs only)
  num::Vector load;
  /// Maps node dof (2*node + comp) to reduced index, or kConstrained.
  std::vector<std::uint32_t> dof_map;
  /// Prescribed values at constrained dofs (zero elsewhere), full length.
  num::Vector prescribed;
  std::size_t free_dof_count = 0;

  static constexpr std::uint32_t kConstrained = 0xffffffffu;
};

/// Displacement prescribed on the outer boundary; returns (ux, uy) packed in
/// a Point. Null means homogeneous (zero).
using BoundaryDisplacement = std::function<geo::Point(const geo::Point&)>;

/// Assembles stiffness and thermal load for the mesh. Materials per region
/// come from the placement structure; eigenstrains are relative to the
/// substrate CTE. `boundary` supplies inhomogeneous Dirichlet values.
/// `blend_interfaces` applies a Hill-averaged constitutive law on elements
/// cut by a material interface (measured to bias the soft-liner structure
/// stiff; off by default — see DESIGN.md and the ablation bench).
/// `num_threads` (0 = hardware concurrency, 1 = serial) parallelizes the
/// element-local work (blended laws on interface elements); the triplet
/// scatter stays serial in element order, so the assembled system is
/// identical for every thread count.
AssembledSystem assemble(const StructuredMesh& mesh,
                         const tsvlib::TsvStructure& structure,
                         const mat::ThermalLoad& load,
                         mat::PlaneAssumption plane,
                         const BoundaryDisplacement& boundary = nullptr,
                         bool blend_interfaces = false,
                         std::size_t num_threads = 1);

/// Expands a reduced solution to the full (2 * node_count) displacement
/// vector, inserting the prescribed values at constrained dofs.
num::Vector expand_solution(const AssembledSystem& system,
                            const num::Vector& reduced,
                            std::size_t node_count);

}  // namespace tsv::fem
