#pragma once
// Constitutive blending for interface elements cut by a material boundary.
//
// A Cartesian element partially covered by TSV body/liner/substrate needs an
// effective constitutive law. Pure Voigt (strain-uniform, arithmetic) biases
// stiff — disastrous for the thin compliant BCB liner in series loading;
// pure Reuss (stress-uniform, harmonic) biases soft. The Hill average (the
// mean of both bounds) is a standard compromise that removes most of the
// staircase bias; the single-TSV FEM-vs-exact test quantifies the residual.

#include <array>

#include "numeric/dense_matrix.h"

namespace tsv::fem {

struct BlendedLaw {
  num::Matrix d;            ///< 3x3 effective constitutive matrix
  num::Vector eigenstress;  ///< effective D * eps* (3-vector)
};

/// `d_mat[q]` and `eps_th[q]` are the per-region constitutive matrices and
/// thermal eigenstrains; `f` the region volume fractions (sum 1).
BlendedLaw hill_blend(const std::array<num::Matrix, 3>& d_mat,
                      const std::array<num::Vector, 3>& eps_th,
                      const std::array<double, 3>& f);

}  // namespace tsv::fem
