#include "fem/field.h"

namespace tsv::fem {

StressField::StressField(
    std::shared_ptr<const StructuredMesh> mesh,
    std::vector<std::array<num::SymTensor2, 4>> corner_stress)
    : mesh_(std::move(mesh)), corner_stress_(std::move(corner_stress)) {
  TSV_REQUIRE(mesh_ != nullptr, "null mesh");
  TSV_REQUIRE(corner_stress_.size() == mesh_->element_count(),
              "corner stress array does not match the mesh");
}

num::SymTensor2 StressField::sample(const geo::Point& p) const {
  const StructuredMesh::Location loc = mesh_->locate(p);
  const auto& c = corner_stress_[mesh_->element_index(loc.ex, loc.ey)];
  const double xi = loc.xi;
  const double eta = loc.eta;
  const std::array<double, 4> n = {
      0.25 * (1.0 - xi) * (1.0 - eta), 0.25 * (1.0 + xi) * (1.0 - eta),
      0.25 * (1.0 + xi) * (1.0 + eta), 0.25 * (1.0 - xi) * (1.0 + eta)};
  num::SymTensor2 out;
  for (std::size_t a = 0; a < 4; ++a) out += n[a] * c[a];
  return out;
}

}  // namespace tsv::fem
