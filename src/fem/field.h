#pragma once
// Nodal stress field on a structured mesh with material-aware averaging:
// each element stores stresses at its four corners, averaged only across
// neighbouring elements of the same material so interface discontinuities
// stay sharp. Sampling is bilinear inside the element containing the point.

#include <array>
#include <memory>
#include <vector>

#include "fem/mesh.h"
#include "numeric/tensor.h"

namespace tsv::fem {

class StressField {
 public:
  StressField(std::shared_ptr<const StructuredMesh> mesh,
              std::vector<std::array<num::SymTensor2, 4>> corner_stress);

  const StructuredMesh& mesh() const { return *mesh_; }

  /// Cartesian stress at p (clamped into the domain).
  num::SymTensor2 sample(const geo::Point& p) const;

  /// Corner values of one element (CCW order, matching element_nodes).
  const std::array<num::SymTensor2, 4>& corners(std::size_t ex,
                                                std::size_t ey) const {
    return corner_stress_[mesh_->element_index(ex, ey)];
  }

 private:
  std::shared_ptr<const StructuredMesh> mesh_;
  std::vector<std::array<num::SymTensor2, 4>> corner_stress_;
};

}  // namespace tsv::fem
