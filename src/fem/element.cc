#include "fem/element.h"

#include "numeric/quadrature.h"

namespace tsv::fem {

std::array<double, 4> shape_values(double xi, double eta) {
  return {0.25 * (1.0 - xi) * (1.0 - eta), 0.25 * (1.0 + xi) * (1.0 - eta),
          0.25 * (1.0 + xi) * (1.0 + eta), 0.25 * (1.0 - xi) * (1.0 + eta)};
}

ShapeGradients shape_gradients(double xi, double eta, double dx, double dy) {
  // d/dx = (2/dx) d/dxi, d/dy = (2/dy) d/deta for the axis-aligned rectangle.
  const double jx = 2.0 / dx;
  const double jy = 2.0 / dy;
  ShapeGradients g;
  g.ddx = {-0.25 * (1.0 - eta) * jx, 0.25 * (1.0 - eta) * jx,
           0.25 * (1.0 + eta) * jx, -0.25 * (1.0 + eta) * jx};
  g.ddy = {-0.25 * (1.0 - xi) * jy, -0.25 * (1.0 + xi) * jy,
           0.25 * (1.0 + xi) * jy, 0.25 * (1.0 - xi) * jy};
  return g;
}

num::Matrix strain_displacement(double xi, double eta, double dx, double dy) {
  const ShapeGradients g = shape_gradients(xi, eta, dx, dy);
  num::Matrix b(3, 8);
  for (std::size_t a = 0; a < 4; ++a) {
    b(0, 2 * a) = g.ddx[a];
    b(1, 2 * a + 1) = g.ddy[a];
    b(2, 2 * a) = g.ddy[a];
    b(2, 2 * a + 1) = g.ddx[a];
  }
  return b;
}

num::Matrix element_stiffness(const num::Matrix& d, double dx, double dy) {
  TSV_REQUIRE(d.rows() == 3 && d.cols() == 3, "D must be 3x3");
  num::Matrix ke(8, 8);
  const double det_j = dx * dy / 4.0;  // area scaling per unit parent area
  for (const auto& qx : num::gauss2()) {
    for (const auto& qy : num::gauss2()) {
      const num::Matrix b = strain_displacement(qx.xi, qy.xi, dx, dy);
      const num::Matrix bt_d_b = b.transposed() * d * b;
      const double w = qx.weight * qy.weight * det_j;
      for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j) ke(i, j) += w * bt_d_b(i, j);
    }
  }
  return ke;
}

num::Vector element_thermal_load(const num::Matrix& d,
                                 const num::Vector& eigenstrain, double dx,
                                 double dy) {
  TSV_REQUIRE(eigenstrain.size() == 3, "eigenstrain must have 3 components");
  const num::Vector d_eps = d * eigenstrain;
  num::Vector fe(8, 0.0);
  const double det_j = dx * dy / 4.0;
  for (const auto& qx : num::gauss2()) {
    for (const auto& qy : num::gauss2()) {
      const num::Matrix b = strain_displacement(qx.xi, qy.xi, dx, dy);
      const double w = qx.weight * qy.weight * det_j;
      for (std::size_t i = 0; i < 8; ++i) {
        double s = 0.0;
        for (std::size_t r = 0; r < 3; ++r) s += b(r, i) * d_eps[r];
        fe[i] += w * s;
      }
    }
  }
  return fe;
}

num::Vector element_load_from_eigenstress(const num::Vector& eigenstress,
                                          double dx, double dy) {
  TSV_REQUIRE(eigenstress.size() == 3, "eigenstress must have 3 components");
  num::Vector fe(8, 0.0);
  const double det_j = dx * dy / 4.0;
  for (const auto& qx : num::gauss2()) {
    for (const auto& qy : num::gauss2()) {
      const num::Matrix b = strain_displacement(qx.xi, qy.xi, dx, dy);
      const double w = qx.weight * qy.weight * det_j;
      for (std::size_t i = 0; i < 8; ++i) {
        double s = 0.0;
        for (std::size_t r = 0; r < 3; ++r) s += b(r, i) * eigenstress[r];
        fe[i] += w * s;
      }
    }
  }
  return fe;
}

num::SymTensor2 element_strain(const num::Vector& u_e, double xi, double eta,
                               double dx, double dy) {
  TSV_REQUIRE(u_e.size() == 8, "element displacement vector must have 8 dofs");
  const num::Matrix b = strain_displacement(xi, eta, dx, dy);
  num::SymTensor2 e;
  double exx = 0.0, eyy = 0.0, gxy = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    exx += b(0, i) * u_e[i];
    eyy += b(1, i) * u_e[i];
    gxy += b(2, i) * u_e[i];
  }
  e.s11 = exx;
  e.s22 = eyy;
  e.s12 = 0.5 * gxy;
  return e;
}

}  // namespace tsv::fem
