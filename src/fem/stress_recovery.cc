#include "fem/stress_recovery.h"

#include "fem/blending.h"

#include <cmath>

#include "fem/element.h"
#include "numeric/parallel.h"
#include "numeric/quadrature.h"

namespace tsv::fem {
namespace {

const mat::Material& material_of(const tsvlib::TsvStructure& s,
                                 MaterialRegion r) {
  switch (r) {
    case MaterialRegion::kBody:
      return s.body;
    case MaterialRegion::kLiner:
      return s.liner;
    case MaterialRegion::kSubstrate:
      return s.substrate;
  }
  TSV_ASSERT(false);
  return s.substrate;
}

}  // namespace

StressField recover_stress(std::shared_ptr<const StructuredMesh> mesh,
                           const tsvlib::TsvStructure& structure,
                           const mat::ThermalLoad& load,
                           mat::PlaneAssumption plane,
                           const num::Vector& displacement,
                           bool blend_interfaces, std::size_t num_threads) {
  TSV_REQUIRE(mesh != nullptr, "null mesh");
  TSV_REQUIRE(displacement.size() == 2 * mesh->node_count(),
              "displacement vector size mismatch");
  const StructuredMesh& m = *mesh;
  const double dx = m.dx();
  const double dy = m.dy();

  // Constitutive data per region, plus the eigenstress D * eps* used by the
  // Voigt-blended interface elements.
  std::array<num::Matrix, 3> d_mat;
  std::array<num::Vector, 3> eps_th;
  std::array<num::Vector, 3> d_eps;
  for (int r = 0; r < 3; ++r) {
    const mat::Material& mt =
        material_of(structure, static_cast<MaterialRegion>(r));
    d_mat[r] = mat::constitutive_matrix(mt, plane);
    eps_th[r] = mat::thermal_eigenstrain(mt, load.delta_t,
                                         structure.substrate.cte, plane);
    d_eps[r] = d_mat[r] * eps_th[r];
  }

  // Gauss points in CCW corner order matching shape_values.
  constexpr double g = 0.57735026918962576451;
  const std::array<std::pair<double, double>, 4> gauss_ccw = {
      {{-g, -g}, {g, -g}, {g, g}, {-g, g}}};
  const double s3 = std::sqrt(3.0);

  // Extrapolation weights: corner a value = sum_b N_b(sqrt3 * corner_a) * gp_b.
  const std::array<std::pair<double, double>, 4> corners = {
      {{-1.0, -1.0}, {1.0, -1.0}, {1.0, 1.0}, {-1.0, 1.0}}};
  std::array<std::array<double, 4>, 4> w;
  for (std::size_t a = 0; a < 4; ++a) {
    const auto n = shape_values(corners[a].first * s3, corners[a].second * s3);
    w[a] = n;
  }

  // Pass 1a (element-parallel): raw extrapolated corner stresses per
  // element. Each element writes only its own raw[] slot, so the loop is
  // race-free for any thread count.
  const std::size_t n_nodes = m.node_count();
  std::vector<std::array<num::SymTensor2, 4>> raw(m.element_count());
  num::parallel_for_chunks(
      m.element_count(), num_threads,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        num::Vector u_e(8);
        for (std::size_t e = begin; e < end; ++e) {
          const std::size_t ex = e % m.nx();
          const std::size_t ey = e / m.nx();
          const auto nodes = m.element_nodes(ex, ey);
          for (std::size_t a = 0; a < 4; ++a) {
            u_e[2 * a] = displacement[2 * nodes[a]];
            u_e[2 * a + 1] = displacement[2 * nodes[a] + 1];
          }
          const int r = static_cast<int>(m.material(ex, ey));
          const bool mixed = blend_interfaces && m.is_mixed(ex, ey);
          BlendedLaw law;
          if (mixed) law = hill_blend(d_mat, eps_th, m.fractions(ex, ey));
          std::array<num::SymTensor2, 4> gp_stress;
          for (std::size_t b = 0; b < 4; ++b) {
            const num::SymTensor2 strain = element_strain(
                u_e, gauss_ccw[b].first, gauss_ccw[b].second, dx, dy);
            if (mixed) {
              // sigma = D_blend eps - eigenstress_blend
              const num::SymTensor2 s = mat::stress_from_strain(
                  law.d, strain, num::Vector{0.0, 0.0, 0.0});
              gp_stress[b] = s - num::SymTensor2{law.eigenstress[0],
                                                 law.eigenstress[1],
                                                 law.eigenstress[2]};
            } else {
              gp_stress[b] =
                  mat::stress_from_strain(d_mat[r], strain, eps_th[r]);
            }
          }
          auto& out = raw[m.element_index(ex, ey)];
          for (std::size_t a = 0; a < 4; ++a) {
            num::SymTensor2 v;
            for (std::size_t b = 0; b < 4; ++b) v += w[a][b] * gp_stress[b];
            out[a] = v;
          }
        }
      });

  // Pass 1b (serial): accumulate per (node, material). Elements sharing a
  // node would race here, and the fixed element order keeps the averages
  // identical for every thread count.
  std::vector<std::array<num::SymTensor2, 3>> acc(n_nodes);
  std::vector<std::array<std::uint16_t, 3>> cnt(
      n_nodes, std::array<std::uint16_t, 3>{0, 0, 0});
  for (std::size_t ey = 0; ey < m.ny(); ++ey) {
    for (std::size_t ex = 0; ex < m.nx(); ++ex) {
      const auto nodes = m.element_nodes(ex, ey);
      const int r = static_cast<int>(m.material(ex, ey));
      const auto& v = raw[m.element_index(ex, ey)];
      for (std::size_t a = 0; a < 4; ++a) {
        acc[nodes[a]][r] += v[a];
        ++cnt[nodes[a]][r];
      }
    }
  }

  // Pass 2 (element-parallel): replace corner values by the
  // per-(node, material) average; reads acc/cnt, writes own averaged[] slot.
  std::vector<std::array<num::SymTensor2, 4>> averaged(m.element_count());
  num::parallel_for(m.element_count(), num_threads, [&](std::size_t e) {
    const std::size_t ex = e % m.nx();
    const std::size_t ey = e / m.nx();
    const auto nodes = m.element_nodes(ex, ey);
    const int r = static_cast<int>(m.material(ex, ey));
    auto& out = averaged[m.element_index(ex, ey)];
    for (std::size_t a = 0; a < 4; ++a) {
      TSV_ASSERT(cnt[nodes[a]][r] > 0);
      out[a] =
          acc[nodes[a]][r] * (1.0 / static_cast<double>(cnt[nodes[a]][r]));
    }
  });
  return StressField(std::move(mesh), std::move(averaged));
}

}  // namespace tsv::fem
