#include "fem/blending.h"

namespace tsv::fem {
namespace {

num::Matrix inverse3(const num::Matrix& m) {
  num::Matrix inv(3, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    num::Vector e(3, 0.0);
    e[c] = 1.0;
    const num::Vector col = num::solve_lu(m, e);
    for (std::size_t r = 0; r < 3; ++r) inv(r, c) = col[r];
  }
  return inv;
}

}  // namespace

BlendedLaw hill_blend(const std::array<num::Matrix, 3>& d_mat,
                      const std::array<num::Vector, 3>& eps_th,
                      const std::array<double, 3>& f) {
  // Voigt: D_v = sum f D, eigenstress sum f D eps*.
  num::Matrix d_voigt(3, 3);
  num::Vector s_voigt(3, 0.0);
  // Reuss: C_r = sum f D^{-1}, eps*_r = sum f eps*.
  num::Matrix c_reuss(3, 3);
  num::Vector eps_reuss(3, 0.0);
  for (int q = 0; q < 3; ++q) {
    if (f[q] == 0.0) continue;
    d_voigt += d_mat[q] * f[q];
    const num::Vector de = d_mat[q] * eps_th[q];
    for (std::size_t c = 0; c < 3; ++c) {
      s_voigt[c] += f[q] * de[c];
      eps_reuss[c] += f[q] * eps_th[q][c];
    }
    c_reuss += inverse3(d_mat[q]) * f[q];
  }
  const num::Matrix d_reuss = inverse3(c_reuss);
  const num::Vector s_reuss = d_reuss * eps_reuss;

  BlendedLaw out;
  out.d = (d_voigt + d_reuss) * 0.5;
  out.eigenstress.assign(3, 0.0);
  for (std::size_t c = 0; c < 3; ++c)
    out.eigenstress[c] = 0.5 * (s_voigt[c] + s_reuss[c]);
  return out;
}

}  // namespace tsv::fem
