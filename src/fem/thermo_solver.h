#pragma once
// High-level FEM driver: placement -> stress field. This is the library's
// golden reference, substituting for the commercial FEM tool (COMSOL) the
// paper used.

#include <memory>
#include <optional>

#include "fem/field.h"
#include "fem/mesh.h"
#include "materials/elasticity.h"
#include "numeric/cg.h"
#include "tsv/placement.h"

namespace tsv::fem {

enum class LinearSolver {
  kConjugateGradient,  ///< IC(0)-preconditioned CG (default, scales best)
  kDirectCholesky,     ///< simplicial LL^T with RCM; small/mid systems only
                       ///< (fill grows ~ n * bandwidth on 2D meshes)
};

struct FemOptions {
  LinearSolver solver = LinearSolver::kConjugateGradient;
  /// Target element edge length, um. 0.25 resolves the liner with two
  /// elements; 0.5 is a fast preview.
  double element_size = 0.25;
  /// Extra substrate margin around the region of interest, um. The far
  /// boundary is clamped (u = 0); stress decays ~1/r^2, so 25-30 um keeps
  /// the boundary artifact below ~1% in the monitored region.
  double margin = 30.0;
  mat::PlaneAssumption plane = mat::PlaneAssumption::kPlaneStress;
  /// Prescribe the analytic asymptotic displacement on the far boundary
  /// instead of u = 0 (greatly reduces the finite-domain artifact).
  bool analytic_far_field = true;
  /// Hill-blend the constitutive law on interface-cut elements. Measured to
  /// bias the soft-liner TSV stiff (see DESIGN.md); keep off unless running
  /// the ablation bench.
  bool blend_interfaces = false;
  /// Threads for the element-parallel assembly and stress-recovery loops:
  /// 0 = hardware concurrency, 1 = serial (default). Results are identical
  /// for every thread count (accumulation stays in element order). The
  /// linear solve itself is serial.
  std::size_t num_threads = 1;
  num::CgOptions cg;
};

struct FemSolution {
  StressField stress;
  num::Vector displacement;  ///< full vector, 2 dofs per node
  num::CgResult cg;
  std::size_t free_dofs = 0;
};

/// Solves the thermo-elastic problem on `domain` expanded by options.margin.
/// Throws std::runtime_error if the linear solver fails to converge.
FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 const geo::Box& domain,
                                 const FemOptions& options = {});

/// Convenience: domain = placement bounding box expanded by `roi_margin`.
FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 double roi_margin = 25.0,
                                 const FemOptions& options = {});

}  // namespace tsv::fem
