#pragma once
// High-level FEM driver: placement -> stress field. This is the library's
// golden reference, substituting for the commercial FEM tool (COMSOL) the
// paper used.

#include <memory>
#include <optional>

#include "fem/field.h"
#include "fem/mesh.h"
#include "materials/elasticity.h"
#include "numeric/cg.h"
#include "tsv/placement.h"

namespace tsv::fem {

enum class LinearSolver {
  kConjugateGradient,  ///< IC(0)-preconditioned CG (default, scales best)
  kDirectCholesky,     ///< simplicial LL^T with RCM; small/mid systems only
                       ///< (fill grows ~ n * bandwidth on 2D meshes)
};

const char* to_string(LinearSolver s);

/// What the linear-solve stage actually did: which backend produced the
/// accepted solution, whether the fallback chain had to engage, and the
/// independently verified residual of the returned solution (recomputed
/// from A x - b after the solve, not trusted from the backend).
struct SolveReport {
  LinearSolver backend = LinearSolver::kConjugateGradient;
  bool fallback_used = false;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< verified ||A x - b|| / ||b||
  /// Why the CG attempt failed, when the fallback engaged (kNone otherwise).
  num::CgFailure cg_failure = num::CgFailure::kNone;
};

struct FemOptions {
  LinearSolver solver = LinearSolver::kConjugateGradient;
  /// Target element edge length, um. 0.25 resolves the liner with two
  /// elements; 0.5 is a fast preview.
  double element_size = 0.25;
  /// Extra substrate margin around the region of interest, um. The far
  /// boundary is clamped (u = 0); stress decays ~1/r^2, so 25-30 um keeps
  /// the boundary artifact below ~1% in the monitored region.
  double margin = 30.0;
  mat::PlaneAssumption plane = mat::PlaneAssumption::kPlaneStress;
  /// Prescribe the analytic asymptotic displacement on the far boundary
  /// instead of u = 0 (greatly reduces the finite-domain artifact).
  bool analytic_far_field = true;
  /// Hill-blend the constitutive law on interface-cut elements. Measured to
  /// bias the soft-liner TSV stiff (see DESIGN.md); keep off unless running
  /// the ablation bench.
  bool blend_interfaces = false;
  /// Threads for the element-parallel assembly and stress-recovery loops:
  /// 0 = hardware concurrency, 1 = serial (default). Results are identical
  /// for every thread count (accumulation stays in element order). The
  /// linear solve itself is serial.
  std::size_t num_threads = 1;
  num::CgOptions cg;
  /// When the CG attempt fails (divergence, NaN, stagnation, breakdown, or
  /// iteration exhaustion), retry with the direct sparse Cholesky backend
  /// instead of throwing. A hard NumericFailureError is only raised when
  /// every backend has failed the post-solve residual verification.
  bool allow_fallback = true;
  /// Acceptance threshold on the verified relative residual of a fallback
  /// (or direct) solution. Looser than cg.rel_tolerance: a direct factor's
  /// rounding error on an ill-conditioned system is still a usable field.
  double fallback_residual = 1e-8;
};

struct FemSolution {
  StressField stress;
  num::Vector displacement;  ///< full vector, 2 dofs per node
  num::CgResult cg;  ///< the CG attempt (synthesized for direct solves)
  SolveReport report;
  std::size_t free_dofs = 0;
};

/// Solves the thermo-elastic problem on `domain` expanded by options.margin.
/// Throws tsv::NumericFailureError (a std::runtime_error) only when every
/// enabled solver backend fails: with options.allow_fallback, a failed CG
/// attempt silently retries through the direct Cholesky backend and the
/// outcome is recorded in FemSolution::report.
FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 const geo::Box& domain,
                                 const FemOptions& options = {});

/// Convenience: domain = placement bounding box expanded by `roi_margin`.
FemSolution solve_thermo_elastic(const tsvlib::Placement& placement,
                                 const mat::ThermalLoad& load,
                                 double roi_margin = 25.0,
                                 const FemOptions& options = {});

}  // namespace tsv::fem
