#pragma once
// Q4 bilinear isoparametric plane element on an axis-aligned rectangle.
// Since the structured mesh is uniform, the Jacobian is constant and the
// element matrices depend only on (dx, dy, D) — computed once per material.

#include <array>

#include "numeric/dense_matrix.h"
#include "numeric/tensor.h"

namespace tsv::fem {

/// Shape functions N_a(xi, eta), a = 0..3, corners CCW from (-1,-1).
std::array<double, 4> shape_values(double xi, double eta);

/// Shape gradients in physical coordinates for a dx-by-dy rectangle:
/// returns {dN/dx, dN/dy} per corner.
struct ShapeGradients {
  std::array<double, 4> ddx;
  std::array<double, 4> ddy;
};
ShapeGradients shape_gradients(double xi, double eta, double dx, double dy);

/// 3x8 strain-displacement matrix B at (xi, eta): eps = B u_e with
/// u_e = (u0x, u0y, ..., u3x, u3y) and eps = (exx, eyy, gxy).
num::Matrix strain_displacement(double xi, double eta, double dx, double dy);

/// 8x8 stiffness K_e = integral B^T D B dA over the rectangle (2x2 Gauss).
num::Matrix element_stiffness(const num::Matrix& d, double dx, double dy);

/// 8-vector thermal load f_e = integral B^T D eps* dA (eps* constant).
num::Vector element_thermal_load(const num::Matrix& d,
                                 const num::Vector& eigenstrain, double dx,
                                 double dy);

/// As element_thermal_load, but with the eigenstress sigma* = D eps* given
/// directly (used for Voigt-blended interface elements).
num::Vector element_load_from_eigenstress(const num::Vector& eigenstress,
                                          double dx, double dy);

/// Strain at (xi, eta) from the element displacement vector.
num::SymTensor2 element_strain(const num::Vector& u_e, double xi, double eta,
                               double dx, double dy);

}  // namespace tsv::fem
