#include "analytic/mode_solver.h"

#include <cmath>
#include <numbers>

#include "numeric/dense_matrix.h"

namespace tsv::ana {
namespace {

// One unknown complex coefficient: a single power of phi or psi in one
// region's Laurent expansion.
struct UnknownSlot {
  enum class Region { kCore, kLiner, kSubstrate } region;
  enum class Kind { kPhi, kPsi } kind;
  int power;
};

// Traction and displacement of a one-term potential phi = c z^p (psi = 0) or
// psi = c z^p (phi = 0) at point z, for a material with shear modulus mu and
// Kolosov constant kappa. Closed forms keep the collocation matrix assembly
// cheap and exact.
struct PointResponse {
  Complex traction;      // sigma_rr - i sigma_rt on the circle through z
  Complex displacement;  // ux + i uy
};

PointResponse eval_phi_term(Complex c, int p, Complex z, double mu,
                            double kappa) {
  const auto ipow = [](Complex base, int e) {
    Complex acc{1.0, 0.0};
    const bool neg = e < 0;
    unsigned int n = static_cast<unsigned int>(neg ? -e : e);
    Complex b = base;
    while (n != 0) {
      if (n & 1u) acc *= b;
      b *= b;
      n >>= 1u;
    }
    return neg ? Complex{1.0, 0.0} / acc : acc;
  };
  const double dp = static_cast<double>(p);
  const Complex zp = ipow(z, p);
  const Complex zpm1 = ipow(z, p - 1);
  const Complex zpm2 = ipow(z, p - 2);
  const Complex dphi = c * dp * zpm1;
  const Complex ddphi = c * dp * (dp - 1.0) * zpm2;
  const double r = std::abs(z);
  const Complex e2it = (z / r) * (z / r);
  PointResponse out;
  out.traction = 2.0 * dphi.real() - e2it * (std::conj(z) * ddphi);
  out.displacement =
      (kappa * c * zp - z * std::conj(dphi)) / (2.0 * mu);
  return out;
}

PointResponse eval_psi_term(Complex c, int p, Complex z, double mu) {
  const auto ipow = [](Complex base, int e) {
    Complex acc{1.0, 0.0};
    const bool neg = e < 0;
    unsigned int n = static_cast<unsigned int>(neg ? -e : e);
    Complex b = base;
    while (n != 0) {
      if (n & 1u) acc *= b;
      b *= b;
      n >>= 1u;
    }
    return neg ? Complex{1.0, 0.0} / acc : acc;
  };
  const double dp = static_cast<double>(p);
  const Complex zp = ipow(z, p);
  const Complex zpm1 = ipow(z, p - 1);
  const Complex dpsi = c * dp * zpm1;
  const double r = std::abs(z);
  const Complex e2it = (z / r) * (z / r);
  PointResponse out;
  out.traction = -e2it * dpsi;
  out.displacement = -std::conj(c * zp) / (2.0 * mu);
  return out;
}

PointResponse eval_slot(const UnknownSlot& slot, Complex coeff, Complex z,
                        const tsvlib::TsvStructure& s) {
  const mat::Material* m = nullptr;
  switch (slot.region) {
    case UnknownSlot::Region::kCore:
      m = &s.body;
      break;
    case UnknownSlot::Region::kLiner:
      m = &s.liner;
      break;
    case UnknownSlot::Region::kSubstrate:
      m = &s.substrate;
      break;
  }
  const double mu = m->shear_modulus();
  const double kappa = m->kolosov_plane_stress();
  return slot.kind == UnknownSlot::Kind::kPhi
             ? eval_phi_term(coeff, slot.power, z, mu, kappa)
             : eval_psi_term(coeff, slot.power, z, mu);
}

}  // namespace

InclusionResponse::InclusionResponse(const tsvlib::TsvStructure& structure,
                                     const InclusionResponseOptions& options)
    : structure_(structure), options_(options) {
  structure_.validate();
  TSV_REQUIRE(options_.max_basis_power >= 2, "need at least basis power 2");
  TSV_REQUIRE(options_.series_order >= options_.max_basis_power + 4,
              "series order must exceed basis power by >= 4");
  TSV_REQUIRE(options_.collocation_points >= 4 * options_.series_order,
              "too few collocation points for the series order");

  const int order = options_.series_order;
  const double k = structure_.radius_ratio();
  TSV_REQUIRE(k > 0.0 && k < 1.0, "need a liner of positive thickness");

  // Unknown layout.
  std::vector<UnknownSlot> slots;
  using R = UnknownSlot::Region;
  using Kd = UnknownSlot::Kind;
  // Constant psi terms are omitted: a constant of either potential is a pure
  // rigid translation, so keeping both phi^0 and psi^0 in a bounded region
  // would leave a two-dimensional null space in the least-squares system.
  for (int p = 0; p <= order; ++p) slots.push_back({R::kCore, Kd::kPhi, p});
  for (int p = 1; p <= order; ++p) slots.push_back({R::kCore, Kd::kPsi, p});
  for (int p = -order; p <= order; ++p)
    slots.push_back({R::kLiner, Kd::kPhi, p});
  for (int p = -order; p <= order; ++p)
    if (p != 0) slots.push_back({R::kLiner, Kd::kPsi, p});
  for (int p = -order; p <= -1; ++p)
    slots.push_back({R::kSubstrate, Kd::kPhi, p});
  for (int p = -order; p <= -1; ++p)
    slots.push_back({R::kSubstrate, Kd::kPsi, p});
  const std::size_t n_complex = slots.size();
  const std::size_t n_real = 2 * n_complex;

  // Collocation points on both circles.
  const int m_pts = options_.collocation_points;
  std::vector<Complex> gamma2(m_pts), gamma1(m_pts);
  for (int j = 0; j < m_pts; ++j) {
    const double th =
        2.0 * std::numbers::pi * (static_cast<double>(j) + 0.5) / m_pts;
    gamma2[j] = Complex{k * std::cos(th), k * std::sin(th)};
    gamma1[j] = Complex{std::cos(th), std::sin(th)};
  }

  // Displacement equations are rescaled to stress magnitude so the
  // least-squares fit weights both constraint families comparably.
  const double disp_scale = 2.0 * structure_.substrate.shear_modulus();

  // Row layout: for each circle and point: Re/Im traction, Re/Im displacement.
  const std::size_t rows_per_point = 4;
  const std::size_t n_rows = 2 * static_cast<std::size_t>(m_pts) * rows_per_point;
  num::Matrix a(n_rows, n_real);

  // Sign convention: equations are written as
  //   gamma2:  field(core) - field(liner) = 0
  //   gamma1:  field(liner) - field(substrate scattered) = field(applied)
  const auto fill_columns = [&](std::size_t slot_idx, Complex coeff,
                                std::size_t col) {
    const UnknownSlot& slot = slots[slot_idx];
    for (int j = 0; j < m_pts; ++j) {
      // Gamma2 (core/liner interface).
      if (slot.region != R::kSubstrate) {
        const double sign = slot.region == R::kCore ? 1.0 : -1.0;
        const PointResponse pr = eval_slot(slot, coeff, gamma2[j], structure_);
        const std::size_t base = static_cast<std::size_t>(j) * rows_per_point;
        a(base + 0, col) += sign * pr.traction.real();
        a(base + 1, col) += sign * pr.traction.imag();
        a(base + 2, col) += sign * disp_scale * pr.displacement.real();
        a(base + 3, col) += sign * disp_scale * pr.displacement.imag();
      }
      // Gamma1 (liner/substrate interface).
      if (slot.region != R::kCore) {
        const double sign = slot.region == R::kLiner ? 1.0 : -1.0;
        const PointResponse pr = eval_slot(slot, coeff, gamma1[j], structure_);
        const std::size_t base =
            (static_cast<std::size_t>(m_pts) + static_cast<std::size_t>(j)) *
            rows_per_point;
        a(base + 0, col) += sign * pr.traction.real();
        a(base + 1, col) += sign * pr.traction.imag();
        a(base + 2, col) += sign * disp_scale * pr.displacement.real();
        a(base + 3, col) += sign * disp_scale * pr.displacement.imag();
      }
    }
  };
  for (std::size_t i = 0; i < n_complex; ++i) {
    fill_columns(i, Complex{1.0, 0.0}, 2 * i);
    fill_columns(i, Complex{0.0, 1.0}, 2 * i + 1);
  }

  // Right-hand sides: applied load (phi = 0, psi = z^n) on Gamma1, substrate
  // material for the displacement side.
  const int n_loads = options_.max_basis_power + 1;
  num::Matrix b(n_rows, static_cast<std::size_t>(n_loads));
  const double mu_s = structure_.substrate.shear_modulus();
  for (int n = 0; n < n_loads; ++n) {
    for (int j = 0; j < m_pts; ++j) {
      const PointResponse pr =
          eval_psi_term(Complex{1.0, 0.0}, n, gamma1[j], mu_s);
      const std::size_t base =
          (static_cast<std::size_t>(m_pts) + static_cast<std::size_t>(j)) *
          rows_per_point;
      b(base + 0, static_cast<std::size_t>(n)) = pr.traction.real();
      b(base + 1, static_cast<std::size_t>(n)) = pr.traction.imag();
      b(base + 2, static_cast<std::size_t>(n)) =
          disp_scale * pr.displacement.real();
      b(base + 3, static_cast<std::size_t>(n)) =
          disp_scale * pr.displacement.imag();
    }
  }

  const num::Matrix b_copy = b;  // for residual reporting
  const num::Matrix x = num::solve_least_squares_multi(a, b);

  // Residual check per load: || A x_n - b_n || / max(1, ||b_n||).
  worst_fit_residual_ = 0.0;
  for (int n = 0; n < n_loads; ++n) {
    num::Vector xn(n_real), bn(n_rows);
    for (std::size_t i = 0; i < n_real; ++i)
      xn[i] = x(i, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < n_rows; ++i)
      bn[i] = b_copy(i, static_cast<std::size_t>(n));
    num::Vector ax = a * xn;
    double rnorm = 0.0, bnorm = 0.0;
    for (std::size_t i = 0; i < n_rows; ++i) {
      rnorm += (ax[i] - bn[i]) * (ax[i] - bn[i]);
      bnorm += bn[i] * bn[i];
    }
    const double rel = std::sqrt(rnorm) / std::max(1.0, std::sqrt(bnorm));
    worst_fit_residual_ = std::max(worst_fit_residual_, rel);
  }

  // Pack responses.
  responses_.resize(static_cast<std::size_t>(n_loads));
  for (int n = 0; n < n_loads; ++n) {
    num::LaurentSeries phi_c(0, order), psi_c(0, order);
    num::LaurentSeries phi_l(-order, order), psi_l(-order, order);
    num::LaurentSeries phi_s(-order, -1), psi_s(-order, -1);
    for (std::size_t i = 0; i < n_complex; ++i) {
      const Complex c{x(2 * i, static_cast<std::size_t>(n)),
                      x(2 * i + 1, static_cast<std::size_t>(n))};
      const UnknownSlot& slot = slots[i];
      num::LaurentSeries* target = nullptr;
      if (slot.region == R::kCore)
        target = slot.kind == Kd::kPhi ? &phi_c : &psi_c;
      else if (slot.region == R::kLiner)
        target = slot.kind == Kd::kPhi ? &phi_l : &psi_l;
      else
        target = slot.kind == Kd::kPhi ? &phi_s : &psi_s;
      target->coeff(slot.power) = c;
    }
    RegionField& f = responses_[static_cast<std::size_t>(n)];
    f.core = PotentialField(std::move(phi_c), std::move(psi_c));
    f.liner = PotentialField(std::move(phi_l), std::move(psi_l));
    f.substrate = PotentialField(std::move(phi_s), std::move(psi_s));
  }
}

const RegionField& InclusionResponse::response_to_psi(int n) const {
  TSV_REQUIRE(n >= 0 && n <= options_.max_basis_power,
              "basis power out of range");
  return responses_[static_cast<std::size_t>(n)];
}

}  // namespace tsv::ana
