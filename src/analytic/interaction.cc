#include "analytic/interaction.h"

#include <cmath>

#include "analytic/surrogate.h"

namespace tsv::ana {

InteractiveStressModel::InteractiveStressModel(
    std::shared_ptr<const InclusionResponse> response,
    const SingleTsvModel& single)
    : response_(std::move(response)) {
  TSV_REQUIRE(response_ != nullptr, "null inclusion response");
  k_hat_ = single.k_hat();
  outer_radius_ = single.outer_radius();
}

InteractiveStressModel::InteractiveStressModel(
    const tsvlib::TsvStructure& structure, const mat::ThermalLoad& load,
    const InclusionResponseOptions& options)
    : InteractiveStressModel(
          std::make_shared<InclusionResponse>(structure, options),
          SingleTsvModel(structure, load)) {}

InteractiveStressModel::InteractiveStressModel(
    std::shared_ptr<const InclusionResponse> response, double k_hat)
    : response_(std::move(response)), k_hat_(k_hat) {
  TSV_REQUIRE(response_ != nullptr, "null inclusion response");
  outer_radius_ = response_->structure().outer_radius();
}

const RegionField& InteractiveStressModel::combined_for_pitch(
    double pitch) const {
  TSV_REQUIRE(pitch > 2.0 * outer_radius_ * 0.999,
              "pair pitch must exceed the TSV diameter");
  // Quantize to 1e-6 um to make cache keys robust against fp noise.
  const long long key = std::llround(pitch * 1e6);
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = cache_.find(key); it != cache_.end())
      return it->second;
  }

  // Built outside the lock: concurrent callers may race to build the same
  // pitch, but only the first emplace lands and the losers are discarded.
  const double d_hat = pitch / outer_radius_;
  RegionField combined;
  for (int n = 0; n <= response_->max_basis_power(); ++n) {
    // psi_applied(z) = khat / (z - dhat) = sum_n beta_n z^n on |z| < dhat.
    const double beta = -k_hat_ / std::pow(d_hat, n + 1);
    const RegionField& basis = response_->response_to_psi(n);
    combined.core.accumulate(basis.core, beta);
    combined.liner.accumulate(basis.liner, beta);
    combined.substrate.accumulate(basis.substrate, beta);
  }
  // The combined series decay fast (each term carries (1/d_hat)^n); trimming
  // the negligible tail roughly halves per-point evaluation cost with a
  // sub-1e-8 relative field change.
  combined.core.trim(1e-9);
  combined.liner.trim(1e-9);
  combined.substrate.trim(1e-9);
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.emplace(key, std::move(combined)).first->second;
}

const PairStressTable& InteractiveStressModel::table_for_pitch(
    double pitch, double r_max, double quant_step) const {
  TSV_REQUIRE(quant_step >= 0.0, "negative pitch quantization step");
  if (quant_step > 0.0) {
    // Snap to the nearest multiple of the step, but never below the TSV
    // diameter (the combined response requires a non-overlapping pair).
    double snapped = std::round(pitch / quant_step) * quant_step;
    while (snapped < 2.0 * outer_radius_) snapped += quant_step;
    pitch = snapped;
  }
  const std::pair<long long, long long> key{std::llround(pitch * 1e6),
                                            std::llround(r_max * 1e6)};
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    if (const auto it = table_cache_.find(key); it != table_cache_.end()) {
      table_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  table_misses_.fetch_add(1, std::memory_order_relaxed);
  const RegionField& combined = combined_for_pitch(pitch);
  PairStressTable table(*this, combined, pitch, r_max, PairTableOptions{});
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return table_cache_.emplace(key, std::move(table)).first->second;
}

PairTableCacheStats InteractiveStressModel::table_cache_stats() const {
  return {table_hits_.load(std::memory_order_relaxed),
          table_misses_.load(std::memory_order_relaxed)};
}

void InteractiveStressModel::reset_table_cache_stats() const {
  table_hits_.store(0, std::memory_order_relaxed);
  table_misses_.store(0, std::memory_order_relaxed);
}

std::size_t InteractiveStressModel::table_cache_size() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return table_cache_.size();
}

std::vector<PairStressTable::Data>
InteractiveStressModel::export_table_cache() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  std::vector<PairStressTable::Data> out;
  out.reserve(table_cache_.size());
  // std::map iterates in key order, so the export (and any snapshot built
  // from it) is deterministic.
  for (const auto& [key, table] : table_cache_) out.push_back(table.to_data());
  return out;
}

std::size_t InteractiveStressModel::import_table_cache(
    std::vector<PairStressTable::Data> tables) const {
  std::size_t inserted = 0;
  for (PairStressTable::Data& data : tables) {
    // Reconstruct the cache key exactly as table_for_pitch would: the
    // stored pitch is already snapped, so no re-quantization is needed.
    const std::pair<long long, long long> key{std::llround(data.pitch * 1e6),
                                              std::llround(data.r_max * 1e6)};
    PairStressTable table(std::move(data));
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    inserted += table_cache_.emplace(key, std::move(table)).second ? 1 : 0;
  }
  return inserted;
}

void InteractiveStressModel::attach_surrogate(
    std::shared_ptr<const PairSurrogate> surrogate) const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  surrogate_ = std::move(surrogate);
}

std::shared_ptr<const PairSurrogate> InteractiveStressModel::surrogate()
    const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  return surrogate_;
}

std::shared_ptr<const PairSurrogate> InteractiveStressModel::surrogate_for(
    double tolerance, double r_needed) const {
  std::shared_ptr<const PairSurrogate> s;
  {
    const std::lock_guard<std::mutex> lock(cache_mutex_);
    s = surrogate_;
  }
  if (s == nullptr) return nullptr;
  if (!s->certificate().certified_within(tolerance)) return nullptr;
  if (s->r_max() < r_needed) return nullptr;
  return s;
}

num::SymTensor2 InteractiveStressModel::stress_at(
    const geo::Point& victim, const geo::Point& aggressor,
    const geo::Point& p) const {
  const double pitch = geo::distance(victim, aggressor);
  return stress_with_combined(combined_for_pitch(pitch), victim, aggressor,
                              pitch, p);
}

num::SymTensor2 InteractiveStressModel::stress_with_combined(
    const RegionField& combined, const geo::Point& victim,
    const geo::Point& aggressor, double pitch, const geo::Point& p) const {
  const double d_hat = pitch / outer_radius_;
  const double beta = geo::angle_of(victim, aggressor);
  // Rotate into the victim-centered frame with the aggressor on +x.
  const Complex rel{p.x - victim.x, p.y - victim.y};
  const Complex rot{std::cos(-beta), std::sin(-beta)};
  const Complex z = rel * rot / outer_radius_;
  const double r_hat = std::abs(z);

  num::SymTensor2 local;
  const double k = response_->structure().radius_ratio();
  if (r_hat >= 1.0) {
    local = combined.substrate.stress(z);
  } else if (r_hat >= k) {
    local = combined.liner.stress(z) - aggressor_stress(z, d_hat, k_hat_);
  } else {
    local = combined.core.stress(z) - aggressor_stress(z, d_hat, k_hat_);
  }
  // Rotate the tensor from the pair-local frame back to the global frame
  // (same congruence Q sigma Q^T as the cylindrical transform at angle beta).
  return num::cylindrical_to_cartesian(local, beta);
}

}  // namespace tsv::ana
