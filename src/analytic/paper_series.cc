#include "analytic/paper_series.h"

#include <cmath>

#include "analytic/single_tsv.h"

namespace tsv::ana {

PaperInteractiveModel::PaperInteractiveModel(
    const tsvlib::TsvStructure& structure, double delta_t, int m_max)
    : params_(PaperParams::from(structure, delta_t)), m_max_(m_max) {
  TSV_REQUIRE(m_max >= 2, "need at least the m = 2 harmonic");
  // Use the exact K (the paper's closed form is cross-checked in tests).
  const SingleTsvModel single(structure, mat::ThermalLoad{delta_t});
  k_ = single.k_constant();
}

num::SymTensor2 PaperInteractiveModel::stress_cylindrical(double r,
                                                          double theta,
                                                          double d) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  TSV_REQUIRE(d > 0.0, "pitch must be positive");
  const double rp = params_.r_outer;  // R'
  const double rp2 = rp * rp;
  int i;  // region index of eq. (18)
  if (r < params_.r_body) {
    i = 1;
  } else if (r < rp) {
    i = 2;
  } else {
    i = 3;
  }
  const double pref = k_ / rp2;

  // The growing terms (r/d)^m apply in body and liner (h3j = 0 kills them in
  // the substrate), the decaying (R'^2/(rd))^m terms in liner and substrate
  // (h1j = 0 in the body). Evaluating only the live family avoids 0 * inf at
  // r -> 0 and overflow for r >> R'.
  const bool use_grow = i <= 2;
  const bool use_decay = i >= 2;
  double srr = 0.0, stt = 0.0, srt = 0.0;
  for (int m = 2; m <= m_max_; ++m) {
    const double cosm = std::cos(m * theta);
    const double sinm = std::sin(m * theta);
    if (use_grow) {
      // grow = (r/d)^m, grow_rr = (r/d)^m * R'^2/r^2 = R'^2 r^(m-2) / d^m
      const double grow = std::pow(r / d, m);
      const double grow_rr = rp2 * std::pow(r, m - 2) / std::pow(d, m);
      const double h1 = paper_h(params_, i, 1, m);
      const double h2 = paper_h(params_, i, 2, m);
      const double h5 = paper_h(params_, i, 5, m);
      const double h7 = paper_h(params_, i, 7, m);
      srr += cosm * (grow * h1 - grow_rr * h2);
      stt += cosm * (grow * h5 + grow_rr * h2);
      srt += sinm * (grow * h7 + grow_rr * h2);
    }
    if (use_decay) {
      const double decay = std::pow(rp2 / (r * d), m);
      const double decay_rr = decay * rp2 / (r * r);
      const double h3 = paper_h(params_, i, 3, m);
      const double h4 = paper_h(params_, i, 4, m);
      const double h6 = paper_h(params_, i, 6, m);
      const double h8 = paper_h(params_, i, 8, m);
      srr += cosm * (decay * h3 - decay_rr * h4);
      stt += cosm * (decay * h6 + decay_rr * h4);
      srt += sinm * (decay * h8 - decay_rr * h4);
    }
  }
  return num::SymTensor2{pref * srr, pref * stt, pref * srt};
}

num::SymTensor2 PaperInteractiveModel::stress_at(const geo::Point& victim,
                                                 const geo::Point& aggressor,
                                                 const geo::Point& p) const {
  const double d = geo::distance(victim, aggressor);
  const double beta = geo::angle_of(victim, aggressor);
  const double r = geo::distance(victim, p);
  // theta of eq. (18) is measured from the victim->aggressor ray.
  const double theta = geo::angle_of(victim, p) - beta;
  const num::SymTensor2 cyl = stress_cylindrical(r, theta, d);
  // Cylindrical frame at absolute angle beta + theta.
  return num::cylindrical_to_cartesian(cyl, beta + theta);
}

}  // namespace tsv::ana
