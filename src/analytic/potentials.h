#pragma once
// Muskhelishvili complex potentials (paper eqs. (3)-(5)).
//
// A plane elastic field is represented by two holomorphic functions phi and
// psi. We store both as Laurent series in a normalized frame ("hat space"):
// lengths divided by the TSV outer radius R', potentials divided by R', so
// that evaluated stresses are in MPa directly and coefficients stay O(1).
//
//   sxx + syy           = 4 Re phi'(z)
//   syy - sxx + 2 i sxy = 2 [ conj(z) phi''(z) + psi'(z) ]
//   2 mu (ux + i uy)    = kappa phi(z) - z conj(phi'(z)) - conj(psi(z))
//
// kappa = (3 - nu)/(1 + nu) (plane stress), mu = E / (2 (1 + nu)).

#include <complex>

#include "materials/material.h"
#include "numeric/laurent.h"
#include "numeric/tensor.h"

namespace tsv::ana {

using num::Complex;

/// A phi/psi pair plus cached derivative series for fast evaluation.
class PotentialField {
 public:
  PotentialField() = default;
  PotentialField(num::LaurentSeries phi, num::LaurentSeries psi);

  const num::LaurentSeries& phi() const { return phi_; }
  const num::LaurentSeries& psi() const { return psi_; }

  /// Cartesian stress tensor (MPa) at z (hat space).
  num::SymTensor2 stress(Complex z) const;

  /// Displacement (ux + i uy) in hat-space lengths for material m.
  Complex displacement(Complex z, const mat::Material& m) const;

  /// Traction combination sigma_rr - i sigma_rt on the circle through z
  /// (polar frame centered at the origin) — paper's boundary quantity.
  Complex radial_traction(Complex z) const;

  /// Adds a real-scaled field (elastic fields are real-linear in their
  /// potentials; complex scaling would not correspond to a scaled load).
  void accumulate(const PotentialField& other, double scale);

  /// Drops negligible edge coefficients (relative threshold) to cheapen
  /// evaluation; used on per-pitch combined response fields.
  void trim(double rel_eps);

  bool empty() const { return phi_.empty() && psi_.empty(); }

 private:
  void refresh_derivatives();

  num::LaurentSeries phi_, psi_;
  num::LaurentSeries dphi_, ddphi_, dpsi_;
};

/// Stress of the explicit aggressor potential psi(z) = khat / (z - d)
/// (phi = 0) — the isolated-TSV substrate field of eq. (6) recentered, in
/// hat space (d in units of R', khat = K / R'^2 in MPa). Evaluating it in
/// closed form avoids series truncation inside the victim.
num::SymTensor2 aggressor_stress(Complex z, double d_hat, double k_hat);

/// Displacement of the aggressor potential for material m (hat space).
Complex aggressor_displacement(Complex z, double d_hat, double k_hat,
                               const mat::Material& m);

/// Traction combination sigma_rr - i sigma_rt of the aggressor field on the
/// circle |z| = r (victim-centered polar frame).
Complex aggressor_radial_traction(Complex z, double d_hat, double k_hat);

}  // namespace tsv::ana
