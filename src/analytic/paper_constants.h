#pragma once
// Faithful transcription of the paper's Appendix A.4: the closed-form K and
// the h_ij(m) coefficient functions of eq. (18).
//
// The only available source text is OCR'd and visibly damaged in places
// (e.g. "E'l", a dropped square on one (1-k^2) factor in G1, and a repeated
// factor in G3 where the G1 pattern suggests a different sign/term). We
// transcribe as printed where unambiguous and adopt the structurally
// consistent reading where the print is self-contradictory; every such spot
// is marked with a PAPER-OCR comment. The collocation-based mode solver
// (mode_solver.h) is the authoritative implementation; tests compare the two
// and EXPERIMENTS.md records the observed agreement.

#include "tsv/structure.h"

namespace tsv::ana {

/// Inputs of the Appendix A.4 formulas.
struct PaperParams {
  double ec, el, es;  ///< Young's moduli: copper, liner, substrate (MPa)
  double vc, vl, vs;  ///< Poisson ratios
  double ac, al, as;  ///< CTEs (1/K)
  double t;           ///< thermal load, K (paper: -250)
  double r_body;      ///< R, um
  double r_outer;     ///< R', um
  double k;           ///< R / R'

  static PaperParams from(const tsvlib::TsvStructure& s, double delta_t);
};

/// Closed-form K (MPa * um^2) of Appendix A.4; compare with
/// LayeredCylinder::far_field_constant().
double paper_k_constant(const PaperParams& p);

/// Coefficient machinery of Appendix A.4. Valid for |m| >= 2.
double paper_a1(const PaperParams& p);
double paper_a2(const PaperParams& p);
double paper_g1(const PaperParams& p, int m);
double paper_g2(const PaperParams& p, int m);
double paper_g3(const PaperParams& p, int m);
double paper_f_big(const PaperParams& p, int m);   ///< F(m)
double paper_f1(const PaperParams& p, int m);
double paper_f2(const PaperParams& p, int m);
double paper_f3(const PaperParams& p, int m);
double paper_h_big(const PaperParams& p, int m);   ///< H(m)

/// h_ij(m): i = 1 (TSV body), 2 (liner), 3 (substrate); j = 1..8.
double paper_h(const PaperParams& p, int i, int j, int m);

}  // namespace tsv::ana
