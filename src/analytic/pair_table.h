#pragma once
// Polar look-up table for the pair-local interactive stress field.
//
// Stage II evaluates the combined response potentials (three Horner series
// plus transforms) per (simulation point, ordered pair). For large designs
// the same pitch recurs constantly (arrays) and every pair touches tens of
// thousands of points, so tabulating the pair-local field once per pitch
// and bilinearly interpolating is markedly cheaper — the same "table
// look-up" trick the paper's Stage I uses.
//
// The table lives in the pair frame (victim at the origin, aggressor on the
// +x axis at distance d): polar samples (r, theta) with theta in [0, pi]
// (the field is mirror-symmetric: sxx/syy even, sxy odd). The radial grid
// is split at the material interfaces r = R and r = R' so the hoop-stress
// jumps are never interpolated across.
//
// Storage is float32-from-birth: samples are computed in double and
// narrowed once into SoA float arrays that both the scalar and the batch
// path read (widened back to double for the arithmetic). The narrowing
// noise (~6e-8 relative) is four orders below the table's ~1%
// interpolation budget, and a full-chip exact-pitch cache shrinks 4x —
// the f64 AoS + f64 SoA layout it replaces was the 3.3 GB RSS spike in
// the fullchip bench. Because the floats are the single authoritative
// copy, warm (snapshot-restored) and cold tables are bitwise identical.

#include <array>
#include <vector>

#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::ana {

class InteractiveStressModel;
struct RegionField;

struct PairTableOptions {
  std::size_t n_theta = 181;       ///< samples over [0, pi]
  double dr_core = 0.25;           ///< radial step in the body, um
  double dr_liner = 0.08;          ///< radial step in the liner, um
  double dr_substrate = 0.1;       ///< radial step in the substrate, um
};

class PairStressTable {
 public:
  /// Plain mirror of a table's contents for binary snapshots
  /// (io/snapshot): everything needed to reconstruct the table without
  /// re-evaluating the potential series.
  struct Data {
    double pitch = 0.0;
    double r_max = 0.0;
    std::size_t n_theta = 0;
    struct Segment {
      double r0 = 0.0;
      double r1 = 0.0;
      std::size_t nr = 0;
      /// nr x n_theta each, radial outer — the float32 storage tier
      /// (snapshot format v3 stores these verbatim; v1/v2 payloads carry
      /// f64 tensors that the snapshot layer narrows on load).
      std::vector<float> s11, s22, s12;
    };
    std::array<Segment, 3> segments;
  };

  /// Tabulates the interactive field of `model` for the given pitch out to
  /// radius r_max (um) from the victim center.
  PairStressTable(const InteractiveStressModel& model,
                  const RegionField& combined, double pitch, double r_max,
                  const PairTableOptions& options = {});

  /// Reconstructs a table from snapshot data (validates shape; throws
  /// std::invalid_argument on inconsistent dimensions).
  explicit PairStressTable(Data data);

  /// Copies the table contents into snapshot form. Round trip through the
  /// Data constructor is bitwise exact.
  Data to_data() const;

  double pitch() const { return pitch_; }
  double r_max() const { return r_max_; }
  std::size_t sample_count() const;

  /// Interactive stress in the pair-local frame at polar (r, theta);
  /// zero beyond r_max.
  num::SymTensor2 stress_local(double r, double theta) const;

  /// Interactive stress in the global frame for an ordered pair whose pitch
  /// matches this table. This is the scalar reference path (angle_of + trig
  /// rotation); `accumulate` is the batch hot path and agrees with it to
  /// <= 1e-12 relative (test_kernels).
  num::SymTensor2 stress_at(const geo::Point& victim,
                            const geo::Point& aggressor,
                            const geo::Point& p) const;

  /// Batch kernel: adds the pair's interactive stress at each of
  /// points[0..n) into out[i]. The pair-frame rotation (the beta
  /// coefficients cos 2beta = (ax^2-ay^2)/d^2, sin 2beta = 2 ax ay / d^2)
  /// is hoisted out of the point loop, leaving one sqrt and one
  /// polynomial-folded lookup angle (num::atan2_upper — no libm trig) per
  /// point over SoA float32 segment storage.
  void accumulate(const geo::Point& victim, const geo::Point& aggressor,
                  const geo::Point* points, std::size_t n,
                  num::SymTensor2* out) const;

 private:
  struct Segment {
    double r0 = 0.0;
    double r1 = 0.0;
    std::size_t nr = 0;  ///< radial samples (>= 2)
    /// Row-major (radial index outer, theta inner) SoA float32 samples —
    /// the only copy; scalar and batch paths widen on read.
    std::vector<float> s11, s22, s12;
  };

  num::SymTensor2 sample_segment(const Segment& s, double r,
                                 double theta) const;

  double pitch_ = 0.0;
  double r_max_ = 0.0;
  std::size_t n_theta_ = 0;
  double dtheta_ = 0.0;
  std::array<Segment, 3> segments_;
};

}  // namespace tsv::ana
