#include "analytic/paper_constants.h"

#include <cmath>

#include "numeric/check.h"

namespace tsv::ana {
namespace {

double kpow(double k, int e) { return std::pow(k, e); }

}  // namespace

PaperParams PaperParams::from(const tsvlib::TsvStructure& s, double delta_t) {
  s.validate();
  PaperParams p{};
  p.ec = s.body.youngs_modulus;
  p.el = s.liner.youngs_modulus;
  p.es = s.substrate.youngs_modulus;
  p.vc = s.body.poisson_ratio;
  p.vl = s.liner.poisson_ratio;
  p.vs = s.substrate.poisson_ratio;
  p.ac = s.body.cte;
  p.al = s.liner.cte;
  p.as = s.substrate.cte;
  p.t = delta_t;
  p.r_body = s.body_radius;
  p.r_outer = s.outer_radius();
  p.k = s.radius_ratio();
  return p;
}

double paper_k_constant(const PaperParams& p) {
  const double k2 = p.k * p.k;
  const double c1 = (1.0 - p.vc) / p.ec;  // (1-vc)/Ec
  const double l_plus = (1.0 + p.vl) / p.el;
  const double l_minus = (1.0 - p.vl) / p.el;
  const double s_plus = (1.0 + p.vs) / p.es;
  const double num =
      (c1 + l_plus) * (p.al - p.as) + (c1 + l_plus) * (p.ac - p.al) * k2 -
      (c1 - l_minus) * (p.ac - p.as) * k2;
  const double den = (c1 + l_plus) * (s_plus + l_minus) -
                     (c1 - l_minus) * (s_plus - l_plus) * k2;
  return -p.t * p.r_outer * p.r_outer * num / den;
}

double paper_a1(const PaperParams& p) {
  const double ratio = p.ec / p.el;
  return (1.0 + ratio * (3.0 - p.vl) / (1.0 + p.vc)) /
         (1.0 - ratio * (1.0 + p.vl) / (1.0 + p.vc));
}

double paper_a2(const PaperParams& p) {
  const double ratio = p.ec / p.el;
  return (1.0 - ratio * (3.0 - p.vl) / (3.0 - p.vc)) /
         (1.0 + ratio * (1.0 + p.vl) / (3.0 - p.vc));
}

double paper_g1(const PaperParams& p, int m) {
  TSV_REQUIRE(std::abs(m) >= 2, "G1 defined for |m| >= 2");
  const double k = p.k;
  const double k2 = k * k;
  const double a1 = paper_a1(p);
  const double a2 = paper_a2(p);
  const double m2 = static_cast<double>(m) * m;
  const double el = p.el;
  const double common = a1 * a2 * kpow(k, 4) - a1 * kpow(k, 2 * m + 2) -
                        a2 * kpow(k, 2 - 2 * m) +
                        (1.0 - k2) * (1.0 - k2) * (m2 - 1.0) + 1.0;
  // PAPER-OCR: the printed first bracket shows (1 - k^2)(m^2 - 1) without the
  // square; F1 and G2 carry (1 - k^2)^2 (m^2 - 1), so we use the squared form
  // consistently.
  const double b1 = (4.0 * a1 * kpow(k, 2 * m + 2) - 4.0) / el +
                    ((1.0 + p.vl) / el - (1.0 + p.vs) / p.es) * common;
  const double b2 = (4.0 * a2 * kpow(k, 2 - 2 * m) - 4.0) / el +
                    ((1.0 + p.vl) / el + (3.0 - p.vs) / p.es) * common;
  return 16.0 * (k2 - 1.0) * (k2 - 1.0) / (el * el) + b1 * b2 / (m2 - 1.0);
}

double paper_g2(const PaperParams& p, int m) {
  TSV_REQUIRE(std::abs(m) >= 2, "G2 defined for |m| >= 2");
  const double k = p.k;
  const double k2 = k * k;
  const double a1 = paper_a1(p);
  const double a2 = paper_a2(p);
  const double m2 = static_cast<double>(m) * m;
  const double common = a1 * a2 * kpow(k, 4) - a1 * kpow(k, 2 * m + 2) -
                        a2 * kpow(k, 2 - 2 * m) + 1.0 +
                        (1.0 - k2) * (1.0 - k2) * (m2 - 1.0);
  return 16.0 / (p.el * p.es) * (1.0 - k2) * common;
}

double paper_g3(const PaperParams& p, int m) {
  TSV_REQUIRE(std::abs(m) >= 2, "G3 defined for |m| >= 2");
  const double k = p.k;
  const double k2 = k * k;
  const double a1 = paper_a1(p);
  const double a2 = paper_a2(p);
  const double m2 = static_cast<double>(m) * m;
  const double el = p.el;
  const double common = a1 * a2 * kpow(k, 4) - a1 * kpow(k, 2 - 2 * m) -
                        a2 * kpow(k, 2 * m + 2) +
                        (1.0 - k2) * (1.0 - k2) * (m2 - 1.0) + 1.0;
  const double b1 = (4.0 * a1 * kpow(k, 2 - 2 * m) - 4.0) / el +
                    ((1.0 + p.vl) / el - (1.0 + p.vs) / p.es) * common;
  // PAPER-OCR: printed G3 repeats the (1+vl)/El - (1+vs)/Es factor in the
  // second bracket; the G1 pattern (mirrored under m -> -m) suggests
  // (1+vl)/El + (3-vs)/Es, which we use.
  const double b2 = (4.0 * a2 * kpow(k, 2 * m + 2) - 4.0) / el +
                    ((1.0 + p.vl) / el + (3.0 - p.vs) / p.es) * common;
  return 16.0 * (k2 - 1.0) * (k2 - 1.0) / (el * el) + b1 * b2 / (m2 - 1.0);
}

double paper_f_big(const PaperParams& p, int m) {
  TSV_REQUIRE(std::abs(m) >= 2, "F defined for |m| >= 2");
  if (m <= -2) return paper_g2(p, m) / paper_g1(p, m);
  return paper_g3(p, m) / paper_g1(p, -m);
}

double paper_f1(const PaperParams& p, int m) {
  const double k = p.k;
  const double k2 = k * k;
  const double a1 = paper_a1(p);
  const double a2 = paper_a2(p);
  const double m2 = static_cast<double>(m) * m;
  return a1 * a2 * kpow(k, 4) - a1 * kpow(k, 2 * m + 2) -
         a2 * kpow(k, 2 - 2 * m) + 1.0 +
         (1.0 - k2) * (1.0 - k2) * (m2 - 1.0);
}

double paper_f2(const PaperParams& p, int m) {
  const double k2 = p.k * p.k;
  const double dm = static_cast<double>(m);
  return (1.0 - k2) * (dm + 1.0) * paper_f_big(p, m) +
         (paper_a2(p) * kpow(p.k, 2 - 2 * m) - 1.0) *
             (paper_f_big(p, -m) + dm + 1.0);
}

double paper_f3(const PaperParams& p, int m) {
  const double k2 = p.k * p.k;
  const double dm = static_cast<double>(m);
  return (1.0 - k2) * (dm + 1.0) * (paper_f_big(p, m) - dm + 1.0) +
         (paper_a1(p) * kpow(p.k, 2 - 2 * m) - 1.0) * paper_f_big(p, -m);
}

double paper_h_big(const PaperParams& p, int m) {
  TSV_REQUIRE(std::abs(m) >= 2, "H defined for |m| >= 2");
  if (m <= -2) return paper_f2(p, m) / paper_f1(p, m);
  return paper_f3(p, m) / paper_f1(p, -m);
}

double paper_h(const PaperParams& p, int i, int j, int m) {
  TSV_REQUIRE(i >= 1 && i <= 3 && j >= 1 && j <= 8, "h_ij index out of range");
  TSV_REQUIRE(m >= 2, "eq. (18) sums over m >= 2");
  const double dm = static_cast<double>(m);
  const double k2 = p.k * p.k;
  const double a1 = paper_a1(p);
  const double a2 = paper_a2(p);
  const double hm = paper_h_big(p, m);
  const double hmm = paper_h_big(p, -m);
  const double fm = paper_f_big(p, m);
  const double fmm = paper_f_big(p, -m);
  switch (i) {
    case 1:
      switch (j) {
        case 1:
          return (1.0 - a2) * (2.0 - dm) * hm;
        case 2:
          return (dm - 1.0) + (a1 - 1.0) * kpow(p.k, 2 - 2 * m) * hmm +
                 (a2 - 1.0) * k2 * (dm - 1.0) * hm;
        case 5:
          return (1.0 - a2) * (2.0 + dm) * hm;
        case 7:
          return (1.0 - a2) * dm * hm;
        default:
          return 0.0;  // h13, h14, h16, h18
      }
    case 2:
      switch (j) {
        case 1:
          return (2.0 - dm) * hm;
        case 2:
          return (dm - 1.0) + (1.0 - dm) * k2 * hm +
                 a1 * kpow(p.k, 2 - 2 * m) * hmm;
        case 3:
          return (2.0 + dm) * hmm;
        case 4:
          return (dm + 1.0) * k2 * hmm + a2 * kpow(p.k, 2 * m + 2) * hm;
        case 5:
          return dm * hm;
        case 6:
          return dm * hmm;
        case 7:
          return (2.0 + dm) * hm;
        case 8:
          return (2.0 - dm) * hmm;
        default:
          return 0.0;
      }
    case 3:
      switch (j) {
        case 3:
          return -(2.0 + dm) * fm;
        case 4:
          return fmm - (dm + 1.0) * fm;
        case 6:
          return (dm - 2.0) * fm;
        case 8:
          return -dm * fm;
        default:
          return 0.0;  // h31, h32, h35, h37
      }
    default:
      return 0.0;
  }
}

}  // namespace tsv::ana
