#pragma once
// The ideal (isolated) single-TSV stress field of Sec. 3.2, backed by the
// exact layered-cylinder solution. In the substrate it reduces to paper
// eq. (6): sigma_rr = K / r'^2 = -sigma_tt, sigma_rt = 0; inside the liner
// and body it carries the exact axisymmetric field, which linear
// superposition also needs when a simulation point falls inside a TSV.

#include "analytic/layered_cylinder.h"
#include "geometry/point.h"
#include "materials/material.h"
#include "numeric/tensor.h"
#include "tsv/structure.h"

namespace tsv::ana {

class SingleTsvModel {
 public:
  SingleTsvModel(const tsvlib::TsvStructure& structure,
                 const mat::ThermalLoad& load);

  const tsvlib::TsvStructure& structure() const { return structure_; }

  /// K of eq. (6), MPa*um^2.
  double k_constant() const { return k_; }
  /// K / R'^2: substrate radial stress right at the liner interface, MPa.
  double k_hat() const { return k_ / (outer_radius() * outer_radius()); }

  double outer_radius() const { return structure_.outer_radius(); }
  double body_radius() const { return structure_.body_radius; }

  /// Stress in the cylindrical frame at distance r from the TSV center
  /// (valid in all three regions).
  num::SymTensor2 stress_cylindrical(double r) const {
    return solution_.stress(r);
  }

  /// Cartesian stress at point p induced by a TSV centered at `center`.
  num::SymTensor2 stress_at(const geo::Point& center,
                            const geo::Point& p) const;

  /// Radial displacement at distance r from the center, um.
  double radial_displacement(double r) const {
    return solution_.radial_displacement(r);
  }

  const LayeredCylinder& solution() const { return solution_; }

 private:
  tsvlib::TsvStructure structure_;
  LayeredCylinder solution_;
  double k_ = 0.0;
};

}  // namespace tsv::ana
