#include "analytic/single_tsv.h"

#include <cmath>

namespace tsv::ana {
namespace {

std::vector<Layer> layers_of(const tsvlib::TsvStructure& s) {
  s.validate();
  if (s.liner_thickness > 0.0) {
    return {{s.body_radius, s.body},
            {s.outer_radius(), s.liner},
            {0.0, s.substrate}};
  }
  return {{s.body_radius, s.body}, {0.0, s.substrate}};
}

}  // namespace

SingleTsvModel::SingleTsvModel(const tsvlib::TsvStructure& structure,
                               const mat::ThermalLoad& load)
    : structure_(structure),
      solution_(layers_of(structure), load.delta_t, structure.substrate.cte) {
  k_ = solution_.far_field_constant();
}

num::SymTensor2 SingleTsvModel::stress_at(const geo::Point& center,
                                          const geo::Point& p) const {
  const double r = geo::distance(center, p);
  const num::SymTensor2 cyl = solution_.stress(r);
  if (r == 0.0) return cyl;  // isotropic at the center, no rotation needed
  const double theta = geo::angle_of(center, p);
  return num::cylindrical_to_cartesian(cyl, theta);
}

}  // namespace tsv::ana
