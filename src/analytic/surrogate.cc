#include "analytic/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numbers>
#include <random>
#include <type_traits>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "analytic/interaction.h"
#include "numeric/check.h"
#include "numeric/kernels.h"

namespace tsv::ana {
namespace {

constexpr std::size_t kMaxOrder = 64;
constexpr std::size_t kMaxSegments = 8;

std::uint64_t next_surrogate_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// First-kind Chebyshev-Gauss node m of n: cos(pi (m + 1/2) / n). Interior
/// only — sampling never lands exactly on a segment end or on sin(theta)=0.
double cheb_node(std::size_t m, std::size_t n) {
  return std::cos(std::numbers::pi * (static_cast<double>(m) + 0.5) /
                  static_cast<double>(n));
}

/// cm[k*n + m] = cos(k pi (m + 1/2) / n), the discrete cosine kernel of the
/// Chebyshev-Gauss forward transform.
std::vector<double> cheb_cos_matrix(std::size_t n) {
  std::vector<double> cm(n * n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t m = 0; m < n; ++m) {
      cm[k * n + m] =
          std::cos(std::numbers::pi * static_cast<double>(k) *
                   (static_cast<double>(m) + 0.5) / static_cast<double>(n));
    }
  }
  return cm;
}

/// In-place forward Chebyshev transform of one strided line of samples at
/// the Gauss nodes: c_k = (2/n) sum_m f(x_m) cos(k pi (m+1/2)/n), c_0
/// halved, so f(x) = sum_k c_k T_k(x) exactly at the nodes.
void cheb_transform_line(double* base, std::size_t stride, std::size_t n,
                         const std::vector<double>& cm,
                         std::vector<double>& tmp) {
  tmp.resize(n);
  const double scale = 2.0 / static_cast<double>(n);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t m = 0; m < n; ++m) acc += base[m * stride] * cm[k * n + m];
    tmp[k] = scale * acc;
  }
  tmp[0] *= 0.5;
  for (std::size_t k = 0; k < n; ++k) base[k * stride] = tmp[k];
}

/// Per-thread memo of the pitch-contracted coefficient matrices. Keyed on
/// (surrogate id, pitch bits): full-chip sweeps evaluate long runs of pairs
/// at repeated pitches, so the contraction amortizes to ~zero.
struct ContractionMemo {
  std::uint64_t id = 0;
  std::uint64_t pitch_bits = 0;
  std::vector<double> m;
};

ContractionMemo& tls_contraction_memo() {
  static thread_local ContractionMemo memo;
  return memo;
}

/// Flat per-segment view for the hot kernel (selection threshold, radial
/// map, orders, offset into the contracted matrices).
struct SegView {
  double r1 = 0.0;  ///< selection: first segment with r < r1 wins
  double t_mid = 0.0;
  double t_half_inv = 0.0;
  std::uint32_t inverse = 0;
  std::uint32_t nr = 0;
  std::uint32_t nx = 0;
  std::uint64_t offset = 0;
};

struct KernelArgs {
  const SegView* segs = nullptr;
  const double* contracted = nullptr;
  std::size_t nseg = 0;
  double r_max2 = 0.0;
  double vx = 0.0, vy = 0.0;
  double cb = 0.0, sb = 0.0;    ///< cos/sin of the pair angle beta
  double c2b = 0.0, s2b = 0.0;  ///< cos/sin of 2 beta
};

/// Widest SIMD block any dispatch variant uses: 8 doubles = one AVX-512
/// register (the AVX2 variant runs 4-wide, the generic one legalizes the
/// same 4-wide code to SSE2 pairs). A lane's result depends only on its own
/// values (every op is elementwise), so a point's stress is bitwise
/// identical whatever block or lane it lands in — in particular stress_at
/// (n = 1, padded lanes) matches the batch kernel.
constexpr std::size_t kMaxLanes = 8;

/// Angular columns are stored even orders first, then odd (see finalize):
/// position of the T_j(x) coefficient within an nx-column row.
constexpr std::size_t angular_column(std::size_t j, std::size_t nx) {
  return j % 2 == 0 ? j / 2 : (nx + 1) / 2 + j / 2;
}

/// Reorders every nx-wide angular row between natural Chebyshev order
/// (Data / snapshots) and the kernel's even-orders-first layout. A pure
/// reshuffle — round trips are bitwise.
void permute_angular_rows(std::vector<double>& coeffs, std::size_t nx,
                          bool to_kernel_order) {
  if (nx < 3) return;  // the parity split is the identity below order 3
  std::vector<double> row(nx);
  for (std::size_t base = 0; base < coeffs.size(); base += nx) {
    double* r = coeffs.data() + base;
    if (to_kernel_order) {
      for (std::size_t j = 0; j < nx; ++j) row[angular_column(j, nx)] = r[j];
    } else {
      for (std::size_t j = 0; j < nx; ++j) row[j] = r[angular_column(j, nx)];
    }
    std::copy(row.begin(), row.end(), r);
  }
}

/// Thread-local per-segment SoA buckets (radial map value, cos/sin(theta),
/// scatter index), padded to whole lane blocks. Reused across calls, so
/// steady-state allocation cost is zero.
struct SoaScratch {
  std::vector<double> th[kMaxSegments];
  std::vector<double> cx[kMaxSegments];
  std::vector<double> sx[kMaxSegments];
  std::vector<std::uint32_t> idx[kMaxSegments];
};

typedef double v4d __attribute__((vector_size(4 * sizeof(double))));
#if defined(__x86_64__) && defined(__GNUC__)
typedef double v8d __attribute__((vector_size(8 * sizeof(double))));
#endif

/// Matching integer-lane vector (vector compares on V produce this shape).
template <class V>
struct LaneInt;
template <>
struct LaneInt<v4d> {
  typedef long long type __attribute__((vector_size(4 * sizeof(long long))));
};
#if defined(__x86_64__) && defined(__GNUC__)
template <>
struct LaneInt<v8d> {
  typedef long long type __attribute__((vector_size(8 * sizeof(long long))));
};
#endif

SoaScratch& tls_soa_scratch() {
  static thread_local SoaScratch scratch;
  return scratch;
}

#if defined(__x86_64__) && defined(__GNUC__)
/// AVX-512 drain of one staged chunk: per segment, compress-store the lanes
/// that selected it (vcompresspd preserves lane order, so bucket contents
/// are bitwise the scalar append's) and advance the fill count once — the
/// scalar drain's per-point fill[] load-increment-store chain disappears.
__attribute__((target("avx512f,avx512dq,avx512vl,avx2,fma,popcnt"))) inline void
drain_chunk_avx512(const KernelArgs& k, SoaScratch& sc, std::size_t* fill,
                   typename LaneInt<v8d>::type seg, v8d r, v8d inv_r, v8d x,
                   v8d st, std::size_t i, unsigned live_mask) {
  const __m512i segv = (__m512i)seg;
  const __m256i idxv = _mm256_add_epi32(
      _mm256_set1_epi32(static_cast<int>(i)),
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  const v8d one = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  for (std::size_t s = 0; s < k.nseg; ++s) {
    const SegView& sv = k.segs[s];
    __mmask8 msk = _mm512_cmpeq_epi64_mask(
        segv, _mm512_set1_epi64(static_cast<long long>(s)));
    msk &= static_cast<__mmask8>(live_mask);
    if (msk == 0) continue;
    const v8d v = sv.inverse != 0 ? inv_r : r;
    v8d th = (v - sv.t_mid) * sv.t_half_inv;
    th = th > one ? one : th;
    th = th < -one ? -one : th;
    const std::size_t pos = fill[s];
    _mm512_mask_compressstoreu_pd(sc.th[s].data() + pos, msk, (__m512d)th);
    _mm512_mask_compressstoreu_pd(sc.cx[s].data() + pos, msk, (__m512d)x);
    _mm512_mask_compressstoreu_pd(sc.sx[s].data() + pos, msk, (__m512d)st);
    _mm256_mask_compressstoreu_epi32(sc.idx[s].data() + pos, msk, idxv);
    fill[s] =
        pos + static_cast<std::size_t>(__builtin_popcount(unsigned{msk}));
  }
}
#endif

/// The batch kernel: one sqrt, one divide, a Chebyshev radial combine and
/// three halved-degree angular Clenshaw sums per point — no trig. Two
/// passes: stage every in-range point's (t_hat, cos theta, sin theta) and
/// bucket by radial segment, then evaluate each bucket in lane-wide SoA
/// blocks (all lanes share the segment's orders and coefficient rows, so
/// the radial combine is broadcast-FMA and the serial Clenshaw chains run
/// lane-parallel). Templated on the lane vector type and forced inline into
/// the ISA dispatch wrappers below so each wrapper compiles the same lane
/// math at its own register width.
template <class V>
__attribute__((always_inline)) inline void kernel_body(
    const KernelArgs& k, const geo::Point* points, std::size_t n,
    num::SymTensor2* out) {
  constexpr std::size_t kLanes = sizeof(V) / sizeof(double);
  static_assert(kLanes <= kMaxLanes);
  SoaScratch& sc = tls_soa_scratch();
  for (std::size_t s = 0; s < k.nseg; ++s) {
    if (sc.th[s].size() < n + kMaxLanes) {
      sc.th[s].resize(n + kMaxLanes);
      sc.cx[s].resize(n + kMaxLanes);
      sc.sx[s].resize(n + kMaxLanes);
      sc.idx[s].resize(n + kMaxLanes);
    }
  }
  std::size_t fill[kMaxSegments] = {};
  // Pass 1 runs lane-chunked so the sqrt, divide, pair-frame rotation and
  // segment select all execute packed; only the data-dependent bucket
  // append drains each chunk lane by lane. A partial final chunk pads by
  // replicating lane 0 (every op is elementwise, so a point's staged values
  // never depend on its lane), keeping stress_at (n = 1) bitwise the batch.
  typedef typename LaneInt<V>::type VI;
  const V vz = V{} * 0.0;
  for (std::size_t i = 0; i < n; i += kLanes) {
    const std::size_t cnt = n - i < kLanes ? n - i : kLanes;
    V px, py;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::size_t ii = l < cnt ? i + l : i;
      px[l] = points[ii].x;
      py[l] = points[ii].y;
    }
    px -= k.vx;
    py -= k.vy;
    const V r2 = px * px + py * py;
    V r;
    for (std::size_t l = 0; l < kLanes; ++l) r[l] = __builtin_sqrt(r2[l]);
    // Pair-frame angle without atan2: x = cos(theta) = (rotated x)/r and
    // the *signed* sin(theta) = (rotated y)/r, which carries the theta
    // mirror antisymmetry of s12 with no branch at all. Lanes at the victim
    // center (r2 = 0) blend to the benign (x, st, inv_r) = (1, 0, 0).
    const VI live = r2 > vz;
    const V inv_r = live ? 1.0 / r : vz;
    V x = (k.cb * px + k.sb * py) * inv_r;
    x = live ? x : vz + 1.0;
    x = x > 1.0 ? vz + 1.0 : x;
    x = x < -1.0 ? vz - 1.0 : x;
    const V st = (k.cb * py - k.sb * px) * inv_r;
    // Branchless segment select: count the inner boundaries below r, and
    // push out-of-range lanes (r2 >= r_max^2) past every real segment. The
    // last view's r1 is +inf, so in-range lanes stay below nseg.
    VI seg = {};
    for (std::size_t t = 0; t + 1 < k.nseg; ++t) seg -= r >= (vz + k.segs[t].r1);
    seg -= (r2 >= (vz + k.r_max2)) * static_cast<long long>(kMaxSegments);
#if defined(__x86_64__) && defined(__GNUC__)
    if constexpr (kLanes == 8) {
      drain_chunk_avx512(k, sc, fill, seg, r, inv_r, x, st, i,
                         cnt == kLanes ? 0xffu : (1u << cnt) - 1u);
      continue;
    }
#endif
    for (std::size_t l = 0; l < cnt; ++l) {
      const std::size_t s = static_cast<std::size_t>(seg[l]);
      if (s >= k.nseg) continue;
      const SegView& sv = k.segs[s];
      const double v = sv.inverse != 0 ? inv_r[l] : r[l];
      double th = (v - sv.t_mid) * sv.t_half_inv;
      if (th > 1.0) th = 1.0;
      if (th < -1.0) th = -1.0;
      const std::size_t pos = fill[s]++;
      sc.th[s][pos] = th;
      sc.cx[s][pos] = x[l];
      sc.sx[s][pos] = st[l];
      sc.idx[s][pos] = static_cast<std::uint32_t>(i + l);
    }
  }
  // Pad the last block of each bucket with benign lane values (finite
  // everywhere below; never scattered).
  for (std::size_t s = 0; s < k.nseg; ++s) {
    const std::size_t pad_end = (fill[s] + kLanes - 1) / kLanes * kLanes;
    for (std::size_t pos = fill[s]; pos < pad_end; ++pos) {
      sc.th[s][pos] = 0.0;
      sc.cx[s][pos] = 0.0;
      sc.sx[s][pos] = 0.0;
    }
  }

  // One lane block = one GCC generic vector: the target-attributed wrappers
  // emit packed ops at their native width, the generic wrapper legalizes the
  // same code to SSE2 pairs — either way the lane math is guaranteed packed
  // instead of depending on the auto-vectorizer.
  for (std::size_t s = 0; s < k.nseg; ++s) {
    const std::size_t m = fill[s];
    if (m == 0) continue;
    const SegView& sv = k.segs[s];
    const std::size_t nr = sv.nr;
    const std::size_t nx = sv.nx;
    const std::size_t ne = (nx + 1) / 2;  // even angular orders
    const std::size_t no = nx / 2;        // odd angular orders
    const double* c11 = k.contracted + sv.offset;
    const double* c22 = c11 + nr * nx;
    const double* c12 = c22 + nr * nx;
    const double* th_b = sc.th[s].data();
    const double* cx_b = sc.cx[s].data();
    const double* sx_b = sc.sx[s].data();
    const std::uint32_t* idx_b = sc.idx[s].data();
    for (std::size_t b = 0; b < m; b += kLanes) {
      V th, x;
      std::memcpy(&th, th_b + b, sizeof(th));
      std::memcpy(&x, cx_b + b, sizeof(x));
      const V vzero = th - th;
      // Radial Chebyshev basis, computed once per block and reused by every
      // (component, angular) coefficient column.
      V tarr[kMaxOrder];
      tarr[0] = vzero + 1.0;
      tarr[1] = th;
      const V two_th = th + th;
      for (std::size_t a = 2; a < nr; ++a)
        tarr[a] = two_th * tarr[a - 1] - tarr[a - 2];
      // Radial combine d[j] = sum_a T_a(th) c[a][j] in register-tiled
      // column groups: the tile accumulators live in registers across the
      // whole a loop and only the 3 * nx finished sums are stored (a
      // j-major update loop would store 3 * nr * nx partial sums and
      // saturate the store port long before the FMA ports).
      V d11[kMaxOrder], d22[kMaxOrder], d12[kMaxOrder];
      const auto combine = [&](auto tw, std::size_t j0) {
        constexpr std::size_t kTw = tw();
        V s11[kTw], s22[kTw], s12[kTw];
        for (std::size_t t = 0; t < kTw; ++t) {
          s11[t] = vzero + c11[j0 + t];
          s22[t] = vzero + c22[j0 + t];
          s12[t] = vzero + c12[j0 + t];
        }
        for (std::size_t a = 1; a < nr; ++a) {
          const V ta = tarr[a];
          const double* r11 = c11 + a * nx + j0;
          const double* r22 = c22 + a * nx + j0;
          const double* r12 = c12 + a * nx + j0;
          for (std::size_t t = 0; t < kTw; ++t) {
            s11[t] += ta * r11[t];
            s22[t] += ta * r22[t];
            s12[t] += ta * r12[t];
          }
        }
        for (std::size_t t = 0; t < kTw; ++t) {
          d11[j0 + t] = s11[t];
          d22[j0 + t] = s22[t];
          d12[j0 + t] = s12[t];
        }
      };
      std::size_t j = 0;
      for (; j + 4 <= nx; j += 4)
        combine(std::integral_constant<std::size_t, 4>{}, j);
      for (; j + 2 <= nx; j += 2)
        combine(std::integral_constant<std::size_t, 2>{}, j);
      if (j < nx) combine(std::integral_constant<std::size_t, 1>{}, j);
      // Angular sums in x = cos(theta): T_j(cos th) = cos(j th), so these
      // *are* the Fourier sums of the pair field, trig-free. The columns
      // arrive split by parity (see finalize): cos(2k th) = T_k(y) and
      // cos((2k+1) th) = cos(th) P_k(y) with y = cos(2 th) = 2 x^2 - 1 and
      // P_0 = 1, P_1 = 2y - 1 sharing the T recurrence (Clenshaw sum
      // b_0 - b_1). Splitting halves the serial chain each block waits on,
      // and the six chains (3 components x even/odd) overlap in flight.
      const V y = 2.0 * x * x - 1.0;
      const V two_y = y + y;
      V a1 = vzero, a2 = vzero;
      V e1 = vzero, e2 = vzero;
      V g1 = vzero, g2 = vzero;
      for (std::size_t q = ne; q-- > 1;) {
        const V ba = d11[q] + two_y * a1 - a2;
        const V be = d22[q] + two_y * e1 - e2;
        const V bg = d12[q] + two_y * g1 - g2;
        a2 = a1;
        a1 = ba;
        e2 = e1;
        e1 = be;
        g2 = g1;
        g1 = bg;
      }
      V oa1 = vzero, oa2 = vzero;
      V oe1 = vzero, oe2 = vzero;
      V og1 = vzero, og2 = vzero;
      for (std::size_t q = no; q-- > 1;) {
        const V ba = d11[ne + q] + two_y * oa1 - oa2;
        const V be = d22[ne + q] + two_y * oe1 - oe2;
        const V bg = d12[ne + q] + two_y * og1 - og2;
        oa2 = oa1;
        oa1 = ba;
        oe2 = oe1;
        oe1 = be;
        og2 = og1;
        og1 = bg;
      }
      V f11 = d11[0] + y * a1 - a2;
      V f22 = d22[0] + y * e1 - e2;
      V g12 = d12[0] + y * g1 - g2;
      if (no > 0) {
        f11 += x * ((d11[ne] + two_y * oa1 - oa2) - oa1);
        f22 += x * ((d22[ne] + two_y * oe1 - oe2) - oe1);
        g12 += x * ((d12[ne] + two_y * og1 - og2) - og1);
      }
      // Back-rotation into chip frame at full lane width (the lane-wise
      // algebra of num::rotate_double_angle), leaving only the indexed
      // read-modify-write of `out` per lane.
      V stv;
      std::memcpy(&stv, sx_b + b, sizeof(stv));
      const V s12 = stv * g12;
      const V mean = 0.5 * (f11 + f22);
      const V dev = 0.5 * (f11 - f22);
      const V rot = dev * k.c2b - s12 * k.s2b;
      const V o11 = mean + rot;
      const V o22 = mean - rot;
      const V o12 = dev * k.s2b + s12 * k.c2b;
      for (std::size_t w = 0; w < kLanes && b + w < m; ++w) {
        num::SymTensor2& o = out[idx_b[b + w]];
        o.s11 += o11[w];
        o.s22 += o22[w];
        o.s12 += o12[w];
      }
    }
  }
}

using KernelFn = void (*)(const KernelArgs&, const geo::Point*, std::size_t,
                          num::SymTensor2*);

void kernel_generic(const KernelArgs& k, const geo::Point* points,
                    std::size_t n, num::SymTensor2* out) {
  kernel_body<v4d>(k, points, n, out);
}

#if defined(__x86_64__) && defined(__GNUC__)
// The build intentionally carries no global -march flags (baseline x86-64
// codegen keeps every committed kernel baseline bit-stable), so the FMA
// throughput this kernel's budget assumes is opted into locally: the same
// body is compiled again for AVX2+FMA (4 lanes) and AVX-512 (8 lanes) and
// selected once at runtime. Results differ from the generic path only by
// fused-rounding regrouping; the certificate is computed through this very
// dispatch, so the certified bound always covers the kernel actually
// running on the host.
__attribute__((target("avx2,fma"))) void kernel_avx2(const KernelArgs& k,
                                                     const geo::Point* points,
                                                     std::size_t n,
                                                     num::SymTensor2* out) {
  kernel_body<v4d>(k, points, n, out);
}

__attribute__((target("avx512f,avx512dq,avx512vl,avx2,fma,popcnt"))) void
kernel_avx512(const KernelArgs& k, const geo::Point* points, std::size_t n,
              num::SymTensor2* out) {
  kernel_body<v8d>(k, points, n, out);
}

KernelFn select_kernel() {
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl"))
    return kernel_avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return kernel_avx2;
  return kernel_generic;
}
#else
KernelFn select_kernel() { return kernel_generic; }
#endif

KernelFn active_kernel() {
  static const KernelFn kernel = select_kernel();
  return kernel;
}

}  // namespace

PairSurrogate::PairSurrogate(Data data) {
  pitch_min_ = data.pitch_min;
  pitch_max_ = data.pitch_max;
  r_max_ = data.r_max;
  pitch_order_ = data.pitch_order;
  certificate_ = data.certificate;
  segments_.reserve(data.segments.size());
  for (Data::Segment& in : data.segments) {
    Segment s;
    s.inverse_radial = in.inverse_radial != 0;
    s.r0 = in.r0;
    s.r1 = in.r1;
    s.nr = in.nr;
    s.nx = in.nx;
    s.coeffs = std::move(in.coeffs);
    segments_.push_back(std::move(s));
  }
  finalize();
}

void PairSurrogate::finalize() {
  TSV_REQUIRE(pitch_min_ > 0.0 && pitch_max_ > pitch_min_,
              "surrogate data: pitch domain must be a positive interval");
  TSV_REQUIRE(r_max_ > 0.0, "surrogate data: r_max must be positive");
  TSV_REQUIRE(pitch_order_ >= 2 && pitch_order_ <= kMaxOrder,
              "surrogate data: pitch order out of range");
  TSV_REQUIRE(!segments_.empty() && segments_.size() <= kMaxSegments,
              "surrogate data: segment count out of range");
  segment_offsets_.assign(segments_.size() + 1, 0);
  double prev = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    Segment& s = segments_[i];
    TSV_REQUIRE(s.r0 == prev && s.r1 > s.r0,
                "surrogate data: segments must tile [0, r_max] contiguously");
    TSV_REQUIRE(!s.inverse_radial || s.r0 > 0.0,
                "surrogate data: inverse-radial segment needs r0 > 0");
    TSV_REQUIRE(s.nr >= 2 && s.nr <= kMaxOrder && s.nx >= 1 &&
                    s.nx <= kMaxOrder,
                "surrogate data: segment orders out of range");
    TSV_REQUIRE(s.coeffs.size() == pitch_order_ * 3 * s.nr * s.nx,
                "surrogate data: segment coefficient shape mismatch");
    const double v_lo = s.inverse_radial ? 1.0 / s.r1 : s.r0;
    const double v_hi = s.inverse_radial ? 1.0 / s.r0 : s.r1;
    s.t_mid = 0.5 * (v_lo + v_hi);
    s.t_half_inv = 2.0 / (v_hi - v_lo);
    // Kernel layout: angular columns split by parity so the halved-degree
    // even/odd Clenshaw sums read contiguous coefficient runs. to_data()
    // restores natural Chebyshev order.
    permute_angular_rows(s.coeffs, s.nx, /*to_kernel_order=*/true);
    segment_offsets_[i + 1] = segment_offsets_[i] + 3 * s.nr * s.nx;
    prev = s.r1;
  }
  TSV_REQUIRE(prev == r_max_, "surrogate data: segments must reach r_max");
  // Pitch axis map in q = 1/pitch (see the header: the interaction is
  // Laurent in the pair distance, so Chebyshev-in-q converges much faster
  // at the steep small-pitch end than Chebyshev-in-pitch).
  const double q_lo = 1.0 / pitch_max_;
  const double q_hi = 1.0 / pitch_min_;
  pitch_q_mid_ = 0.5 * (q_lo + q_hi);
  pitch_q_half_inv_ = 2.0 / (q_hi - q_lo);
  id_ = next_surrogate_id();
  counters_ = std::make_unique<Counters>();
}

PairSurrogate::Data PairSurrogate::to_data() const {
  Data data;
  data.pitch_min = pitch_min_;
  data.pitch_max = pitch_max_;
  data.r_max = r_max_;
  data.pitch_order = pitch_order_;
  data.certificate = certificate_;
  data.segments.reserve(segments_.size());
  for (const Segment& s : segments_) {
    Data::Segment out;
    out.inverse_radial = s.inverse_radial ? 1 : 0;
    out.r0 = s.r0;
    out.r1 = s.r1;
    out.nr = s.nr;
    out.nx = s.nx;
    out.coeffs = s.coeffs;
    permute_angular_rows(out.coeffs, out.nx, /*to_kernel_order=*/false);
    data.segments.push_back(std::move(out));
  }
  return data;
}

std::uint64_t PairSurrogate::coefficient_count() const {
  std::uint64_t n = 0;
  for (const Segment& s : segments_) n += s.coeffs.size();
  return n;
}

std::vector<double> PairSurrogate::radial_boundaries() const {
  std::vector<double> b{0.0};
  for (const Segment& s : segments_) b.push_back(s.r1);
  return b;
}

const double* PairSurrogate::contracted_for_pitch(double pitch) const {
  ContractionMemo& memo = tls_contraction_memo();
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(pitch));
  std::memcpy(&bits, &pitch, sizeof(bits));
  if (memo.id == id_ && memo.pitch_bits == bits && !memo.m.empty())
    return memo.m.data();
  memo.m.resize(segment_offsets_.back());
  double ph = (1.0 / pitch - pitch_q_mid_) * pitch_q_half_inv_;
  if (ph > 1.0) ph = 1.0;
  if (ph < -1.0) ph = -1.0;
  double t[kMaxOrder];
  t[0] = 1.0;
  t[1] = ph;
  for (std::size_t a = 2; a < pitch_order_; ++a)
    t[a] = 2.0 * ph * t[a - 1] - t[a - 2];
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    const std::size_t block = 3 * seg.nr * seg.nx;
    double* dst = memo.m.data() + segment_offsets_[s];
    const double* src = seg.coeffs.data();
    for (std::size_t q = 0; q < block; ++q) dst[q] = src[q];
    for (std::size_t a = 1; a < pitch_order_; ++a) {
      const double ta = t[a];
      const double* plane = src + a * block;
      for (std::size_t q = 0; q < block; ++q) dst[q] += ta * plane[q];
    }
  }
  memo.id = id_;
  memo.pitch_bits = bits;
  return memo.m.data();
}

void PairSurrogate::accumulate(const geo::Point& victim,
                               const geo::Point& aggressor,
                               const geo::Point* points, std::size_t n,
                               num::SymTensor2* out) const {
  const double ax = aggressor.x - victim.x;
  const double ay = aggressor.y - victim.y;
  const double d2 = ax * ax + ay * ay;
  TSV_REQUIRE(d2 > 0.0, "coincident pair");
  // Pair-frame rotation coefficients hoisted once per pair, exactly as in
  // PairStressTable::accumulate: no trig of beta anywhere.
  const double inv_d = 1.0 / std::sqrt(d2);
  const double inv_d2 = 1.0 / d2;
  KernelArgs k;
  k.cb = ax * inv_d;
  k.sb = ay * inv_d;
  k.c2b = (ax * ax - ay * ay) * inv_d2;
  k.s2b = 2.0 * ax * ay * inv_d2;
  k.vx = victim.x;
  k.vy = victim.y;
  k.r_max2 = r_max_ * r_max_;
  k.contracted = contracted_for_pitch(geo::distance(victim, aggressor));
  SegView views[kMaxSegments];
  const std::size_t nseg = segments_.size();
  for (std::size_t i = 0; i < nseg; ++i) {
    const Segment& s = segments_[i];
    views[i].r1 = s.r1;
    views[i].t_mid = s.t_mid;
    views[i].t_half_inv = s.t_half_inv;
    views[i].inverse = s.inverse_radial ? 1 : 0;
    views[i].nr = static_cast<std::uint32_t>(s.nr);
    views[i].nx = static_cast<std::uint32_t>(s.nx);
    views[i].offset = segment_offsets_[i];
  }
  // Sentinel: sqrt rounding can land r exactly on r_max even when
  // r2 < r_max^2; the open-ended last view keeps the select walk in range.
  views[nseg - 1].r1 = std::numeric_limits<double>::infinity();
  k.segs = views;
  k.nseg = nseg;
  active_kernel()(k, points, n, out);
}

bool PairSurrogate::try_accumulate(const geo::Point& victim,
                                   const geo::Point& aggressor,
                                   const geo::Point* points, std::size_t n,
                                   num::SymTensor2* out) const {
  const double pitch = geo::distance(victim, aggressor);
  if (!covers(pitch)) {
    counters_->fallback_pairs.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  counters_->surrogate_pairs.fetch_add(1, std::memory_order_relaxed);
  accumulate(victim, aggressor, points, n, out);
  return true;
}

num::SymTensor2 PairSurrogate::stress_at(const geo::Point& victim,
                                         const geo::Point& aggressor,
                                         const geo::Point& p) const {
  num::SymTensor2 t;
  accumulate(victim, aggressor, &p, 1, &t);
  return t;
}

SurrogateUseStats PairSurrogate::use_stats() const {
  return {counters_->surrogate_pairs.load(std::memory_order_relaxed),
          counters_->fallback_pairs.load(std::memory_order_relaxed)};
}

void PairSurrogate::reset_use_stats() const {
  counters_->surrogate_pairs.store(0, std::memory_order_relaxed);
  counters_->fallback_pairs.store(0, std::memory_order_relaxed);
}

namespace {

/// Adversarial certification: dense exact-vs-surrogate comparison over
/// Chebyshev-offset radii (deliberately off the fit grid), uniform-disc and
/// log-radial random points, near-interface radii, full-circle angles, and
/// both identity and randomly rotated pair frames — through the very kernel
/// dispatch production uses.
SurrogateCertificate certify(const PairSurrogate& sur,
                             const InteractiveStressModel& model,
                             const SurrogateFitOptions& opt) {
  SurrogateCertificate cert;
  cert.pitch_min = sur.pitch_min();
  cert.pitch_max = sur.pitch_max();
  cert.r_max = sur.r_max();
  cert.coefficient_count = sur.coefficient_count();

  std::mt19937_64 rng(opt.cert_seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const double pmin = sur.pitch_min();
  const double pmax = sur.pitch_max();
  const double pmid = 0.5 * (pmin + pmax);
  const double phalf = 0.5 * (pmax - pmin);

  // Pitch samples: the exact domain ends (the gate is inclusive), Chebyshev
  // nodes of an order unrelated to the fit's, and random fill.
  std::vector<double> pitches{pmin, pmax};
  const std::size_t n_random = opt.cert_pitches / 6;
  const std::size_t n_nodes = opt.cert_pitches > pitches.size() + n_random
                                  ? opt.cert_pitches - pitches.size() - n_random
                                  : 0;
  for (std::size_t a = 0; a < n_nodes; ++a)
    pitches.push_back(pmid + phalf * cheb_node(a, n_nodes));
  for (std::size_t a = 0; a < n_random; ++a)
    pitches.push_back(pmin + (pmax - pmin) * unit(rng));

  // Near-interface radii: Chebyshev error peaks at segment ends, and the
  // material-interface hoop-stress jumps make *exact* boundary radii
  // ill-posed (fp rounding can flip the region on either side), so probe a
  // relative whisker off each boundary instead.
  const std::vector<double> bounds = sur.radial_boundaries();
  std::vector<double> edge_radii;
  for (std::size_t b = 1; b < bounds.size(); ++b) {
    const double delta = 1e-6 * std::max(1.0, bounds[b]);
    edge_radii.push_back(bounds[b] - delta);
    if (bounds[b] < sur.r_max()) edge_radii.push_back(bounds[b] + delta);
  }
  const std::size_t nseg = bounds.size() - 1;
  const double r_lo = 0.05;

  double field_scale = 0.0;
  double max_err = 0.0;
  std::uint64_t count = 0;
  for (const double pitch : pitches) {
    const RegionField& combined = model.combined_for_pitch(pitch);
    for (std::size_t i = 0; i < opt.cert_points_per_pitch; ++i) {
      double r = 0.0;
      double theta = 2.0 * std::numbers::pi * unit(rng);
      switch (i % 4) {
        case 0: {  // Chebyshev-offset radius inside a cycling segment
          const std::size_t s = (i / 4) % nseg;
          const double mid = 0.5 * (bounds[s] + bounds[s + 1]);
          const double half = 0.5 * (bounds[s + 1] - bounds[s]);
          r = mid + half * cheb_node((i / 4) % 29, 29);
          break;
        }
        case 1:  // area-uniform over the disc
          r = sur.r_max() * std::sqrt(unit(rng));
          break;
        case 2: {  // near-interface, with axis-aligned angles mixed in
          r = edge_radii[(i / 4) % edge_radii.size()];
          const std::size_t phase = (i / 4) % 5;
          if (phase < 4)
            theta = 0.5 * std::numbers::pi * static_cast<double>(phase);
          break;
        }
        default:  // log-radial emphasis on the large-field small radii
          r = r_lo * std::pow(sur.r_max() / r_lo, unit(rng));
          break;
      }
      if (r >= sur.r_max()) r = sur.r_max() * (1.0 - 1e-12);
      geo::Point victim{0.0, 0.0};
      geo::Point aggressor{pitch, 0.0};
      double phi = 0.0;
      if (i % 2 == 1) {  // random pair frame: exercises the hoisted rotation
        victim = {20.0 * unit(rng) - 10.0, 20.0 * unit(rng) - 10.0};
        phi = 2.0 * std::numbers::pi * unit(rng);
        aggressor = {victim.x + pitch * std::cos(phi),
                     victim.y + pitch * std::sin(phi)};
      }
      const geo::Point p{victim.x + r * std::cos(phi + theta),
                         victim.y + r * std::sin(phi + theta)};
      const num::SymTensor2 exact =
          model.stress_with_combined(combined, victim, aggressor, pitch, p);
      num::SymTensor2 approx;
      sur.accumulate(victim, aggressor, &p, 1, &approx);
      field_scale = std::max({field_scale, std::abs(exact.s11),
                              std::abs(exact.s22), std::abs(exact.s12)});
      max_err = std::max({max_err, std::abs(approx.s11 - exact.s11),
                          std::abs(approx.s22 - exact.s22),
                          std::abs(approx.s12 - exact.s12)});
      ++count;
    }
  }
  cert.sample_count = count;
  cert.field_scale = field_scale;
  cert.max_abs_error = max_err;
  cert.certified_rel_bound =
      field_scale > 0.0 ? opt.cert_margin * max_err / field_scale : 0.0;
  return cert;
}

}  // namespace

PairSurrogate PairSurrogate::fit(const InteractiveStressModel& model,
                                 const SurrogateFitOptions& opt) {
  const tsvlib::TsvStructure& structure = model.response().structure();
  const double r_body = structure.body_radius;
  const double r_outer = structure.outer_radius();
  TSV_REQUIRE(opt.pitch_min > 0.0 && opt.pitch_max > opt.pitch_min,
              "surrogate pitch domain must be a positive interval");
  TSV_REQUIRE(opt.pitch_min > 2.0 * r_outer * 0.999,
              "surrogate pitches must keep the pair non-overlapping");
  TSV_REQUIRE(opt.r_max > r_outer,
              "surrogate r_max must reach into the substrate");
  TSV_REQUIRE(opt.pitch_order >= 2 && opt.pitch_order <= kMaxOrder,
              "surrogate pitch order out of range");

  std::vector<double> bounds{0.0, r_body, r_outer};
  for (const double split : opt.substrate_splits) {
    TSV_REQUIRE(split > bounds.back() && split < opt.r_max,
                "substrate splits must increase strictly within (R', r_max)");
    bounds.push_back(split);
  }
  bounds.push_back(opt.r_max);
  const std::size_t nseg = bounds.size() - 1;
  TSV_REQUIRE(nseg <= kMaxSegments, "too many radial segments");
  TSV_REQUIRE(
      opt.radial_orders.size() == nseg && opt.angular_orders.size() == nseg,
      "need one radial and one angular order per segment "
      "(core, liner, then each substrate piece)");

  Data data;
  data.pitch_min = opt.pitch_min;
  data.pitch_max = opt.pitch_max;
  data.r_max = opt.r_max;
  data.pitch_order = opt.pitch_order;
  const std::size_t np = opt.pitch_order;
  // Pitch nodes in q = 1/pitch, matching the contraction's q_hat map.
  const double q_lo = 1.0 / opt.pitch_max;
  const double q_hi = 1.0 / opt.pitch_min;
  const double qmid = 0.5 * (q_lo + q_hi);
  const double qhalf = 0.5 * (q_hi - q_lo);
  std::vector<double> pitches(np);
  for (std::size_t a = 0; a < np; ++a)
    pitches[a] = 1.0 / (qmid + qhalf * cheb_node(a, np));

  const std::vector<double> cmp = cheb_cos_matrix(np);
  std::vector<double> tmp;
  for (std::size_t s = 0; s < nseg; ++s) {
    Data::Segment seg;
    seg.r0 = bounds[s];
    seg.r1 = bounds[s + 1];
    // Substrate pieces expand in u = 1/r: the scattered far field is a
    // Laurent series in r, i.e. a polynomial in u, and u is the inv_r the
    // kernel computes anyway.
    seg.inverse_radial = seg.r0 >= r_outer ? 1 : 0;
    seg.nr = opt.radial_orders[s];
    seg.nx = opt.angular_orders[s];
    TSV_REQUIRE(seg.nr >= 2 && seg.nr <= kMaxOrder && seg.nx >= 1 &&
                    seg.nx <= kMaxOrder,
                "surrogate segment orders out of range");
    const double v_lo = seg.inverse_radial != 0 ? 1.0 / seg.r1 : seg.r0;
    const double v_hi = seg.inverse_radial != 0 ? 1.0 / seg.r0 : seg.r1;
    const double mid = 0.5 * (v_lo + v_hi);
    const double half = 0.5 * (v_hi - v_lo);
    const std::size_t nr = seg.nr;
    const std::size_t nx = seg.nx;
    const std::size_t block = 3 * nr * nx;
    seg.coeffs.assign(np * block, 0.0);

    std::vector<double> radii(nr);
    for (std::size_t i = 0; i < nr; ++i) {
      const double v = mid + half * cheb_node(i, nr);
      radii[i] = seg.inverse_radial != 0 ? 1.0 / v : v;
    }
    std::vector<double> xs(nx), sins(nx);
    for (std::size_t j = 0; j < nx; ++j) {
      xs[j] = cheb_node(j, nx);
      sins[j] = std::sqrt(std::max(0.0, 1.0 - xs[j] * xs[j]));
    }

    // Sample the pair-frame field at the tensor grid. The odd component is
    // stored as G12 = s12 / sin(theta), which is itself a polynomial in
    // cos(theta); interior Gauss nodes keep sin(theta) > 0.
    for (std::size_t a = 0; a < np; ++a) {
      const RegionField& combined = model.combined_for_pitch(pitches[a]);
      double* plane = seg.coeffs.data() + a * block;
      for (std::size_t i = 0; i < nr; ++i) {
        for (std::size_t j = 0; j < nx; ++j) {
          const geo::Point p{radii[i] * xs[j], radii[i] * sins[j]};
          const num::SymTensor2 f = model.stress_with_combined(
              combined, {0.0, 0.0}, {pitches[a], 0.0}, pitches[a], p);
          plane[i * nx + j] = f.s11;
          plane[nr * nx + i * nx + j] = f.s22;
          plane[2 * nr * nx + i * nx + j] = f.s12 / sins[j];
        }
      }
    }

    // Tensor-product forward transforms: angular, radial, then pitch axis.
    const std::vector<double> cmx = cheb_cos_matrix(nx);
    const std::vector<double> cmr = cheb_cos_matrix(nr);
    for (std::size_t line = 0; line < np * 3 * nr; ++line)
      cheb_transform_line(seg.coeffs.data() + line * nx, 1, nx, cmx, tmp);
    for (std::size_t ac = 0; ac < np * 3; ++ac) {
      for (std::size_t j = 0; j < nx; ++j) {
        cheb_transform_line(seg.coeffs.data() + ac * nr * nx + j, nx, nr, cmr,
                            tmp);
      }
    }
    for (std::size_t q = 0; q < block; ++q)
      cheb_transform_line(seg.coeffs.data() + q, block, np, cmp, tmp);
    data.segments.push_back(std::move(seg));
  }

  PairSurrogate out(std::move(data));
  out.certificate_ = certify(out, model, opt);
  out.reset_use_stats();
  return out;
}

}  // namespace tsv::ana
