#include "analytic/pair_table.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "analytic/interaction.h"

namespace tsv::ana {

PairStressTable::PairStressTable(const InteractiveStressModel& model,
                                 const RegionField& combined, double pitch,
                                 double r_max, const PairTableOptions& options)
    : pitch_(pitch), r_max_(r_max), n_theta_(options.n_theta) {
  TSV_REQUIRE(pitch > 0.0 && r_max > 0.0, "pitch and r_max must be positive");
  TSV_REQUIRE(options.n_theta >= 8, "need at least 8 theta samples");
  dtheta_ = std::numbers::pi / static_cast<double>(n_theta_ - 1);

  const tsvlib::TsvStructure& s = model.response().structure();
  const double r_body = s.body_radius;
  const double r_outer = s.outer_radius();
  TSV_REQUIRE(r_max > r_outer, "r_max must reach into the substrate");

  const auto build = [&](Segment& seg, double r0, double r1, double dr) {
    seg.r0 = r0;
    seg.r1 = r1;
    seg.nr = std::max<std::size_t>(
        2, 1 + static_cast<std::size_t>(std::ceil((r1 - r0) / dr)));
    seg.values.reserve(seg.nr * n_theta_);
    // Stay a whisker inside the segment so the region dispatch in
    // stress_with_combined never lands on the wrong side of an interface.
    const double eps = 1e-9 * (r1 - r0 + 1.0);
    for (std::size_t ir = 0; ir < seg.nr; ++ir) {
      double r = r0 + (r1 - r0) * static_cast<double>(ir) /
                          static_cast<double>(seg.nr - 1);
      r = std::min(std::max(r, r0 + (ir == 0 ? 0.0 : 0.0)), r1);
      if (ir == 0 && r0 > 0.0) r = r0 + eps;
      if (ir == seg.nr - 1) r = r1 - eps;
      for (std::size_t it = 0; it < n_theta_; ++it) {
        const double th = dtheta_ * static_cast<double>(it);
        const geo::Point p{r * std::cos(th), r * std::sin(th)};
        seg.values.push_back(model.stress_with_combined(
            combined, {0.0, 0.0}, {pitch, 0.0}, pitch, p));
      }
    }
  };
  build(segments_[0], 0.0, r_body, options.dr_core);
  build(segments_[1], r_body, r_outer, options.dr_liner);
  build(segments_[2], r_outer, r_max, options.dr_substrate);
}

PairStressTable::PairStressTable(Data data)
    : pitch_(data.pitch), r_max_(data.r_max), n_theta_(data.n_theta) {
  TSV_REQUIRE(pitch_ > 0.0 && r_max_ > 0.0,
              "pair table data: pitch and r_max must be positive");
  TSV_REQUIRE(n_theta_ >= 8, "pair table data: need at least 8 theta samples");
  dtheta_ = std::numbers::pi / static_cast<double>(n_theta_ - 1);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    Data::Segment& in = data.segments[s];
    TSV_REQUIRE(in.nr >= 2 && in.values.size() == in.nr * n_theta_,
                "pair table data: segment shape mismatch");
    TSV_REQUIRE(in.r1 > in.r0 && in.r0 >= 0.0,
                "pair table data: inverted segment radii");
    segments_[s].r0 = in.r0;
    segments_[s].r1 = in.r1;
    segments_[s].nr = in.nr;
    segments_[s].values = std::move(in.values);
  }
}

PairStressTable::Data PairStressTable::to_data() const {
  Data data;
  data.pitch = pitch_;
  data.r_max = r_max_;
  data.n_theta = n_theta_;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    data.segments[s].r0 = segments_[s].r0;
    data.segments[s].r1 = segments_[s].r1;
    data.segments[s].nr = segments_[s].nr;
    data.segments[s].values = segments_[s].values;
  }
  return data;
}

std::size_t PairStressTable::sample_count() const {
  std::size_t n = 0;
  for (const auto& s : segments_) n += s.values.size();
  return n;
}

num::SymTensor2 PairStressTable::sample_segment(const Segment& s, double r,
                                                double theta) const {
  const double fr = (r - s.r0) / (s.r1 - s.r0) *
                    static_cast<double>(s.nr - 1);
  const double ft = theta / dtheta_;
  const std::size_t ir =
      std::min(static_cast<std::size_t>(std::max(fr, 0.0)), s.nr - 2);
  const std::size_t it =
      std::min(static_cast<std::size_t>(std::max(ft, 0.0)), n_theta_ - 2);
  const double tr = std::clamp(fr - static_cast<double>(ir), 0.0, 1.0);
  const double tt = std::clamp(ft - static_cast<double>(it), 0.0, 1.0);
  const auto at = [&](std::size_t jr, std::size_t jt) {
    return s.values[jr * n_theta_ + jt];
  };
  return (1.0 - tr) * (1.0 - tt) * at(ir, it) + tr * (1.0 - tt) * at(ir + 1, it) +
         (1.0 - tr) * tt * at(ir, it + 1) + tr * tt * at(ir + 1, it + 1);
}

num::SymTensor2 PairStressTable::stress_local(double r, double theta) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  if (r >= r_max_) return {};
  // Fold onto [0, pi]: the pair field is mirror-symmetric about its axis.
  double th = std::remainder(theta, 2.0 * std::numbers::pi);
  bool mirrored = false;
  if (th < 0.0) {
    th = -th;
    mirrored = true;
  }
  const Segment& seg = r < segments_[0].r1
                           ? segments_[0]
                           : (r < segments_[1].r1 ? segments_[1]
                                                  : segments_[2]);
  num::SymTensor2 out = sample_segment(seg, r, th);
  if (mirrored) out.s12 = -out.s12;
  return out;
}

num::SymTensor2 PairStressTable::stress_at(const geo::Point& victim,
                                           const geo::Point& aggressor,
                                           const geo::Point& p) const {
  const double beta = geo::angle_of(victim, aggressor);
  const double r = geo::distance(victim, p);
  const double theta = (r > 0.0) ? geo::angle_of(victim, p) - beta : 0.0;
  const num::SymTensor2 local = stress_local(r, theta);
  return num::cylindrical_to_cartesian(local, beta);
}

}  // namespace tsv::ana
