#include "analytic/pair_table.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "analytic/interaction.h"
#include "numeric/kernels.h"

namespace tsv::ana {

PairStressTable::PairStressTable(const InteractiveStressModel& model,
                                 const RegionField& combined, double pitch,
                                 double r_max, const PairTableOptions& options)
    : pitch_(pitch), r_max_(r_max), n_theta_(options.n_theta) {
  TSV_REQUIRE(pitch > 0.0 && r_max > 0.0, "pitch and r_max must be positive");
  TSV_REQUIRE(options.n_theta >= 8, "need at least 8 theta samples");
  dtheta_ = std::numbers::pi / static_cast<double>(n_theta_ - 1);

  const tsvlib::TsvStructure& s = model.response().structure();
  const double r_body = s.body_radius;
  const double r_outer = s.outer_radius();
  TSV_REQUIRE(r_max > r_outer, "r_max must reach into the substrate");

  const auto build = [&](Segment& seg, double r0, double r1, double dr) {
    seg.r0 = r0;
    seg.r1 = r1;
    seg.nr = std::max<std::size_t>(
        2, 1 + static_cast<std::size_t>(std::ceil((r1 - r0) / dr)));
    seg.s11.reserve(seg.nr * n_theta_);
    seg.s22.reserve(seg.nr * n_theta_);
    seg.s12.reserve(seg.nr * n_theta_);
    // The uniform radial samples land inside [r0, r1] by construction; only
    // the endpoints are nudged a whisker off the material interfaces so the
    // region dispatch in stress_with_combined never lands on the wrong side.
    const double eps = 1e-9 * (r1 - r0 + 1.0);
    for (std::size_t ir = 0; ir < seg.nr; ++ir) {
      double r = r0 + (r1 - r0) * static_cast<double>(ir) /
                          static_cast<double>(seg.nr - 1);
      if (ir == 0 && r0 > 0.0) r = r0 + eps;
      if (ir == seg.nr - 1) r = r1 - eps;
      for (std::size_t it = 0; it < n_theta_; ++it) {
        const double th = dtheta_ * static_cast<double>(it);
        const geo::Point p{r * std::cos(th), r * std::sin(th)};
        const num::SymTensor2 t = model.stress_with_combined(
            combined, {0.0, 0.0}, {pitch, 0.0}, pitch, p);
        seg.s11.push_back(static_cast<float>(t.s11));
        seg.s22.push_back(static_cast<float>(t.s22));
        seg.s12.push_back(static_cast<float>(t.s12));
      }
    }
  };
  build(segments_[0], 0.0, r_body, options.dr_core);
  build(segments_[1], r_body, r_outer, options.dr_liner);
  build(segments_[2], r_outer, r_max, options.dr_substrate);
}

PairStressTable::PairStressTable(Data data)
    : pitch_(data.pitch), r_max_(data.r_max), n_theta_(data.n_theta) {
  TSV_REQUIRE(pitch_ > 0.0 && r_max_ > 0.0,
              "pair table data: pitch and r_max must be positive");
  TSV_REQUIRE(n_theta_ >= 8, "pair table data: need at least 8 theta samples");
  dtheta_ = std::numbers::pi / static_cast<double>(n_theta_ - 1);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    Data::Segment& in = data.segments[s];
    TSV_REQUIRE(in.nr >= 2 && in.s11.size() == in.nr * n_theta_ &&
                    in.s22.size() == in.s11.size() &&
                    in.s12.size() == in.s11.size(),
                "pair table data: segment shape mismatch");
    TSV_REQUIRE(in.r1 > in.r0 && in.r0 >= 0.0,
                "pair table data: inverted segment radii");
    segments_[s].r0 = in.r0;
    segments_[s].r1 = in.r1;
    segments_[s].nr = in.nr;
    segments_[s].s11 = std::move(in.s11);
    segments_[s].s22 = std::move(in.s22);
    segments_[s].s12 = std::move(in.s12);
  }
}

PairStressTable::Data PairStressTable::to_data() const {
  Data data;
  data.pitch = pitch_;
  data.r_max = r_max_;
  data.n_theta = n_theta_;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    data.segments[s].r0 = segments_[s].r0;
    data.segments[s].r1 = segments_[s].r1;
    data.segments[s].nr = segments_[s].nr;
    data.segments[s].s11 = segments_[s].s11;
    data.segments[s].s22 = segments_[s].s22;
    data.segments[s].s12 = segments_[s].s12;
  }
  return data;
}

std::size_t PairStressTable::sample_count() const {
  std::size_t n = 0;
  for (const auto& s : segments_) n += s.s11.size();
  return n;
}

num::SymTensor2 PairStressTable::sample_segment(const Segment& s, double r,
                                                double theta) const {
  const double fr = (r - s.r0) / (s.r1 - s.r0) *
                    static_cast<double>(s.nr - 1);
  const double ft = theta / dtheta_;
  const std::size_t ir =
      std::min(static_cast<std::size_t>(std::max(fr, 0.0)), s.nr - 2);
  const std::size_t it =
      std::min(static_cast<std::size_t>(std::max(ft, 0.0)), n_theta_ - 2);
  const double tr = std::clamp(fr - static_cast<double>(ir), 0.0, 1.0);
  const double tt = std::clamp(ft - static_cast<double>(it), 0.0, 1.0);
  const auto at = [&](std::size_t jr, std::size_t jt) {
    const std::size_t k = jr * n_theta_ + jt;
    return num::SymTensor2{s.s11[k], s.s22[k], s.s12[k]};
  };
  return (1.0 - tr) * (1.0 - tt) * at(ir, it) + tr * (1.0 - tt) * at(ir + 1, it) +
         (1.0 - tr) * tt * at(ir, it + 1) + tr * tt * at(ir + 1, it + 1);
}

num::SymTensor2 PairStressTable::stress_local(double r, double theta) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  if (r >= r_max_) return {};
  // Fold onto [0, pi]: the pair field is mirror-symmetric about its axis.
  double th = std::remainder(theta, 2.0 * std::numbers::pi);
  bool mirrored = false;
  if (th < 0.0) {
    th = -th;
    mirrored = true;
  }
  const Segment& seg = r < segments_[0].r1
                           ? segments_[0]
                           : (r < segments_[1].r1 ? segments_[1]
                                                  : segments_[2]);
  num::SymTensor2 out = sample_segment(seg, r, th);
  if (mirrored) out.s12 = -out.s12;
  return out;
}

num::SymTensor2 PairStressTable::stress_at(const geo::Point& victim,
                                           const geo::Point& aggressor,
                                           const geo::Point& p) const {
  const double beta = geo::angle_of(victim, aggressor);
  const double r = geo::distance(victim, p);
  const double theta = (r > 0.0) ? geo::angle_of(victim, p) - beta : 0.0;
  const num::SymTensor2 local = stress_local(r, theta);
  return num::cylindrical_to_cartesian(local, beta);
}

void PairStressTable::accumulate(const geo::Point& victim,
                                 const geo::Point& aggressor,
                                 const geo::Point* points, std::size_t n,
                                 num::SymTensor2* out) const {
  const double ax = aggressor.x - victim.x;
  const double ay = aggressor.y - victim.y;
  const double d2 = ax * ax + ay * ay;
  TSV_REQUIRE(d2 > 0.0, "coincident pair");
  // Pair-frame rotation coefficients, hoisted once per pair: the scalar path
  // recomputes beta = atan2 plus the cos/sin of 2*beta for every point, the
  // batch kernel never evaluates trig of beta at all.
  const double inv_d = 1.0 / std::sqrt(d2);
  const double cb = ax * inv_d;
  const double sb = ay * inv_d;
  const double inv_d2 = 1.0 / d2;
  const double c2b = (ax * ax - ay * ay) * inv_d2;
  const double s2b = 2.0 * ax * ay * inv_d2;
  const double vx = victim.x;
  const double vy = victim.y;
  const std::size_t nt = n_theta_;
  const double inv_dtheta = 1.0 / dtheta_;
  for (std::size_t i = 0; i < n; ++i) {
    const double px = points[i].x - vx;
    const double py = points[i].y - vy;
    const double r = std::sqrt(px * px + py * py);
    if (r >= r_max_) continue;
    // Rotate the displacement into the pair frame; the mirror fold onto
    // theta in [0, pi] becomes |uy| with an s12 sign flip. The lookup angle
    // comes from the octant-folded polynomial (num::atan2_upper), not libm
    // atan2 — its <1e-15 rad deviation shifts the bilinear theta weight by
    // under 1e-13 of a cell, far inside the batch-vs-scalar 1e-12 lock.
    const double ux = cb * px + sb * py;
    const double uy = cb * py - sb * px;
    const bool mirrored = uy < 0.0;
    const double th = num::atan2_upper(mirrored ? -uy : uy, ux);
    const Segment& seg =
        r < segments_[0].r1
            ? segments_[0]
            : (r < segments_[1].r1 ? segments_[1] : segments_[2]);
    const double fr =
        (r - seg.r0) / (seg.r1 - seg.r0) * static_cast<double>(seg.nr - 1);
    const double ft = th * inv_dtheta;
    const std::size_t ir =
        std::min(static_cast<std::size_t>(std::max(fr, 0.0)), seg.nr - 2);
    const std::size_t it =
        std::min(static_cast<std::size_t>(std::max(ft, 0.0)), nt - 2);
    const double tr = std::clamp(fr - static_cast<double>(ir), 0.0, 1.0);
    const double tt = std::clamp(ft - static_cast<double>(it), 0.0, 1.0);
    const double w00 = (1.0 - tr) * (1.0 - tt);
    const double w10 = tr * (1.0 - tt);
    const double w01 = (1.0 - tr) * tt;
    const double w11 = tr * tt;
    const std::size_t k00 = ir * nt + it;
    const std::size_t k10 = k00 + nt;
    const double v11 = w00 * seg.s11[k00] + w10 * seg.s11[k10] +
                       w01 * seg.s11[k00 + 1] + w11 * seg.s11[k10 + 1];
    const double v22 = w00 * seg.s22[k00] + w10 * seg.s22[k10] +
                       w01 * seg.s22[k00 + 1] + w11 * seg.s22[k10 + 1];
    double v12 = w00 * seg.s12[k00] + w10 * seg.s12[k10] +
                 w01 * seg.s12[k00 + 1] + w11 * seg.s12[k10 + 1];
    if (mirrored) v12 = -v12;
    out[i] += num::rotate_double_angle({v11, v22, v12}, c2b, s2b);
  }
}

}  // namespace tsv::ana
