#pragma once
// Interactive-stress evaluation for arbitrary TSV pairs (paper Sec. 3.3 /
// eq. (18), via the characterized inclusion response).
//
// For an ordered pair (victim, aggressor) the model expresses the aggressor's
// ideal field about the victim, applies the victim's characterized scattering
// response and returns the correction to linear superposition:
//   * outside the victim (substrate): the scattered field,
//   * inside the victim's liner/body: (interior field) - (applied field),
//     because Stage I already superposed the aggressor's ideal field there.
//
// Pitch enters only through the expansion coefficients
// beta_n = -khat / dhat^(n+1); responses are combined once per pitch and
// cached, so evaluating many points against the same pair is cheap.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "analytic/mode_solver.h"
#include "analytic/pair_table.h"
#include "analytic/single_tsv.h"
#include "geometry/point.h"

namespace tsv::ana {

class PairSurrogate;

/// Hit/miss counters of the per-pitch PairStressTable cache. A miss is a
/// table build; full-chip arrays repeat a handful of pitches, so the hit
/// rate measures how well pitch quantization amortizes the builds.
struct PairTableCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups())
               : 0.0;
  }
};

class InteractiveStressModel {
 public:
  /// `response` is the per-geometry characterization; `single` supplies K.
  InteractiveStressModel(std::shared_ptr<const InclusionResponse> response,
                         const SingleTsvModel& single);

  /// Convenience: characterizes the structure internally.
  InteractiveStressModel(const tsvlib::TsvStructure& structure,
                         const mat::ThermalLoad& load,
                         const InclusionResponseOptions& options = {});

  /// Explicit k_hat (= K / R'^2, MPa), e.g. fitted from a FEM
  /// characterization so that Stage II matches a FEM-derived Stage I table.
  InteractiveStressModel(std::shared_ptr<const InclusionResponse> response,
                         double k_hat);

  const InclusionResponse& response() const { return *response_; }
  double k_hat() const { return k_hat_; }

  /// Combined (pitch-specific) response potentials, victim-centered hat
  /// frame with the aggressor on the +x axis. Cached per quantized pitch.
  /// Thread-safe: the cache is mutex-guarded and map nodes are stable, so
  /// the returned reference stays valid for the model's lifetime; races to
  /// build the same pitch resolve to the first insert.
  const RegionField& combined_for_pitch(double pitch) const;

  /// Interactive stress (Cartesian, global frame) at point p induced by the
  /// ordered pair: `victim` scatters the field of `aggressor`. The total
  /// pair correction is stress_at(v, a, p) + stress_at(a, v, p).
  num::SymTensor2 stress_at(const geo::Point& victim,
                            const geo::Point& aggressor,
                            const geo::Point& p) const;

  /// As stress_at, but with the combined field precomputed (hot path for
  /// per-pair point loops).
  num::SymTensor2 stress_with_combined(const RegionField& combined,
                                       const geo::Point& victim,
                                       const geo::Point& aggressor,
                                       double pitch, const geo::Point& p) const;

  /// Polar look-up table of the pair-local field for a pitch, tabulated out
  /// to `r_max` and cached per quantized (pitch, r_max). Roughly an order
  /// of magnitude cheaper per point than the series (bilinear interpolation
  /// vs three Horner evaluations) at ~1% field accuracy; see the Stage II
  /// lookup option and bench_ablation. Thread-safe like combined_for_pitch.
  ///
  /// `quant_step` (um) controls how pitches share tables. 0 keeps the exact
  /// per-pitch cache (keys quantized only to 1e-6 um against fp noise):
  /// regular arrays repeat a handful of pitches and hit constantly, but on
  /// random placements every pair has a unique pitch and every lookup
  /// builds. A positive step snaps the pitch to the nearest multiple of
  /// `quant_step` (never below the TSV diameter), so a whole design needs
  /// only ~(pitch range / step) table builds. The extra field error is the
  /// pitch sensitivity over half a step — at the paper's geometry a 0.25 um
  /// step stays within the table's own ~1% interpolation budget (see
  /// test_quantized_cache).
  const PairStressTable& table_for_pitch(double pitch, double r_max,
                                         double quant_step = 0.0) const;

  /// Cumulative hit/miss counters of table_for_pitch since construction (or
  /// the last reset). Thread-safe; under concurrent builds of the same key
  /// the losers still count as misses, so `misses` can slightly exceed the
  /// number of cached tables.
  PairTableCacheStats table_cache_stats() const;
  void reset_table_cache_stats() const;

  /// Number of distinct PairStressTables currently cached.
  std::size_t table_cache_size() const;

  /// Snapshot support (io/snapshot): copies every cached PairStressTable
  /// out in deterministic key order. The cache key is reconstructed from
  /// each table's own (pitch, r_max) — table_for_pitch stores tables under
  /// their snapped pitch, so export → import round-trips exactly.
  std::vector<PairStressTable::Data> export_table_cache() const;

  /// Pre-warms the table cache from snapshot data (e.g. a warm start that
  /// skips all table builds). Existing entries win on key collision.
  /// Returns the number of tables inserted. Does not touch the hit/miss
  /// counters.
  std::size_t import_table_cache(
      std::vector<PairStressTable::Data> tables) const;

  /// Attaches (or, with nullptr, detaches) a certified Chebyshev surrogate
  /// (analytic/surrogate.h) for the Stage II fast path. Thread-safe;
  /// replaces any previous surrogate. Like the table cache this is an
  /// evaluation accelerator, so it lives mutably on the const model shared
  /// across stages.
  void attach_surrogate(std::shared_ptr<const PairSurrogate> surrogate) const;

  /// The currently attached surrogate (nullptr when none).
  std::shared_ptr<const PairSurrogate> surrogate() const;

  /// The attached surrogate iff its certificate attests a verified relative
  /// bound <= `tolerance` AND its fitted radius covers `r_needed` (points
  /// beyond the fitted r_max would silently evaluate to zero); nullptr
  /// otherwise, in which case callers use the table/series paths.
  std::shared_ptr<const PairSurrogate> surrogate_for(double tolerance,
                                                     double r_needed) const;

 private:
  std::shared_ptr<const InclusionResponse> response_;
  double k_hat_ = 0.0;        ///< K / R'^2, MPa
  double outer_radius_ = 0.0; ///< R', um
  /// Guards both caches (Stage II evaluates pairs from many threads).
  mutable std::mutex cache_mutex_;
  mutable std::map<long long, RegionField> cache_;
  mutable std::map<std::pair<long long, long long>, PairStressTable>
      table_cache_;
  mutable std::shared_ptr<const PairSurrogate> surrogate_;
  mutable std::atomic<std::uint64_t> table_hits_{0};
  mutable std::atomic<std::uint64_t> table_misses_{0};
};

}  // namespace tsv::ana
