#include "analytic/potentials.h"

namespace tsv::ana {

PotentialField::PotentialField(num::LaurentSeries phi, num::LaurentSeries psi)
    : phi_(std::move(phi)), psi_(std::move(psi)) {
  refresh_derivatives();
}

void PotentialField::refresh_derivatives() {
  dphi_ = phi_.derivative_series();
  ddphi_ = dphi_.derivative_series();
  dpsi_ = psi_.derivative_series();
}

num::SymTensor2 PotentialField::stress(Complex z) const {
  const Complex dphi = dphi_.empty() ? Complex{} : dphi_.evaluate(z);
  const Complex ddphi = ddphi_.empty() ? Complex{} : ddphi_.evaluate(z);
  const Complex dpsi = dpsi_.empty() ? Complex{} : dpsi_.evaluate(z);
  const double p = 4.0 * dphi.real();               // sxx + syy
  const Complex q = std::conj(z) * ddphi + dpsi;    // (syy - sxx)/2 + i sxy
  num::SymTensor2 s;
  s.s11 = 0.5 * p - q.real();
  s.s22 = 0.5 * p + q.real();
  s.s12 = q.imag();
  return s;
}

Complex PotentialField::displacement(Complex z, const mat::Material& m) const {
  const double mu = m.shear_modulus();
  const double kappa = m.kolosov_plane_stress();
  const Complex phi = phi_.empty() ? Complex{} : phi_.evaluate(z);
  const Complex dphi = dphi_.empty() ? Complex{} : dphi_.evaluate(z);
  const Complex psi = psi_.empty() ? Complex{} : psi_.evaluate(z);
  return (kappa * phi - z * std::conj(dphi) - std::conj(psi)) / (2.0 * mu);
}

Complex PotentialField::radial_traction(Complex z) const {
  const Complex dphi = dphi_.empty() ? Complex{} : dphi_.evaluate(z);
  const Complex ddphi = ddphi_.empty() ? Complex{} : ddphi_.evaluate(z);
  const Complex dpsi = dpsi_.empty() ? Complex{} : dpsi_.evaluate(z);
  const double r = std::abs(z);
  TSV_REQUIRE(r > 0.0, "radial traction undefined at the origin");
  const Complex e2it = (z / r) * (z / r);
  // sigma_rr - i sigma_rt = 2 Re phi' - e^{2 i theta} (conj(z) phi'' + psi')
  return 2.0 * dphi.real() - e2it * (std::conj(z) * ddphi + dpsi);
}

void PotentialField::accumulate(const PotentialField& other, double scale) {
  num::LaurentSeries sp = other.phi_;
  sp *= Complex{scale, 0.0};
  phi_ += sp;
  num::LaurentSeries ss = other.psi_;
  ss *= Complex{scale, 0.0};
  psi_ += ss;
  refresh_derivatives();
}

void PotentialField::trim(double rel_eps) {
  phi_ = phi_.trimmed(rel_eps);
  psi_ = psi_.trimmed(rel_eps);
  refresh_derivatives();
}

num::SymTensor2 aggressor_stress(Complex z, double d_hat, double k_hat) {
  const Complex w = z - Complex{d_hat, 0.0};
  const Complex dpsi = -k_hat / (w * w);
  num::SymTensor2 s;
  s.s11 = -dpsi.real();
  s.s22 = dpsi.real();
  s.s12 = dpsi.imag();
  return s;
}

Complex aggressor_displacement(Complex z, double d_hat, double k_hat,
                               const mat::Material& m) {
  const double mu = m.shear_modulus();
  const Complex psi = k_hat / (z - Complex{d_hat, 0.0});
  return -std::conj(psi) / (2.0 * mu);
}

Complex aggressor_radial_traction(Complex z, double d_hat, double k_hat) {
  const double r = std::abs(z);
  TSV_REQUIRE(r > 0.0, "radial traction undefined at the origin");
  const Complex e2it = (z / r) * (z / r);
  const Complex w = z - Complex{d_hat, 0.0};
  const Complex dpsi = -k_hat / (w * w);
  return -e2it * dpsi;
}

}  // namespace tsv::ana
