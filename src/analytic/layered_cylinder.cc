#include "analytic/layered_cylinder.h"

#include <cmath>

#include "numeric/dense_matrix.h"

namespace tsv::ana {
namespace {

// sigma_rr of a layer with u = A r + B / r and eigenstrain e*:
//   sigma_rr = E/(1-nu) (A - e*) - E/(1+nu) B / r^2
// sigma_tt = E/(1-nu) (A - e*) + E/(1+nu) B / r^2
struct LayerTerms {
  double ca;  // E / (1 - nu)
  double cb;  // E / (1 + nu)
};

LayerTerms terms(const mat::Material& m) {
  return {m.youngs_modulus / (1.0 - m.poisson_ratio),
          m.youngs_modulus / (1.0 + m.poisson_ratio)};
}

}  // namespace

LayeredCylinder::LayeredCylinder(std::vector<Layer> layers, double delta_t,
                                 double reference_cte)
    : layers_(std::move(layers)),
      delta_t_(delta_t),
      reference_cte_(reference_cte) {
  TSV_REQUIRE(layers_.size() >= 2, "need at least an inclusion and a matrix");
  for (std::size_t i = 0; i + 2 < layers_.size(); ++i)
    TSV_REQUIRE(layers_[i].outer_radius < layers_[i + 1].outer_radius,
                "layer radii must be strictly increasing");
  for (const auto& l : layers_) l.material.validate();
  TSV_REQUIRE(layers_.front().outer_radius > 0.0,
              "innermost radius must be positive");

  const std::size_t n_layers = layers_.size();
  eigenstrain_.resize(n_layers);
  for (std::size_t i = 0; i < n_layers; ++i)
    eigenstrain_[i] = (layers_[i].material.cte - reference_cte_) * delta_t_;

  // Unknowns: A_0 (B_0 = 0), then (A_i, B_i) for interior layers, then
  // B_last (A_last = eigenstrain of the last layer so far-field stress = 0).
  const std::size_t n_unknowns = 2 * n_layers - 2;
  num::Matrix m(n_unknowns, n_unknowns);
  num::Vector rhs(n_unknowns, 0.0);

  // Index helpers into the unknown vector.
  const auto a_index = [&](std::size_t layer) -> long {
    if (layer == 0) return 0;
    if (layer == n_layers - 1) return -1;  // known: A = e*_last
    return static_cast<long>(2 * layer - 1);
  };
  const auto b_index = [&](std::size_t layer) -> long {
    if (layer == 0) return -1;  // known: B = 0
    if (layer == n_layers - 1) return static_cast<long>(n_unknowns - 1);
    return static_cast<long>(2 * layer);
  };
  const double a_last = eigenstrain_.back();

  std::size_t row = 0;
  for (std::size_t i = 0; i + 1 < n_layers; ++i) {
    const double r = layers_[i].outer_radius;
    const double r2 = r * r;
    const LayerTerms ti = terms(layers_[i].material);
    const LayerTerms tj = terms(layers_[i + 1].material);

    // Displacement continuity: A_i r + B_i / r = A_j r + B_j / r.
    {
      double b = 0.0;
      if (long k = a_index(i); k >= 0)
        m(row, static_cast<std::size_t>(k)) += r;
      if (long k = b_index(i); k >= 0)
        m(row, static_cast<std::size_t>(k)) += 1.0 / r;
      if (long k = a_index(i + 1); k >= 0)
        m(row, static_cast<std::size_t>(k)) -= r;
      else
        b += a_last * r;
      if (long k = b_index(i + 1); k >= 0)
        m(row, static_cast<std::size_t>(k)) -= 1.0 / r;
      rhs[row] = b;
      ++row;
    }
    // Radial stress continuity:
    //   ca_i (A_i - e*_i) - cb_i B_i / r^2 = ca_j (A_j - e*_j) - cb_j B_j/r^2
    {
      // Move the constant eigenstrain terms (-ca_i e*_i + ca_j e*_j) to the
      // right-hand side.
      double b = ti.ca * eigenstrain_[i] - tj.ca * eigenstrain_[i + 1];
      if (long k = a_index(i); k >= 0)
        m(row, static_cast<std::size_t>(k)) += ti.ca;
      if (long k = b_index(i); k >= 0)
        m(row, static_cast<std::size_t>(k)) += -ti.cb / r2;
      if (long k = a_index(i + 1); k >= 0)
        m(row, static_cast<std::size_t>(k)) -= tj.ca;
      else
        b += tj.ca * a_last;
      if (long k = b_index(i + 1); k >= 0)
        m(row, static_cast<std::size_t>(k)) -= -tj.cb / r2;
      rhs[row] = b;
      ++row;
    }
  }
  TSV_ASSERT(row == n_unknowns);

  const num::Vector x = num::solve_lu(std::move(m), std::move(rhs));
  coeff_.resize(n_layers);
  coeff_[0] = {x[0], 0.0};
  for (std::size_t i = 1; i + 1 < n_layers; ++i)
    coeff_[i] = {x[2 * i - 1], x[2 * i]};
  coeff_[n_layers - 1] = {a_last, x[n_unknowns - 1]};
}

std::size_t LayeredCylinder::layer_of(double r) const {
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i)
    if (r <= layers_[i].outer_radius) return i;
  return layers_.size() - 1;
}

num::SymTensor2 LayeredCylinder::stress(double r) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  const std::size_t i = layer_of(r);
  const LayerTerms t = terms(layers_[i].material);
  const Coefficients& c = coeff_[i];
  const double hoop_term = (r > 0.0) ? t.cb * c.b / (r * r) : 0.0;
  num::SymTensor2 s;
  s.s11 = t.ca * (c.a - eigenstrain_[i]) - hoop_term;  // srr
  s.s22 = t.ca * (c.a - eigenstrain_[i]) + hoop_term;  // stt
  s.s12 = 0.0;
  return s;
}

double LayeredCylinder::radial_displacement(double r) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  const std::size_t i = layer_of(r);
  const Coefficients& c = coeff_[i];
  return c.a * r + (r > 0.0 ? c.b / r : 0.0);
}

double LayeredCylinder::far_field_constant() const {
  const Layer& last = layers_.back();
  const Coefficients& c = coeff_.back();
  // In the outermost layer sigma_rr = -cb * B / r^2 (A cancels against the
  // eigenstrain when the reference CTE equals the substrate CTE; in general
  // the A-part is exactly zero by construction of A_last).
  return -terms(last.material).cb * c.b;
}

}  // namespace tsv::ana
