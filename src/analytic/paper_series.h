#pragma once
// Evaluation of the paper's closed-form interactive-stress series, eq. (18),
// built on the Appendix A.4 transcription in paper_constants.h. Kept as an
// independent implementation to compare against the collocation-based
// mode solver; see DESIGN.md for the OCR caveats.

#include "analytic/paper_constants.h"
#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::ana {

class PaperInteractiveModel {
 public:
  /// `m_max` is the highest retained harmonic (paper: 10, i.e. 9 terms).
  PaperInteractiveModel(const tsvlib::TsvStructure& structure, double delta_t,
                        int m_max = 10);

  int m_max() const { return m_max_; }
  double k_constant() const { return k_; }

  /// Interactive stress in the victim-centered cylindrical frame of system S
  /// (aggressor at distance d on the theta = 0 ray): {srr, stt, srt}.
  /// r is the distance from the victim center; valid in all three regions.
  num::SymTensor2 stress_cylindrical(double r, double theta, double d) const;

  /// Cartesian global-frame interactive stress at p for an ordered pair.
  num::SymTensor2 stress_at(const geo::Point& victim,
                            const geo::Point& aggressor,
                            const geo::Point& p) const;

 private:
  PaperParams params_;
  double k_ = 0.0;  ///< paper K, from the exact layered-cylinder solution
  int m_max_;
};

}  // namespace tsv::ana
