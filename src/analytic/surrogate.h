#pragma once
// Certified Chebyshev surrogate for the Stage II pair-local field.
//
// The interactive correction of an ordered pair is a smooth function of
// (pitch, r, theta) in the pair frame: a finite Fourier series in theta
// (s11/s22 even, s12 odd about the pair axis) whose radius-dependent
// coefficients decay geometrically with the harmonic index. That structure
// makes it exactly the kind of field a tensor-product Chebyshev expansion
// compresses well:
//
//   * theta enters only through x = cos(theta): the even components are
//     polynomials in x (T_j(cos th) = cos j*th), and s12 = sin(theta) *
//     G12(r, x) with G12 again a polynomial in x — evaluated by Clenshaw
//     recurrences, so the kernel needs no atan2/sin/cos at all;
//   * the radius axis is split at the material interfaces (and optionally
//     inside the substrate), each segment fitted separately; substrate
//     segments expand in u = 1/r, which the Laurent-series far field favors
//     and which reuses the 1/r the kernel already computes for cos(theta);
//   * pitch is a third Chebyshev axis, expanded in q = 1/pitch (the
//     interaction strength is Laurent in the pair distance, so convergence
//     at the small-pitch end — where the field is steepest — improves by
//     orders of magnitude over expanding in pitch directly); a per-pair
//     contraction over it turns the 3-D coefficient tensor into small
//     per-segment matrices once per pair (memoized per thread), leaving the
//     per-point cost at one sqrt, one divide, and a few dozen fused
//     multiply-adds, evaluated in lane-parallel SoA blocks bucketed by
//     radial segment (numeric/kernels style).
//
// Certification is first-class: fitting ends with a dense adversarial
// comparison against the exact series (Chebyshev-offset nodes, random
// points, segment/interface boundaries, random pair frames) whose observed
// maximum error — with a safety margin — becomes the SurrogateCertificate.
// Consumers only use a surrogate whose certificate passes their tolerance
// (InteractiveOptions::surrogate_tolerance); pairs whose pitch falls
// outside the fitted [pitch_min, pitch_max] fall back to the exact series
// per pair, tracked by counters. Certificates and coefficients serialize
// through io/snapshot (SnapshotKind::kSurrogate) bitwise.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::ana {

class InteractiveStressModel;

/// Fit domain and resolution. The defaults target the paper's geometry
/// (R = 2.5, R' = 3 um) at <= 1e-6 certified relative field error while
/// keeping the dominant-area outer substrate segment cheap; re-fit with
/// larger orders if the certificate comes back above your tolerance.
struct SurrogateFitOptions {
  double pitch_min = 8.0;   ///< um; inclusive (the paper's minimum pitch)
  double pitch_max = 25.0;  ///< um; inclusive (= the pair pitch cutoff)
  double r_max = 25.0;      ///< um; must cover the influence radius
  /// Chebyshev order of the pitch axis.
  std::size_t pitch_order = 16;
  /// Extra radial breakpoints inside the substrate (strictly increasing,
  /// in (R', r_max)). More splits let the far, area-dominant segments use
  /// small orders: the per-point cost is the orders of the one segment the
  /// point lands in, not the sum.
  std::vector<double> substrate_splits{8.0, 13.0};
  /// Per-segment Chebyshev orders, one entry per segment in radial order:
  /// core [0,R], liner [R,R'], then the substrate pieces. Sizes must equal
  /// 2 + substrate_splits.size() + 1.
  /// Calibrated against the exact series: the angular orders sit at their
  /// accuracy floor (the far-substrate Fourier content is set by aggressor
  /// proximity, not segment width — cutting any of them past this blows the
  /// 1e-6 budget by orders of magnitude), while the radial orders are the
  /// smallest that keep each segment's band error under the certification
  /// budget.
  std::vector<std::size_t> radial_orders{14, 10, 12, 6, 5};
  std::vector<std::size_t> angular_orders{20, 20, 16, 12, 10};
  // --- certification sampling ---
  std::size_t cert_pitches = 48;          ///< pitch samples (nodes+random+ends)
  std::size_t cert_points_per_pitch = 224;
  /// Safety factor applied to the observed max error: fresh samples between
  /// the certification points may peak slightly above the observed maximum.
  double cert_margin = 1.3;
  std::uint64_t cert_seed = 0x5eed0001ull;
};

/// The machine-checked accuracy contract of a fitted surrogate. Produced by
/// PairSurrogate::fit from dense adversarial sampling against the exact
/// series; serialized with the coefficients, and consulted (not recomputed)
/// by consumers to gate use.
struct SurrogateCertificate {
  double pitch_min = 0.0;  ///< fitted pitch domain, um (inclusive)
  double pitch_max = 0.0;
  double r_max = 0.0;      ///< fitted radial domain, um
  std::uint64_t coefficient_count = 0;  ///< stored doubles across segments
  std::uint64_t sample_count = 0;       ///< adversarial samples compared
  /// Largest |exact| component over the certification samples, MPa — the
  /// normalization of the relative bound.
  double field_scale = 0.0;
  /// Largest |surrogate - exact| component observed, MPa.
  double max_abs_error = 0.0;
  /// cert_margin * max_abs_error / field_scale: the bound consumers compare
  /// against their tolerance.
  double certified_rel_bound = 0.0;

  /// True when the certificate attests a verified bound <= `tolerance`.
  /// An empty (never-certified) certificate passes nothing.
  bool certified_within(double tolerance) const {
    return sample_count > 0 && certified_rel_bound > 0.0 &&
           certified_rel_bound <= tolerance;
  }
};

/// Counters of the pitch-domain gate (see try_accumulate).
struct SurrogateUseStats {
  std::uint64_t surrogate_pairs = 0;  ///< pairs evaluated by the surrogate
  std::uint64_t fallback_pairs = 0;   ///< pairs declined (pitch out of domain)
};

class PairSurrogate {
 public:
  /// Plain mirror for binary snapshots (io/snapshot): coefficients, domain,
  /// and the certificate. Round trip through the Data constructor is
  /// bitwise exact.
  struct Data {
    double pitch_min = 0.0;
    double pitch_max = 0.0;
    double r_max = 0.0;
    std::size_t pitch_order = 0;
    struct Segment {
      std::uint8_t inverse_radial = 0;  ///< expand in u = 1/r (substrate)
      double r0 = 0.0;
      double r1 = 0.0;
      std::size_t nr = 0;  ///< radial Chebyshev order (>= 2)
      std::size_t nx = 0;  ///< angular (cos theta) Chebyshev order (>= 1)
      /// pitch_order * 3 * nr * nx coefficients, layout
      /// [pitch][component][radial][angular] with components (s11, s22,
      /// s12/sin(theta)).
      std::vector<double> coeffs;
    };
    std::vector<Segment> segments;
    SurrogateCertificate certificate;
  };

  /// Fits and certifies a surrogate against `model`'s exact interaction
  /// series. Sampling mirrors PairStressTable (pair frame, victim at the
  /// origin, aggressor on +x) but at Chebyshev-Gauss nodes per segment.
  /// Deterministic for fixed options. Resets the use counters on return.
  static PairSurrogate fit(const InteractiveStressModel& model,
                           const SurrogateFitOptions& options = {});

  /// Reconstructs a surrogate from snapshot data (validates shape; throws
  /// via TSV_REQUIRE on inconsistent dimensions).
  explicit PairSurrogate(Data data);

  PairSurrogate(PairSurrogate&&) noexcept = default;
  PairSurrogate& operator=(PairSurrogate&&) noexcept = default;
  PairSurrogate(const PairSurrogate&) = delete;
  PairSurrogate& operator=(const PairSurrogate&) = delete;

  /// Copies the surrogate into snapshot form (bitwise round trip).
  Data to_data() const;

  const SurrogateCertificate& certificate() const { return certificate_; }
  double pitch_min() const { return pitch_min_; }
  double pitch_max() const { return pitch_max_; }
  double r_max() const { return r_max_; }
  std::size_t pitch_order() const { return pitch_order_; }
  std::uint64_t coefficient_count() const;

  /// Radial breakpoints {0, R, R', substrate splits..., r_max} of the
  /// fitted segments (certification and diagnostics).
  std::vector<double> radial_boundaries() const;

  /// True when `pitch` lies in the fitted (inclusive) pitch domain — the
  /// gate try_accumulate applies.
  bool covers(double pitch) const {
    return pitch >= pitch_min_ && pitch <= pitch_max_;
  }

  /// Batch fast path: if the pair's pitch is covered, adds the pair's
  /// interactive stress at each of points[0..n) into out[i] and returns
  /// true; otherwise leaves `out` untouched and returns false so the caller
  /// falls back to the exact series. Either way the matching use counter is
  /// bumped. Points at r >= r_max() contribute zero (same convention as
  /// PairStressTable). Thread-safe; bitwise deterministic for a fixed
  /// (pair, points) regardless of thread count or call order.
  bool try_accumulate(const geo::Point& victim, const geo::Point& aggressor,
                      const geo::Point* points, std::size_t n,
                      num::SymTensor2* out) const;

  /// Unconditional batch kernel; requires covers(distance(victim,
  /// aggressor)). The pair-frame rotation is hoisted per pair exactly like
  /// PairStressTable::accumulate; per point the kernel is trig-free.
  void accumulate(const geo::Point& victim, const geo::Point& aggressor,
                  const geo::Point* points, std::size_t n,
                  num::SymTensor2* out) const;

  /// Scalar reference path: accumulate with n = 1, so it is bitwise the
  /// batch kernel by construction. Requires covers(pitch).
  num::SymTensor2 stress_at(const geo::Point& victim,
                            const geo::Point& aggressor,
                            const geo::Point& p) const;

  /// Cumulative try_accumulate outcome counters (thread-safe, relaxed).
  SurrogateUseStats use_stats() const;
  void reset_use_stats() const;

 private:
  struct Segment {
    bool inverse_radial = false;
    double r0 = 0.0;
    double r1 = 0.0;
    /// Maps the radial variable (r, or 1/r when inverse) onto [-1, 1]:
    /// t_hat = (v - t_mid) * t_half_inv.
    double t_mid = 0.0;
    double t_half_inv = 0.0;
    std::size_t nr = 0;
    std::size_t nx = 0;
    std::vector<double> coeffs;  ///< [pitch][component][radial][angular]
  };

  struct Counters {
    std::atomic<std::uint64_t> surrogate_pairs{0};
    std::atomic<std::uint64_t> fallback_pairs{0};
  };

  PairSurrogate() = default;

  /// Validates the loaded/fitted shape and derives the per-segment radial
  /// maps. Throws via TSV_REQUIRE on inconsistency.
  void finalize();

  /// Contracts the pitch axis for `pitch` into the calling thread's memo
  /// (per-segment [component][radial][angular] matrices) and returns the
  /// flat matrix storage. Pure function of (surrogate identity, pitch), so
  /// per-thread recomputation is bitwise identical across thread counts.
  const double* contracted_for_pitch(double pitch) const;

  double pitch_min_ = 0.0;
  double pitch_max_ = 0.0;
  /// Pitch-axis map onto [-1, 1] in q = 1/pitch (derived in finalize):
  /// q_hat = (1/pitch - pitch_q_mid_) * pitch_q_half_inv_.
  double pitch_q_mid_ = 0.0;
  double pitch_q_half_inv_ = 0.0;
  double r_max_ = 0.0;
  std::size_t pitch_order_ = 0;
  std::vector<Segment> segments_;
  std::vector<std::size_t> segment_offsets_;  ///< into the contracted memo
  SurrogateCertificate certificate_;
  std::uint64_t id_ = 0;  ///< process-unique memo key (survives moves)
  std::unique_ptr<Counters> counters_;
};

}  // namespace tsv::ana
