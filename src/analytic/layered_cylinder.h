#pragma once
// Exact axisymmetric plane-stress thermoelastic solution for a set of
// concentric material layers embedded in an infinite matrix (the classic
// Lame problem with thermal eigenstrains).
//
// Per layer the radial displacement is u(r) = A r + B / r; the coefficients
// are fixed by displacement and radial-traction continuity at each interface,
// finiteness at r = 0 and stress decay at infinity. This provides
//  * the exact single-TSV stress field in body, liner and substrate, and
//  * the constant K of paper eq. (6): sigma_rr = K / r^2 in the substrate.
//
// Eigenstrains are taken relative to a reference CTE (normally the substrate
// CTE) so the far field is displacement-free; this does not change stresses.

#include <vector>

#include "materials/material.h"
#include "numeric/tensor.h"

namespace tsv::ana {

struct Layer {
  /// Outer radius of this layer, um. The last layer is infinite and its
  /// value is ignored (pass any positive number).
  double outer_radius = 0.0;
  mat::Material material;
};

class LayeredCylinder {
 public:
  /// `layers` from innermost to outermost; the last layer extends to
  /// infinity. Requires at least 2 layers and strictly increasing radii.
  LayeredCylinder(std::vector<Layer> layers, double delta_t,
                  double reference_cte);

  /// Stress components in the cylindrical frame at radius r >= 0:
  /// {srr, stt, srt = 0} in MPa.
  num::SymTensor2 stress(double r) const;

  /// Radial displacement u_r(r), um.
  double radial_displacement(double r) const;

  /// The paper's K (eq. 6): sigma_rr = K / r^2 in the outermost layer.
  /// Units MPa * um^2.
  double far_field_constant() const;

  /// Per-layer solution coefficients (A, B) of u = A r + B / r.
  struct Coefficients {
    double a = 0.0;
    double b = 0.0;
  };
  const std::vector<Coefficients>& coefficients() const { return coeff_; }

 private:
  std::size_t layer_of(double r) const;

  std::vector<Layer> layers_;
  double delta_t_;
  double reference_cte_;
  std::vector<Coefficients> coeff_;
  std::vector<double> eigenstrain_;  // per layer, (alpha - ref) * delta_t
};

}  // namespace tsv::ana
