#pragma once
// Characterization of the interactive-stress response (paper Sec. 3.3) by
// boundary collocation on the complex-potential ansatz, eqs. (9)-(17).
//
// Problem: an infinite silicon substrate contains a coated circular
// inclusion (copper core radius k = R/R', liner outer radius 1 in hat
// space). The aggressor TSV's ideal field — potentials phi = 0,
// psi(z) = khat / (z - dhat) — loads the inclusion, whose elastic-property
// mismatch scatters it. Expanding the applied psi about the victim center,
//
//   psi(z) = sum_n beta_n z^n,   beta_n = -khat / dhat^(n+1),
//
// the only pitch dependence is in beta_n. For each basis load psi = z^n we
// solve once per TSV geometry for the response potentials in core, liner
// and substrate (unknown Laurent coefficients fitted by least-squares
// collocation of traction and displacement continuity on both interfaces —
// the same conditions as paper eqs. (14)-(17)). These d-independent
// responses play exactly the role of the paper's h_ij(m) tables.
//
// The exact response to a polynomial load is itself a finite Laurent field,
// so with enough retained powers the collocation fit is exact to rounding;
// worst_fit_residual() exposes the achieved residual for validation.

#include <vector>

#include "analytic/potentials.h"
#include "tsv/structure.h"

namespace tsv::ana {

/// Potentials of one elastic field split by region (hat space).
struct RegionField {
  PotentialField core;
  PotentialField liner;
  PotentialField substrate;  ///< scattered part only (applied is explicit)
};

struct InclusionResponseOptions {
  /// Highest applied-psi power n (paper: m_max = 10 series terms; basis
  /// power n corresponds to traction harmonics up to m = n + 2).
  int max_basis_power = 12;
  /// Truncation order N of the unknown series in each region.
  int series_order = 18;
  /// Collocation points per interface circle.
  int collocation_points = 96;
};

class InclusionResponse {
 public:
  explicit InclusionResponse(const tsvlib::TsvStructure& structure,
                             const InclusionResponseOptions& options = {});

  const tsvlib::TsvStructure& structure() const { return structure_; }
  const InclusionResponseOptions& options() const { return options_; }

  int max_basis_power() const { return options_.max_basis_power; }

  /// Response to the applied load (phi = 0, psi = z^n), n in
  /// [0, max_basis_power].
  const RegionField& response_to_psi(int n) const;

  /// Largest relative collocation residual across all basis loads
  /// (should be near rounding; > ~1e-6 indicates an under-resolved series).
  double worst_fit_residual() const { return worst_fit_residual_; }

 private:
  tsvlib::TsvStructure structure_;
  InclusionResponseOptions options_;
  std::vector<RegionField> responses_;
  double worst_fit_residual_ = 0.0;
};

}  // namespace tsv::ana
