#pragma once
// Regular grids of simulation points. The framework evaluates stress on such
// grids; the metrics engine compares fields on them.

#include <cstddef>
#include <vector>

#include "geometry/point.h"

namespace tsv::geo {

/// A regular nx x ny grid of points covering a box inclusively (points on
/// both edges). Iteration order is row-major, y outer.
class SampleGrid {
 public:
  /// Grid with the given point counts per axis (each >= 1).
  SampleGrid(const Box& box, std::size_t nx, std::size_t ny);

  /// Grid with approximately the given spacing; point counts are rounded so
  /// that the box is covered exactly.
  static SampleGrid with_spacing(const Box& box, double spacing);

  const Box& box() const { return box_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t size() const { return nx_ * ny_; }
  double dx() const { return dx_; }
  double dy() const { return dy_; }

  Point point(std::size_t i) const {
    TSV_ASSERT(i < size());
    return point(i % nx_, i / nx_);
  }
  Point point(std::size_t ix, std::size_t iy) const {
    TSV_ASSERT(ix < nx_ && iy < ny_);
    return {box_.lo.x + static_cast<double>(ix) * dx_,
            box_.lo.y + static_cast<double>(iy) * dy_};
  }

  /// Materializes all points (row-major, y outer).
  std::vector<Point> points() const;

  /// Row-major index of the grid point nearest to `p` (clamped to the box),
  /// so "evaluate at (x, y)" snaps to the point a full-grid evaluation
  /// produced — exact field values, no interpolation.
  std::size_t nearest_index(const Point& p) const;

 private:
  Box box_;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  double dx_ = 0.0;
  double dy_ = 0.0;
};

/// Bilinear interpolation of a per-point scalar field (indexed like
/// grid.points()) at an arbitrary point, clamped to the grid box so probes
/// just outside the halo stay finite. Shared by the variation engine's KOZ
/// exceedance maps and the server's contour endpoint.
double bilinear(const SampleGrid& grid, const std::vector<double>& field,
                const Point& p);

}  // namespace tsv::geo
