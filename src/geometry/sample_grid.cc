#include "geometry/sample_grid.h"

#include <cmath>

namespace tsv::geo {

SampleGrid::SampleGrid(const Box& box, std::size_t nx, std::size_t ny)
    : box_(box), nx_(nx), ny_(ny) {
  TSV_REQUIRE(nx >= 1 && ny >= 1, "grid needs at least one point per axis");
  dx_ = nx > 1 ? box.width() / static_cast<double>(nx - 1) : 0.0;
  dy_ = ny > 1 ? box.height() / static_cast<double>(ny - 1) : 0.0;
}

SampleGrid SampleGrid::with_spacing(const Box& box, double spacing) {
  TSV_REQUIRE(spacing > 0.0, "spacing must be positive");
  const std::size_t nx =
      1 + static_cast<std::size_t>(std::llround(box.width() / spacing));
  const std::size_t ny =
      1 + static_cast<std::size_t>(std::llround(box.height() / spacing));
  return SampleGrid(box, std::max<std::size_t>(nx, 1),
                    std::max<std::size_t>(ny, 1));
}

std::vector<Point> SampleGrid::points() const {
  std::vector<Point> out;
  out.reserve(size());
  for (std::size_t iy = 0; iy < ny_; ++iy)
    for (std::size_t ix = 0; ix < nx_; ++ix) out.push_back(point(ix, iy));
  return out;
}

}  // namespace tsv::geo
