#include "geometry/sample_grid.h"

#include <algorithm>
#include <cmath>

namespace tsv::geo {

SampleGrid::SampleGrid(const Box& box, std::size_t nx, std::size_t ny)
    : box_(box), nx_(nx), ny_(ny) {
  TSV_REQUIRE(nx >= 1 && ny >= 1, "grid needs at least one point per axis");
  dx_ = nx > 1 ? box.width() / static_cast<double>(nx - 1) : 0.0;
  dy_ = ny > 1 ? box.height() / static_cast<double>(ny - 1) : 0.0;
}

SampleGrid SampleGrid::with_spacing(const Box& box, double spacing) {
  TSV_REQUIRE(spacing > 0.0, "spacing must be positive");
  const std::size_t nx =
      1 + static_cast<std::size_t>(std::llround(box.width() / spacing));
  const std::size_t ny =
      1 + static_cast<std::size_t>(std::llround(box.height() / spacing));
  return SampleGrid(box, std::max<std::size_t>(nx, 1),
                    std::max<std::size_t>(ny, 1));
}

std::vector<Point> SampleGrid::points() const {
  std::vector<Point> out;
  out.reserve(size());
  for (std::size_t iy = 0; iy < ny_; ++iy)
    for (std::size_t ix = 0; ix < nx_; ++ix) out.push_back(point(ix, iy));
  return out;
}

std::size_t SampleGrid::nearest_index(const Point& p) const {
  const auto snap = [](double v, double d, std::size_t n) {
    if (d <= 0.0 || n <= 1) return std::size_t{0};
    const double f = std::clamp(v / d, 0.0, static_cast<double>(n - 1));
    return std::min(static_cast<std::size_t>(std::llround(f)), n - 1);
  };
  const std::size_t ix = snap(p.x - box_.lo.x, dx_, nx_);
  const std::size_t iy = snap(p.y - box_.lo.y, dy_, ny_);
  return iy * nx_ + ix;
}

double bilinear(const SampleGrid& grid, const std::vector<double>& field,
                const Point& p) {
  const Box& box = grid.box();
  const double fx = grid.dx() > 0.0
                        ? std::clamp((p.x - box.lo.x) / grid.dx(), 0.0,
                                     static_cast<double>(grid.nx() - 1))
                        : 0.0;
  const double fy = grid.dy() > 0.0
                        ? std::clamp((p.y - box.lo.y) / grid.dy(), 0.0,
                                     static_cast<double>(grid.ny() - 1))
                        : 0.0;
  const auto ix = std::min(static_cast<std::size_t>(fx), grid.nx() - 1);
  const auto iy = std::min(static_cast<std::size_t>(fy), grid.ny() - 1);
  const std::size_t ix1 = std::min(ix + 1, grid.nx() - 1);
  const std::size_t iy1 = std::min(iy + 1, grid.ny() - 1);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double f00 = field[iy * grid.nx() + ix];
  const double f10 = field[iy * grid.nx() + ix1];
  const double f01 = field[iy1 * grid.nx() + ix];
  const double f11 = field[iy1 * grid.nx() + ix1];
  return (1.0 - ty) * ((1.0 - tx) * f00 + tx * f10) +
         ty * ((1.0 - tx) * f01 + tx * f11);
}

}  // namespace tsv::geo
