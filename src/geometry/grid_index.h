#pragma once
// Uniform-bucket spatial index over 2D points. Used by the framework to find
// the TSVs within the influence radius of a simulation point (Stage I) and
// the nearby TSV pairs (Stage II) in O(1) per query for bounded density.

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace tsv::geo {

class GridIndex {
 public:
  /// Builds an index over `points`, bucketed on `bounds` with square cells of
  /// size `cell`. Points outside bounds are clamped into the edge cells, so
  /// queries remain correct for them.
  GridIndex(const std::vector<Point>& points, const Box& bounds, double cell);

  std::size_t size() const { return points_.size(); }

  /// Indices of all points with distance(p, q) <= radius, in index order.
  std::vector<std::uint32_t> query_radius(const Point& q, double radius) const;

  /// Appends to `out` instead of allocating (hot-path variant). `out` is
  /// cleared first.
  void query_radius(const Point& q, double radius,
                    std::vector<std::uint32_t>& out) const;

  /// Indices of all points with r_inner < distance(p, q) <= r_outer, in
  /// index order (`out` is cleared first). Interior buckets that lie
  /// entirely inside the inner disc are skipped without testing their
  /// points, so a thin annulus costs O(annulus cells) instead of O(disc
  /// cells) — the far-field edge ring depends on this.
  void query_annulus(const Point& q, double r_inner, double r_outer,
                     std::vector<std::uint32_t>& out) const;

  /// Nearest point index to q, or size() when the index is empty.
  std::uint32_t nearest(const Point& q) const;

 private:
  std::size_t cell_of(const Point& p) const;

  std::vector<Point> points_;
  Box bounds_;
  double cell_ = 1.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  // CSR-style bucket layout.
  std::vector<std::size_t> bucket_ptr_;
  std::vector<std::uint32_t> bucket_items_;
};

/// Dynamic sibling of GridIndex: points are inserted incrementally and
/// queried between insertions, which a CSR layout cannot do. Used by the
/// placement generators to enforce a minimum pitch during dart throwing in
/// O(1) per candidate instead of scanning every accepted point. Points
/// outside the bounds are clamped into the edge cells, like GridIndex.
class OccupancyGrid {
 public:
  OccupancyGrid(const Box& bounds, double cell);

  std::size_t size() const { return points_.size(); }
  const std::vector<Point>& points() const { return points_; }

  /// Inserts p and returns its index.
  std::uint32_t insert(const Point& p);

  /// True if any inserted point lies within `radius` of q.
  bool any_within(const Point& q, double radius) const;

  /// Indices of all inserted points with distance(p, q) <= radius, in
  /// index order.
  std::vector<std::uint32_t> query_radius(const Point& q, double radius) const;

 private:
  std::size_t cell_of(const Point& p) const;
  /// Visits the buckets overlapping the radius-`radius` disc around q;
  /// stops early when visit returns true.
  template <typename Visit>
  bool visit_candidates(const Point& q, double radius, Visit&& visit) const;

  std::vector<Point> points_;
  Box bounds_;
  double cell_ = 1.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  std::vector<std::vector<std::uint32_t>> buckets_;
};

}  // namespace tsv::geo
