#pragma once
// Uniform-bucket spatial index over 2D points. Used by the framework to find
// the TSVs within the influence radius of a simulation point (Stage I) and
// the nearby TSV pairs (Stage II) in O(1) per query for bounded density.

#include <cstdint>
#include <vector>

#include "geometry/point.h"

namespace tsv::geo {

class GridIndex {
 public:
  /// Builds an index over `points`, bucketed on `bounds` with square cells of
  /// size `cell`. Points outside bounds are clamped into the edge cells, so
  /// queries remain correct for them.
  GridIndex(const std::vector<Point>& points, const Box& bounds, double cell);

  std::size_t size() const { return points_.size(); }

  /// Indices of all points with distance(p, q) <= radius, in index order.
  std::vector<std::uint32_t> query_radius(const Point& q, double radius) const;

  /// Appends to `out` instead of allocating (hot-path variant). `out` is
  /// cleared first.
  void query_radius(const Point& q, double radius,
                    std::vector<std::uint32_t>& out) const;

  /// Nearest point index to q, or size() when the index is empty.
  std::uint32_t nearest(const Point& q) const;

 private:
  std::size_t cell_of(const Point& p) const;

  std::vector<Point> points_;
  Box bounds_;
  double cell_ = 1.0;
  std::size_t nx_ = 1;
  std::size_t ny_ = 1;
  // CSR-style bucket layout.
  std::vector<std::size_t> bucket_ptr_;
  std::vector<std::uint32_t> bucket_items_;
};

}  // namespace tsv::geo
