#pragma once
// 2D points/vectors and axis-aligned boxes. All coordinates are micrometers
// unless a caller documents otherwise.

#include <algorithm>
#include <cmath>
#include <vector>

#include "numeric/check.h"

namespace tsv::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Point& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }
};

inline Point operator+(Point a, const Point& b) { return a += b; }
inline Point operator-(Point a, const Point& b) { return a -= b; }
inline Point operator*(Point a, double s) { return a *= s; }
inline Point operator*(double s, Point a) { return a *= s; }

inline double dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}
inline double norm(const Point& p) { return std::hypot(p.x, p.y); }
inline double distance(const Point& a, const Point& b) { return norm(a - b); }
inline double distance_squared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}
/// Angle of the vector from `from` to `to` against the +x axis, in (-pi, pi].
inline double angle_of(const Point& from, const Point& to) {
  return std::atan2(to.y - from.y, to.x - from.x);
}

/// Axis-aligned bounding box (closed).
struct Box {
  Point lo;
  Point hi;

  Box() = default;
  Box(Point lo_, Point hi_) : lo(lo_), hi(hi_) {
    TSV_REQUIRE(lo.x <= hi.x && lo.y <= hi.y, "inverted box");
  }

  /// Closed hull of a non-empty point set. Inclusive on every edge: each
  /// input point satisfies contains() exactly, with no epsilon padding —
  /// spatial indexes built on the result clamp hull-edge points into their
  /// last cell (see GridIndex::cell_of), so padding is never needed.
  static Box bounding(const std::vector<Point>& points) {
    TSV_REQUIRE(!points.empty(), "bounding box of an empty point set");
    Point lo = points.front();
    Point hi = points.front();
    for (const Point& p : points) {
      lo.x = std::min(lo.x, p.x);
      lo.y = std::min(lo.y, p.y);
      hi.x = std::max(hi.x, p.x);
      hi.y = std::max(hi.y, p.y);
    }
    return Box{lo, hi};
  }

  static Box centered(Point center, double width, double height) {
    TSV_REQUIRE(width >= 0.0 && height >= 0.0, "negative box extent");
    return Box{{center.x - width / 2.0, center.y - height / 2.0},
               {center.x + width / 2.0, center.y + height / 2.0}};
  }

  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  Point center() const { return {(lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0}; }

  bool contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  Box expanded(double margin) const {
    TSV_REQUIRE(margin >= -std::min(width(), height()) / 2.0,
                "expansion collapses box");
    return Box{{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }
};

}  // namespace tsv::geo
