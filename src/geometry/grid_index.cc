#include "geometry/grid_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsv::geo {

GridIndex::GridIndex(const std::vector<Point>& points, const Box& bounds,
                     double cell)
    : points_(points), bounds_(bounds), cell_(cell) {
  TSV_REQUIRE(cell > 0.0, "cell size must be positive");
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds_.width() / cell_)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds_.height() / cell_)));

  bucket_ptr_.assign(nx_ * ny_ + 1, 0);
  for (const Point& p : points_) ++bucket_ptr_[cell_of(p) + 1];
  for (std::size_t c = 0; c < nx_ * ny_; ++c)
    bucket_ptr_[c + 1] += bucket_ptr_[c];
  bucket_items_.resize(points_.size());
  std::vector<std::size_t> cursor(bucket_ptr_.begin(), bucket_ptr_.end() - 1);
  for (std::uint32_t i = 0; i < points_.size(); ++i)
    bucket_items_[cursor[cell_of(points_[i])]++] = i;
}

std::size_t GridIndex::cell_of(const Point& p) const {
  const auto clamp_idx = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const std::size_t i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t ix = clamp_idx((p.x - bounds_.lo.x) / cell_, nx_);
  const std::size_t iy = clamp_idx((p.y - bounds_.lo.y) / cell_, ny_);
  return iy * nx_ + ix;
}

void GridIndex::query_radius(const Point& q, double radius,
                             std::vector<std::uint32_t>& out) const {
  TSV_REQUIRE(radius >= 0.0, "negative query radius");
  out.clear();
  // Both ends are clamped into [0, n-1] independently: points outside the
  // index bounds live in the edge cells, so a query reaching past the bounds
  // must still visit those cells.
  const auto cell_range = [&](double lo, double hi, double origin,
                              std::size_t n) {
    const double a = (lo - origin) / cell_;
    const double b = (hi - origin) / cell_;
    const long last = static_cast<long>(n) - 1;
    const long ia =
        std::clamp(static_cast<long>(std::floor(a)), 0L, last);
    const long ib =
        std::clamp(static_cast<long>(std::floor(b)), 0L, last);
    return std::pair<long, long>{ia, ib};
  };
  const auto [ix0, ix1] =
      cell_range(q.x - radius, q.x + radius, bounds_.lo.x, nx_);
  const auto [iy0, iy1] =
      cell_range(q.y - radius, q.y + radius, bounds_.lo.y, ny_);
  const double r2 = radius * radius;
  for (long iy = iy0; iy <= iy1; ++iy) {
    for (long ix = ix0; ix <= ix1; ++ix) {
      const std::size_t c =
          static_cast<std::size_t>(iy) * nx_ + static_cast<std::size_t>(ix);
      for (std::size_t k = bucket_ptr_[c]; k < bucket_ptr_[c + 1]; ++k) {
        const std::uint32_t idx = bucket_items_[k];
        if (distance_squared(points_[idx], q) <= r2) out.push_back(idx);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::vector<std::uint32_t> GridIndex::query_radius(const Point& q,
                                                   double radius) const {
  std::vector<std::uint32_t> out;
  query_radius(q, radius, out);
  return out;
}

void GridIndex::query_annulus(const Point& q, double r_inner, double r_outer,
                              std::vector<std::uint32_t>& out) const {
  TSV_REQUIRE(0.0 <= r_inner && r_inner <= r_outer,
              "annulus radii must satisfy 0 <= r_inner <= r_outer");
  out.clear();
  const auto cell_range = [&](double lo, double hi, double origin,
                              std::size_t n) {
    const double a = (lo - origin) / cell_;
    const double b = (hi - origin) / cell_;
    const long last = static_cast<long>(n) - 1;
    const long ia = std::clamp(static_cast<long>(std::floor(a)), 0L, last);
    const long ib = std::clamp(static_cast<long>(std::floor(b)), 0L, last);
    return std::pair<long, long>{ia, ib};
  };
  const auto [ix0, ix1] =
      cell_range(q.x - r_outer, q.x + r_outer, bounds_.lo.x, nx_);
  const auto [iy0, iy1] =
      cell_range(q.y - r_outer, q.y + r_outer, bounds_.lo.y, ny_);
  const double ri2 = r_inner * r_inner;
  const double ro2 = r_outer * r_outer;
  for (long iy = iy0; iy <= iy1; ++iy) {
    for (long ix = ix0; ix <= ix1; ++ix) {
      // Skip interior buckets wholly inside the inner disc (their farthest
      // corner is still within r_inner). Edge buckets also hold clamped
      // outside points, so only interior cells are safe to skip.
      if (ix > 0 && ix < static_cast<long>(nx_) - 1 && iy > 0 &&
          iy < static_cast<long>(ny_) - 1) {
        const double cx0 = bounds_.lo.x + static_cast<double>(ix) * cell_;
        const double cy0 = bounds_.lo.y + static_cast<double>(iy) * cell_;
        const double dx = std::max(std::abs(q.x - cx0),
                                   std::abs(q.x - (cx0 + cell_)));
        const double dy = std::max(std::abs(q.y - cy0),
                                   std::abs(q.y - (cy0 + cell_)));
        if (dx * dx + dy * dy <= ri2) continue;
      }
      const std::size_t c =
          static_cast<std::size_t>(iy) * nx_ + static_cast<std::size_t>(ix);
      for (std::size_t k = bucket_ptr_[c]; k < bucket_ptr_[c + 1]; ++k) {
        const std::uint32_t idx = bucket_items_[k];
        const double d2 = distance_squared(points_[idx], q);
        if (d2 > ri2 && d2 <= ro2) out.push_back(idx);
      }
    }
  }
  std::sort(out.begin(), out.end());
}

std::uint32_t GridIndex::nearest(const Point& q) const {
  if (points_.empty()) return 0;
  // Expanding ring search; falls back to linear scan when the ring exceeds
  // the indexed area (correct albeit slow for far-away queries).
  double radius = cell_;
  const double max_radius =
      std::hypot(bounds_.width(), bounds_.height()) + cell_ +
      std::max({std::abs(q.x - bounds_.lo.x), std::abs(q.x - bounds_.hi.x),
                std::abs(q.y - bounds_.lo.y), std::abs(q.y - bounds_.hi.y)});
  std::vector<std::uint32_t> found;
  while (radius <= max_radius) {
    query_radius(q, radius, found);
    if (!found.empty()) break;
    radius *= 2.0;
  }
  if (found.empty()) {
    found.resize(points_.size());
    for (std::uint32_t i = 0; i < points_.size(); ++i) found[i] = i;
  }
  std::uint32_t best = found.front();
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::uint32_t i : found) {
    const double d2 = distance_squared(points_[i], q);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

OccupancyGrid::OccupancyGrid(const Box& bounds, double cell)
    : bounds_(bounds), cell_(cell) {
  TSV_REQUIRE(cell > 0.0, "cell size must be positive");
  nx_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds_.width() / cell_)));
  ny_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(bounds_.height() / cell_)));
  buckets_.resize(nx_ * ny_);
}

std::size_t OccupancyGrid::cell_of(const Point& p) const {
  const auto clamp_idx = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const std::size_t i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t ix = clamp_idx((p.x - bounds_.lo.x) / cell_, nx_);
  const std::size_t iy = clamp_idx((p.y - bounds_.lo.y) / cell_, ny_);
  return iy * nx_ + ix;
}

std::uint32_t OccupancyGrid::insert(const Point& p) {
  const std::uint32_t index = static_cast<std::uint32_t>(points_.size());
  points_.push_back(p);
  buckets_[cell_of(p)].push_back(index);
  return index;
}

template <typename Visit>
bool OccupancyGrid::visit_candidates(const Point& q, double radius,
                                     Visit&& visit) const {
  TSV_REQUIRE(radius >= 0.0, "negative query radius");
  // Both ends clamp independently so queries past the bounds still visit
  // the edge cells holding clamped outside points (see GridIndex).
  const auto cell_range = [&](double lo, double hi, double origin,
                              std::size_t n) {
    const double a = (lo - origin) / cell_;
    const double b = (hi - origin) / cell_;
    const long last = static_cast<long>(n) - 1;
    const long ia = std::clamp(static_cast<long>(std::floor(a)), 0L, last);
    const long ib = std::clamp(static_cast<long>(std::floor(b)), 0L, last);
    return std::pair<long, long>{ia, ib};
  };
  const auto [ix0, ix1] =
      cell_range(q.x - radius, q.x + radius, bounds_.lo.x, nx_);
  const auto [iy0, iy1] =
      cell_range(q.y - radius, q.y + radius, bounds_.lo.y, ny_);
  const double r2 = radius * radius;
  for (long iy = iy0; iy <= iy1; ++iy) {
    for (long ix = ix0; ix <= ix1; ++ix) {
      const std::size_t c =
          static_cast<std::size_t>(iy) * nx_ + static_cast<std::size_t>(ix);
      for (const std::uint32_t idx : buckets_[c]) {
        if (distance_squared(points_[idx], q) <= r2 && visit(idx))
          return true;
      }
    }
  }
  return false;
}

bool OccupancyGrid::any_within(const Point& q, double radius) const {
  return visit_candidates(q, radius, [](std::uint32_t) { return true; });
}

std::vector<std::uint32_t> OccupancyGrid::query_radius(const Point& q,
                                                       double radius) const {
  std::vector<std::uint32_t> out;
  visit_candidates(q, radius, [&out](std::uint32_t idx) {
    out.push_back(idx);
    return false;
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tsv::geo
