#pragma once
// SessionManager: the engine-state owner behind the stress-service daemon.
//
// Until now every IncrementalEngine lived in a CLI stack frame and died
// with the process; a persistent service needs a long-lived owner with an
// explicit control plane. SessionManager holds N named sessions, each a
// resident core::IncrementalEngine (one per design/user), and provides:
//
//   * Admission control. Every open/reload is budgeted: a session whose
//     estimated resident footprint exceeds the per-session budget is
//     refused with tsv::ResourceLimitError (kResourceLimit -> wire code 5),
//     and the sum of resident sessions is kept under the global budget by
//     evicting least-recently-used idle sessions first — only when nothing
//     evictable remains is the request refused.
//   * Snapshot-backed eviction. Evicting writes the full engine state
//     through io::save_engine_state (fields, tables, embedded surrogate)
//     to <snapshot_dir>/<name>.snap and releases the engine; the next
//     request on that session transparently reloads it, bitwise identical
//     (snapshots round-trip byte-exactly).
//   * Crash recovery. Construction scans the snapshot directory: every
//     valid engine-state snapshot becomes an evicted-but-known session, so
//     a restarted daemon serves yesterday's sessions from their last saved
//     state. Corrupt files are skipped (and reported), never trusted.
//
// Concurrency contract (mirrors the repo's determinism rules): each session
// has its own work mutex, so all engine use — edits *and* queries — is
// serialized per session while independent sessions proceed concurrently on
// their own connections. Engines are built and applied with num_threads=1,
// so every per-session result is bitwise reproducible regardless of how
// requests interleave across sessions (test_server_concurrent locks this).
// The manager mutex only guards the session map, LRU clock, and memory
// accounting; it is never held across an engine evaluation. Eviction locks
// its victim with try_lock, so a session actively serving a request is
// never evicted out from under it (and lock order cannot cycle).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental_engine.h"
#include "tsv/placement.h"

namespace tsv::server {

struct SessionLimits {
  std::size_t max_sessions = 16;  ///< resident engines at once
  std::uint64_t session_budget_bytes = 512ull << 20;
  std::uint64_t global_budget_bytes = 2048ull << 20;
};

/// How to build a session's engine from a placement (the eco subset of the
/// CLI's evaluation knobs; everything is forced serial for determinism).
struct SessionSpec {
  double spacing = 0.5;  ///< grid spacing, um
  double margin = 25.0;  ///< halo around the placement bounding box, um
  bool lookup = false;   ///< Stage II via quantized polar tables
  double quant_step = 0.25;
  bool surrogate = false;  ///< fit + attach the certified surrogate
};

/// Monotonic per-session counters, exposed by the stats endpoint.
struct SessionCounters {
  std::uint64_t queries = 0;        ///< point-query requests
  std::uint64_t points = 0;         ///< points served across queries
  std::uint64_t regions = 0;        ///< region-map requests
  std::uint64_t koz_queries = 0;    ///< KOZ contour requests
  std::uint64_t edits = 0;          ///< eco batches applied
  std::uint64_t eco_ops = 0;        ///< individual ops across batches
  std::uint64_t evictions = 0;      ///< times snapshot-evicted
  std::uint64_t reloads = 0;        ///< transparent snapshot reloads
};

struct SessionStats {
  std::string name;
  bool resident = false;
  std::size_t tsvs = 0;         ///< active TSVs (0 when evicted)
  std::size_t grid_points = 0;  ///< 0 when evicted
  std::uint64_t estimated_bytes = 0;
  SessionCounters counters;
  double cache_hit_rate = 0.0;  ///< Stage II pair-table cache
  bool has_surrogate = false;
};

struct ManagerStats {
  std::size_t resident_sessions = 0;
  std::size_t evicted_sessions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t session_budget_bytes = 0;
  std::uint64_t global_budget_bytes = 0;
  std::uint64_t admission_refusals = 0;
  std::uint64_t evictions = 0;  ///< global, including forced ones
  std::uint64_t reloads = 0;
  std::vector<SessionStats> sessions;
};

/// Conservative estimate of an engine's resident footprint: the two
/// per-point tensor fields (which dominate at full-chip grids), placement
/// slots, the radial table, and the pair-table cache. Used for admission
/// and for the stats endpoint's RSS estimate.
std::uint64_t estimate_engine_bytes(const core::IncrementalEngine& engine);

class SessionManager {
 public:
  /// `snapshot_dir` must exist; it is scanned for engine-state snapshots
  /// (crash recovery — see header comment).
  SessionManager(std::string snapshot_dir, SessionLimits limits);

  const SessionLimits& limits() const { return limits_; }
  const std::string& snapshot_dir() const { return snapshot_dir_; }
  /// Session names recovered from snapshots at construction.
  const std::vector<std::string>& recovered() const { return recovered_; }

  /// Builds a new resident session. Throws InvalidInputError on a duplicate
  /// or invalid name, ResourceLimitError when admission fails.
  void open(const std::string& name, const tsvlib::Placement& placement,
            const SessionSpec& spec);

  class Session;

  /// Exclusive access to a session's engine for the duration of one
  /// request. Acquiring the guard transparently reloads an evicted session
  /// from its snapshot (counting a reload) and bumps the LRU clock.
  class Guard {
   public:
    core::IncrementalEngine& engine();
    /// Counter bumps for the stats endpoint (thread-safe vs stats()).
    void count_query(std::size_t points);
    void count_region();
    void count_koz();
    void count_eco(std::size_t ops);
    ~Guard();
    Guard(Guard&&) noexcept;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class SessionManager;
    Guard(std::shared_ptr<Session> session,
          std::unique_lock<std::mutex> lock);
    std::shared_ptr<Session> session_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Locks `name` for use, reloading it from its snapshot if evicted.
  /// Throws InvalidInputError for unknown sessions, IoCorruptionError when
  /// the snapshot is damaged, ResourceLimitError when the reload cannot be
  /// admitted.
  Guard use(const std::string& name);

  /// Snapshot-evicts a resident session (no-op when already evicted).
  /// Throws InvalidInputError for unknown sessions.
  void evict(const std::string& name);

  /// Removes a session. Unless `discard`, a resident engine is snapshotted
  /// first so the state survives for a later open of the same directory;
  /// with `discard` the snapshot file is deleted too.
  void close(const std::string& name, bool discard);

  /// Evicts every resident session (daemon shutdown: durable state on disk).
  void evict_all();

  ManagerStats stats() const;

 private:
  std::shared_ptr<Session> find(const std::string& name) const;
  std::string snapshot_path(const std::string& name) const;
  /// Under mu_: evicts LRU idle sessions until `needed` more bytes fit
  /// under the global budget and a resident slot is free. Returns false
  /// when that is impossible without touching busy sessions or `keep`.
  bool make_room_locked(std::uint64_t needed, const Session* keep);
  void save_and_release_locked(Session& s);

  std::string snapshot_dir_;
  SessionLimits limits_;
  std::vector<std::string> recovered_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Session>> sessions_;  ///< insertion order
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t admission_refusals_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reloads_ = 0;
};

}  // namespace tsv::server
