#pragma once
// SessionManager: the engine-state owner behind the stress-service daemon.
//
// Until now every IncrementalEngine lived in a CLI stack frame and died
// with the process; a persistent service needs a long-lived owner with an
// explicit control plane. SessionManager holds N named sessions, each a
// resident core::IncrementalEngine (one per design/user), and provides:
//
//   * Admission control. Every open/reload is budgeted: a session whose
//     estimated resident footprint exceeds the per-session budget is
//     refused with tsv::ResourceLimitError (kResourceLimit -> wire code 5),
//     and the sum of resident sessions is kept under the global budget by
//     evicting least-recently-used idle sessions first — only when nothing
//     evictable remains is the request refused.
//   * Snapshot-backed eviction. Evicting writes the full engine state
//     through io::save_engine_state (fields, tables, embedded surrogate)
//     to <snapshot_dir>/<name>.snap and releases the engine; the next
//     request on that session transparently reloads it, bitwise identical
//     (snapshots round-trip byte-exactly).
//   * Crash recovery. Construction scans the snapshot directory: every
//     valid engine-state snapshot becomes an evicted-but-known session, so
//     a restarted daemon serves yesterday's sessions from their last saved
//     state. Corrupt files are skipped (and reported), never trusted.
//   * Durability (write-ahead eco journal). Every eco batch is appended to
//     <snapshot_dir>/<name>.jrnl (checksummed, fsynced by default) after
//     the engine applied it and before the ack, so a SIGKILL cannot lose
//     an acknowledged edit: recovery replays journal-on-top-of-snapshot
//     (or rebuilds from the journal's open record when no snapshot landed
//     yet) and the restarted session is bitwise identical to one that shut
//     down cleanly. Snapshots truncate the journal down to an anchor
//     carrying the snapshot's payload checksum + the sequence watermark;
//     replay starts after the last anchor matching the on-disk snapshot,
//     which keeps the crash window between "snapshot written" and "journal
//     reset" from double-applying. Client-supplied eco sequence numbers
//     are deduped against the journaled watermark, so a retry after a
//     lost ack is acked as a no-op instead of applied twice. If a journal
//     append fails the batch is made durable the expensive way (immediate
//     snapshot + journal reset); only when both fail does the eco error
//     out — with the watermark advanced, so even then a retry dedupes
//     instead of double-applying, and the duplicate ack is withheld until
//     a fresh snapshot lands (the retry re-attempts durability).
//
// Concurrency contract (mirrors the repo's determinism rules): each session
// has its own work mutex, so all engine use — edits *and* queries — is
// serialized per session while independent sessions proceed concurrently on
// their own connections. Engines are built and applied with num_threads=1,
// so every per-session result is bitwise reproducible regardless of how
// requests interleave across sessions (test_server_concurrent locks this).
// The manager mutex only guards the session map, LRU clock, and memory
// accounting; it is never held across an engine evaluation. Eviction locks
// its victim with try_lock, so a session actively serving a request is
// never evicted out from under it (and lock order cannot cycle).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/incremental_engine.h"
#include "tsv/placement.h"

namespace tsv::server {

struct SessionLimits {
  std::size_t max_sessions = 16;  ///< resident engines at once
  std::uint64_t session_budget_bytes = 512ull << 20;
  std::uint64_t global_budget_bytes = 2048ull << 20;
};

/// How to build a session's engine from a placement (the eco subset of the
/// CLI's evaluation knobs; everything is forced serial for determinism).
struct SessionSpec {
  double spacing = 0.5;  ///< grid spacing, um
  double margin = 25.0;  ///< halo around the placement bounding box, um
  bool lookup = false;   ///< Stage II via quantized polar tables
  double quant_step = 0.25;
  bool surrogate = false;  ///< fit + attach the certified surrogate
  /// fsync the eco journal on every acked batch (full durability). false
  /// trades power-loss durability for eco latency: process death still
  /// cannot lose an acked batch (the page cache survives it), only a
  /// machine-level crash can. Persisted in the journal header.
  bool journal_fsync = true;
};

/// Monotonic per-session counters, exposed by the stats endpoint.
struct SessionCounters {
  std::uint64_t queries = 0;        ///< point-query requests
  std::uint64_t points = 0;         ///< points served across queries
  std::uint64_t regions = 0;        ///< region-map requests
  std::uint64_t koz_queries = 0;    ///< KOZ contour requests
  std::uint64_t edits = 0;          ///< eco batches applied
  std::uint64_t eco_ops = 0;        ///< individual ops across batches
  std::uint64_t evictions = 0;      ///< times snapshot-evicted
  std::uint64_t reloads = 0;        ///< transparent snapshot reloads
  std::uint64_t journaled = 0;      ///< batches made durable via the journal
  std::uint64_t duplicates = 0;     ///< deduped eco retries (no-op acks)
  std::uint64_t replays = 0;        ///< batches replayed at reload/recovery
  std::uint64_t journal_fallbacks = 0;  ///< durable via snapshot instead
};

struct SessionStats {
  std::string name;
  bool resident = false;
  std::size_t tsvs = 0;         ///< active TSVs (0 when evicted)
  std::size_t grid_points = 0;  ///< 0 when evicted
  std::uint64_t estimated_bytes = 0;
  SessionCounters counters;
  double cache_hit_rate = 0.0;  ///< Stage II pair-table cache
  bool has_surrogate = false;
};

struct ManagerStats {
  std::size_t resident_sessions = 0;
  std::size_t evicted_sessions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t session_budget_bytes = 0;
  std::uint64_t global_budget_bytes = 0;
  std::uint64_t admission_refusals = 0;
  std::uint64_t evictions = 0;  ///< global, including forced ones
  std::uint64_t reloads = 0;
  std::uint64_t journal_replays = 0;     ///< eco batches replayed, global
  std::uint64_t journal_torn_tails = 0;  ///< damaged tails cut back
  std::uint64_t journal_fallbacks = 0;   ///< appends degraded to snapshots
  std::uint64_t durability_failures = 0;  ///< both paths failed (eco errored)
  std::vector<SessionStats> sessions;
};

/// Conservative estimate of an engine's resident footprint: the two
/// per-point tensor fields (which dominate at full-chip grids), placement
/// slots, the radial table, and the pair-table cache. Used for admission
/// and for the stats endpoint's RSS estimate.
std::uint64_t estimate_engine_bytes(const core::IncrementalEngine& engine);

class SessionManager {
 public:
  /// `snapshot_dir` must exist; it is scanned for engine-state snapshots
  /// (crash recovery — see header comment).
  SessionManager(std::string snapshot_dir, SessionLimits limits);

  const SessionLimits& limits() const { return limits_; }
  const std::string& snapshot_dir() const { return snapshot_dir_; }
  /// Session names recovered from snapshots at construction.
  const std::vector<std::string>& recovered() const { return recovered_; }

  /// Builds a new resident session. Throws InvalidInputError on a duplicate
  /// or invalid name, ResourceLimitError when admission fails.
  void open(const std::string& name, const tsvlib::Placement& placement,
            const SessionSpec& spec);

  class Session;

  /// Outcome of one Guard::apply_eco call.
  struct EcoResult {
    bool duplicate = false;  ///< sequence already applied; nothing done
    /// The journal append failed, so the batch was made durable via an
    /// immediate snapshot instead (slow but safe).
    bool journal_fallback = false;
    core::ApplyStats stats;      ///< zeros when duplicate
    std::size_t pre_slots = 0;   ///< slot count before the batch (add ids)
    /// Whether pre_slots is meaningful, i.e. the caller can derive the
    /// slot ids this batch's adds allocated. Always true for a fresh
    /// apply; true for a duplicate only when it retries the *newest*
    /// applied batch (ids reconstruct from the live slot count — older
    /// batches' ids are unknowable after later applies).
    bool ids_known = true;
  };

  /// Exclusive access to a session's engine for the duration of one
  /// request. Acquiring the guard transparently reloads an evicted session
  /// from its snapshot + journal (counting a reload) and bumps the LRU
  /// clock.
  class Guard {
   public:
    core::IncrementalEngine& engine();
    /// Applies one eco batch with the durability contract: dedupe by
    /// `sequence` (0 = no idempotency token), apply, journal, then return
    /// — callers ack only after this returns, so every acked batch is
    /// recoverable. Throws InvalidInputError (batch invalid, nothing
    /// applied or journaled) or IoCorruptionError (applied in memory but
    /// could not be made durable; the sequence watermark still advanced,
    /// so a retry dedupes instead of double-applying — and the retry
    /// re-attempts durability via a snapshot, erroring again rather than
    /// acking a batch that is still only in memory).
    EcoResult apply_eco(const core::Delta& delta, std::uint64_t sequence);
    /// Counter bumps for the stats endpoint (thread-safe vs stats()).
    void count_query(std::size_t points);
    void count_region();
    void count_koz();
    void count_eco(std::size_t ops);
    ~Guard();
    Guard(Guard&&) noexcept;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    friend class SessionManager;
    Guard(SessionManager* manager, std::shared_ptr<Session> session,
          std::unique_lock<std::mutex> lock);
    SessionManager* manager_ = nullptr;
    std::shared_ptr<Session> session_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Locks `name` for use, reloading it from its snapshot if evicted.
  /// Throws InvalidInputError for unknown sessions, IoCorruptionError when
  /// the snapshot is damaged, ResourceLimitError when the reload cannot be
  /// admitted.
  Guard use(const std::string& name);

  /// Snapshot-evicts a resident session (no-op when already evicted).
  /// Throws InvalidInputError for unknown sessions.
  void evict(const std::string& name);

  /// Removes a session. Unless `discard`, a resident engine is snapshotted
  /// first so the state survives for a later open of the same directory;
  /// with `discard` the snapshot file is deleted too.
  void close(const std::string& name, bool discard);

  /// Evicts every resident session (daemon shutdown: durable state on disk).
  void evict_all();

  ManagerStats stats() const;

 private:
  struct RestoredState;
  std::shared_ptr<Session> find(const std::string& name) const;
  std::string snapshot_path(const std::string& name) const;
  std::string journal_path(const std::string& name) const;
  /// Rebuilds a session's engine from its on-disk state: snapshot + journal
  /// replay, or journal-only (open record rebuild) when no snapshot landed.
  /// Leaves the files normalized (fresh snapshot + anchored journal) when
  /// anything was replayed or repaired. Caller holds the session's work_mu.
  RestoredState restore_from_disk(const std::string& name);
  /// Under mu_: evicts LRU idle sessions until `needed` more bytes fit
  /// under the global budget and a resident slot is free. Returns false
  /// when that is impossible without touching busy sessions or `keep`.
  bool make_room_locked(std::uint64_t needed, const Session* keep);
  void save_and_release_locked(Session& s);

  std::string snapshot_dir_;
  SessionLimits limits_;
  std::vector<std::string> recovered_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Session>> sessions_;  ///< insertion order
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t admission_refusals_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t reloads_ = 0;
  // Durability counters; atomic because apply_eco and restore run under a
  // session's work mutex, not mu_.
  std::atomic<std::uint64_t> journal_replays_{0};
  std::atomic<std::uint64_t> journal_torn_tails_{0};
  std::atomic<std::uint64_t> journal_fallbacks_{0};
  std::atomic<std::uint64_t> durability_failures_{0};
};

}  // namespace tsv::server
