#include "server/session_manager.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "analytic/interaction.h"
#include "analytic/single_tsv.h"
#include "analytic/surrogate.h"
#include "core/error.h"
#include "core/stress_table.h"
#include "geometry/sample_grid.h"
#include "io/journal.h"
#include "io/snapshot.h"
#include "numeric/fault_injection.h"

namespace tsv::server {
namespace {

/// A cached PairStressTable is ~2 MB at the default polar resolution (the
/// 10k-TSV snapshot is 114 MB across 61 tables + fields); exact sizing
/// would require exporting the cache, so admission uses this estimate.
constexpr std::uint64_t kPairTableBytesEstimate = 2ull << 20;

void validate_session_name(const std::string& name) {
  const bool chars_ok =
      !name.empty() && name.size() <= 100 && name[0] != '.' &&
      std::all_of(name.begin(), name.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
      });
  if (!chars_ok)
    throw InvalidInputError(
        "invalid session name '" + name +
        "' (use [A-Za-z0-9._-], not starting with '.', <= 100 chars)");
}

/// The CLI's cold-build pipeline, forced serial so every session's fields
/// are bitwise reproducible no matter how requests interleave.
std::unique_ptr<core::IncrementalEngine> build_engine(
    const tsvlib::Placement& placement, const geo::SampleGrid& grid,
    const SessionSpec& spec) {
  const mat::ThermalLoad load{};
  const ana::SingleTsvModel single(placement.structure(), load);
  const auto table = std::make_shared<const core::RadialStressTable>(
      core::RadialStressTable::from_analytic(single, 30.0, 4096));
  auto model = std::make_shared<const ana::InteractiveStressModel>(
      std::make_shared<const ana::InclusionResponse>(placement.structure()),
      single.k_hat());
  if (spec.surrogate)
    model->attach_surrogate(std::make_shared<const ana::PairSurrogate>(
        ana::PairSurrogate::fit(*model)));

  core::IncrementalOptions opt;
  opt.stage2.use_lookup_table = spec.lookup;
  opt.stage2.pitch_quant_step = spec.quant_step;
  opt.num_threads = 1;
  opt.stage1.num_threads = 1;
  opt.stage2.num_threads = 1;
  return std::make_unique<core::IncrementalEngine>(placement, grid, table,
                                                   model, opt);
}

/// The journal's open record is the session recipe: enough to rerun
/// build_engine bitwise when no snapshot ever landed.
io::JournalOpen journal_open_record(const tsvlib::Placement& placement,
                                    const SessionSpec& spec) {
  io::JournalOpen open;
  open.placement_payload = io::encode_placement(placement);
  open.spacing = spec.spacing;
  open.margin = spec.margin;
  open.lookup = spec.lookup;
  open.quant_step = spec.quant_step;
  open.surrogate = spec.surrogate;
  return open;
}

SessionSpec spec_from_open_record(const io::JournalOpen& open) {
  SessionSpec spec;
  spec.spacing = open.spacing;
  spec.margin = open.margin;
  spec.lookup = open.lookup;
  spec.quant_step = open.quant_step;
  spec.surrogate = open.surrogate;
  return spec;
}

/// Sequence watermark of a whole journal: the largest sequence any record
/// has seen, whether or not it will be replayed. Dedupe must honor batches
/// already folded into the snapshot.
std::uint64_t journal_watermark(const io::JournalReplay& replay) {
  std::uint64_t watermark = 0;
  for (const io::JournalRecord& rec : replay.records) {
    if (rec.kind == io::JournalRecord::Kind::kEco)
      watermark = std::max(watermark, rec.eco.sequence);
    else if (rec.kind == io::JournalRecord::Kind::kAnchor)
      watermark = std::max(watermark, rec.anchor.last_sequence);
  }
  return watermark;
}

}  // namespace

std::uint64_t estimate_engine_bytes(const core::IncrementalEngine& engine) {
  std::uint64_t bytes = 0;
  // Two accumulated tensor fields + the dirty-point stamp array.
  bytes += static_cast<std::uint64_t>(engine.grid().size()) *
           (2 * sizeof(num::SymTensor2) + sizeof(std::uint32_t));
  // Placement slots (center + active flag) and id scratch.
  bytes += static_cast<std::uint64_t>(engine.slot_count()) *
           (sizeof(geo::Point) + 2);
  if (const auto* radial =
          dynamic_cast<const core::RadialStressTable*>(&engine.table()))
    bytes += static_cast<std::uint64_t>(radial->srr().size() +
                                        radial->stt().size()) *
             sizeof(double);
  if (const auto model = engine.model()) {
    bytes += static_cast<std::uint64_t>(model->table_cache_size()) *
             kPairTableBytesEstimate;
    if (const auto surrogate = model->surrogate())
      bytes += surrogate->certificate().coefficient_count * sizeof(double);
  }
  return bytes;
}

/// One named session. `work_mu` serializes all engine use (requests);
/// `meta` is a leaf mutex guarding the counters and the cached summary the
/// stats endpoint reads, so stats() never blocks behind a long request.
/// The engine pointer itself transitions (resident <-> evicted) only under
/// the manager mutex while the work mutex is also held.
class SessionManager::Session {
 public:
  explicit Session(std::string session_name) : name(std::move(session_name)) {}

  std::string name;
  std::mutex work_mu;
  std::unique_ptr<core::IncrementalEngine> engine;  ///< null = evicted

  // Durability state, guarded by work_mu (only the request holding the
  // session touches it).
  std::unique_ptr<io::EcoJournal> journal;  ///< null until open/restore
  std::uint64_t last_sequence = 0;  ///< dedupe watermark for eco retries
  /// Highest sequence known to be on disk (journal or snapshot). Trails
  /// last_sequence only after a total durability failure; a retry of a
  /// sequence in the gap must re-attempt durability before being acked.
  std::uint64_t last_durable_sequence = 0;

  // Guarded by SessionManager::mu_.
  std::uint64_t estimated_bytes = 0;  ///< resident footprint (or hint)
  std::uint64_t last_used = 0;        ///< LRU clock stamp

  // Guarded by `meta`.
  std::mutex meta;
  SessionCounters counters;
  std::size_t tsvs = 0;
  std::size_t grid_points = 0;
  double cache_hit_rate = 0.0;
  bool has_surrogate = false;

  /// Refreshes the cached summary from the resident engine (caller holds
  /// work_mu, so the engine is stable).
  void refresh_summary() {
    if (engine == nullptr) return;
    std::lock_guard<std::mutex> lk(meta);
    tsvs = engine->active_count();
    grid_points = engine->grid().size();
    if (const auto model = engine->model()) {
      cache_hit_rate = model->table_cache_stats().hit_rate();
      has_surrogate = model->surrogate() != nullptr;
    }
  }
};

SessionManager::Guard::Guard(SessionManager* manager,
                             std::shared_ptr<Session> session,
                             std::unique_lock<std::mutex> lock)
    : manager_(manager),
      session_(std::move(session)),
      lock_(std::move(lock)) {}

SessionManager::Guard::Guard(Guard&&) noexcept = default;

SessionManager::Guard::~Guard() {
  if (session_ != nullptr && lock_.owns_lock()) session_->refresh_summary();
}

core::IncrementalEngine& SessionManager::Guard::engine() {
  return *session_->engine;
}

void SessionManager::Guard::count_query(std::size_t points) {
  std::lock_guard<std::mutex> lk(session_->meta);
  ++session_->counters.queries;
  session_->counters.points += points;
}

void SessionManager::Guard::count_region() {
  std::lock_guard<std::mutex> lk(session_->meta);
  ++session_->counters.regions;
}

void SessionManager::Guard::count_koz() {
  std::lock_guard<std::mutex> lk(session_->meta);
  ++session_->counters.koz_queries;
}

void SessionManager::Guard::count_eco(std::size_t ops) {
  std::lock_guard<std::mutex> lk(session_->meta);
  ++session_->counters.edits;
  session_->counters.eco_ops += ops;
}

SessionManager::EcoResult SessionManager::Guard::apply_eco(
    const core::Delta& delta, std::uint64_t sequence) {
  Session& s = *session_;
  EcoResult res;

  // Idempotency: a sequence at or below the watermark was already applied
  // — the ack just got lost. Ack again without re-applying.
  if (sequence != 0 && sequence <= s.last_sequence) {
    res.duplicate = true;
    if (sequence > s.last_durable_sequence) {
      // The earlier attempt applied this batch in memory but both
      // durability paths failed (the eco errored out). The retry is the
      // chance to close that gap: snapshot now and only ack once the
      // state is on disk — or error out again so the client keeps
      // retrying instead of believing a volatile batch durable.
      try {
        const std::uint64_t checksum = io::save_engine_state(
            manager_->snapshot_path(s.name), *s.engine);
        s.journal->reset_to_anchor({checksum, s.last_sequence});
        s.last_durable_sequence = s.last_sequence;
        manager_->journal_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(s.meta);
        ++s.counters.journal_fallbacks;
      } catch (const std::exception& e) {
        manager_->durability_failures_.fetch_add(1,
                                                 std::memory_order_relaxed);
        throw IoCorruptionError(
            "session '" + s.name + "': retried eco batch (seq " +
            std::to_string(sequence) +
            ") is applied in memory but still cannot be made durable: " +
            e.what());
      }
    }
    // A retry of the *newest* batch can still be told its slot ids: ids
    // allocate sequentially and nothing applied after it, so its adds
    // occupy the last `adds` slots. Older sequences cannot be
    // reconstructed from the live engine.
    std::size_t adds = 0;
    for (const core::EcoOp& op : delta)
      if (op.kind == core::EcoOp::Kind::kAdd) ++adds;
    if (sequence == s.last_sequence && adds <= s.engine->slot_count())
      res.pre_slots = s.engine->slot_count() - adds;
    else
      res.ids_known = false;
    std::lock_guard<std::mutex> lk(s.meta);
    ++s.counters.duplicates;
    return res;
  }

  // Apply first: the engine validates the whole batch before touching any
  // field, so an invalid batch throws here and never reaches the journal
  // (replay must only ever see batches that actually applied).
  res.pre_slots = s.engine->slot_count();
  res.stats = s.engine->apply(delta);

  const std::uint64_t watermark = std::max(s.last_sequence, sequence);
  try {
    io::JournalEco eco;
    eco.sequence = sequence;
    eco.delta = delta;
    s.journal->append(io::JournalRecord::make_eco(std::move(eco)));
    std::lock_guard<std::mutex> lk(s.meta);
    ++s.counters.journaled;
  } catch (const std::exception& append_err) {
    // The engine already holds the batch; losing it now would break the
    // ack contract. Make the *snapshot* the durable copy instead: write it
    // and atomically reset the journal to a matching anchor (an append
    // after a torn write would bury the anchor behind damaged bytes).
    res.journal_fallback = true;
    try {
      const std::uint64_t checksum = io::save_engine_state(
          manager_->snapshot_path(s.name), *s.engine);
      s.journal->reset_to_anchor({checksum, watermark});
      std::fprintf(stderr,
                   "session '%s': journal append failed (%s); "
                   "batch made durable via snapshot fallback\n",
                   s.name.c_str(), append_err.what());
      manager_->journal_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(s.meta);
      ++s.counters.journal_fallbacks;
    } catch (const std::exception& snap_err) {
      // Both durability paths failed. The batch stays applied in memory;
      // advance the watermark anyway so a client retry of this sequence
      // dedupes instead of double-applying on the live engine.
      s.last_sequence = watermark;
      manager_->durability_failures_.fetch_add(1, std::memory_order_relaxed);
      throw IoCorruptionError(
          "session '" + s.name +
          "': eco batch applied in memory but could not be made durable "
          "(journal: " + std::string(append_err.what()) +
          "; snapshot fallback: " + snap_err.what() + ")");
    }
  }

  // Chaos hook: die *after* the batch is durable but before the caller can
  // ack — the window the journal exists to cover. Recovery must replay
  // this batch exactly once (kill-via-fork chaos test).
  if (fault::should_fire(fault::Site::kEcoKillAfterJournal)) ::_exit(137);

  s.last_sequence = watermark;
  s.last_durable_sequence = watermark;
  count_eco(delta.size());
  return res;
}

SessionManager::SessionManager(std::string snapshot_dir, SessionLimits limits)
    : snapshot_dir_(std::move(snapshot_dir)), limits_(limits) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(snapshot_dir_, ec);
  if (ec)
    throw InvalidInputError("cannot create snapshot directory '" +
                            snapshot_dir_ + "': " + ec.message());

  // Crash recovery: every valid engine-state snapshot becomes an evicted
  // session the next request transparently reloads (replaying its journal
  // on top). Anything else in the directory (corrupt files, other snapshot
  // kinds) is skipped loudly.
  std::vector<fs::path> candidates;
  std::vector<fs::path> journal_candidates;
  for (const auto& entry : fs::directory_iterator(snapshot_dir_)) {
    if (entry.path().extension() == ".snap") candidates.push_back(entry.path());
    if (entry.path().extension() == ".jrnl")
      journal_candidates.push_back(entry.path());
  }
  std::sort(candidates.begin(), candidates.end());
  std::sort(journal_candidates.begin(), journal_candidates.end());
  for (const fs::path& path : candidates) {
    const std::string name = path.stem().string();
    try {
      validate_session_name(name);
      const io::SnapshotInfo info = io::read_snapshot_info(path.string());
      if (info.kind != io::SnapshotKind::kEngineState) continue;
      auto session = std::make_shared<Session>(name);
      // The payload is the serialized fields + tables — the same state
      // that will be resident — so it doubles as the admission hint.
      session->estimated_bytes = info.payload_bytes;
      sessions_.push_back(std::move(session));
      recovered_.push_back(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "session recovery: skipping %s (%s)\n",
                   path.string().c_str(), e.what());
    }
  }
  // Journal-only sessions: the daemon died before (or during) the first
  // snapshot. The journal's open record is the rebuild recipe; the first
  // use() replays it. Journals whose session already has a snapshot are
  // picked up by that session's reload, not here.
  for (const fs::path& path : journal_candidates) {
    const std::string name = path.stem().string();
    const auto known = [&] {
      for (const auto& s : sessions_)
        if (s->name == name) return true;
      return false;
    };
    if (known()) continue;
    try {
      validate_session_name(name);
      const io::JournalReplay replay = io::EcoJournal::read(path.string());
      const io::JournalRecord* open = nullptr;
      for (const io::JournalRecord& rec : replay.records)
        if (rec.kind == io::JournalRecord::Kind::kOpen) {
          open = &rec;
          break;
        }
      if (open == nullptr)
        throw IoCorruptionError(
            "journal has no open record and no snapshot exists");
      // Admission hint without building anything: the dominant field term
      // from the recorded placement + grid spec (same formula as open()).
      const tsvlib::Placement placement =
          io::decode_placement(open->open.placement_payload);
      const geo::SampleGrid grid = geo::SampleGrid::with_spacing(
          placement.bounding_box().expanded(open->open.margin),
          open->open.spacing);
      auto session = std::make_shared<Session>(name);
      session->estimated_bytes =
          static_cast<std::uint64_t>(grid.size()) *
              (2 * sizeof(num::SymTensor2) + sizeof(std::uint32_t)) +
          static_cast<std::uint64_t>(placement.size()) *
              (sizeof(geo::Point) + 2);
      sessions_.push_back(std::move(session));
      recovered_.push_back(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "session recovery: skipping %s (%s)\n",
                   path.string().c_str(), e.what());
    }
  }
}

std::shared_ptr<SessionManager::Session> SessionManager::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& s : sessions_)
    if (s->name == name) return s;
  throw InvalidInputError("unknown session: " + name);
}

std::string SessionManager::snapshot_path(const std::string& name) const {
  return snapshot_dir_ + "/" + name + ".snap";
}

std::string SessionManager::journal_path(const std::string& name) const {
  return snapshot_dir_ + "/" + name + ".jrnl";
}

void SessionManager::save_and_release_locked(Session& s) {
  const std::uint64_t checksum =
      io::save_engine_state(snapshot_path(s.name), *s.engine);
  // Compact the journal down to an anchor: everything journaled so far is
  // folded into the snapshot we just wrote. Atomic, so a crash here leaves
  // either the old journal (whose records replay resolves against the new
  // snapshot via the anchor-checksum rule: nothing re-applies) or the new
  // one.
  if (s.journal != nullptr)
    s.journal->reset_to_anchor({checksum, s.last_sequence});
  s.last_durable_sequence = s.last_sequence;
  s.engine.reset();
  resident_bytes_ -= std::min(resident_bytes_, s.estimated_bytes);
  {
    std::lock_guard<std::mutex> lk(s.meta);
    ++s.counters.evictions;
  }
  ++evictions_;
}

struct SessionManager::RestoredState {
  std::unique_ptr<core::IncrementalEngine> engine;
  std::unique_ptr<io::EcoJournal> journal;
  std::uint64_t last_sequence = 0;
  std::size_t replayed = 0;
};

SessionManager::RestoredState SessionManager::restore_from_disk(
    const std::string& name) {
  namespace fs = std::filesystem;
  const std::string jpath = journal_path(name);
  const std::string spath = snapshot_path(name);

  io::JournalReplay replay = io::EcoJournal::read(jpath);
  if (replay.torn_tail) {
    // A crash mid-append leaves at most one damaged record at the tail;
    // the valid prefix is authoritative. Cut the file back so future
    // appends extend a clean tail — and say so, loudly.
    std::fprintf(stderr,
                 "session '%s': journal tail damaged (%s); "
                 "cutting back to last valid record\n",
                 name.c_str(), replay.torn_reason.c_str());
    io::EcoJournal::truncate_to_valid(jpath, replay);
    journal_torn_tails_.fetch_add(1, std::memory_order_relaxed);
  }

  RestoredState out;
  out.last_sequence = journal_watermark(replay);
  out.journal =
      std::make_unique<io::EcoJournal>(jpath, replay.fsync_on_append());

  std::uint64_t snap_checksum = 0;
  bool have_snapshot = false;
  if (fs::exists(spath)) {
    const io::SnapshotInfo info = io::read_snapshot_info(spath);
    snap_checksum = info.checksum;
    have_snapshot = true;
    out.engine = std::make_unique<core::IncrementalEngine>(
        io::load_engine_state(spath));
  }

  // Where replay starts. With a snapshot: after the last anchor whose
  // checksum matches it — records before that are already folded in. No
  // matching anchor means the snapshot is *newer* than every journaled
  // record (the crash hit between snapshot write and journal reset):
  // replay nothing, keep the watermark. Without a snapshot: rebuild from
  // the open record and replay everything after it.
  std::size_t start = replay.records.size();
  if (have_snapshot) {
    for (std::size_t i = 0; i < replay.records.size(); ++i) {
      const io::JournalRecord& rec = replay.records[i];
      if (rec.kind == io::JournalRecord::Kind::kAnchor &&
          rec.anchor.snapshot_checksum == snap_checksum)
        start = i + 1;
    }
  } else {
    std::size_t open_idx = replay.records.size();
    for (std::size_t i = 0; i < replay.records.size(); ++i)
      if (replay.records[i].kind == io::JournalRecord::Kind::kOpen) {
        open_idx = i;
        break;
      }
    if (open_idx == replay.records.size())
      throw IoCorruptionError(
          "session '" + name +
          "': no snapshot and the journal has no open record — "
          "nothing to rebuild from");
    const io::JournalOpen& open = replay.records[open_idx].open;
    const tsvlib::Placement placement =
        io::decode_placement(open.placement_payload);
    const SessionSpec spec = spec_from_open_record(open);
    const geo::SampleGrid grid = geo::SampleGrid::with_spacing(
        placement.bounding_box().expanded(spec.margin), spec.spacing);
    out.engine = build_engine(placement, grid, spec);
    start = open_idx + 1;
  }

  for (std::size_t i = start; i < replay.records.size(); ++i) {
    const io::JournalRecord& rec = replay.records[i];
    if (rec.kind != io::JournalRecord::Kind::kEco) continue;
    try {
      out.engine->apply(rec.eco.delta);
    } catch (const std::exception& e) {
      // A journaled batch was valid when it applied; failing now means
      // the snapshot and journal disagree (mixed-up files, manual edits).
      throw IoCorruptionError("session '" + name +
                              "': journal replay failed: " + e.what());
    }
    ++out.replayed;
  }
  if (out.replayed > 0)
    journal_replays_.fetch_add(out.replayed, std::memory_order_relaxed);

  // Re-anchor unless the on-disk state is already the clean evict shape
  // (snapshot + single matching anchor). This matters for correctness, not
  // just tidiness: future appends are only recoverable if the journal's
  // replay-relevant suffix is anchored to the current snapshot.
  const bool clean = have_snapshot && !replay.torn_tail &&
                     replay.records.size() == 1 &&
                     replay.records[0].kind ==
                         io::JournalRecord::Kind::kAnchor &&
                     replay.records[0].anchor.snapshot_checksum ==
                         snap_checksum;
  if (!clean) {
    const std::uint64_t checksum = io::save_engine_state(spath, *out.engine);
    out.journal->reset_to_anchor({checksum, out.last_sequence});
  }
  return out;
}

bool SessionManager::make_room_locked(std::uint64_t needed,
                                      const Session* keep) {
  const auto resident_count = [&] {
    std::size_t n = 0;
    for (const auto& s : sessions_)
      if (s->engine != nullptr) ++n;
    return n;
  };
  while (resident_bytes_ + needed > limits_.global_budget_bytes ||
         (needed > 0 && resident_count() >= limits_.max_sessions)) {
    // LRU victim among idle resident sessions. try_lock keeps the lock
    // order acyclic and guarantees a session mid-request is never evicted.
    Session* victim = nullptr;
    for (const auto& s : sessions_) {
      if (s->engine == nullptr || s.get() == keep) continue;
      if (victim == nullptr || s->last_used < victim->last_used)
        victim = s.get();
    }
    if (victim == nullptr) return false;
    std::unique_lock<std::mutex> vl(victim->work_mu, std::try_to_lock);
    if (!vl.owns_lock()) {
      // Busy victim: pretend it was just used so the scan moves on; if
      // every candidate is busy the loop exits via the nullptr branch.
      victim->last_used = ++lru_clock_;
      continue;
    }
    save_and_release_locked(*victim);
  }
  return true;
}

void SessionManager::open(const std::string& name,
                          const tsvlib::Placement& placement,
                          const SessionSpec& spec) {
  validate_session_name(name);
  placement.validate_no_overlap();
  if (spec.spacing <= 0.0 || spec.margin < 0.0)
    throw InvalidInputError("open: spacing must be > 0 and margin >= 0");

  const geo::Box roi = placement.bounding_box().expanded(spec.margin);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi, spec.spacing);
  // Pre-build admission on the dominant term (the two tensor fields), so a
  // hopeless request is refused before any characterization runs.
  const std::uint64_t pre_estimate =
      static_cast<std::uint64_t>(grid.size()) *
          (2 * sizeof(num::SymTensor2) + sizeof(std::uint32_t)) +
      static_cast<std::uint64_t>(placement.size()) * (sizeof(geo::Point) + 2);

  std::shared_ptr<Session> session;
  std::unique_lock<std::mutex> work_lock;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& s : sessions_)
      if (s->name == name)
        throw InvalidInputError("session already exists: " + name);
    if (pre_estimate > limits_.session_budget_bytes) {
      ++admission_refusals_;
      throw ResourceLimitError(
          "session '" + name + "' needs ~" + std::to_string(pre_estimate) +
          " bytes, over the per-session budget of " +
          std::to_string(limits_.session_budget_bytes));
    }
    if (!make_room_locked(pre_estimate, nullptr)) {
      ++admission_refusals_;
      throw ResourceLimitError(
          "cannot admit session '" + name + "': global budget of " +
          std::to_string(limits_.global_budget_bytes) +
          " bytes exhausted by busy sessions");
    }
    session = std::make_shared<Session>(name);
    session->estimated_bytes = pre_estimate;
    session->last_used = ++lru_clock_;
    resident_bytes_ += pre_estimate;
    sessions_.push_back(session);
    work_lock = std::unique_lock<std::mutex>(session->work_mu);
  }

  const auto remove_session = [&] {
    std::lock_guard<std::mutex> lk(mu_);
    resident_bytes_ -= std::min(resident_bytes_, session->estimated_bytes);
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                    sessions_.end());
  };

  try {
    session->engine = build_engine(placement, grid, spec);
    // The journal is the session's durability root from the first ack on:
    // its open record alone can rebuild the engine, so no snapshot is
    // written at open time (eviction writes the first one). If the journal
    // cannot be established the open fails — a session that cannot honor
    // the ack contract must not accept edits.
    auto journal = std::make_unique<io::EcoJournal>(journal_path(name),
                                                    spec.journal_fsync);
    // A close(discard=false) of a previous session with this name leaves
    // its <name>.snap behind, and recovery treats any on-disk snapshot as
    // newer than an anchorless journal — so a stale one would silently
    // resurrect the old session's state if we crash before this session's
    // first snapshot. Remove it *before* the open record lands: a crash in
    // the gap leaves a journal recovery skips loudly (no open record, no
    // snapshot), never silently-wrong state.
    std::remove(snapshot_path(name).c_str());
    journal->reset_to_open(journal_open_record(placement, spec));
    session->journal = std::move(journal);
  } catch (...) {
    std::remove(journal_path(name).c_str());
    remove_session();
    throw;
  }

  const std::uint64_t measured = estimate_engine_bytes(*session->engine);
  std::lock_guard<std::mutex> lk(mu_);
  resident_bytes_ -= std::min(resident_bytes_, session->estimated_bytes);
  resident_bytes_ += measured;
  session->estimated_bytes = measured;
  if (measured > limits_.session_budget_bytes) {
    resident_bytes_ -= std::min(resident_bytes_, measured);
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                    sessions_.end());
    ++admission_refusals_;
    std::remove(journal_path(name).c_str());
    throw ResourceLimitError(
        "session '" + name + "' measured " + std::to_string(measured) +
        " bytes resident, over the per-session budget of " +
        std::to_string(limits_.session_budget_bytes));
  }
  // Post-build tables can push the global total over; evict idle LRU
  // sessions to restore the invariant (the new session itself is kept).
  make_room_locked(0, session.get());
  work_lock.unlock();
  session->refresh_summary();
}

SessionManager::Guard SessionManager::use(const std::string& name) {
  std::shared_ptr<Session> session = find(name);
  std::unique_lock<std::mutex> work_lock(session->work_mu);

  bool need_reload = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // The session may have been closed while we waited for its lock.
    if (std::find(sessions_.begin(), sessions_.end(), session) ==
        sessions_.end())
      throw InvalidInputError("unknown session: " + name);
    if (session->engine == nullptr) {
      if (session->estimated_bytes > limits_.session_budget_bytes ||
          !make_room_locked(session->estimated_bytes, session.get())) {
        ++admission_refusals_;
        throw ResourceLimitError(
            "cannot reload session '" + name + "' (~" +
            std::to_string(session->estimated_bytes) +
            " bytes) under the configured budgets");
      }
      resident_bytes_ += session->estimated_bytes;
      need_reload = true;
    }
    session->last_used = ++lru_clock_;
  }

  if (need_reload) {
    try {
      RestoredState restored = restore_from_disk(name);
      const std::uint64_t measured = estimate_engine_bytes(*restored.engine);
      std::lock_guard<std::mutex> lk(mu_);
      resident_bytes_ -= std::min(resident_bytes_, session->estimated_bytes);
      resident_bytes_ += measured;
      session->estimated_bytes = measured;
      session->engine = std::move(restored.engine);
      session->journal = std::move(restored.journal);
      session->last_sequence = restored.last_sequence;
      // Everything the restore saw was read from disk, so it is durable by
      // construction.
      session->last_durable_sequence = restored.last_sequence;
      ++reloads_;
      std::lock_guard<std::mutex> meta(session->meta);
      ++session->counters.reloads;
      session->counters.replays += restored.replayed;
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      resident_bytes_ -= std::min(resident_bytes_, session->estimated_bytes);
      throw;
    }
  }
  return Guard(this, session, std::move(work_lock));
}

void SessionManager::evict(const std::string& name) {
  std::shared_ptr<Session> session = find(name);
  std::unique_lock<std::mutex> work_lock(session->work_mu);
  std::lock_guard<std::mutex> lk(mu_);
  if (session->engine != nullptr) save_and_release_locked(*session);
}

void SessionManager::close(const std::string& name, bool discard) {
  std::shared_ptr<Session> session = find(name);
  std::unique_lock<std::mutex> work_lock(session->work_mu);
  std::lock_guard<std::mutex> lk(mu_);
  if (session->engine != nullptr) {
    if (!discard) {
      const std::uint64_t checksum =
          io::save_engine_state(snapshot_path(name), *session->engine);
      if (session->journal != nullptr)
        session->journal->reset_to_anchor({checksum, session->last_sequence});
      session->last_durable_sequence = session->last_sequence;
    }
    session->engine.reset();
    resident_bytes_ -= std::min(resident_bytes_, session->estimated_bytes);
  }
  if (discard) {
    std::remove(snapshot_path(name).c_str());
    std::remove(journal_path(name).c_str());
  }
  sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                  sessions_.end());
}

void SessionManager::evict_all() {
  // Snapshot order matches registration order; each eviction holds the
  // session's work mutex so in-flight requests drain first.
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    all = sessions_;
  }
  for (const auto& session : all) {
    std::unique_lock<std::mutex> work_lock(session->work_mu);
    std::lock_guard<std::mutex> lk(mu_);
    if (session->engine != nullptr) save_and_release_locked(*session);
  }
}

ManagerStats SessionManager::stats() const {
  ManagerStats out;
  std::lock_guard<std::mutex> lk(mu_);
  out.session_budget_bytes = limits_.session_budget_bytes;
  out.global_budget_bytes = limits_.global_budget_bytes;
  out.resident_bytes = resident_bytes_;
  out.admission_refusals = admission_refusals_;
  out.evictions = evictions_;
  out.reloads = reloads_;
  out.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  out.journal_torn_tails =
      journal_torn_tails_.load(std::memory_order_relaxed);
  out.journal_fallbacks = journal_fallbacks_.load(std::memory_order_relaxed);
  out.durability_failures =
      durability_failures_.load(std::memory_order_relaxed);
  for (const auto& s : sessions_) {
    SessionStats st;
    st.name = s->name;
    st.resident = s->engine != nullptr;
    st.estimated_bytes = s->estimated_bytes;
    {
      std::lock_guard<std::mutex> meta(s->meta);
      st.counters = s->counters;
      st.tsvs = s->tsvs;
      st.grid_points = s->grid_points;
      st.cache_hit_rate = s->cache_hit_rate;
      st.has_surrogate = s->has_surrogate;
    }
    if (st.resident)
      ++out.resident_sessions;
    else
      ++out.evicted_sessions;
    out.sessions.push_back(std::move(st));
  }
  return out;
}

}  // namespace tsv::server
