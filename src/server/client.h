#pragma once
// C++ client for the stress-service daemon: one connection, synchronous
// framed request/response (server/protocol.h). call() raises wire errors as
// the matching tsv::Error subclass, so client code handles a remote
// resource-limit refusal exactly like a local one; call_raw() returns the
// response object untouched for code that inspects errors itself.

#include <string>

#include "server/json.h"

namespace tsv::server {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One framed round trip; returns the response whether or not it is ok.
  JsonValue call_raw(const JsonValue& request);
  /// call_raw + expect_ok: throws the tsv::Error subclass matching a wire
  /// error's category.
  JsonValue call(const JsonValue& request);

  /// Builds {"op": op} — the starting point for every request.
  static JsonValue request(const std::string& op);
  /// request(op) + {"session": session}.
  static JsonValue request(const std::string& op, const std::string& session);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace tsv::server
