#pragma once
// C++ client for the stress-service daemon: one connection, synchronous
// framed request/response (server/protocol.h). call() raises wire errors as
// the matching tsv::Error subclass, so client code handles a remote
// resource-limit refusal exactly like a local one; call_raw() returns the
// response object untouched for code that inspects errors itself.
//
// RetryingClient wraps Client with reconnect + bounded retry for requests
// that are safe to replay: read-only ops (ping/query/region/koz/stats),
// evict (idempotent — evicting an absent session is a typed error either
// way), and eco batches carrying a nonzero "seq", which the server dedupes
// (protocol.h, Idempotency). A transport failure on any other request is
// rethrown immediately — retrying a seq-less eco could double-apply it.
// Backoff uses decorrelated jitter (delay = min(cap, U(base, 3*prev)))
// from a seeded generator, so tests are reproducible while concurrent
// clients still spread their retries.

#include <cstdint>
#include <optional>
#include <random>
#include <string>

#include "server/json.h"

namespace tsv::server {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One framed round trip; returns the response whether or not it is ok.
  JsonValue call_raw(const JsonValue& request);
  /// call_raw + expect_ok: throws the tsv::Error subclass matching a wire
  /// error's category.
  JsonValue call(const JsonValue& request);

  /// Builds {"op": op} — the starting point for every request.
  static JsonValue request(const std::string& op);
  /// request(op) + {"session": session}.
  static JsonValue request(const std::string& op, const std::string& session);

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Knobs for RetryingClient's reconnect/backoff loop.
struct RetryPolicy {
  int max_attempts = 5;        ///< total tries per request (first + retries)
  double base_delay_ms = 5.0;  ///< floor of the jittered backoff window
  double max_delay_ms = 1000.0;  ///< cap on any single backoff sleep
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter RNG seed
};

/// Lifetime counters for one RetryingClient.
struct RetryStats {
  std::uint64_t attempts = 0;    ///< round trips started (including firsts)
  std::uint64_t retries = 0;     ///< re-sends after a transport failure
  std::uint64_t reconnects = 0;  ///< sockets (re-)established
};

/// A Client that survives daemon restarts: transport failures (connection
/// refused/reset, server closed mid-response, send deadline) on retry-safe
/// requests are absorbed by reconnect + jittered backoff, up to
/// RetryPolicy::max_attempts. Typed wire *error responses* are never
/// retried — they are the server answering, not the transport failing.
class RetryingClient {
 public:
  static RetryingClient unix_endpoint(std::string path, RetryPolicy policy);
  static RetryingClient tcp_endpoint(std::string host, int port,
                                     RetryPolicy policy);

  /// True when a transport failure on `request` may be retried: read-only
  /// ops, evict, or an eco with a nonzero "seq".
  static bool retry_safe(const JsonValue& request);

  /// One round trip with reconnect + retry (retry-safe requests only).
  /// Exhausting max_attempts rethrows the last transport error.
  JsonValue call_raw(const JsonValue& request);
  /// call_raw + expect_ok (same contract as Client::call).
  JsonValue call(const JsonValue& request);

  /// Next value for an eco "seq" field: starts at 1, never repeats, so
  /// every batch sent through this client is dedupe-protected.
  std::uint64_t next_sequence() { return ++sequence_; }

  const RetryStats& stats() const { return stats_; }

 private:
  RetryingClient(std::string unix_path, std::string host, int port,
                 RetryPolicy policy)
      : unix_path_(std::move(unix_path)),
        host_(std::move(host)),
        port_(port),
        policy_(policy),
        rng_(policy.seed) {}

  Client& connection();     ///< connects (counting it) when not connected
  double next_delay_ms();   ///< decorrelated-jitter backoff step

  std::string unix_path_;  // non-empty => unix endpoint
  std::string host_;
  int port_ = 0;
  RetryPolicy policy_;
  std::optional<Client> conn_;
  std::mt19937_64 rng_;
  double prev_delay_ms_ = 0.0;
  std::uint64_t sequence_ = 0;
  RetryStats stats_;
};

}  // namespace tsv::server
