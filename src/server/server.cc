#include "server/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/error.h"
#include "core/koz.h"
#include "core/metrics.h"
#include "server/protocol.h"
#include "tsv/placement_io.h"

namespace tsv::server {
namespace {

core::StressMeasure parse_measure(const std::string& name) {
  if (name == "sigma_xx") return core::StressMeasure::kSigmaXX;
  if (name == "sigma_yy") return core::StressMeasure::kSigmaYY;
  if (name == "sigma_xy") return core::StressMeasure::kSigmaXY;
  if (name == "von_mises") return core::StressMeasure::kVonMises;
  if (name == "max_tensile") return core::StressMeasure::kMaxTensile;
  throw InvalidInputError("unknown measure: " + name);
}

geo::Point parse_point(const JsonValue& v) {
  const JsonValue::Array& xy = v.as_array();
  if (xy.size() != 2)
    throw InvalidInputError("a point must be a [x, y] pair");
  return {xy[0].as_number(), xy[1].as_number()};
}

/// The wire error object for a failure outside the taxonomy (code 1, like
/// the CLI's uncategorized exit).
JsonValue make_unknown_error(const std::string& message) {
  JsonValue err = JsonValue::object();
  err.set("category", JsonValue("unknown"));
  err.set("code", JsonValue(1));
  err.set("message", JsonValue(message));
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue(false));
  v.set("error", std::move(err));
  return v;
}

JsonValue counters_json(const SessionCounters& c) {
  JsonValue v = JsonValue::object();
  v.set("queries", JsonValue(c.queries));
  v.set("points", JsonValue(c.points));
  v.set("regions", JsonValue(c.regions));
  v.set("koz_queries", JsonValue(c.koz_queries));
  v.set("edits", JsonValue(c.edits));
  v.set("eco_ops", JsonValue(c.eco_ops));
  v.set("evictions", JsonValue(c.evictions));
  v.set("reloads", JsonValue(c.reloads));
  v.set("journaled", JsonValue(c.journaled));
  v.set("duplicates", JsonValue(c.duplicates));
  v.set("replays", JsonValue(c.replays));
  v.set("journal_fallbacks", JsonValue(c.journal_fallbacks));
  return v;
}

}  // namespace

StressServer::StressServer(ServerOptions options)
    : options_(std::move(options)),
      sessions_(options_.snapshot_dir, options_.limits) {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path))
      throw InvalidInputError("unix socket path too long: " +
                              options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw InvalidInputError("cannot create unix socket");
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InvalidInputError("cannot bind unix socket at " +
                              options_.unix_path + ": " +
                              std::strerror(errno));
    }
    endpoint_ = "unix:" + options_.unix_path;
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
      throw InvalidInputError("cannot parse bind host: " + options_.host);
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw InvalidInputError("cannot create TCP socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InvalidInputError("cannot bind " + options_.host + ":" +
                              std::to_string(options_.port) + ": " +
                              std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = static_cast<int>(ntohs(bound.sin_port));
    endpoint_ = options_.host + ":" + std::to_string(port_);
  }
}

StressServer::~StressServer() {
  stop();
  std::map<std::uint64_t, Connection> remaining;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    // Wake reads blocked in connection threads so they observe stop_.
    for (auto& [id, conn] : connections_) ::shutdown(conn.fd, SHUT_RDWR);
    remaining.swap(connections_);
    finished_.clear();
  }
  for (auto& [id, conn] : remaining)
    if (conn.thread.joinable()) conn.thread.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

void StressServer::stop() { stop_.store(true); }

void StressServer::reap_finished_locked() {
  for (const std::uint64_t id : finished_) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;  // already claimed by shutdown
    if (it->second.thread.joinable()) it->second.thread.join();
    connections_.erase(it);
  }
  finished_.clear();
}

std::size_t StressServer::connection_threads() {
  std::lock_guard<std::mutex> lk(threads_mu_);
  reap_finished_locked();
  return connections_.size();
}

WireStats StressServer::wire_stats() const {
  WireStats w;
  w.connections = connections_total_.load(std::memory_order_relaxed);
  w.idle_disconnects = idle_disconnects_.load(std::memory_order_relaxed);
  w.deadline_disconnects =
      deadline_disconnects_.load(std::memory_order_relaxed);
  w.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  return w;
}

void StressServer::run() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, /*timeout_ms=*/100);
    {
      // Reap every tick, not just on accepts, so a burst of short-lived
      // connections doesn't linger as dead threads through a quiet spell.
      std::lock_guard<std::mutex> lk(threads_mu_);
      reap_finished_locked();
    }
    if (n <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(threads_mu_);
    const std::uint64_t id = ++next_conn_id_;
    Connection conn;
    conn.fd = fd;
    conn.thread = std::thread([this, fd, id] { serve_connection(fd, id); });
    connections_.emplace(id, std::move(conn));
  }
  std::map<std::uint64_t, Connection> remaining;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    for (auto& [id, conn] : connections_) ::shutdown(conn.fd, SHUT_RDWR);
    remaining.swap(connections_);
    finished_.clear();
  }
  for (auto& [id, conn] : remaining)
    if (conn.thread.joinable()) conn.thread.join();
  // Durable shutdown: every resident session lands in the snapshot
  // directory, where the next daemon's crash-recovery scan finds it.
  sessions_.evict_all();
}

void StressServer::serve_connection(int fd, std::uint64_t id) {
  // Kernel-level backstops behind the poll-based deadlines: SO_RCVTIMEO
  // caps any single blocking read, SO_SNDTIMEO bounds response writes to a
  // peer that stopped reading (write_all maps the resulting EAGAIN to a
  // ResourceLimitError).
  const auto set_timeout = [fd](int opt, int ms) {
    if (ms <= 0) return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
  };
  set_timeout(SO_RCVTIMEO, std::max(options_.io_timeout_ms,
                                    options_.op_deadline_ms));
  set_timeout(SO_SNDTIMEO, options_.op_deadline_ms);

  try {
    while (!stop_.load()) {
      std::string frame;
      FrameRead fr;
      try {
        fr = read_frame_bounded(fd, options_.io_timeout_ms,
                                options_.op_deadline_ms, &frame);
      } catch (const ResourceLimitError& e) {
        // Slow-loris: the frame started but never finished. Typed error,
        // then disconnect — best effort, the peer may be beyond caring.
        deadline_disconnects_.fetch_add(1, std::memory_order_relaxed);
        try {
          write_frame(fd, make_error(ErrorCategory::kResourceLimit,
                                     e.what()).dump());
        } catch (...) {
        }
        break;
      } catch (const IoCorruptionError& e) {
        // Oversized prefix or truncation mid-frame: the stream is
        // unframeable from here on, so answer typed and disconnect.
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
        try {
          write_frame(fd, make_error(ErrorCategory::kIoCorruption,
                                     e.what()).dump());
        } catch (...) {
        }
        break;
      }
      if (fr == FrameRead::kEof) break;  // peer closed cleanly
      if (fr == FrameRead::kIdleTimeout) {
        idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      std::string op;
      JsonValue response = JsonValue::object();
      try {
        const JsonValue request = JsonValue::parse(frame);
        op = request.string_or("op", "");
        response = handle(request);
      } catch (const Error& e) {
        response = make_error(e.category(), e.what());
      } catch (const std::exception& e) {
        response = make_unknown_error(e.what());
      }
      try {
        write_frame(fd, response.dump());
      } catch (const ResourceLimitError&) {
        deadline_disconnects_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (op == "shutdown" && response.bool_or("ok", false)) {
        stop();
        break;
      }
    }
  } catch (const std::exception&) {
    // Wire error (peer vanished mid-frame): drop the connection.
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(threads_mu_);
  finished_.push_back(id);
}

JsonValue StressServer::handle(const JsonValue& request) {
  try {
    const std::string op = request.at("op").as_string();

    if (op == "ping") {
      JsonValue resp = make_ok();
      resp.set("service", JsonValue("tsvstress"));
      resp.set("protocol", JsonValue(1));
      return resp;
    }

    if (op == "open") {
      const std::string name = request.at("session").as_string();
      std::istringstream in(request.at("placement").as_string());
      const tsvlib::Placement placement = tsvlib::read_placement(in);
      SessionSpec spec;
      spec.spacing = request.number_or("spacing", spec.spacing);
      spec.margin = request.number_or("margin", spec.margin);
      spec.lookup = request.bool_or("lookup", spec.lookup);
      spec.quant_step = request.number_or("quant", spec.quant_step);
      spec.surrogate = request.bool_or("surrogate", spec.surrogate);
      spec.journal_fsync =
          request.bool_or("journal_fsync", spec.journal_fsync);
      sessions_.open(name, placement, spec);
      SessionManager::Guard guard = sessions_.use(name);
      JsonValue resp = make_ok();
      resp.set("session", JsonValue(name));
      resp.set("tsvs", JsonValue(guard.engine().active_count()));
      resp.set("grid_nx", JsonValue(guard.engine().grid().nx()));
      resp.set("grid_ny", JsonValue(guard.engine().grid().ny()));
      return resp;
    }

    if (op == "stats") {
      const ManagerStats stats = sessions_.stats();
      JsonValue resp = make_ok();
      resp.set("resident_sessions", JsonValue(stats.resident_sessions));
      resp.set("evicted_sessions", JsonValue(stats.evicted_sessions));
      resp.set("resident_bytes", JsonValue(stats.resident_bytes));
      resp.set("session_budget_bytes", JsonValue(stats.session_budget_bytes));
      resp.set("global_budget_bytes", JsonValue(stats.global_budget_bytes));
      resp.set("admission_refusals", JsonValue(stats.admission_refusals));
      resp.set("evictions", JsonValue(stats.evictions));
      resp.set("reloads", JsonValue(stats.reloads));
      resp.set("journal_replays", JsonValue(stats.journal_replays));
      resp.set("journal_torn_tails", JsonValue(stats.journal_torn_tails));
      resp.set("journal_fallbacks", JsonValue(stats.journal_fallbacks));
      resp.set("durability_failures", JsonValue(stats.durability_failures));
      const WireStats w = wire_stats();
      JsonValue wire = JsonValue::object();
      wire.set("connections", JsonValue(w.connections));
      wire.set("idle_disconnects", JsonValue(w.idle_disconnects));
      wire.set("deadline_disconnects", JsonValue(w.deadline_disconnects));
      wire.set("frame_errors", JsonValue(w.frame_errors));
      resp.set("wire", std::move(wire));
      JsonValue sessions = JsonValue::array();
      for (const SessionStats& s : stats.sessions) {
        JsonValue row = JsonValue::object();
        row.set("name", JsonValue(s.name));
        row.set("resident", JsonValue(s.resident));
        row.set("tsvs", JsonValue(s.tsvs));
        row.set("grid_points", JsonValue(s.grid_points));
        row.set("estimated_bytes", JsonValue(s.estimated_bytes));
        row.set("cache_hit_rate", JsonValue(s.cache_hit_rate));
        row.set("has_surrogate", JsonValue(s.has_surrogate));
        row.set("counters", counters_json(s.counters));
        sessions.items().push_back(std::move(row));
      }
      resp.set("sessions", std::move(sessions));
      return resp;
    }

    if (op == "evict") {
      sessions_.evict(request.at("session").as_string());
      return make_ok();
    }

    if (op == "close") {
      sessions_.close(request.at("session").as_string(),
                      request.bool_or("discard", false));
      return make_ok();
    }

    if (op == "shutdown") {
      sessions_.evict_all();
      return make_ok();
    }

    // Everything below evaluates against a resident session.
    SessionManager::Guard guard = sessions_.use(request.at("session").as_string());
    core::IncrementalEngine& engine = guard.engine();
    const geo::SampleGrid& grid = engine.grid();
    const std::vector<num::SymTensor2>& s1 = engine.stage1_field();
    const std::vector<num::SymTensor2>& s2 = engine.stage2_field();

    if (op == "query") {
      const core::StressMeasure measure =
          parse_measure(request.string_or("measure", "von_mises"));
      const JsonValue::Array& pts = request.at("points").as_array();
      JsonValue xs = JsonValue::array();
      JsonValue ys = JsonValue::array();
      JsonValue values = JsonValue::array();
      for (const JsonValue& pv : pts) {
        // Snap to the nearest grid point: the response carries the exact
        // bits a full-grid evaluation produced there (no interpolation).
        const std::size_t i = grid.nearest_index(parse_point(pv));
        const geo::Point snapped = grid.point(i);
        xs.items().push_back(JsonValue(snapped.x));
        ys.items().push_back(JsonValue(snapped.y));
        values.items().push_back(
            JsonValue(core::extract(measure, s1[i] + s2[i])));
      }
      guard.count_query(pts.size());
      JsonValue resp = make_ok();
      resp.set("x", std::move(xs));
      resp.set("y", std::move(ys));
      resp.set("value", std::move(values));
      return resp;
    }

    if (op == "region") {
      const core::StressMeasure measure =
          parse_measure(request.string_or("measure", "von_mises"));
      const geo::Box& box = grid.box();
      // Index window of grid points inside the requested box (default: all).
      const auto lo_idx = [](double v, double origin, double d) {
        if (d <= 0.0) return std::size_t{0};
        const double f = std::ceil((v - origin) / d - 1e-9);
        return f <= 0.0 ? std::size_t{0} : static_cast<std::size_t>(f);
      };
      const auto hi_idx = [](double v, double origin, double d,
                             std::size_t n) {
        if (d <= 0.0) return n - 1;
        const double f = std::floor((v - origin) / d + 1e-9);
        if (f < 0.0) return std::size_t{0};
        return std::min(static_cast<std::size_t>(f), n - 1);
      };
      const std::size_t ix0 = lo_idx(request.number_or("x0", box.lo.x),
                                     box.lo.x, grid.dx());
      const std::size_t iy0 = lo_idx(request.number_or("y0", box.lo.y),
                                     box.lo.y, grid.dy());
      const std::size_t ix1 = hi_idx(request.number_or("x1", box.hi.x),
                                     box.lo.x, grid.dx(), grid.nx());
      const std::size_t iy1 = hi_idx(request.number_or("y1", box.hi.y),
                                     box.lo.y, grid.dy(), grid.ny());
      if (ix0 >= grid.nx() || ix1 < ix0 || iy0 >= grid.ny() || iy1 < iy0)
        throw InvalidInputError("region: window contains no grid points");
      JsonValue values = JsonValue::array();
      for (std::size_t iy = iy0; iy <= iy1; ++iy)
        for (std::size_t ix = ix0; ix <= ix1; ++ix) {
          const std::size_t i = iy * grid.nx() + ix;
          values.items().push_back(
              JsonValue(core::extract(measure, s1[i] + s2[i])));
        }
      guard.count_region();
      JsonValue resp = make_ok();
      resp.set("nx", JsonValue(ix1 - ix0 + 1));
      resp.set("ny", JsonValue(iy1 - iy0 + 1));
      resp.set("x0", JsonValue(grid.point(ix0, iy0).x));
      resp.set("y0", JsonValue(grid.point(ix0, iy0).y));
      resp.set("dx", JsonValue(grid.dx()));
      resp.set("dy", JsonValue(grid.dy()));
      resp.set("value", std::move(values));
      return resp;
    }

    if (op == "koz") {
      const core::StressMeasure measure =
          parse_measure(request.string_or("measure", "von_mises"));
      const double limit = request.number_or("limit", 100.0);
      const auto rays =
          static_cast<std::size_t>(request.number_or("rays", 64.0));
      const double radial_step = request.number_or("radial_step", 0.1);
      const double max_radius = request.number_or("max_radius", 25.0);
      const double r0 = engine.structure().outer_radius();
      if (rays < 8 || radial_step <= 0.0 || max_radius <= r0)
        throw InvalidInputError(
            "koz: need rays >= 8, radial_step > 0, max_radius beyond the "
            "TSV outer radius");

      // One pass over the resident field, then ray marching on the scalar
      // metric through the shared bilinear interpolant (the variation
      // engine's KOZ path uses the same scheme on exceedance maps).
      std::vector<double> metric(grid.size());
      for (std::size_t i = 0; i < grid.size(); ++i)
        metric[i] = std::abs(core::extract(measure, s1[i] + s2[i]));

      std::vector<core::KozContour> contours;
      const double dtheta = 2.0 * std::numbers::pi /
                            static_cast<double>(rays);
      for (const std::uint32_t id : engine.active_ids()) {
        const geo::Point& c = engine.center(id);
        core::KozContour contour;
        contour.tsv_index = id;
        contour.radius.resize(rays, r0);
        const double attribution_cap = max_radius / 2.0;
        for (std::size_t k = 0; k < rays; ++k) {
          const double th = dtheta * static_cast<double>(k);
          const geo::Point dir{std::cos(th), std::sin(th)};
          double last_violation = r0;
          for (double r = r0; r <= attribution_cap; r += radial_step) {
            const geo::Point p = c + r * dir;
            if (geo::bilinear(grid, metric, p) > limit) last_violation = r;
          }
          contour.radius[k] = last_violation;
        }
        contour.max_radius = *std::max_element(contour.radius.begin(),
                                               contour.radius.end());
        contour.min_radius = *std::min_element(contour.radius.begin(),
                                               contour.radius.end());
        double area = 0.0;
        for (std::size_t k = 0; k < rays; ++k)
          area += 0.5 * contour.radius[k] * contour.radius[(k + 1) % rays] *
                  std::sin(dtheta);
        contour.area = area;
        contours.push_back(std::move(contour));
      }
      const core::KozReport report = core::summarize_koz(contours);
      guard.count_koz();

      JsonValue rows = JsonValue::array();
      for (const core::KozContour& contour : contours) {
        JsonValue row = JsonValue::object();
        row.set("id", JsonValue(contour.tsv_index));
        row.set("max_radius", JsonValue(contour.max_radius));
        row.set("min_radius", JsonValue(contour.min_radius));
        row.set("area", JsonValue(contour.area));
        JsonValue radii = JsonValue::array();
        for (const double r : contour.radius)
          radii.items().push_back(JsonValue(r));
        row.set("radius", std::move(radii));
        rows.items().push_back(std::move(row));
      }
      JsonValue resp = make_ok();
      resp.set("contours", std::move(rows));
      resp.set("mean_radius", JsonValue(report.mean_radius));
      resp.set("worst_radius", JsonValue(report.worst_radius));
      resp.set("worst_tsv", JsonValue(report.worst_tsv));
      resp.set("total_area", JsonValue(report.total_area));
      resp.set("worst_asymmetry", JsonValue(report.worst_asymmetry));
      return resp;
    }

    if (op == "eco") {
      const JsonValue::Array& ops = request.at("ops").as_array();
      core::Delta delta;
      delta.reserve(ops.size());
      for (const JsonValue& ov : ops) {
        const std::string kind = ov.at("op").as_string();
        if (kind == "add") {
          delta.push_back(core::EcoOp::add(
              {ov.at("x").as_number(), ov.at("y").as_number()}));
        } else if (kind == "move") {
          delta.push_back(core::EcoOp::move(
              static_cast<std::uint32_t>(ov.at("id").as_number()),
              {ov.at("x").as_number(), ov.at("y").as_number()}));
        } else if (kind == "remove") {
          delta.push_back(core::EcoOp::remove(
              static_cast<std::uint32_t>(ov.at("id").as_number())));
        } else {
          throw InvalidInputError("eco: unknown op kind '" + kind + "'");
        }
      }
      // The idempotency token: a retry resends the same "seq" and gets a
      // duplicate ack instead of a double apply (0/absent opts out). The
      // wire value is a double, so a negative or fractional seq would be
      // UB / silently lossy in the unsigned cast — reject it typed, and
      // cap at 2^53 where doubles stop holding integers exactly.
      const double seq_raw = request.number_or("seq", 0.0);
      if (!(seq_raw >= 0.0) || seq_raw != std::floor(seq_raw) ||
          seq_raw > 9007199254740992.0)
        throw InvalidInputError(
            "eco: \"seq\" must be a non-negative integer <= 2^53");
      const std::uint64_t seq = static_cast<std::uint64_t>(seq_raw);
      const SessionManager::EcoResult result = guard.apply_eco(delta, seq);
      // Adds allocate slot ids sequentially in op order. A duplicate ack
      // repeats them when they are reconstructible (retry of the newest
      // batch); "added_ids_known" tells the client which case it got.
      JsonValue added = JsonValue::array();
      if (result.ids_known) {
        std::size_t next_id = result.pre_slots;
        for (const core::EcoOp& o : delta)
          if (o.kind == core::EcoOp::Kind::kAdd)
            added.items().push_back(JsonValue(next_id++));
      }
      JsonValue resp = make_ok();
      resp.set("ops", JsonValue(result.stats.ops));
      resp.set("dirty_points", JsonValue(result.stats.dirty_points));
      resp.set("stage1_point_updates",
               JsonValue(result.stats.stage1_point_updates));
      resp.set("stage2_point_updates",
               JsonValue(result.stats.stage2_point_updates));
      resp.set("removed_pairs", JsonValue(result.stats.removed_pairs));
      resp.set("added_pairs", JsonValue(result.stats.added_pairs));
      resp.set("tsvs", JsonValue(engine.active_count()));
      resp.set("added_ids", std::move(added));
      resp.set("added_ids_known", JsonValue(result.ids_known));
      resp.set("seq", JsonValue(seq));
      resp.set("duplicate", JsonValue(result.duplicate));
      return resp;
    }

    throw InvalidInputError("unknown op: " + op);
  } catch (const Error& e) {
    return make_error(e.category(), e.what());
  } catch (const std::invalid_argument& e) {
    // TSV_REQUIRE-style contract violations (bad edit, bad argument).
    return make_error(ErrorCategory::kInvalidInput, e.what());
  } catch (const std::exception& e) {
    return make_unknown_error(e.what());
  }
}

}  // namespace tsv::server
