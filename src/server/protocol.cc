#include "server/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace tsv::server {
namespace {

[[noreturn]] void io_error(const char* what) {
  throw IoCorruptionError(std::string("wire: ") + what + ": " +
                          std::strerror(errno));
}

/// Writes all of [buf, buf+n), retrying on EINTR and short writes. EAGAIN
/// means a send timeout (SO_SNDTIMEO) expired with the peer not reading —
/// the write-side slow-loris — and is reported as the resource-limit it
/// is, not as corruption.
void write_all(int fd, const char* buf, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as EPIPE
    // (-> IoCorruptionError), never as a process-killing SIGPIPE — the
    // daemon ignores the signal, but library users may not.
    const ssize_t w = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw ResourceLimitError(
            "wire: send deadline exceeded (peer not reading)");
      io_error("write failed");
    }
    buf += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes. Returns false on EOF before the first byte (clean
/// close); throws on EOF mid-read or a socket error.
bool read_all(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      io_error("read failed");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw IoCorruptionError("wire: peer closed mid-frame (truncated)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const std::string& body) {
  if (body.size() > kMaxFrameBytes)
    throw InvalidInputError("wire: frame exceeds " +
                            std::to_string(kMaxFrameBytes) + " bytes");
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof(len));  // native little-endian, like io/
  write_all(fd, prefix, sizeof(prefix));
  write_all(fd, body.data(), body.size());
}

std::optional<std::string> read_frame(int fd) {
  char prefix[4];
  if (!read_all(fd, prefix, sizeof(prefix))) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  if (len > kMaxFrameBytes)
    throw IoCorruptionError("wire: frame length " + std::to_string(len) +
                            " exceeds the protocol maximum");
  std::string body(len, '\0');
  if (len > 0 && !read_all(fd, body.data(), len))
    throw IoCorruptionError("wire: peer closed mid-frame (truncated)");
  return body;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Bounded-read state shared between the prefix and body reads of one
/// frame: an optional wait for the first byte (idle), then a deadline
/// covering the rest of the frame.
struct BoundedReader {
  int fd;
  int idle_timeout_ms;
  int frame_deadline_ms;
  bool frame_started = false;
  Clock::time_point deadline{};

  /// Reads exactly n bytes. Returns false on clean EOF before any byte of
  /// the frame; kIdle result is signaled by returning false with
  /// `idle_expired` set. Throws ResourceLimitError when the frame deadline
  /// passes mid-frame.
  bool idle_expired = false;

  bool read_exact(char* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
      wait_readable();
      const ssize_t r = ::read(fd, buf + got, n - got);
      if (r < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
          continue;  // poll gates the timing; EAGAIN here is spurious
        io_error("read failed");
      }
      if (r == 0) {
        if (!frame_started && got == 0) return false;  // clean EOF
        throw IoCorruptionError("wire: peer closed mid-frame (truncated)");
      }
      got += static_cast<std::size_t>(r);
      if (!frame_started) {
        frame_started = true;
        if (frame_deadline_ms > 0)
          deadline = Clock::now() + std::chrono::milliseconds(frame_deadline_ms);
      }
    }
    return true;
  }

 private:
  void wait_readable() {
    int wait_ms = -1;  // block
    if (!frame_started) {
      if (idle_timeout_ms > 0) wait_ms = idle_timeout_ms;
    } else if (frame_deadline_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) deadline_exceeded();
      wait_ms = static_cast<int>(left.count()) + 1;
    }
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    while (true) {
      const int rc = ::poll(&pfd, 1, wait_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        io_error("poll failed");
      }
      if (rc == 0) {
        if (!frame_started) {
          idle_expired = true;
          throw IdleTimeout{};
        }
        deadline_exceeded();
      }
      return;  // readable (or hup/err — the read() will report it)
    }
  }

  [[noreturn]] static void deadline_exceeded() {
    throw ResourceLimitError(
        "wire: frame not completed within the op deadline");
  }

 public:
  /// Internal control-flow exception for the idle case (never escapes
  /// read_frame_bounded).
  struct IdleTimeout {};
};

}  // namespace

FrameRead read_frame_bounded(int fd, int idle_timeout_ms,
                             int frame_deadline_ms, std::string* frame) {
  BoundedReader reader{fd, idle_timeout_ms, frame_deadline_ms};
  try {
    char prefix[4];
    if (!reader.read_exact(prefix, sizeof(prefix))) return FrameRead::kEof;
    std::uint32_t len = 0;
    std::memcpy(&len, prefix, sizeof(len));
    if (len > kMaxFrameBytes)
      throw IoCorruptionError("wire: frame length " + std::to_string(len) +
                              " exceeds the protocol maximum");
    frame->assign(len, '\0');
    if (len > 0 && !reader.read_exact(frame->data(), len))
      throw IoCorruptionError("wire: peer closed mid-frame (truncated)");
    return FrameRead::kFrame;
  } catch (const BoundedReader::IdleTimeout&) {
    return FrameRead::kIdleTimeout;
  }
}

JsonValue make_ok() {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue(true));
  return v;
}

JsonValue make_error(ErrorCategory category, const std::string& message) {
  JsonValue err = JsonValue::object();
  err.set("category", JsonValue(to_string(category)));
  err.set("code", JsonValue(exit_code(category)));
  err.set("message", JsonValue(message));
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue(false));
  v.set("error", std::move(err));
  return v;
}

JsonValue expect_ok(JsonValue response) {
  if (response.at("ok").as_bool()) return response;
  const JsonValue& err = response.at("error");
  const std::string category = err.string_or("category", "unknown");
  const std::string message = err.string_or("message", "(no message)");
  if (category == to_string(ErrorCategory::kInvalidInput))
    throw InvalidInputError(message);
  if (category == to_string(ErrorCategory::kNumericFailure))
    throw NumericFailureError(message);
  if (category == to_string(ErrorCategory::kIoCorruption))
    throw IoCorruptionError(message);
  if (category == to_string(ErrorCategory::kResourceLimit))
    throw ResourceLimitError(message);
  throw std::runtime_error(message);
}

}  // namespace tsv::server
