#include "server/protocol.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace tsv::server {
namespace {

[[noreturn]] void io_error(const char* what) {
  throw IoCorruptionError(std::string("wire: ") + what + ": " +
                          std::strerror(errno));
}

/// Writes all of [buf, buf+n), retrying on EINTR and short writes.
void write_all(int fd, const char* buf, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, buf, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      io_error("write failed");
    }
    buf += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes. Returns false on EOF before the first byte (clean
/// close); throws on EOF mid-read or a socket error.
bool read_all(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      io_error("read failed");
    }
    if (r == 0) {
      if (got == 0) return false;
      throw IoCorruptionError("wire: peer closed mid-frame (truncated)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void write_frame(int fd, const std::string& body) {
  if (body.size() > kMaxFrameBytes)
    throw InvalidInputError("wire: frame exceeds " +
                            std::to_string(kMaxFrameBytes) + " bytes");
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  char prefix[4];
  std::memcpy(prefix, &len, sizeof(len));  // native little-endian, like io/
  write_all(fd, prefix, sizeof(prefix));
  write_all(fd, body.data(), body.size());
}

std::optional<std::string> read_frame(int fd) {
  char prefix[4];
  if (!read_all(fd, prefix, sizeof(prefix))) return std::nullopt;
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  if (len > kMaxFrameBytes)
    throw IoCorruptionError("wire: frame length " + std::to_string(len) +
                            " exceeds the protocol maximum");
  std::string body(len, '\0');
  if (len > 0 && !read_all(fd, body.data(), len))
    throw IoCorruptionError("wire: peer closed mid-frame (truncated)");
  return body;
}

JsonValue make_ok() {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue(true));
  return v;
}

JsonValue make_error(ErrorCategory category, const std::string& message) {
  JsonValue err = JsonValue::object();
  err.set("category", JsonValue(to_string(category)));
  err.set("code", JsonValue(exit_code(category)));
  err.set("message", JsonValue(message));
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue(false));
  v.set("error", std::move(err));
  return v;
}

JsonValue expect_ok(JsonValue response) {
  if (response.at("ok").as_bool()) return response;
  const JsonValue& err = response.at("error");
  const std::string category = err.string_or("category", "unknown");
  const std::string message = err.string_or("message", "(no message)");
  if (category == to_string(ErrorCategory::kInvalidInput))
    throw InvalidInputError(message);
  if (category == to_string(ErrorCategory::kNumericFailure))
    throw NumericFailureError(message);
  if (category == to_string(ErrorCategory::kIoCorruption))
    throw IoCorruptionError(message);
  if (category == to_string(ErrorCategory::kResourceLimit))
    throw ResourceLimitError(message);
  throw std::runtime_error(message);
}

}  // namespace tsv::server
