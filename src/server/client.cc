#include "server/client.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/error.h"
#include "server/protocol.h"

namespace tsv::server {

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw InvalidInputError("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw InvalidInputError("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw InvalidInputError("cannot connect to unix:" + path + ": " + why);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw InvalidInputError("cannot parse host: " + host);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw InvalidInputError("cannot create TCP socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw InvalidInputError("cannot connect to " + host + ":" +
                            std::to_string(port) + ": " + why);
  }
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

JsonValue Client::call_raw(const JsonValue& request) {
  write_frame(fd_, request.dump());
  const std::optional<std::string> frame = read_frame(fd_);
  if (!frame.has_value())
    throw IoCorruptionError("wire: server closed before responding");
  return JsonValue::parse(*frame);
}

JsonValue Client::call(const JsonValue& request) {
  return expect_ok(call_raw(request));
}

JsonValue Client::request(const std::string& op) {
  JsonValue v = JsonValue::object();
  v.set("op", JsonValue(op));
  return v;
}

JsonValue Client::request(const std::string& op, const std::string& session) {
  JsonValue v = request(op);
  v.set("session", JsonValue(session));
  return v;
}

RetryingClient RetryingClient::unix_endpoint(std::string path,
                                             RetryPolicy policy) {
  return RetryingClient(std::move(path), std::string(), 0, policy);
}

RetryingClient RetryingClient::tcp_endpoint(std::string host, int port,
                                            RetryPolicy policy) {
  return RetryingClient(std::string(), std::move(host), port, policy);
}

bool RetryingClient::retry_safe(const JsonValue& request) {
  const std::string op = request.string_or("op", "");
  if (op == "ping" || op == "query" || op == "region" || op == "koz" ||
      op == "stats" || op == "evict")
    return true;
  // An eco is replayable only when the server can recognize the replay.
  if (op == "eco") return request.number_or("seq", 0.0) > 0.0;
  return false;
}

Client& RetryingClient::connection() {
  if (!conn_.has_value()) {
    conn_ = unix_path_.empty() ? Client::connect_tcp(host_, port_)
                               : Client::connect_unix(unix_path_);
    ++stats_.reconnects;
  }
  return *conn_;
}

double RetryingClient::next_delay_ms() {
  // Decorrelated jitter: each sleep is uniform in [base, 3 * previous],
  // capped. Grows fast enough to ride out a restart, spreads concurrent
  // retriers instead of synchronizing them.
  const double hi =
      std::max(policy_.base_delay_ms, 3.0 * std::max(prev_delay_ms_,
                                                     policy_.base_delay_ms));
  std::uniform_real_distribution<double> dist(policy_.base_delay_ms, hi);
  prev_delay_ms_ = std::min(policy_.max_delay_ms, dist(rng_));
  return prev_delay_ms_;
}

JsonValue RetryingClient::call_raw(const JsonValue& request) {
  const bool safe = retry_safe(request);
  const int attempts = std::max(1, policy_.max_attempts);
  for (int attempt = 1;; ++attempt) {
    ++stats_.attempts;
    try {
      return connection().call_raw(request);
    } catch (const std::exception&) {
      conn_.reset();  // the socket is suspect either way
      if (!safe || attempt >= attempts) throw;
    }
    ++stats_.retries;
    const auto delay = std::chrono::duration<double, std::milli>(
        next_delay_ms());
    std::this_thread::sleep_for(delay);
  }
}

JsonValue RetryingClient::call(const JsonValue& request) {
  return expect_ok(call_raw(request));
}

}  // namespace tsv::server
