#pragma once
// The stress-service daemon: a socket front end over SessionManager.
//
// StressServer binds one listening socket (Unix-domain when `unix_path` is
// set, TCP otherwise), accepts connections on run(), and serves one thread
// per connection. Each request frame (server/protocol.h) is dispatched to a
// handler; every failure becomes a wire error object carrying the
// tsv::ErrorCategory taxonomy, so a connection survives bad requests and a
// scripted client can assert exit codes.
//
// Request handling takes a SessionManager::Guard, so all engine use is
// serialized per session while requests against different sessions run
// concurrently on their own connections. `shutdown` evicts every resident
// session (durable snapshots on disk) before the accept loop exits, and a
// restarted daemon pointed at the same snapshot directory recovers them.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/json.h"
#include "server/session_manager.h"

namespace tsv::server {

struct ServerOptions {
  /// Unix-domain socket path; when empty the server listens on TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;  ///< TCP port; 0 = kernel-assigned (see StressServer::port)
  std::string snapshot_dir = "snapshots";
  SessionLimits limits{};
};

class StressServer {
 public:
  /// Binds and listens (throws InvalidInputError when the endpoint cannot
  /// be bound) and recovers sessions from the snapshot directory.
  explicit StressServer(ServerOptions options);
  ~StressServer();
  StressServer(const StressServer&) = delete;
  StressServer& operator=(const StressServer&) = delete;

  /// The bound TCP port (resolves port 0); 0 for a Unix-domain server.
  int port() const { return port_; }
  /// Human-readable bound endpoint ("unix:/path" or "host:port").
  const std::string& endpoint() const { return endpoint_; }
  SessionManager& sessions() { return sessions_; }

  /// Accept loop. Returns after a `shutdown` request (or stop()) once all
  /// connection threads have drained; resident sessions are evicted to
  /// their snapshots on the way out.
  void run();

  /// Asynchronously requests run() to exit (safe from any thread).
  void stop();

  /// Dispatches one parsed request to its handler — the full service logic
  /// minus the socket, used directly by the in-process tests. Never throws:
  /// failures come back as wire error objects.
  JsonValue handle(const JsonValue& request);

 private:
  void serve_connection(int fd);

  ServerOptions options_;
  SessionManager sessions_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string endpoint_;
  std::atomic<bool> stop_{false};

  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace tsv::server
