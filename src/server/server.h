#pragma once
// The stress-service daemon: a socket front end over SessionManager.
//
// StressServer binds one listening socket (Unix-domain when `unix_path` is
// set, TCP otherwise), accepts connections on run(), and serves one thread
// per connection. Each request frame (server/protocol.h) is dispatched to a
// handler; every failure becomes a wire error object carrying the
// tsv::ErrorCategory taxonomy, so a connection survives bad requests and a
// scripted client can assert exit codes.
//
// Request handling takes a SessionManager::Guard, so all engine use is
// serialized per session while requests against different sessions run
// concurrently on their own connections. `shutdown` evicts every resident
// session (durable snapshots on disk) before the accept loop exits, and a
// restarted daemon pointed at the same snapshot directory recovers them.
//
// Every socket operation is bounded when the deadline options are set:
// idle connections are closed after `io_timeout_ms`, and a request that
// cannot be read or answered within `op_deadline_ms` gets a typed
// `resource-limit` wire error before its connection is dropped — so a
// slow-loris client pins a thread for at most one deadline. Finished
// connection threads are reaped continuously (not accumulated until
// shutdown), keeping the daemon's thread count proportional to live
// connections.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/json.h"
#include "server/session_manager.h"

namespace tsv::server {

struct ServerOptions {
  /// Unix-domain socket path; when empty the server listens on TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;  ///< TCP port; 0 = kernel-assigned (see StressServer::port)
  std::string snapshot_dir = "snapshots";
  SessionLimits limits{};
  /// Close a connection idle for this long between requests (0 = never).
  int io_timeout_ms = 0;
  /// Once a request frame starts arriving, the frame must complete (and
  /// its response must be writable) within this budget, or the client is
  /// sent a typed `resource-limit` error and disconnected (0 = unlimited).
  /// Bounds the damage of a slow-loris client to one deadline per thread.
  int op_deadline_ms = 0;
};

/// Wire-level connection counters, exposed by the stats endpoint.
struct WireStats {
  std::uint64_t connections = 0;          ///< accepted, lifetime
  std::uint64_t idle_disconnects = 0;     ///< closed by the io-timeout
  std::uint64_t deadline_disconnects = 0;  ///< closed by the op deadline
  std::uint64_t frame_errors = 0;  ///< malformed/truncated/oversized frames
};

class StressServer {
 public:
  /// Binds and listens (throws InvalidInputError when the endpoint cannot
  /// be bound) and recovers sessions from the snapshot directory.
  explicit StressServer(ServerOptions options);
  ~StressServer();
  StressServer(const StressServer&) = delete;
  StressServer& operator=(const StressServer&) = delete;

  /// The bound TCP port (resolves port 0); 0 for a Unix-domain server.
  int port() const { return port_; }
  /// Human-readable bound endpoint ("unix:/path" or "host:port").
  const std::string& endpoint() const { return endpoint_; }
  SessionManager& sessions() { return sessions_; }

  /// Accept loop. Returns after a `shutdown` request (or stop()) once all
  /// connection threads have drained; resident sessions are evicted to
  /// their snapshots on the way out.
  void run();

  /// Asynchronously requests run() to exit (safe from any thread).
  void stop();

  /// Dispatches one parsed request to its handler — the full service logic
  /// minus the socket, used directly by the in-process tests. Never throws:
  /// failures come back as wire error objects.
  JsonValue handle(const JsonValue& request);

  /// Wire counters (accepted / idle-closed / deadline-closed / frame
  /// errors); also reported by the stats op.
  WireStats wire_stats() const;

  /// Live connection threads right now (reaps finished ones first). Lets
  /// tests assert the accept loop does not accumulate dead threads.
  std::size_t connection_threads();

 private:
  void serve_connection(int fd, std::uint64_t id);
  /// Joins and erases every connection thread that announced completion.
  void reap_finished_locked();

  ServerOptions options_;
  SessionManager sessions_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::string endpoint_;
  std::atomic<bool> stop_{false};

  // Connection registry: id -> (thread, fd). Finished threads enqueue
  // their id and are joined on the next accept tick, so a long-lived
  // daemon's thread count tracks *live* connections, not lifetime ones.
  // The fd is kept so shutdown can wake reads blocked in connections.
  struct Connection {
    std::thread thread;
    int fd = -1;
  };
  std::mutex threads_mu_;
  std::uint64_t next_conn_id_ = 0;
  std::map<std::uint64_t, Connection> connections_;
  std::vector<std::uint64_t> finished_;

  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> idle_disconnects_{0};
  std::atomic<std::uint64_t> deadline_disconnects_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
};

}  // namespace tsv::server
