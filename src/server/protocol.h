#pragma once
// The stress-service wire protocol: length-prefixed JSON over a stream
// socket (Unix-domain or TCP).
//
// Framing: every message is a 4-byte little-endian unsigned payload length
// followed by exactly that many bytes of UTF-8 JSON. Requests are objects
// with an "op" field; responses are objects with "ok": true plus op-specific
// fields, or "ok": false plus an "error" object:
//
//   {"ok":false,"error":{"category":"resource-limit","code":5,
//                        "message":"..."}}
//
// The error categories and numeric codes are exactly the tsv::ErrorCategory
// taxonomy and its CLI exit codes (src/core/error.h): 2 invalid-input,
// 3 numeric-failure, 4 io-corruption, 5 resource-limit, 1 uncategorized.
// Clients re-throw them as the matching tsv::Error subclass, so a scripted
// `tsvstress_cli client` session exits with the same codes a batch run
// would (tests/cli_exit_codes.sh's contract extends to the wire).
//
// Request ops served by the daemon (src/server/server.h):
//   ping      liveness probe
//   open      build a resident session from placement text
//   query     point stress (snapped to the session grid)
//   region    rectangular window of the resident field
//   koz       keep-out contours from the resident field
//   eco       atomic edit batch against the resident engine
//   stats     per-session + global counters
//   evict     force snapshot-backed eviction (admission does this on demand)
//   close     drop a session (snapshotting it unless discard)
//   shutdown  stop the daemon after responding
//
// Doubles cross the wire via "%.17g" (server/json.h), so numeric responses
// are bitwise-comparable to an in-process evaluation.
//
// Idempotency: an eco request may carry a client-generated "seq" (a
// per-session monotonically increasing integer). The server journals the
// sequence with the batch and dedupes: a retry of an already-applied
// sequence is acked with "duplicate": true and applies nothing, so clients
// may safely retry an eco whose ack was lost. "seq": 0 (or absent) opts
// out of dedupe.
//
// Deadlines: when the daemon runs with --io-timeout / --op-deadline, a
// connection idle past the io-timeout is closed silently, and a request
// that cannot be read or answered within the op-deadline gets a typed
// `resource-limit` wire error (code 5) before the connection is closed —
// a slow-loris client costs a bounded amount of server time, never a
// leaked thread.

#include <cstdint>
#include <optional>
#include <string>

#include "core/error.h"
#include "server/json.h"

namespace tsv::server {

/// Frames larger than this are rejected as malformed — far above any real
/// request/response (a full 10k-TSV region map is ~20 MB of JSON) but small
/// enough that a corrupt length prefix cannot trigger a giant allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

/// Writes one length-prefixed frame to `fd`, handling short writes and
/// EINTR. Throws tsv::IoCorruptionError when the peer is gone.
void write_frame(int fd, const std::string& body);

/// Reads one frame. Returns nullopt on clean EOF at a frame boundary
/// (peer closed); throws tsv::IoCorruptionError on truncation mid-frame or
/// an oversized length prefix.
std::optional<std::string> read_frame(int fd);

/// Outcome of a bounded frame read (deadline-aware server loop).
enum class FrameRead {
  kFrame,        ///< `*frame` holds a complete frame
  kEof,          ///< clean EOF at a frame boundary
  kIdleTimeout,  ///< no first byte within idle_timeout_ms (close quietly)
};

/// read_frame with deadlines, for the server side. Waits up to
/// `idle_timeout_ms` for the first byte of the length prefix (0 = forever);
/// once a frame has started, the whole frame must arrive within
/// `frame_deadline_ms` (0 = unlimited) or the read throws
/// tsv::ResourceLimitError — the slow-loris case, which the caller turns
/// into a typed wire error before disconnecting. Other failure modes match
/// read_frame (IoCorruptionError on truncation/oversize).
FrameRead read_frame_bounded(int fd, int idle_timeout_ms,
                             int frame_deadline_ms, std::string* frame);

/// {"ok":true} with room for op-specific fields.
JsonValue make_ok();

/// The wire error object for a category + message (see header comment).
JsonValue make_error(ErrorCategory category, const std::string& message);

/// Parses a response: returns it when "ok" is true, otherwise throws the
/// tsv::Error subclass matching the wire category (an unknown category
/// degrades to std::runtime_error, preserving the message).
JsonValue expect_ok(JsonValue response);

}  // namespace tsv::server
