#pragma once
// Minimal JSON value model for the stress-service wire protocol.
//
// The daemon speaks length-prefixed JSON (server/protocol.h), and the repo
// deliberately carries no third-party dependencies, so this is the smallest
// JSON layer the protocol needs: null/bool/number/string/array/object,
// strict parsing with positioned errors, and deterministic serialization.
//
// Numbers are IEEE doubles serialized with "%.17g", which round-trips every
// finite double exactly through strtod. The protocol relies on this: stress
// values crossing the wire compare *bitwise* against an in-process
// evaluation (see test_server / bench_server), so the service can advertise
// the same determinism contract as the batch CLI. NaN/Inf are rejected on
// serialization (JSON has no spelling for them; a field with NaN stress is
// a bug upstream, not a transport problem).
//
// Objects preserve insertion order (vector of pairs, not a map): responses
// serialize in the order handlers build them, so wire bytes are stable
// across runs and the protocol docs can show literal transcripts.

#include <cstddef>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace tsv::server {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  /// Any integer width converts through double (wire numbers are doubles;
  /// counters stay exact up to 2^53, far beyond any real counter here).
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> &&
                                                    !std::is_same_v<T, bool>>>
  JsonValue(T n) : JsonValue(static_cast<double>(n)) {}
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  static JsonValue object() { return JsonValue(Object{}); }
  static JsonValue array() { return JsonValue(Array{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw tsv::InvalidInputError on a type mismatch so a
  /// malformed request fails with the protocol's invalid-input category.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Mutable builders (require the matching type).
  Array& items();
  /// Appends (key, value) — keys are not deduplicated; build each once.
  JsonValue& set(const std::string& key, JsonValue value);

  /// Object field lookup: nullptr when absent (or when not an object).
  const JsonValue* find(const std::string& key) const;
  /// Required object field; throws tsv::InvalidInputError when missing.
  const JsonValue& at(const std::string& key) const;

  /// Optional-field conveniences for request parsing.
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  /// Compact one-line serialization (no whitespace). Throws
  /// tsv::InvalidInputError on non-finite numbers.
  std::string dump() const;

  /// Strict parse of exactly one JSON document (trailing garbage rejected).
  /// Throws tsv::InvalidInputError with the byte offset on malformed input.
  static JsonValue parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace tsv::server
