#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/error.h"

namespace tsv::server {
namespace {

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  throw InvalidInputError(std::string("json: expected ") + want + ", got " +
                          kNames[static_cast<int>(got)]);
}

/// Recursive-descent parser over the raw bytes. Strings accept the JSON
/// escapes the protocol emits (\" \\ \/ \b \f \n \r \t and \uXXXX folded to
/// UTF-8); numbers go through strtod for exact double round-trips.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidInputError("json parse error at byte " +
                            std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_keyword(const char* kw) {
    const std::size_t n = std::strlen(kw);
    if (text_.compare(pos_, n, kw) != 0)
      fail(std::string("expected '") + kw + "'");
    pos_ += n;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case 'n':
        expect_keyword("null");
        return JsonValue();
      case 't':
        expect_keyword("true");
        return JsonValue(true);
      case 'f':
        expect_keyword("false");
        return JsonValue(false);
      case '"':
        return JsonValue(parse_string());
      case '[':
        return parse_array();
      case '{':
        return parse_object();
      default:
        return parse_number();
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    return JsonValue(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          out += parse_unicode_escape();
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    // Placement names and error messages are ASCII in practice; fold the
    // escape to UTF-8 without surrogate-pair handling (reject surrogates).
    if (code >= 0xD800 && code <= 0xDFFF)
      fail("surrogate \\u escapes are not supported");
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(items));
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (consume(']')) return JsonValue(std::move(items));
      expect(',');
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object fields;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(fields));
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (consume('}')) return JsonValue(std::move(fields));
      expect(',');
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_value(std::string& out, const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      const double n = v.as_number();
      if (!std::isfinite(n))
        throw InvalidInputError("json: cannot serialize a non-finite number");
      char buf[32];
      // %.17g round-trips every finite IEEE double exactly through strtod,
      // which is what keeps wire responses bitwise-comparable to in-process
      // evaluation.
      std::snprintf(buf, sizeof(buf), "%.17g", n);
      out += buf;
      return;
    }
    case JsonValue::Type::kString:
      append_escaped(out, v.as_string());
      return;
    case JsonValue::Type::kArray: {
      out.push_back('[');
      const JsonValue::Array& items = v.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_value(out, items[i]);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out.push_back('{');
      const JsonValue::Object& fields = v.as_object();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out.push_back(',');
        append_escaped(out, fields[i].first);
        out.push_back(':');
        append_value(out, fields[i].second);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

JsonValue::Array& JsonValue::items() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (type_ != Type::kObject) type_error("object", type_);
  object_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw InvalidInputError("json: missing required field '" + key + "'");
  return *v;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

std::string JsonValue::dump() const {
  std::string out;
  append_value(out, *this);
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace tsv::server
