#pragma once
// Monte Carlo / design-of-experiments variation engine over the resident
// incremental engine: a variation sample is an *edit batch* (jitter the
// sampled TSV subset, revert the previous sample's subset), never a fresh
// full build — the per-sample cost is O(edited pairs x disc points), which
// the bench measures at >= 50x cheaper than a cold recompute at 1k TSVs.
//
// Structure corners (radius / liner / materials, see sampler.h) each get
// their own characterized engine; per corner the engine streams every
// sample through the stats/accumulators.h engines and reports
//   * per-point mean / sigma / quantiles of von Mises stress,
//   * per-point exceedance probability at the configured MPa thresholds,
//   * statistical KOZ contours: per nominal TSV, the region where
//     P(von Mises > koz_limit) >= koz_alpha (a probabilistic version of
//     core/koz.h, reusing its contour/report types),
//   * a stress-vs-pitch OLS regression + correlation (pitch is the dominant
//     extrusion covariate, arXiv:2009.12388), pooling (nearest-neighbor
//     pitch, peak local von Mises) per TSV per sample.
//
// Determinism contract (mirrors the repo's threading rules): the sample
// loop and every engine apply/build are serial; threads only touch the
// per-point accumulation pass, where each point is owned by exactly one
// chunk and cross-point reductions are order-independent (max, integer
// counts). Results are therefore bitwise identical at any thread count, and
// identical across runs for a fixed (seed, samples, corners).

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/incremental_engine.h"
#include "core/koz.h"
#include "core/metrics.h"
#include "geometry/sample_grid.h"
#include "materials/material.h"
#include "stats/accumulators.h"
#include "stats/sampler.h"
#include "tsv/placement.h"

namespace tsv::stats {

struct VariationOptions {
  /// Engine configuration shared by every corner. num_threads is forced to
  /// 1 internally: builds and applies stay serial so fields are bitwise
  /// reproducible (Stage II pair-parallelism is only regroup-deterministic).
  core::IncrementalOptions engine{};
  mat::ThermalLoad load{};
  /// Von Mises exceedance thresholds, MPa.
  std::vector<double> thresholds{60.0, 80.0, 100.0};
  /// Quantile levels reported per point.
  std::vector<double> quantiles{0.05, 0.5, 0.95};
  /// Quantile sketch shape (log-spaced bins over [lo, hi] MPa).
  std::size_t histogram_bins = 48;
  double histogram_lo = 1e-2;
  double histogram_hi = 1e4;
  /// Radius (um) of the per-TSV probe disc whose peak von Mises feeds the
  /// pitch regression.
  double probe_radius = 5.0;
  /// Statistical KOZ: contour of P(von Mises > koz_limit) >= koz_alpha.
  double koz_limit = 100.0;
  double koz_alpha = 0.05;
  std::size_t koz_rays = 32;
  double koz_max_radius = 25.0;
  double koz_radial_step = 0.25;
  /// Threads for the per-point accumulation pass (0 = hardware, 1 = serial).
  std::size_t num_threads = 1;
  /// Sweep structure corners concurrently on the shared pool. Corners are
  /// fully independent (own engine, own accumulators, counter-based
  /// sampler), and nested parallel regions run serially, so per-corner
  /// results stay bitwise identical to the sequential sweep.
  bool parallel_corners = false;
  /// Fit and attach a certified Chebyshev surrogate per corner before the
  /// sweep (fast Stage II per sample at the cost of one ~40 ms fit).
  bool fit_surrogate = false;
};

/// Everything the sweep learned about one structure corner.
struct CornerResult {
  std::string name;
  std::size_t samples = 0;

  /// Per grid point (indexed like the sample grid).
  std::vector<double> mean;
  std::vector<double> sigma;
  /// quantile[qi][point] for VariationOptions::quantiles[qi].
  std::vector<std::vector<double>> quantile;
  /// exceedance[ti][point] for VariationOptions::thresholds[ti].
  std::vector<std::vector<double>> exceedance;

  /// Distribution of the per-sample peak von Mises over the grid.
  DescriptiveAccumulator sample_peak;
  /// Pooled (nearest-neighbor pitch, local peak von Mises) regression.
  BivariateAccumulator pitch_stress;
  OlsFit pitch_fit;

  /// Statistical KOZ around each nominal TSV.
  std::vector<core::KozContour> koz_contours;
  core::KozReport koz;

  double build_seconds = 0.0;   ///< characterization + initial full build
  double sample_seconds = 0.0;  ///< total apply + accumulate time
  std::size_t point_updates = 0;  ///< engine stage1+stage2 point updates
};

class VariationEngine {
 public:
  /// Builds one resident engine per corner (spec.corners; nominal-only when
  /// empty) over `nominal`'s centers and `grid`. Throws InvalidInputError
  /// via TSV_REQUIRE when a corner's outer radius leaves no jitter slack.
  VariationEngine(const tsvlib::Placement& nominal,
                  const geo::SampleGrid& grid, const VariationSpec& spec,
                  const VariationOptions& options = {});

  const VariationSampler& sampler() const { return sampler_; }
  const geo::SampleGrid& grid() const { return grid_; }
  const VariationOptions& options() const { return options_; }
  std::size_t corner_count() const { return corners_.size(); }
  const StructureCorner& corner(std::size_t i) const { return corners_[i]; }
  /// The resident engine of corner i (at the nominal placement before and
  /// after run()).
  core::IncrementalEngine& engine(std::size_t i) { return *engines_[i]; }

  /// Streams spec().samples Monte Carlo samples through every corner's
  /// engine and returns one result per corner. Deterministic: same
  /// (seed, samples, corners) => bitwise-identical results at any
  /// options().num_threads, with or without parallel_corners.
  std::vector<CornerResult> run();

 private:
  CornerResult run_corner(std::size_t corner_index);

  tsvlib::Placement nominal_;
  geo::SampleGrid grid_;
  VariationSpec spec_;
  VariationOptions options_;
  VariationSampler sampler_;
  std::vector<StructureCorner> corners_;
  std::vector<std::unique_ptr<core::IncrementalEngine>> engines_;
  std::vector<double> build_seconds_;
};

}  // namespace tsv::stats
