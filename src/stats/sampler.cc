#include "stats/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "numeric/check.h"

namespace tsv::stats {

namespace {

// Purpose keys for the counter RNG streams; each sample consumes an
// independent stream per concern so adding draws to one never shifts
// another.
constexpr std::uint64_t kSelect = 1;  ///< which TSVs to jitter
constexpr std::uint64_t kJitter = 2;  ///< jitter displacement Gaussians
constexpr std::uint64_t kScale = 3;   ///< thermal-load scale Gaussian

// Standard normal via Box-Muller on two keyed draws. u1 is mapped into
// (0, 1] so the log is finite.
double gaussian(std::uint64_t seed, std::uint64_t sample,
                std::uint64_t purpose, std::uint64_t lane) {
  const double u1 = 1.0 - rng::to_unit(rng::draw(seed, sample, purpose, lane));
  const double u2 = rng::to_unit(rng::draw(seed, sample, purpose, lane + 1));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

std::vector<StructureCorner> material_corners(
    const tsvlib::TsvStructure& nominal) {
  const mat::Material fills[] = {mat::copper(), mat::cnt_fill()};
  const mat::Material liners[] = {mat::bcb(), mat::silicon_dioxide()};
  std::vector<StructureCorner> corners;
  for (const auto& fill : fills)
    for (const auto& liner : liners) {
      tsvlib::TsvStructure s = nominal;
      s.body = fill;
      s.liner = liner;
      corners.push_back({fill.name + "_" + liner.name, s});
    }
  return corners;
}

std::vector<StructureCorner> geometry_corners(
    const tsvlib::TsvStructure& nominal, double radius_delta,
    double liner_delta) {
  TSV_REQUIRE(nominal.body_radius > radius_delta,
              "radius delta larger than the body radius");
  TSV_REQUIRE(nominal.liner_thickness > liner_delta,
              "liner delta larger than the liner thickness");
  std::vector<StructureCorner> corners;
  corners.push_back({"nominal", nominal});
  for (const double sr : {-1.0, 1.0})
    for (const double sl : {-1.0, 1.0}) {
      tsvlib::TsvStructure s = nominal;
      s.body_radius = nominal.body_radius + sr * radius_delta;
      s.liner_thickness = nominal.liner_thickness + sl * liner_delta;
      corners.push_back(
          {std::string("R") + (sr > 0 ? "+" : "-") + "t" + (sl > 0 ? "+" : "-"),
           s});
    }
  return corners;
}

VariationSampler::VariationSampler(const tsvlib::Placement& nominal,
                                   const VariationSpec& spec)
    : nominal_(nominal.centers()), spec_(spec) {
  TSV_REQUIRE(spec_.jitter_tsvs <= nominal_.size(),
              "jitter_tsvs exceeds the placement size");
  TSV_REQUIRE(spec_.cte_sigma >= 0.0 && spec_.cte_sigma * 3.0 < 1.0,
              "cte_sigma must keep the 3-sigma field scale positive");
  if (spec_.jitter_tsvs > 0 && nominal_.size() > 1) {
    const double slack =
        nominal.min_pitch() - 2.0 * nominal.structure().outer_radius();
    TSV_REQUIRE(slack > 0.0,
                "nominal placement has no pitch slack to jitter within");
    max_disp_ = 0.45 * slack;
  }
}

SampleRealization VariationSampler::realize(std::size_t sample_index) const {
  SampleRealization r;
  r.sample_index = sample_index;
  const std::uint64_t seed = spec_.seed;
  const auto sample = static_cast<std::uint64_t>(sample_index);

  // Jittered subset: partial Fisher-Yates over the id range, then sorted so
  // the edit batch (and hence the serial engine apply) has one fixed order.
  const std::size_t n = nominal_.size();
  const std::size_t k = std::min(spec_.jitter_tsvs, n);
  if (k > 0) {
    std::vector<std::uint32_t> ids(n);
    std::iota(ids.begin(), ids.end(), 0u);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t u = rng::draw(seed, sample, kSelect, i);
      const std::size_t j = i + static_cast<std::size_t>(u % (n - i));
      std::swap(ids[i], ids[j]);
    }
    ids.resize(k);
    std::sort(ids.begin(), ids.end());
    r.jittered_ids = std::move(ids);

    r.jittered_centers.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint32_t id = r.jittered_ids[i];
      double dx = spec_.jitter_sigma *
                  gaussian(seed, sample, kJitter, 4 * std::uint64_t{id});
      double dy = spec_.jitter_sigma *
                  gaussian(seed, sample, kJitter, 4 * std::uint64_t{id} + 2);
      const double mag = std::hypot(dx, dy);
      if (mag > max_disp_ && mag > 0.0) {
        const double s = max_disp_ / mag;
        dx *= s;
        dy *= s;
      }
      const geo::Point c = nominal_[id];
      r.jittered_centers.push_back({c.x + dx, c.y + dy});
    }
  }

  const double z = std::clamp(gaussian(seed, sample, kScale, 0), -3.0, 3.0);
  r.field_scale = 1.0 + spec_.cte_sigma * z;
  return r;
}

std::vector<geo::Point> VariationSampler::realized_centers(
    const SampleRealization& r) const {
  std::vector<geo::Point> centers = nominal_;
  for (std::size_t i = 0; i < r.jittered_ids.size(); ++i)
    centers[r.jittered_ids[i]] = r.jittered_centers[i];
  return centers;
}

}  // namespace tsv::stats
