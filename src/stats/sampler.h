#pragma once
// Seeded process-variation sampler: turns a sample index into a concrete
// realization (placement jitter + thermal-load scale) as a *pure function*
// of (seed, sample index). The RNG is counter-based (SplitMix64 keyed on
// seed/sample/purpose/lane), so sample k's realization never depends on how
// many samples were drawn before it or on which thread asks — the brute
// force reference in the tests regenerates bit-identical realizations.
//
// Structure variation (TSV radius, liner thickness, liner/fill material,
// CTE of the materials) cannot be realized as a placement edit — it changes
// the single-TSV characterization itself — so it is modeled as
// design-of-experiments *corners*: each StructureCorner gets its own
// characterized resident engine, and the Monte Carlo jitter/CTE sweep runs
// per corner. Thermal-load (CTE·ΔT) variation is exact as a per-sample
// scalar on the stress field, since the framework is linear thermoelastic.

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "tsv/placement.h"
#include "tsv/structure.h"

namespace tsv::stats {

/// One design-of-experiments corner: a named TSV structure variant.
struct StructureCorner {
  std::string name;
  tsvlib::TsvStructure structure;
};

/// Monte Carlo sweep specification.
struct VariationSpec {
  std::uint64_t seed = 1;
  std::size_t samples = 128;
  /// TSVs jittered per sample. Jittering a sparse subset keeps a sample an
  /// O(subset) edit batch against the resident engine; jittering every TSV
  /// would touch every pair twice and cost more than a full recompute.
  std::size_t jitter_tsvs = 8;
  double jitter_sigma = 0.5;  ///< um, per-axis Gaussian placement jitter
  /// Relative sigma of the thermal-load scale (CTE / ΔT variation); the
  /// per-sample field scale is 1 + cte_sigma * z with z clamped to ±3.
  double cte_sigma = 0.05;
  /// Structure corners to sweep; empty means nominal only.
  std::vector<StructureCorner> corners;
};

/// {Cu, CNT fill} x {BCB, SiO2 liner} material corners around `nominal`
/// (arXiv:1601.04107 motivates CNT fill; the paper's Appendix A.2 the SiO2
/// liner).
std::vector<StructureCorner> material_corners(
    const tsvlib::TsvStructure& nominal);

/// +/- radius and liner-thickness process corners around `nominal`.
std::vector<StructureCorner> geometry_corners(
    const tsvlib::TsvStructure& nominal, double radius_delta,
    double liner_delta);

/// One realized sample: the jittered subset (ids ascending, centers
/// parallel) and the scalar field multiplier.
struct SampleRealization {
  std::size_t sample_index = 0;
  std::vector<std::uint32_t> jittered_ids;
  std::vector<geo::Point> jittered_centers;
  double field_scale = 1.0;
};

class VariationSampler {
 public:
  /// The nominal placement must satisfy min_pitch > 2 R'; jitter
  /// displacements are clamped to 0.45 * (min_pitch - 2 R') so every
  /// realization keeps all pitches above the TSV diameter (no rejection
  /// sampling, hence no cross-sample coupling).
  VariationSampler(const tsvlib::Placement& nominal, const VariationSpec& spec);

  const VariationSpec& spec() const { return spec_; }
  const std::vector<geo::Point>& nominal_centers() const { return nominal_; }
  /// The displacement clamp radius (um).
  double max_displacement() const { return max_disp_; }

  /// Pure function of (spec().seed, sample_index).
  SampleRealization realize(std::size_t sample_index) const;

  /// Materializes the full center list of a realization (nominal centers
  /// with the jittered subset replaced) — what a from-scratch evaluation of
  /// the sample would see.
  std::vector<geo::Point> realized_centers(const SampleRealization& r) const;

 private:
  std::vector<geo::Point> nominal_;
  VariationSpec spec_;
  double max_disp_ = 0.0;
};

namespace rng {

/// SplitMix64 output function — the counter-based generator under the
/// sampler. Stateless: callers derive streams by keying the counter.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Keyed counter draw: uniform 64-bit for (seed, sample, purpose, lane).
inline std::uint64_t draw(std::uint64_t seed, std::uint64_t sample,
                          std::uint64_t purpose, std::uint64_t lane) {
  std::uint64_t x = splitmix64(seed);
  x = splitmix64(x ^ splitmix64(sample));
  x = splitmix64(x ^ (purpose * 0x2545f4914f6cdd1dULL));
  return splitmix64(x ^ lane);
}

/// Uniform double in [0, 1) from 53 bits.
inline double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace rng

}  // namespace tsv::stats
