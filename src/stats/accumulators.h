#pragma once
// Streaming statistic engines for the variation layer, in the spirit of
// gnumeric's analysis-tools: one small reusable engine per statistic
// (descriptive moments, quantile sketch, exceedance counting, bivariate
// OLS/correlation) behind a common streaming contract instead of ad-hoc
// loops scattered through the sampler.
//
// The shared contract every engine follows:
//   * construction fixes the shape (number of points, bins, thresholds) —
//     add() never allocates, so a Monte Carlo sweep streams samples in a
//     single pass with O(points) memory regardless of sample count;
//   * add() is O(1) per value and must be called for a given point by at
//     most one thread (the variation engine parallelizes over *points*, so
//     each point's accumulator sees its samples in sample order — the
//     per-point result is bitwise independent of the thread count);
//   * cross-point reductions are either order-independent (integer counts,
//     max) or merged in fixed chunk order, keeping every derived statistic
//     deterministic at any thread count.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace tsv::stats {

/// Scalar count/mean/variance/min/max in one pass (Welford's update), with
/// a numerically stable pairwise merge (Chan et al.) so per-chunk partials
/// combine in fixed order.
class DescriptiveAccumulator {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Folds `o` into this accumulator, as if every value added to `o` had
  /// been added here after this one's values.
  void merge(const DescriptiveAccumulator& o);

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (divides by n); 0 for n < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Per-point Welford moments over a fixed point set, stored as flat arrays
/// (SoA) so the accumulation pass vectorizes.
class DescriptiveField {
 public:
  explicit DescriptiveField(std::size_t n_points);

  std::size_t size() const { return count_.size(); }

  void add(std::size_t point, double x) {
    const double n = static_cast<double>(++count_[point]);
    const double d = x - mean_[point];
    mean_[point] += d / n;
    m2_[point] += d * (x - mean_[point]);
    if (x < min_[point]) min_[point] = x;
    if (x > max_[point]) max_[point] = x;
  }

  std::uint32_t count(std::size_t point) const { return count_[point]; }
  double mean(std::size_t point) const { return mean_[point]; }
  double variance(std::size_t point) const;
  double stddev(std::size_t point) const;
  double min(std::size_t point) const { return min_[point]; }
  double max(std::size_t point) const { return max_[point]; }

  const std::vector<double>& means() const { return mean_; }
  /// Materializes the per-point population standard deviation.
  std::vector<double> stddevs() const;

 private:
  std::vector<std::uint32_t> count_;
  std::vector<double> mean_;
  std::vector<double> m2_;
  std::vector<double> min_;
  std::vector<double> max_;
};

/// Per-point quantile sketch over a fixed log-spaced bin grid. Integer bin
/// counts make the sketch order-independent and exactly mergeable, so
/// quantiles are bitwise deterministic at any thread count — unlike P²-style
/// streaming estimators, whose state depends on arrival order. Resolution is
/// the bin width: with the default 48 bins over [1e-2, 1e4] MPa a quantile
/// is exact to within ~33% of its value (one bin), which the variation
/// reports' log-scale maps absorb; moments use DescriptiveField instead.
class QuantileField {
 public:
  QuantileField(std::size_t n_points, double lo, double hi, std::size_t bins);

  std::size_t size() const { return n_points_; }
  std::size_t bins() const { return bins_; }

  void add(std::size_t point, double x) {
    ++counts_[point * bins_ + bin_of(x)];
    ++totals_[point];
  }

  /// Quantile q in [0, 1] for one point: locates the bin whose cumulative
  /// count crosses ceil(q * n) and interpolates geometrically inside it.
  /// Returns 0 when the point has no samples.
  double quantile(std::size_t point, double q) const;

  /// Materializes quantile(point, q) for every point.
  std::vector<double> quantiles(double q) const;

 private:
  std::size_t bin_of(double x) const;

  std::size_t n_points_ = 0;
  std::size_t bins_ = 0;
  double log_lo_ = 0.0;
  double inv_log_step_ = 0.0;
  std::vector<double> edges_;  ///< bins_ + 1 log-spaced bin edges
  std::vector<std::uint32_t> counts_;  ///< point-major [point][bin]
  std::vector<std::uint32_t> totals_;
};

/// Per-point, per-threshold exceedance counting: after n samples,
/// probability(point, t) estimates P(value > threshold[t]). Integer counts,
/// so exact and order-independent.
class ExceedanceField {
 public:
  ExceedanceField(std::size_t n_points, std::vector<double> thresholds);

  std::size_t size() const { return n_points_; }
  const std::vector<double>& thresholds() const { return thresholds_; }

  void add(std::size_t point, double x) {
    const std::size_t base = point * thresholds_.size();
    for (std::size_t t = 0; t < thresholds_.size(); ++t)
      counts_[base + t] += x > thresholds_[t] ? 1u : 0u;
    ++totals_[point];
  }

  std::uint32_t count(std::size_t point, std::size_t t) const {
    return counts_[point * thresholds_.size() + t];
  }
  double probability(std::size_t point, std::size_t t) const;

  /// Materializes probability(point, t) for every point.
  std::vector<double> probabilities(std::size_t t) const;

 private:
  std::size_t n_points_ = 0;
  std::vector<double> thresholds_;
  std::vector<std::uint32_t> counts_;  ///< point-major [point][threshold]
  std::vector<std::uint32_t> totals_;
};

/// Ordinary-least-squares fit y = slope * x + intercept.
struct OlsFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r = 0.0;   ///< Pearson correlation
  double r2 = 0.0;  ///< coefficient of determination
  std::uint64_t n = 0;
  bool ok = false;  ///< false when n < 2 or x is degenerate
};

/// Streaming bivariate moments (centered co-moments, Welford-style) serving
/// both the OLS regression and the Pearson correlation the pitch-vs-stress
/// report needs — one pass, no stored samples.
class BivariateAccumulator {
 public:
  void add(double x, double y) {
    ++n_;
    const double inv_n = 1.0 / static_cast<double>(n_);
    const double dx = x - mean_x_;
    const double dy = y - mean_y_;
    mean_x_ += dx * inv_n;
    mean_y_ += dy * inv_n;
    m2x_ += dx * (x - mean_x_);
    m2y_ += dy * (y - mean_y_);
    cxy_ += dx * (y - mean_y_);
  }

  void merge(const BivariateAccumulator& o);

  std::uint64_t count() const { return n_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }

  OlsFit ols() const;
  /// Pearson r; 0 when either variable is degenerate.
  double correlation() const;

 private:
  std::uint64_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2x_ = 0.0;
  double m2y_ = 0.0;
  double cxy_ = 0.0;
};

}  // namespace tsv::stats
