#include "stats/variation_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <limits>

#include "analytic/interaction.h"
#include "analytic/mode_solver.h"
#include "analytic/single_tsv.h"
#include "analytic/surrogate.h"
#include "core/stress_table.h"
#include "geometry/grid_index.h"
#include "numeric/check.h"
#include "numeric/parallel.h"

namespace tsv::stats {

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Calls f(point_index) for every grid point within `radius` of `c`
/// (rectangular window refined by the disc test).
template <typename F>
void for_window_points(const geo::SampleGrid& grid, const geo::Point& c,
                       double radius, F&& f) {
  const geo::Box& box = grid.box();
  const double r2 = radius * radius;
  const auto clamp_idx = [](double v, std::size_t n) {
    if (v < 0.0) return std::size_t{0};
    const auto i = static_cast<std::size_t>(v);
    return std::min(i, n - 1);
  };
  const std::size_t ix0 =
      clamp_idx(grid.dx() > 0.0 ? (c.x - radius - box.lo.x) / grid.dx() : 0.0,
                grid.nx());
  const std::size_t ix1 = clamp_idx(
      grid.dx() > 0.0 ? (c.x + radius - box.lo.x) / grid.dx() + 1.0 : 0.0,
      grid.nx());
  const std::size_t iy0 =
      clamp_idx(grid.dy() > 0.0 ? (c.y - radius - box.lo.y) / grid.dy() : 0.0,
                grid.ny());
  const std::size_t iy1 = clamp_idx(
      grid.dy() > 0.0 ? (c.y + radius - box.lo.y) / grid.dy() + 1.0 : 0.0,
      grid.ny());
  for (std::size_t iy = iy0; iy <= iy1; ++iy)
    for (std::size_t ix = ix0; ix <= ix1; ++ix) {
      const geo::Point p = grid.point(ix, iy);
      const double dx = p.x - c.x;
      const double dy = p.y - c.y;
      if (dx * dx + dy * dy <= r2) f(iy * grid.nx() + ix);
    }
}

/// The edit batch turning the previous realization into the next one:
/// previously jittered TSVs not jittered again return to nominal, the new
/// subset moves to its jittered centers. Merged over the two sorted id
/// lists so the batch has one canonical order.
core::Delta delta_between(const std::vector<geo::Point>& nominal,
                          const SampleRealization& prev,
                          const SampleRealization& next) {
  core::Delta delta;
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < prev.jittered_ids.size() || b < next.jittered_ids.size()) {
    const bool take_prev =
        b >= next.jittered_ids.size() ||
        (a < prev.jittered_ids.size() &&
         prev.jittered_ids[a] < next.jittered_ids[b]);
    if (take_prev) {
      const std::uint32_t id = prev.jittered_ids[a++];
      delta.push_back(core::EcoOp::move(id, nominal[id]));
    } else {
      const std::uint32_t id = next.jittered_ids[b];
      if (a < prev.jittered_ids.size() && prev.jittered_ids[a] == id) ++a;
      delta.push_back(core::EcoOp::move(id, next.jittered_centers[b]));
      ++b;
    }
  }
  return delta;
}

}  // namespace

VariationEngine::VariationEngine(const tsvlib::Placement& nominal,
                                 const geo::SampleGrid& grid,
                                 const VariationSpec& spec,
                                 const VariationOptions& options)
    : nominal_(nominal),
      grid_(grid),
      spec_(spec),
      options_(options),
      sampler_(nominal, spec) {
  TSV_REQUIRE(!nominal_.empty(), "variation needs a non-empty placement");
  TSV_REQUIRE(!options_.quantiles.empty() && !options_.thresholds.empty(),
              "variation needs >= 1 quantile and >= 1 threshold");
  corners_ = spec_.corners;
  if (corners_.empty()) corners_.push_back({"nominal", nominal_.structure()});

  for (const StructureCorner& corner : corners_) {
    corner.structure.validate();
    // Every realization must stay legal in every corner: the tightest two
    // jittered TSVs approach each other by at most 2 * max_displacement.
    TSV_REQUIRE(nominal_.size() < 2 ||
                    nominal_.min_pitch() - 2.0 * sampler_.max_displacement() >
                        2.0 * corner.structure.outer_radius(),
                "corner outer radius leaves no jitter slack");

    const auto t0 = std::chrono::steady_clock::now();
    const tsvlib::Placement placement(corner.structure, nominal_.centers());
    const ana::SingleTsvModel single(corner.structure, options_.load);
    const auto table = std::make_shared<const core::RadialStressTable>(
        core::RadialStressTable::from_analytic(single, 30.0, 4096));
    std::shared_ptr<const ana::InteractiveStressModel> model;
    if (options_.engine.enable_interactive) {
      model = std::make_shared<const ana::InteractiveStressModel>(
          std::make_shared<const ana::InclusionResponse>(corner.structure),
          single.k_hat());
      if (options_.fit_surrogate)
        model->attach_surrogate(std::make_shared<const ana::PairSurrogate>(
            ana::PairSurrogate::fit(*model)));
    }
    core::IncrementalOptions opt = options_.engine;
    opt.num_threads = 1;  // serial build => bitwise-reproducible fields
    opt.stage1.num_threads = 1;
    opt.stage2.num_threads = 1;
    engines_.push_back(std::make_unique<core::IncrementalEngine>(
        placement, grid_, table, model, opt));
    build_seconds_.push_back(seconds_since(t0));
  }
}

std::vector<CornerResult> VariationEngine::run() {
  std::vector<CornerResult> results(corners_.size());
  if (options_.parallel_corners && corners_.size() > 1) {
    // Corners are fully independent: each run_corner touches only its own
    // engine and local accumulators, and the sampler is a pure function of
    // (seed, sample index). Inside a worker the per-point accumulation's
    // nested parallel_for runs serially, so result slot c carries the same
    // bits as a sequential sweep.
    num::parallel_for(corners_.size(), /*num_threads=*/0,
                      [&](std::size_t c) { results[c] = run_corner(c); });
  } else {
    for (std::size_t c = 0; c < corners_.size(); ++c)
      results[c] = run_corner(c);
  }
  return results;
}

CornerResult VariationEngine::run_corner(std::size_t corner_index) {
  core::IncrementalEngine& engine = *engines_[corner_index];
  const std::size_t n_points = grid_.size();
  const std::vector<geo::Point>& nominal = sampler_.nominal_centers();

  CornerResult res;
  res.name = corners_[corner_index].name;
  res.samples = spec_.samples;
  res.build_seconds = build_seconds_[corner_index];

  // The KOZ threshold rides along in the exceedance engine; only the
  // user-requested thresholds are exported.
  std::vector<double> thresholds = options_.thresholds;
  auto koz_it =
      std::find(thresholds.begin(), thresholds.end(), options_.koz_limit);
  if (koz_it == thresholds.end()) {
    thresholds.push_back(options_.koz_limit);
    koz_it = std::prev(thresholds.end());
  }
  const auto koz_threshold =
      static_cast<std::size_t>(koz_it - thresholds.begin());

  DescriptiveField desc(n_points);
  QuantileField quant(n_points, options_.histogram_lo, options_.histogram_hi,
                      options_.histogram_bins);
  ExceedanceField exceed(n_points, thresholds);
  std::vector<double> vm(n_points, 0.0);

  const double pitch_cutoff = options_.engine.stage2.pair_pitch_cutoff;
  SampleRealization prev;  // sample 0 edits away from the nominal placement

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < spec_.samples; ++s) {
    const SampleRealization r = sampler_.realize(s);
    const core::Delta delta = delta_between(nominal, prev, r);
    if (!delta.empty()) {
      const core::ApplyStats st = engine.apply(delta);
      res.point_updates +=
          st.stage1_point_updates + st.stage2_point_updates;
    }

    // Per-point accumulation: each point is owned by exactly one chunk and
    // sees its samples in sample order, so every per-point statistic is
    // bitwise independent of the thread count.
    const std::vector<num::SymTensor2>& s1 = engine.stage1_field();
    const std::vector<num::SymTensor2>& s2 = engine.stage2_field();
    const double scale = r.field_scale;
    num::parallel_for_chunks(
        n_points, options_.num_threads,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t i = begin; i < end; ++i) {
            num::SymTensor2 total = s1[i];
            total += s2[i];
            const double v =
                scale * core::extract(core::StressMeasure::kVonMises, total);
            vm[i] = v;
            desc.add(i, v);
            quant.add(i, v);
            exceed.add(i, v);
          }
        });

    // max is associative and exact, so the chunked reduction is bitwise
    // identical at any chunk count.
    const double peak = num::parallel_reduce<double>(
        n_points, options_.num_threads,
        [] { return -std::numeric_limits<double>::infinity(); },
        [&](double& acc, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i)
            acc = std::max(acc, vm[i]);
        },
        [](double& total, const double& part) {
          total = std::max(total, part);
        });
    res.sample_peak.add(peak);

    // Pitch regression: per TSV, nearest-neighbor pitch in this sample's
    // realized placement vs the peak von Mises in the probe disc. Serial in
    // id order — the accumulator stream is one fixed sequence.
    const std::vector<geo::Point> centers = sampler_.realized_centers(r);
    const geo::GridIndex index(centers, grid_.box(), pitch_cutoff);
    std::vector<std::uint32_t> near;
    for (std::size_t id = 0; id < centers.size(); ++id) {
      index.query_radius(centers[id], pitch_cutoff, near);
      double pitch = std::numeric_limits<double>::infinity();
      for (const std::uint32_t other : near) {
        if (other == id) continue;
        const double dx = centers[other].x - centers[id].x;
        const double dy = centers[other].y - centers[id].y;
        pitch = std::min(pitch, std::hypot(dx, dy));
      }
      if (!std::isfinite(pitch)) continue;  // isolated TSV: no pitch
      double local_peak = 0.0;
      for_window_points(grid_, centers[id], options_.probe_radius,
                        [&](std::size_t i) {
                          local_peak = std::max(local_peak, vm[i]);
                        });
      res.pitch_stress.add(pitch, local_peak);
    }

    prev = r;
  }

  // Return the engine to the nominal placement so engine(corner) is reusable
  // (and a follow-up run() starts from the same state).
  {
    const core::Delta delta = delta_between(nominal, prev, SampleRealization{});
    if (!delta.empty()) engine.apply(delta);
  }
  res.sample_seconds = seconds_since(t0);

  res.mean = desc.means();
  res.sigma = desc.stddevs();
  res.quantile.reserve(options_.quantiles.size());
  for (const double q : options_.quantiles)
    res.quantile.push_back(quant.quantiles(q));
  res.exceedance.reserve(options_.thresholds.size());
  for (std::size_t t = 0; t < options_.thresholds.size(); ++t)
    res.exceedance.push_back(exceed.probabilities(t));
  res.pitch_fit = res.pitch_stress.ols();

  // Statistical KOZ: per nominal TSV, per ray, the largest radius where the
  // interpolated exceedance probability still reaches koz_alpha (floored at
  // the corner's outer radius, like core::compute_koz).
  const std::vector<double> p_exceed = exceed.probabilities(koz_threshold);
  const double r_outer = corners_[corner_index].structure.outer_radius();
  res.koz_contours.reserve(nominal.size());
  for (std::size_t t = 0; t < nominal.size(); ++t) {
    core::KozContour contour;
    contour.tsv_index = t;
    contour.radius.resize(options_.koz_rays, r_outer);
    for (std::size_t ray = 0; ray < options_.koz_rays; ++ray) {
      const double theta = 2.0 * 3.14159265358979323846 *
                           static_cast<double>(ray) /
                           static_cast<double>(options_.koz_rays);
      const double cs = std::cos(theta);
      const double sn = std::sin(theta);
      double keep_out = r_outer;
      for (double rad = r_outer; rad <= options_.koz_max_radius;
           rad += options_.koz_radial_step) {
        const geo::Point p{nominal[t].x + rad * cs, nominal[t].y + rad * sn};
        if (geo::bilinear(grid_, p_exceed, p) >= options_.koz_alpha) keep_out = rad;
      }
      contour.radius[ray] = keep_out;
    }
    contour.max_radius =
        *std::max_element(contour.radius.begin(), contour.radius.end());
    contour.min_radius =
        *std::min_element(contour.radius.begin(), contour.radius.end());
    // Polygonal area of the star-shaped contour (as in core/koz.cc).
    double area = 0.0;
    const double dtheta =
        2.0 * 3.14159265358979323846 / static_cast<double>(options_.koz_rays);
    for (std::size_t ray = 0; ray < options_.koz_rays; ++ray) {
      const double r1 = contour.radius[ray];
      const double r2 = contour.radius[(ray + 1) % options_.koz_rays];
      area += 0.5 * r1 * r2 * std::sin(dtheta);
    }
    contour.area = area;
    res.koz_contours.push_back(std::move(contour));
  }
  res.koz = core::summarize_koz(res.koz_contours);
  return res;
}

}  // namespace tsv::stats
