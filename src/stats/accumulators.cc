#include "stats/accumulators.h"

#include <algorithm>
#include <cmath>

#include "numeric/check.h"

namespace tsv::stats {

// ---------------------------------------------------------------- scalar

void DescriptiveAccumulator::merge(const DescriptiveAccumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double d = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += d * (nb / nt);
  m2_ += o.m2_ + d * d * (na * nb / nt);
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double DescriptiveAccumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double DescriptiveAccumulator::stddev() const { return std::sqrt(variance()); }

// ----------------------------------------------------------- point field

DescriptiveField::DescriptiveField(std::size_t n_points)
    : count_(n_points, 0),
      mean_(n_points, 0.0),
      m2_(n_points, 0.0),
      min_(n_points, std::numeric_limits<double>::infinity()),
      max_(n_points, -std::numeric_limits<double>::infinity()) {}

double DescriptiveField::variance(std::size_t point) const {
  if (count_[point] < 2) return 0.0;
  return m2_[point] / static_cast<double>(count_[point]);
}

double DescriptiveField::stddev(std::size_t point) const {
  return std::sqrt(variance(point));
}

std::vector<double> DescriptiveField::stddevs() const {
  std::vector<double> out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = stddev(i);
  return out;
}

// -------------------------------------------------------------- quantile

QuantileField::QuantileField(std::size_t n_points, double lo, double hi,
                             std::size_t bins)
    : n_points_(n_points), bins_(bins) {
  TSV_REQUIRE(bins >= 2, "QuantileField needs at least 2 bins");
  TSV_REQUIRE(lo > 0.0 && hi > lo, "QuantileField needs 0 < lo < hi");
  log_lo_ = std::log(lo);
  const double log_step = (std::log(hi) - log_lo_) / static_cast<double>(bins);
  inv_log_step_ = 1.0 / log_step;
  edges_.resize(bins + 1);
  for (std::size_t b = 0; b <= bins; ++b)
    edges_[b] = std::exp(log_lo_ + log_step * static_cast<double>(b));
  counts_.assign(n_points * bins, 0);
  totals_.assign(n_points, 0);
}

std::size_t QuantileField::bin_of(double x) const {
  if (!(x > edges_.front())) return 0;  // underflow (and NaN) -> first bin
  if (x >= edges_.back()) return bins_ - 1;
  const double b = (std::log(x) - log_lo_) * inv_log_step_;
  const auto bin = static_cast<std::size_t>(b);
  return bin >= bins_ ? bins_ - 1 : bin;
}

double QuantileField::quantile(std::size_t point, double q) const {
  const std::uint32_t total = totals_[point];
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [1, total]: the smallest value v such that at least
  // ceil(q * total) samples are <= v.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(total))));
  const std::uint32_t* row = counts_.data() + point * bins_;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < bins_; ++b) {
    const std::uint64_t next = cum + row[b];
    if (next >= rank) {
      // Geometric interpolation of the rank's position inside the bin.
      const double frac = row[b] == 0
                              ? 0.0
                              : (static_cast<double>(rank - cum)) /
                                    static_cast<double>(row[b]);
      const double lo = edges_[b];
      const double hi = edges_[b + 1];
      return lo * std::pow(hi / lo, frac);
    }
    cum = next;
  }
  return edges_.back();
}

std::vector<double> QuantileField::quantiles(double q) const {
  std::vector<double> out(n_points_);
  for (std::size_t i = 0; i < n_points_; ++i) out[i] = quantile(i, q);
  return out;
}

// ------------------------------------------------------------ exceedance

ExceedanceField::ExceedanceField(std::size_t n_points,
                                 std::vector<double> thresholds)
    : n_points_(n_points), thresholds_(std::move(thresholds)) {
  TSV_REQUIRE(!thresholds_.empty(), "ExceedanceField needs >= 1 threshold");
  counts_.assign(n_points_ * thresholds_.size(), 0);
  totals_.assign(n_points_, 0);
}

double ExceedanceField::probability(std::size_t point, std::size_t t) const {
  const std::uint32_t total = totals_[point];
  if (total == 0) return 0.0;
  return static_cast<double>(count(point, t)) / static_cast<double>(total);
}

std::vector<double> ExceedanceField::probabilities(std::size_t t) const {
  std::vector<double> out(n_points_);
  for (std::size_t i = 0; i < n_points_; ++i) out[i] = probability(i, t);
  return out;
}

// ------------------------------------------------------------- bivariate

void BivariateAccumulator::merge(const BivariateAccumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double nt = na + nb;
  const double dx = o.mean_x_ - mean_x_;
  const double dy = o.mean_y_ - mean_y_;
  mean_x_ += dx * (nb / nt);
  mean_y_ += dy * (nb / nt);
  m2x_ += o.m2x_ + dx * dx * (na * nb / nt);
  m2y_ += o.m2y_ + dy * dy * (na * nb / nt);
  cxy_ += o.cxy_ + dx * dy * (na * nb / nt);
  n_ += o.n_;
}

OlsFit BivariateAccumulator::ols() const {
  OlsFit fit;
  fit.n = n_;
  if (n_ < 2 || m2x_ <= 0.0) return fit;
  fit.slope = cxy_ / m2x_;
  fit.intercept = mean_y_ - fit.slope * mean_x_;
  if (m2y_ > 0.0) {
    fit.r = cxy_ / std::sqrt(m2x_ * m2y_);
    fit.r2 = fit.r * fit.r;
  }
  fit.ok = true;
  return fit;
}

double BivariateAccumulator::correlation() const {
  if (n_ < 2 || m2x_ <= 0.0 || m2y_ <= 0.0) return 0.0;
  return cxy_ / std::sqrt(m2x_ * m2y_);
}

}  // namespace tsv::stats
