#pragma once
// The library's error taxonomy. Every failure a caller can meaningfully
// react to is thrown as a tsv::Error subclass carrying a category, so a
// long-running service (or the CLI) can map failures to recovery policies
// without parsing message strings:
//
//   kInvalidInput    — the caller handed us something malformed (bad
//                      placement file, NaN coordinate, wrong path). Fix the
//                      input; retrying cannot help.
//   kNumericFailure  — every numerical backend failed (CG diverged AND the
//                      direct fallback could not produce an acceptable
//                      residual). Usually a modeling problem.
//   kIoCorruption    — on-disk state is damaged (truncated snapshot, bad
//                      checksum, failed write). The artifact must be
//                      regenerated; inputs and code are fine.
//   kResourceLimit   — a request exceeds what the configuration can satisfy
//                      (e.g. a full-chip population that cannot be placed
//                      under the min-pitch constraint). Relax the request.
//
// All subclasses derive from std::runtime_error, so pre-taxonomy call sites
// that catch std::runtime_error keep working. Cheap argument validation on
// public APIs stays TSV_REQUIRE (std::invalid_argument, see
// numeric/check.h); the taxonomy covers failures of *data*, not of call
// contracts.
//
// The CLI maps categories to distinct process exit codes (exit_code());
// tests and scripts assert on those instead of message text.

#include <stdexcept>
#include <string>

namespace tsv {

enum class ErrorCategory {
  kInvalidInput,
  kNumericFailure,
  kIoCorruption,
  kResourceLimit,
};

inline const char* to_string(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kInvalidInput:
      return "invalid-input";
    case ErrorCategory::kNumericFailure:
      return "numeric-failure";
    case ErrorCategory::kIoCorruption:
      return "io-corruption";
    case ErrorCategory::kResourceLimit:
      return "resource-limit";
  }
  return "unknown";
}

/// Process exit code the CLI uses for each category (0 = success, 1 =
/// uncategorized std::exception).
inline int exit_code(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kInvalidInput:
      return 2;
    case ErrorCategory::kNumericFailure:
      return 3;
    case ErrorCategory::kIoCorruption:
      return 4;
    case ErrorCategory::kResourceLimit:
      return 5;
  }
  return 1;
}

class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, const std::string& what)
      : std::runtime_error(what), category_(category) {}

  ErrorCategory category() const { return category_; }

 private:
  ErrorCategory category_;
};

class InvalidInputError : public Error {
 public:
  explicit InvalidInputError(const std::string& what)
      : Error(ErrorCategory::kInvalidInput, what) {}
};

class NumericFailureError : public Error {
 public:
  explicit NumericFailureError(const std::string& what)
      : Error(ErrorCategory::kNumericFailure, what) {}
};

class IoCorruptionError : public Error {
 public:
  explicit IoCorruptionError(const std::string& what)
      : Error(ErrorCategory::kIoCorruption, what) {}
};

class ResourceLimitError : public Error {
 public:
  explicit ResourceLimitError(const std::string& what)
      : Error(ErrorCategory::kResourceLimit, what) {}
};

}  // namespace tsv
