#pragma once
// Line scans of a stress field (Fig. 3 of the paper: sigma_xx along the line
// through the centers of two TSVs).

#include <functional>
#include <vector>

#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::core {

/// A sampled line: positions (arc length from `from`) and points.
struct LineScan {
  std::vector<double> arc;
  std::vector<geo::Point> points;
};

/// `samples` points from `from` to `to` inclusive.
LineScan make_line_scan(const geo::Point& from, const geo::Point& to,
                        std::size_t samples);

/// Evaluates a stress functor at the scan points.
std::vector<num::SymTensor2> sample_line(
    const LineScan& scan,
    const std::function<num::SymTensor2(const geo::Point&)>& field);

}  // namespace tsv::core
