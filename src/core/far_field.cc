#include "core/far_field.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "analytic/surrogate.h"
#include "core/interactive_stage.h"
#include "numeric/parallel.h"

namespace tsv::core {
namespace {

geo::Box index_bounds(const std::vector<geo::Point>& points) {
  return points.empty() ? geo::Box{{0.0, 0.0}, {1.0, 1.0}}
                        : geo::Box::bounding(points);
}

std::int64_t cell_coord(double x, double cell) {
  return static_cast<std::int64_t>(std::floor(x / cell));
}

std::int64_t pack_key(std::int64_t ci, std::int64_t cj) {
  return (static_cast<std::int64_t>(static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(ci)))
          << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(cj));
}

std::int64_t unpack_ci(std::int64_t key) {
  return static_cast<std::int32_t>(
      static_cast<std::uint64_t>(key) >> 32);
}

std::int64_t unpack_cj(std::int64_t key) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(key) & 0xffffffffull));
}

/// splitmix64-style generator seeded by the cluster key: the probe points
/// are deterministic per cell, independent of iteration order or platform
/// RNG state.
struct ProbeRng {
  std::uint64_t state;
  explicit ProbeRng(std::int64_t key)
      : state(static_cast<std::uint64_t>(key) * 0x9e3779b97f4a7c15ull +
              0xda3e39cb94b95bdbull) {}
  double next() {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }
};

double max_abs_component(const num::SymTensor2& t) {
  return std::max({std::abs(t.s11), std::abs(t.s22), std::abs(t.s12)});
}

}  // namespace

std::uint64_t fingerprint_centers(const std::vector<geo::Point>& centers) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (const geo::Point& p : centers) {
    mix(p.x);
    mix(p.y);
  }
  return h;
}

std::shared_ptr<FarFieldAggregate> FarFieldAggregate::build(
    const tsvlib::Placement& placement,
    const ana::InteractiveStressModel& model, const InteractiveOptions& stage2,
    const FarFieldOptions& options) {
  TSV_REQUIRE(options.cell_size > 0.0 && options.tile_spacing > 0.0,
              "far field: cell size and tile spacing must be positive");
  TSV_REQUIRE(options.blend_r0 >= 0.0 && options.blend_r1 > options.blend_r0,
              "far field: blend window must satisfy 0 <= r0 < r1");
  TSV_REQUIRE(options.edge_width > 0.0,
              "far field: edge_width must be positive");
  TSV_REQUIRE(options.blend_r1 <= stage2.influence_radius - options.edge_width,
              "far field: blend_r1 must not reach the edge ring "
              "(influence_radius - edge_width)");
  TSV_REQUIRE(options.cert_margin >= 1.0,
              "far field: certificate margin must be >= 1");

  std::shared_ptr<FarFieldAggregate> agg(new FarFieldAggregate());
  agg->options_ = options;
  agg->influence_radius_ = stage2.influence_radius;
  agg->pair_pitch_cutoff_ = stage2.pair_pitch_cutoff;
  agg->reach_ = static_cast<std::int64_t>(
      std::ceil(stage2.influence_radius / options.cell_size));
  const std::vector<geo::Point>& centers = placement.centers();
  agg->fingerprint_ = fingerprint_centers(centers);
  if (centers.size() < 2) return agg;

  const geo::GridIndex tsv_index(
      centers, index_bounds(centers),
      std::max(stage2.pair_pitch_cutoff / 2.0, 1.0));

  // Cell -> victims, in deterministic key order (std::map) with victims in
  // ascending index order (the append order below).
  std::map<std::int64_t, std::vector<std::uint32_t>> cell_victims;
  for (std::uint32_t v = 0; v < centers.size(); ++v)
    cell_victims[agg->cell_key(centers[v])].push_back(v);

  std::int64_t ci_lo = 0, ci_hi = 0, cj_lo = 0, cj_hi = 0;
  bool first = true;
  for (const auto& [key, victims] : cell_victims) {
    const std::int64_t ci = unpack_ci(key);
    const std::int64_t cj = unpack_cj(key);
    if (first) {
      ci_lo = ci_hi = ci;
      cj_lo = cj_hi = cj;
      first = false;
    } else {
      ci_lo = std::min(ci_lo, ci);
      ci_hi = std::max(ci_hi, ci);
      cj_lo = std::min(cj_lo, cj);
      cj_hi = std::max(cj_hi, cj);
    }
  }
  agg->ci_min_ = ci_lo;
  agg->cj_min_ = cj_lo;
  agg->ncx_ = ci_hi - ci_lo + 1;
  agg->ncy_ = cj_hi - cj_lo + 1;
  agg->grid_slots_.assign(
      static_cast<std::size_t>(agg->ncx_ * agg->ncy_), -1);

  std::vector<const std::vector<std::uint32_t>*> victims_of;
  victims_of.reserve(cell_victims.size());
  agg->clusters_.reserve(cell_victims.size());
  for (const auto& [key, victims] : cell_victims) {
    const std::int32_t slot = static_cast<std::int32_t>(agg->clusters_.size());
    agg->clusters_.push_back(agg->make_cluster(key));
    agg->index_insert(key, slot);
    victims_of.push_back(&victims);
  }

  // Cluster folds are independent, each internally serial over a canonical
  // pair order, so the tiles are bitwise identical for any thread count.
  std::vector<std::array<std::size_t, 3>> dispatch(agg->clusters_.size(),
                                                   {0, 0, 0});
  num::parallel_for(agg->clusters_.size(), stage2.num_threads,
                    [&](std::size_t s) {
                      agg->fold_cluster(agg->clusters_[s], *victims_of[s],
                                        centers, tsv_index, model, stage2,
                                        dispatch[s][0], dispatch[s][1],
                                        dispatch[s][2]);
                    });

  FarFieldBuildStats& st = agg->stats_;
  st.clusters = agg->clusters_.size();
  for (std::size_t s = 0; s < agg->clusters_.size(); ++s) {
    st.pairs += agg->clusters_[s].pairs;
    st.tile_samples += agg->clusters_[s].s11.size();
    st.surrogate_pairs += dispatch[s][0];
    st.table_pairs += dispatch[s][1];
    st.series_pairs += dispatch[s][2];
  }

  agg->certify(placement, tsv_index, model, stage2);
  return agg;
}

std::size_t FarFieldAggregate::tile_bytes() const {
  std::size_t samples = 0;
  for (const Cluster& c : clusters_) samples += c.s11.size();
  return samples * 3 * sizeof(float);
}

bool FarFieldAggregate::compatible_with(const InteractiveOptions& stage2) const {
  return influence_radius_ == stage2.influence_radius &&
         pair_pitch_cutoff_ == stage2.pair_pitch_cutoff;
}

std::int64_t FarFieldAggregate::cell_key(const geo::Point& c) const {
  return pack_key(cell_coord(c.x, options_.cell_size),
                  cell_coord(c.y, options_.cell_size));
}

geo::Box FarFieldAggregate::cell_support(std::int64_t key) const {
  const double L = options_.cell_size;
  const double x0 = static_cast<double>(unpack_ci(key)) * L;
  const double y0 = static_cast<double>(unpack_cj(key)) * L;
  return geo::Box{{x0, y0}, {x0 + L, y0 + L}}.expanded(influence_radius_);
}

FarFieldAggregate::Cluster FarFieldAggregate::make_cluster(
    std::int64_t key) const {
  Cluster c;
  c.key = key;
  c.support = cell_support(key);
  c.nx = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(c.support.width() / options_.tile_spacing)) +
             1);
  c.ny = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::ceil(c.support.height() / options_.tile_spacing)) +
             1);
  c.hx = c.support.width() / static_cast<double>(c.nx - 1);
  c.hy = c.support.height() / static_cast<double>(c.ny - 1);
  return c;
}

std::int32_t FarFieldAggregate::slot_of(std::int64_t ci, std::int64_t cj) const {
  if (ncx_ == 0 || ci < ci_min_ || ci >= ci_min_ + ncx_ || cj < cj_min_ ||
      cj >= cj_min_ + ncy_)
    return -1;
  return grid_slots_[static_cast<std::size_t>((cj - cj_min_) * ncx_ +
                                              (ci - ci_min_))];
}

void FarFieldAggregate::index_insert(std::int64_t key, std::int32_t slot) {
  const std::int64_t ci = unpack_ci(key);
  const std::int64_t cj = unpack_cj(key);
  grid_slots_[static_cast<std::size_t>((cj - cj_min_) * ncx_ +
                                       (ci - ci_min_))] = slot;
}

std::int32_t FarFieldAggregate::ensure_slot(std::int64_t key) {
  const std::int64_t ci = unpack_ci(key);
  const std::int64_t cj = unpack_cj(key);
  if (slot_of(ci, cj) < 0 &&
      (ncx_ == 0 || ci < ci_min_ || ci >= ci_min_ + ncx_ || cj < cj_min_ ||
       cj >= cj_min_ + ncy_)) {
    // Grow the dense cell window to cover the new cell (rare: an edit
    // reached a virgin border cell) and re-index the existing clusters.
    const std::int64_t nci_min = ncx_ == 0 ? ci : std::min(ci_min_, ci);
    const std::int64_t nci_max =
        ncx_ == 0 ? ci : std::max(ci_min_ + ncx_ - 1, ci);
    const std::int64_t ncj_min = ncy_ == 0 ? cj : std::min(cj_min_, cj);
    const std::int64_t ncj_max =
        ncy_ == 0 ? cj : std::max(cj_min_ + ncy_ - 1, cj);
    ci_min_ = nci_min;
    cj_min_ = ncj_min;
    ncx_ = nci_max - nci_min + 1;
    ncy_ = ncj_max - ncj_min + 1;
    grid_slots_.assign(static_cast<std::size_t>(ncx_ * ncy_), -1);
    for (std::size_t s = 0; s < clusters_.size(); ++s)
      index_insert(clusters_[s].key, static_cast<std::int32_t>(s));
  }
  std::int32_t slot = slot_of(ci, cj);
  if (slot < 0) {
    slot = static_cast<std::int32_t>(clusters_.size());
    clusters_.push_back(make_cluster(key));
    index_insert(key, slot);
  }
  return slot;
}

void FarFieldAggregate::fold_cluster(
    Cluster& c, const std::vector<std::uint32_t>& victims,
    const std::vector<geo::Point>& centers, const geo::GridIndex& tsv_index,
    const ana::InteractiveStressModel& model, const InteractiveOptions& stage2,
    std::size_t& surrogate_pairs, std::size_t& table_pairs,
    std::size_t& series_pairs) const {
  const std::size_t nsamp = c.nx * c.ny;
  c.pairs = 0;
  std::vector<num::SymTensor2> acc(nsamp);
  if (!victims.empty()) {
    const std::shared_ptr<const ana::PairSurrogate> surrogate =
        stage2.allow_surrogate
            ? model.surrogate_for(stage2.surrogate_tolerance,
                                  stage2.influence_radius)
            : nullptr;
    const double infl = influence_radius_;
    const double infl2 = infl * infl;
    std::vector<std::uint32_t> nearby;
    std::vector<std::size_t> sample_idx;
    std::vector<geo::Point> pts;
    std::vector<double> wts;
    std::vector<num::SymTensor2> contrib;
    for (const std::uint32_t v : victims) {
      const geo::Point& victim = centers[v];
      tsv_index.query_radius(victim, pair_pitch_cutoff_, nearby);
      bool has_partner = false;
      for (const std::uint32_t a : nearby) {
        if (a != v) {
          has_partner = true;
          break;
        }
      }
      if (!has_partner) continue;
      // Gather the annulus of tile samples this victim's far part reaches
      // (w > 0, inside the influence radius), once for all its partners.
      sample_idx.clear();
      pts.clear();
      wts.clear();
      const auto lo_of = [](double x, double lo, double h) {
        return std::max<std::int64_t>(
            0, static_cast<std::int64_t>(std::floor((x - lo) / h)) - 1);
      };
      const auto hi_of = [](double x, double lo, double h, std::size_t n) {
        return std::min<std::int64_t>(
            static_cast<std::int64_t>(n) - 1,
            static_cast<std::int64_t>(std::ceil((x - lo) / h)) + 1);
      };
      const std::int64_t ix0 =
          lo_of(victim.x - infl, c.support.lo.x, c.hx);
      const std::int64_t ix1 =
          hi_of(victim.x + infl, c.support.lo.x, c.hx, c.nx);
      const std::int64_t iy0 =
          lo_of(victim.y - infl, c.support.lo.y, c.hy);
      const std::int64_t iy1 =
          hi_of(victim.y + infl, c.support.lo.y, c.hy, c.ny);
      for (std::int64_t iy = iy0; iy <= iy1; ++iy) {
        for (std::int64_t ix = ix0; ix <= ix1; ++ix) {
          const geo::Point p{
              c.support.lo.x + static_cast<double>(ix) * c.hx,
              c.support.lo.y + static_cast<double>(iy) * c.hy};
          const double r2 = geo::distance_squared(p, victim);
          if (r2 > infl2) continue;
          const double w = tile_weight(std::sqrt(r2), options_, infl);
          if (w <= 0.0) continue;
          sample_idx.push_back(static_cast<std::size_t>(iy) * c.nx +
                               static_cast<std::size_t>(ix));
          pts.push_back(p);
          wts.push_back(w);
        }
      }
      for (const std::uint32_t a : nearby) {
        if (a == v) continue;
        ++c.pairs;
        if (pts.empty()) continue;
        const geo::Point& aggressor = centers[a];
        contrib.assign(pts.size(), num::SymTensor2{});
        if (surrogate != nullptr &&
            surrogate->try_accumulate(victim, aggressor, pts.data(),
                                      pts.size(), contrib.data())) {
          ++surrogate_pairs;
        } else if (stage2.use_lookup_table) {
          const ana::PairStressTable& table = model.table_for_pitch(
              geo::distance(victim, aggressor), stage2.influence_radius,
              stage2.pitch_quant_step);
          table.accumulate(victim, aggressor, pts.data(), pts.size(),
                           contrib.data());
          ++table_pairs;
        } else {
          const double pitch = geo::distance(victim, aggressor);
          const ana::RegionField& combined = model.combined_for_pitch(pitch);
          for (std::size_t j = 0; j < pts.size(); ++j) {
            contrib[j] = model.stress_with_combined(combined, victim,
                                                    aggressor, pitch, pts[j]);
          }
          ++series_pairs;
        }
        for (std::size_t j = 0; j < pts.size(); ++j)
          acc[sample_idx[j]] += wts[j] * contrib[j];
      }
    }
  }
  c.s11.resize(nsamp);
  c.s22.resize(nsamp);
  c.s12.resize(nsamp);
  for (std::size_t i = 0; i < nsamp; ++i) {
    c.s11[i] = static_cast<float>(acc[i].s11);
    c.s22[i] = static_cast<float>(acc[i].s22);
    c.s12[i] = static_cast<float>(acc[i].s12);
  }
}

namespace {

/// Catmull-Rom weights at parameter t in [0, 1] for nodes -1, 0, 1, 2.
inline void catmull_rom(double t, double w[4]) {
  const double t2 = t * t;
  const double t3 = t2 * t;
  w[0] = 0.5 * (-t3 + 2.0 * t2 - t);
  w[1] = 0.5 * (3.0 * t3 - 5.0 * t2 + 2.0);
  w[2] = 0.5 * (-3.0 * t3 + 4.0 * t2 + t);
  w[3] = 0.5 * (t3 - t2);
}

/// Bicubic (Catmull-Rom) tile read with edge-replicated nodes; the caller
/// guarantees support.contains(p). The tiles hold a C1 field (the blend and
/// edge tapers are smoothsteps and the support margin is zero), so the
/// read converges ~h^4 where bilinear stalls at the blend-ramp curvature
/// (~h^2 with a large constant) — that's what lets tile_spacing sit at the
/// simulation grid pitch instead of half of it.
num::SymTensor2 interp_tile(const std::vector<float>& s11,
                            const std::vector<float>& s22,
                            const std::vector<float>& s12, std::size_t nx,
                            std::size_t ny, const geo::Box& support, double hx,
                            double hy, const geo::Point& p) {
  const double fx = (p.x - support.lo.x) / hx;
  const double fy = (p.y - support.lo.y) / hy;
  const std::size_t ix = std::min(static_cast<std::size_t>(std::max(fx, 0.0)),
                                  nx - 2);
  const std::size_t iy = std::min(static_cast<std::size_t>(std::max(fy, 0.0)),
                                  ny - 2);
  const double tx = std::clamp(fx - static_cast<double>(ix), 0.0, 1.0);
  const double ty = std::clamp(fy - static_cast<double>(iy), 0.0, 1.0);
  double wx[4];
  double wy[4];
  catmull_rom(tx, wx);
  catmull_rom(ty, wy);
  // Edge-replicated node indices (the support margin rows/cols are zero,
  // so replication never invents field).
  const auto node = [](std::size_t i, long d, std::size_t n) {
    const long j = static_cast<long>(i) + d;
    return static_cast<std::size_t>(
        std::clamp(j, 0L, static_cast<long>(n) - 1));
  };
  std::size_t col[4];
  std::size_t row[4];
  for (long d = 0; d < 4; ++d) {
    col[d] = node(ix, d - 1, nx);
    row[d] = node(iy, d - 1, ny) * nx;
  }
  num::SymTensor2 out;
  for (int b = 0; b < 4; ++b) {
    double r11 = 0.0, r22 = 0.0, r12 = 0.0;
    const std::size_t base = row[b];
    for (int a = 0; a < 4; ++a) {
      const std::size_t idx = base + col[a];
      r11 += wx[a] * s11[idx];
      r22 += wx[a] * s22[idx];
      r12 += wx[a] * s12[idx];
    }
    out.s11 += wy[b] * r11;
    out.s22 += wy[b] * r22;
    out.s12 += wy[b] * r12;
  }
  return out;
}

}  // namespace

num::SymTensor2 FarFieldAggregate::eval(const geo::Point& p) const {
  num::SymTensor2 sum;
  if (clusters_.empty()) return sum;
  const std::int64_t ci = cell_coord(p.x, options_.cell_size);
  const std::int64_t cj = cell_coord(p.y, options_.cell_size);
  for (std::int64_t dj = -reach_; dj <= reach_; ++dj) {
    for (std::int64_t di = -reach_; di <= reach_; ++di) {
      const std::int32_t s = slot_of(ci + di, cj + dj);
      if (s < 0) continue;
      const Cluster& c = clusters_[static_cast<std::size_t>(s)];
      if (c.pairs == 0 || !c.support.contains(p)) continue;
      sum += interp_tile(c.s11, c.s22, c.s12, c.nx, c.ny, c.support, c.hx,
                         c.hy, p);
    }
  }
  return sum;
}

void FarFieldAggregate::accumulate(const geo::Point* points, std::size_t n,
                                   num::SymTensor2* out) const {
  for (std::size_t i = 0; i < n; ++i) out[i] += eval(points[i]);
}

num::SymTensor2 FarFieldAggregate::eval_cell(std::int64_t key,
                                             const geo::Point& p) const {
  const std::int32_t s = slot_of(unpack_ci(key), unpack_cj(key));
  if (s < 0) return {};
  const Cluster& c = clusters_[static_cast<std::size_t>(s)];
  if (c.pairs == 0 || !c.support.contains(p)) return {};
  return interp_tile(c.s11, c.s22, c.s12, c.nx, c.ny, c.support, c.hx, c.hy,
                     p);
}

void FarFieldAggregate::rebuild_cell(std::int64_t key,
                                     const std::vector<geo::Point>& centers,
                                     const geo::GridIndex& tsv_index,
                                     const ana::InteractiveStressModel& model,
                                     const InteractiveOptions& stage2) {
  TSV_REQUIRE(compatible_with(stage2),
              "far field: rebuild with mismatched Stage II cutoffs");
  const std::int32_t slot = ensure_slot(key);
  Cluster& c = clusters_[static_cast<std::size_t>(slot)];
  // The cell's victims, ascending index (query_radius returns index order):
  // the same canonical enumeration build() uses, so the re-folded tile is
  // bitwise what a fresh build over these centers would produce.
  std::vector<std::uint32_t> victims;
  const double L = options_.cell_size;
  const geo::Point cc{(static_cast<double>(unpack_ci(key)) + 0.5) * L,
                      (static_cast<double>(unpack_cj(key)) + 0.5) * L};
  std::vector<std::uint32_t> candidates;
  tsv_index.query_radius(cc, std::hypot(L, L) / 2.0 + 1.0, candidates);
  for (const std::uint32_t v : candidates)
    if (cell_key(centers[v]) == key) victims.push_back(v);

  if (victims.empty()) {
    // The cell's last victim moved away or was removed. A fresh build over
    // these centers would not create the cluster at all, so drop it —
    // cluster_count stays exactly what build() would report. Swap-and-pop
    // is safe: eval walks the positional grid index, never slot order.
    stats_.pairs -= c.pairs;
    const std::size_t dead = static_cast<std::size_t>(slot);
    const std::int64_t dead_key = clusters_[dead].key;
    const std::size_t last = clusters_.size() - 1;
    if (dead != last) {
      clusters_[dead] = std::move(clusters_[last]);
      index_insert(clusters_[dead].key, slot);
    }
    clusters_.pop_back();
    index_insert(dead_key, -1);
    ++stats_.clusters_rebuilt;
    return;
  }

  const std::size_t old_pairs = c.pairs;
  std::size_t sur = 0, tab = 0, ser = 0;
  fold_cluster(c, victims, centers, tsv_index, model, stage2, sur, tab, ser);
  stats_.pairs = stats_.pairs - old_pairs + c.pairs;
  stats_.surrogate_pairs += sur;
  stats_.table_pairs += tab;
  stats_.series_pairs += ser;
  ++stats_.clusters_rebuilt;
}

void FarFieldAggregate::refresh_fingerprint(
    const std::vector<geo::Point>& centers) {
  fingerprint_ = fingerprint_centers(centers);
}

void FarFieldAggregate::certify(const tsvlib::Placement& placement,
                                const geo::GridIndex& tsv_index,
                                const ana::InteractiveStressModel& model,
                                const InteractiveOptions& stage2) {
  certificate_ = FarFieldCertificate{};
  certificate_.cell_size = options_.cell_size;
  certificate_.tile_spacing = options_.tile_spacing;
  certificate_.blend_r0 = options_.blend_r0;
  certificate_.blend_r1 = options_.blend_r1;
  certificate_.edge_width = options_.edge_width;
  certificate_.cluster_count = clusters_.size();
  if (clusters_.empty()) return;

  // Even stride over the deterministic cluster order; skip pairless cells
  // (their tiles are exactly zero and there is nothing to measure).
  const std::size_t want = std::max<std::size_t>(1, options_.cert_max_clusters);
  const std::size_t stride = std::max<std::size_t>(1, clusters_.size() / want);
  const std::vector<geo::Point>& centers = placement.centers();
  std::vector<std::uint32_t> victims;
  std::vector<std::uint32_t> partners;
  double max_err = 0.0;
  double scale = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t probed = 0;
  for (std::size_t s = 0; s < clusters_.size() && probed < want; s += stride) {
    const Cluster& c = clusters_[s];
    if (c.pairs == 0) continue;
    ++probed;
    ProbeRng rng(c.key);
    for (std::size_t k = 0; k < options_.cert_samples_per_cluster; ++k) {
      const geo::Point p{c.support.lo.x + rng.next() * c.support.width(),
                         c.support.lo.y + rng.next() * c.support.height()};
      // Exact reference: tile-weighted series far field and total Stage II
      // field at p, enumerating the same ordered pairs the direct path
      // would.
      num::SymTensor2 far_exact;
      num::SymTensor2 total;
      tsv_index.query_radius(p, influence_radius_, victims);
      for (const std::uint32_t v : victims) {
        const double w = tile_weight(geo::distance(p, centers[v]), options_,
                                     influence_radius_);
        tsv_index.query_radius(centers[v], pair_pitch_cutoff_, partners);
        for (const std::uint32_t a : partners) {
          if (a == v) continue;
          const num::SymTensor2 exact =
              model.stress_at(centers[v], centers[a], p);
          total += exact;
          if (w > 0.0) far_exact += w * exact;
        }
      }
      const num::SymTensor2 approx = eval(p);
      max_err = std::max(max_err, max_abs_component(approx - far_exact));
      scale = std::max(scale, max_abs_component(total));
      ++samples;
    }
  }
  certificate_.probed_clusters = probed;
  certificate_.sample_count = samples;
  certificate_.field_scale = scale;
  certificate_.max_abs_error = max_err;
  certificate_.certified_rel_bound =
      scale > 0.0 ? options_.cert_margin * max_err / scale : 0.0;
  (void)stage2;
}

}  // namespace tsv::core
