#pragma once
// Stage II of Algorithm 1: interactive stress of nearby TSV pairs.
//
// A pair (victim, aggressor) contributes at a simulation point when
//   1) the pair pitch is below `pair_pitch_cutoff`, and
//   2) the victim lies within `influence_radius` of the point
// (both 25 um in the paper). Each unordered pair is processed in two rounds
// with the roles exchanged, exactly as in Sec. 4.

#include <memory>
#include <vector>

#include "analytic/interaction.h"
#include "geometry/grid_index.h"
#include "tsv/placement.h"

namespace tsv::core {

struct InteractiveOptions {
  double pair_pitch_cutoff = 25.0;  ///< um
  double influence_radius = 25.0;   ///< um, victim to simulation point
  /// Evaluate pairs through a cached polar look-up table instead of the
  /// potential series: ~10x cheaper per point at ~1% field accuracy.
  /// Recommended for full-chip runs; off by default so the accuracy
  /// benches exercise the exact series.
  bool use_lookup_table = false;
  /// Threads for the batched evaluate: 0 = hardware concurrency, 1 = serial
  /// (the default baseline path). Pairs are chunked statically; each chunk
  /// accumulates into a private output buffer and the partials merge in
  /// chunk index order, so results are deterministic for a fixed thread
  /// count but can differ from the serial sum by floating-point regrouping
  /// (<= ~1e-12 relative; the determinism tests pin this down).
  std::size_t num_threads = 1;
};

class InteractiveStage {
 public:
  InteractiveStage(const tsvlib::Placement& placement,
                   std::shared_ptr<const ana::InteractiveStressModel> model,
                   const InteractiveOptions& options = {});

  const InteractiveOptions& options() const { return options_; }

  /// Interactive stress at one point (enumerates nearby ordered pairs).
  num::SymTensor2 stress_at(const geo::Point& p) const;

  /// Interactive stress at many points. Organized pair-outer so that the
  /// combined response per pair is built once and reused for all affected
  /// points (`point_index` accelerates the point lookup). Pair-parallel
  /// over options().num_threads workers: `out[n] +=` across pairs would
  /// race, so each worker owns a private buffer (see InteractiveOptions).
  std::vector<num::SymTensor2> evaluate(
      const std::vector<geo::Point>& points) const;

  /// Ordered victim/aggressor pairs within the pitch cutoff.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ordered_pairs() const;

 private:
  tsvlib::Placement placement_;
  std::shared_ptr<const ana::InteractiveStressModel> model_;
  InteractiveOptions options_;
  geo::GridIndex tsv_index_;
};

}  // namespace tsv::core
