#pragma once
// Stage II of Algorithm 1: interactive stress of nearby TSV pairs.
//
// A pair (victim, aggressor) contributes at a simulation point when
//   1) the pair pitch is below `pair_pitch_cutoff`, and
//   2) the victim lies within `influence_radius` of the point
// (both 25 um in the paper). Each unordered pair is processed in two rounds
// with the roles exchanged, exactly as in Sec. 4.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "analytic/interaction.h"
#include "core/far_field.h"
#include "geometry/grid_index.h"
#include "tsv/placement.h"

namespace tsv::core {

struct InteractiveOptions {
  double pair_pitch_cutoff = 25.0;  ///< um
  double influence_radius = 25.0;   ///< um, victim to simulation point
  /// Evaluate pairs through a cached polar look-up table instead of the
  /// potential series: ~10x cheaper per point at ~1% field accuracy.
  /// Recommended for full-chip runs; off by default so the accuracy
  /// benches exercise the exact series.
  bool use_lookup_table = false;
  /// Pitch quantization step (um) for the look-up-table cache: pairs whose
  /// pitch snaps to the same multiple of the step share one table, so a
  /// full-chip design costs ~(pitch range / step) table builds instead of
  /// one per unique pitch. 0 = exact-pitch tables (every unique pitch
  /// builds its own). Only meaningful with use_lookup_table; 0.25 um stays
  /// within the table's ~1% interpolation budget (see test_quantized_cache).
  double pitch_quant_step = 0.0;
  /// Use a certified Chebyshev surrogate (analytic/surrogate.h) attached to
  /// the model for the Stage II batch path when available. The surrogate is
  /// only consulted if its certificate attests a verified relative field
  /// error <= `surrogate_tolerance` and its fitted radius covers
  /// `influence_radius`; pairs whose pitch falls outside the fitted domain
  /// fall back to the table/series paths per pair (counter-tracked on the
  /// surrogate). With no surrogate attached this flag is inert, so default
  /// behavior is unchanged. Set false to force the exact paths even when a
  /// certified surrogate is attached.
  bool allow_surrogate = true;
  /// Maximum certified relative field error accepted from an attached
  /// surrogate (gates on SurrogateCertificate::certified_rel_bound).
  double surrogate_tolerance = 1e-6;
  /// Route the batched evaluate through an attached hierarchical far-field
  /// aggregate (core/far_field.h): pairs are evaluated exactly only inside
  /// the aggregate's near radius and the smooth remainder comes from
  /// per-cluster tiles. Like allow_surrogate, the flag is inert unless an
  /// aggregate is attached whose certificate attests a relative bound
  /// <= far_field_tolerance AND whose placement fingerprint matches this
  /// stage's placement. stress_at() always stays on the exact per-pair
  /// path, so in far-field mode it can differ from evaluate() by up to the
  /// certified bound.
  bool use_far_field = false;
  /// Maximum certified relative field error accepted from an attached
  /// far-field aggregate (gates on FarFieldCertificate).
  double far_field_tolerance = 1e-2;
  /// Clustering/tiling/certification knobs used when a caller (framework,
  /// engine, bench) builds the aggregate for this stage.
  FarFieldOptions far_field{};
  /// Threads for the batched evaluate: 0 = hardware concurrency, 1 = serial
  /// (the default baseline path). Pairs are chunked statically; each chunk
  /// accumulates into a private output buffer and the partials merge in
  /// chunk index order, so results are deterministic for a fixed thread
  /// count but can differ from the serial sum by floating-point regrouping
  /// (<= ~1e-12 relative; the determinism tests pin this down).
  std::size_t num_threads = 1;
};

class InteractiveStage {
 public:
  InteractiveStage(const tsvlib::Placement& placement,
                   std::shared_ptr<const ana::InteractiveStressModel> model,
                   const InteractiveOptions& options = {});

  const InteractiveOptions& options() const { return options_; }
  const ana::InteractiveStressModel& model() const { return *model_; }

  /// Interactive stress at one point (enumerates nearby ordered pairs).
  num::SymTensor2 stress_at(const geo::Point& p) const;

  /// Interactive stress at many points. Organized pair-outer so that the
  /// combined response per pair is built once and reused for all affected
  /// points (a point GridIndex accelerates the lookup; it is cached keyed
  /// on the point set, so repeated sweeps over the same points — pitch
  /// sweeps, LS-vs-PF comparisons — build it once). Pair-parallel over
  /// options().num_threads workers: `out[n] +=` across pairs would race,
  /// so each worker owns a private buffer (see InteractiveOptions).
  std::vector<num::SymTensor2> evaluate(
      const std::vector<geo::Point>& points) const;

  /// Tile variant for streaming full-chip sweeps: `points` must lie inside
  /// `bounds`, and only pairs whose victim can reach `bounds` (distance to
  /// the box <= influence_radius) are enumerated — for a small tile of a
  /// large chip that culls almost all pairs. Builds a throwaway point index
  /// (tile-sized, cheap) instead of touching the point-index cache.
  std::vector<num::SymTensor2> evaluate(const std::vector<geo::Point>& points,
                                        const geo::Box& bounds) const;

  /// Like the tile variant, but over a caller-supplied pair list (e.g. the
  /// one the tiled evaluator already enumerated for its statistics) so the
  /// pairs are not re-derived. Builds the same throwaway point index as the
  /// tile variant; results are identical to evaluate(points, bounds) when
  /// `pairs` == ordered_pairs_near(bounds).
  std::vector<num::SymTensor2> evaluate_with_pairs(
      const std::vector<geo::Point>& points,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs)
      const;

  /// Attaches a far-field aggregate for the batched evaluate. The stage
  /// only routes through it when options().use_far_field is set, the
  /// aggregate's cutoffs match, its placement fingerprint matches this
  /// stage's placement, and its certificate passes far_field_tolerance —
  /// otherwise evaluation silently stays on the direct path (mirroring the
  /// allow_surrogate contract). Passing nullptr detaches.
  void attach_far_field(std::shared_ptr<const FarFieldAggregate> far);

  /// The attached aggregate when the evaluate path will actually use it
  /// (all gates pass), nullptr otherwise.
  const FarFieldAggregate* active_far_field() const;

  /// The attached aggregate regardless of gating — for reporting (bench
  /// rows print the certificate bound even when the gate rejected it).
  const FarFieldAggregate* attached_far_field() const { return far_.get(); }

  /// Ordered victim/aggressor pairs within the pitch cutoff.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ordered_pairs() const;

  /// Ordered pairs whose victim lies within influence_radius of `region`
  /// (the pairs that can contribute to any point inside it).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ordered_pairs_near(
      const geo::Box& region) const;

 private:
  std::vector<num::SymTensor2> evaluate_pairs(
      const std::vector<geo::Point>& points,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
      const geo::GridIndex& point_index) const;

  /// Cached point index, keyed on a fingerprint of the point set. The
  /// fingerprint is a content hash (FNV-1a over the raw coordinate bytes)
  /// plus the point count — NOT the vector's identity — so mutating a point
  /// buffer in place (even to an equal length) changes the key and rebuilds
  /// the index; callers never observe a stale index for edited coordinates
  /// (test_interactive_stage locks this down). The only theoretical
  /// staleness is a 64-bit hash collision between two different point sets
  /// of equal size.
  std::shared_ptr<const geo::GridIndex> point_index_for(
      const std::vector<geo::Point>& points) const;

  tsvlib::Placement placement_;
  std::shared_ptr<const ana::InteractiveStressModel> model_;
  InteractiveOptions options_;
  geo::GridIndex tsv_index_;
  std::shared_ptr<const FarFieldAggregate> far_;
  bool far_matches_ = false;  ///< cutoffs + placement fingerprint verified
  /// Guards the point-index cache (evaluate is const and may run from
  /// several threads).
  mutable std::mutex point_cache_mutex_;
  mutable std::uint64_t point_cache_fingerprint_ = 0;
  mutable std::shared_ptr<const geo::GridIndex> point_index_cache_;
};

}  // namespace tsv::core
