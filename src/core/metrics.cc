#include "core/metrics.h"

#include <cmath>

namespace tsv::core {

double extract(StressMeasure m, const num::SymTensor2& s) {
  switch (m) {
    case StressMeasure::kSigmaXX:
      return s.s11;
    case StressMeasure::kSigmaYY:
      return s.s22;
    case StressMeasure::kSigmaXY:
      return s.s12;
    case StressMeasure::kVonMises:
      return num::von_mises_plane_stress(s);
    case StressMeasure::kMaxTensile:
      return num::max_tensile(s);
  }
  TSV_ASSERT(false);
  return 0.0;
}

const char* to_string(StressMeasure m) {
  switch (m) {
    case StressMeasure::kSigmaXX:
      return "sigma_xx";
    case StressMeasure::kSigmaYY:
      return "sigma_yy";
    case StressMeasure::kSigmaXY:
      return "sigma_xy";
    case StressMeasure::kVonMises:
      return "von_mises";
    case StressMeasure::kMaxTensile:
      return "max_tensile";
  }
  return "unknown";
}

ErrorStats compare_fields(StressMeasure measure,
                          const std::vector<geo::Point>& points,
                          const std::vector<num::SymTensor2>& model,
                          const std::vector<num::SymTensor2>& golden,
                          const tsvlib::Placement& placement,
                          const MetricsOptions& options) {
  TSV_REQUIRE(points.size() == model.size() && model.size() == golden.size(),
              "field sizes must match the point list");
  ErrorStats st;
  st.n_points = points.size();

  double sum_all = 0.0;
  double sum10 = 0.0, sum_rate10 = 0.0;
  double sum50 = 0.0, sum_rate50 = 0.0;
  double sum_crit = 0.0, sum_rate_crit = 0.0;
  const double crit_r2 = options.critical_radius * options.critical_radius;

  for (std::size_t i = 0; i < points.size(); ++i) {
    const double g = extract(measure, golden[i]);
    const double v = extract(measure, model[i]);
    const double err = std::abs(v - g);
    const double mag = std::abs(g);
    sum_all += err;
    if (mag >= options.threshold_low) {
      sum10 += err;
      sum_rate10 += err / mag;
      ++st.n_thr10;
    }
    if (mag >= options.threshold_high) {
      sum50 += err;
      sum_rate50 += err / mag;
      ++st.n_thr50;
      bool critical = false;
      for (const auto& c : placement.centers()) {
        if (geo::distance_squared(c, points[i]) <= crit_r2) {
          critical = true;
          break;
        }
      }
      if (critical) {
        sum_crit += err;
        sum_rate_crit += err / mag;
        ++st.n_critical;
      }
    }
  }

  const auto mean = [](double s, std::size_t n) {
    return n > 0 ? s / static_cast<double>(n) : 0.0;
  };
  st.avg_error = mean(sum_all, st.n_points);
  st.avg_error_thr10 = mean(sum10, st.n_thr10);
  st.rate_thr10 = 100.0 * mean(sum_rate10, st.n_thr10);
  st.avg_error_thr50 = mean(sum50, st.n_thr50);
  st.rate_thr50 = 100.0 * mean(sum_rate50, st.n_thr50);
  st.critical_avg_error_thr50 = mean(sum_crit, st.n_critical);
  st.critical_rate_thr50 = 100.0 * mean(sum_rate_crit, st.n_critical);
  return st;
}

double max_abs_error(StressMeasure measure,
                     const std::vector<num::SymTensor2>& model,
                     const std::vector<num::SymTensor2>& golden) {
  TSV_REQUIRE(model.size() == golden.size(), "field size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    worst = std::max(worst, std::abs(extract(measure, model[i]) -
                                     extract(measure, golden[i])));
  }
  return worst;
}

}  // namespace tsv::core
