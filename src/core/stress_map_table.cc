#include "core/stress_map_table.h"

#include <cmath>

namespace tsv::core {

StressMapTable::StressMapTable(std::vector<num::SymTensor2> values,
                               std::size_t n, double half_extent)
    : values_(std::move(values)), n_(n), half_extent_(half_extent) {
  TSV_REQUIRE(n_ >= 2, "map needs at least 2 points per axis");
  TSV_REQUIRE(half_extent_ > 0.0, "half extent must be positive");
  TSV_REQUIRE(values_.size() == n_ * n_, "value count does not match grid");
  inv_spacing_ = static_cast<double>(n_ - 1) / (2.0 * half_extent_);
}

StressMapTable StressMapTable::from_fem(const fem::StressField& field,
                                        const geo::Point& center,
                                        double half_extent, double spacing) {
  TSV_REQUIRE(spacing > 0.0, "spacing must be positive");
  const std::size_t n =
      1 + static_cast<std::size_t>(std::llround(2.0 * half_extent / spacing));
  std::vector<num::SymTensor2> values;
  values.reserve(n * n);
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      const geo::Point p{
          center.x - half_extent +
              2.0 * half_extent * static_cast<double>(ix) /
                  static_cast<double>(n - 1),
          center.y - half_extent +
              2.0 * half_extent * static_cast<double>(iy) /
                  static_cast<double>(n - 1)};
      values.push_back(field.sample(p));
    }
  }
  return StressMapTable(std::move(values), n, half_extent);
}

num::SymTensor2 StressMapTable::stress_at(const geo::Point& center,
                                          const geo::Point& p) const {
  const double lx = p.x - center.x + half_extent_;
  const double ly = p.y - center.y + half_extent_;
  const double fx = lx * inv_spacing_;
  const double fy = ly * inv_spacing_;
  if (fx < 0.0 || fy < 0.0 || fx > static_cast<double>(n_ - 1) ||
      fy > static_cast<double>(n_ - 1)) {
    return {};
  }
  const std::size_t ix = std::min(static_cast<std::size_t>(fx), n_ - 2);
  const std::size_t iy = std::min(static_cast<std::size_t>(fy), n_ - 2);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const auto at = [&](std::size_t jx, std::size_t jy) {
    return values_[jy * n_ + jx];
  };
  return (1.0 - tx) * (1.0 - ty) * at(ix, iy) +
         tx * (1.0 - ty) * at(ix + 1, iy) +
         (1.0 - tx) * ty * at(ix, iy + 1) + tx * ty * at(ix + 1, iy + 1);
}

}  // namespace tsv::core
