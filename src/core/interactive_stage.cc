#include "core/interactive_stage.h"

#include <algorithm>

#include "analytic/surrogate.h"
#include "numeric/kernels.h"
#include "numeric/parallel.h"

namespace tsv::core {
namespace {

geo::Box index_bounds(const tsvlib::Placement& p) {
  return p.empty() ? geo::Box{{0.0, 0.0}, {1.0, 1.0}} : p.bounding_box();
}

/// FNV-1a over the raw coordinate bytes. One pass over the points is far
/// cheaper than rebuilding the GridIndex (counting sort + allocations), and
/// a 64-bit digest plus the size check makes accidental collisions across
/// sweep iterations vanishingly unlikely.
std::uint64_t fingerprint_points(const std::vector<geo::Point>& points) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (const geo::Point& p : points) {
    mix(p.x);
    mix(p.y);
  }
  return h;
}

/// Distance from a point to a closed axis-aligned box (0 inside).
double distance_to_box(const geo::Point& p, const geo::Box& box) {
  const double dx = std::max({box.lo.x - p.x, 0.0, p.x - box.hi.x});
  const double dy = std::max({box.lo.y - p.y, 0.0, p.y - box.hi.y});
  return std::hypot(dx, dy);
}

}  // namespace

InteractiveStage::InteractiveStage(
    const tsvlib::Placement& placement,
    std::shared_ptr<const ana::InteractiveStressModel> model,
    const InteractiveOptions& options)
    : placement_(placement),
      model_(std::move(model)),
      options_(options),
      tsv_index_(placement.centers(), index_bounds(placement),
                 std::max(options.pair_pitch_cutoff / 2.0, 1.0)) {
  TSV_REQUIRE(model_ != nullptr, "null interactive model");
  TSV_REQUIRE(options_.pair_pitch_cutoff > 0.0 &&
                  options_.influence_radius > 0.0,
              "cutoffs must be positive");
  TSV_REQUIRE(options_.pitch_quant_step >= 0.0,
              "negative pitch quantization step");
}

num::SymTensor2 InteractiveStage::stress_at(const geo::Point& p) const {
  const auto& centers = placement_.centers();
  num::KernelScratch& scratch = num::tls_kernel_scratch();
  std::vector<std::uint32_t>& victims = scratch.idx;
  std::vector<std::uint32_t>& aggressors = scratch.idx2;
  tsv_index_.query_radius(p, options_.influence_radius, victims);
  num::SymTensor2 sum;
  for (const std::uint32_t v : victims) {
    tsv_index_.query_radius(centers[v], options_.pair_pitch_cutoff,
                            aggressors);
    for (const std::uint32_t a : aggressors) {
      if (a == v) continue;
      sum += model_->stress_at(centers[v], centers[a], p);
    }
  }
  return sum;
}

void InteractiveStage::attach_far_field(
    std::shared_ptr<const FarFieldAggregate> far) {
  far_ = std::move(far);
  far_matches_ = far_ != nullptr && far_->compatible_with(options_) &&
                 far_->placement_fingerprint() ==
                     fingerprint_centers(placement_.centers());
}

const FarFieldAggregate* InteractiveStage::active_far_field() const {
  if (!options_.use_far_field || !far_matches_) return nullptr;
  return far_->certificate().certified_within(options_.far_field_tolerance)
             ? far_.get()
             : nullptr;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
InteractiveStage::ordered_pairs() const {
  const auto& centers = placement_.centers();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::vector<std::uint32_t> nearby;
  for (std::uint32_t v = 0; v < centers.size(); ++v) {
    tsv_index_.query_radius(centers[v], options_.pair_pitch_cutoff, nearby);
    for (const std::uint32_t a : nearby) {
      if (a != v) pairs.emplace_back(v, a);
    }
  }
  return pairs;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
InteractiveStage::ordered_pairs_near(const geo::Box& region) const {
  const auto& centers = placement_.centers();
  // Over-query a disc covering the region plus the influence halo, then
  // keep the victims whose true box distance is within the radius. The
  // far-field path needs the same reach: its exact edge ring extends to
  // the influence radius (only the mid zone between blend_r1 and the ring
  // moves into the tiles).
  const double reach = options_.influence_radius;
  const double half_diag =
      std::hypot(region.width(), region.height()) / 2.0;
  std::vector<std::uint32_t> candidates;
  tsv_index_.query_radius(region.center(), half_diag + reach, candidates);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::vector<std::uint32_t> nearby;
  for (const std::uint32_t v : candidates) {
    if (distance_to_box(centers[v], region) > reach) continue;
    tsv_index_.query_radius(centers[v], options_.pair_pitch_cutoff, nearby);
    for (const std::uint32_t a : nearby) {
      if (a != v) pairs.emplace_back(v, a);
    }
  }
  return pairs;
}

std::shared_ptr<const geo::GridIndex> InteractiveStage::point_index_for(
    const std::vector<geo::Point>& points) const {
  const std::uint64_t fp = fingerprint_points(points);
  {
    const std::lock_guard<std::mutex> lock(point_cache_mutex_);
    if (point_index_cache_ != nullptr &&
        point_index_cache_->size() == points.size() &&
        point_cache_fingerprint_ == fp) {
      return point_index_cache_;
    }
  }
  // The hull is inclusive on every edge, so points exactly on the boundary
  // stay indexed.
  auto index = std::make_shared<const geo::GridIndex>(
      points, geo::Box::bounding(points),
      std::max(options_.influence_radius / 2.0, 1.0));
  const std::lock_guard<std::mutex> lock(point_cache_mutex_);
  point_cache_fingerprint_ = fp;
  point_index_cache_ = index;
  return index;
}

std::vector<num::SymTensor2> InteractiveStage::evaluate(
    const std::vector<geo::Point>& points) const {
  if (placement_.size() < 2 || points.empty())
    return std::vector<num::SymTensor2>(points.size());
  const std::shared_ptr<const geo::GridIndex> index = point_index_for(points);
  return evaluate_pairs(points, ordered_pairs(), *index);
}

std::vector<num::SymTensor2> InteractiveStage::evaluate(
    const std::vector<geo::Point>& points, const geo::Box& bounds) const {
  if (placement_.size() < 2 || points.empty())
    return std::vector<num::SymTensor2>(points.size());
  return evaluate_with_pairs(points, ordered_pairs_near(bounds));
}

std::vector<num::SymTensor2> InteractiveStage::evaluate_with_pairs(
    const std::vector<geo::Point>& points,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs) const {
  if (placement_.size() < 2 || points.empty())
    return std::vector<num::SymTensor2>(points.size());
  const geo::GridIndex index(points, geo::Box::bounding(points),
                             std::max(options_.influence_radius / 2.0, 1.0));
  return evaluate_pairs(points, pairs, index);
}

std::vector<num::SymTensor2> InteractiveStage::evaluate_pairs(
    const std::vector<geo::Point>& points,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    const geo::GridIndex& point_index) const {
  const auto& centers = placement_.centers();
  // Surrogate fast path, hoisted out of the pair loop: one certificate and
  // coverage check per evaluate, then a per-pair pitch gate inside
  // try_accumulate. nullptr when disabled, absent, over-tolerance, or
  // fitted short of the influence radius.
  const std::shared_ptr<const ana::PairSurrogate> surrogate =
      options_.allow_surrogate
          ? model_->surrogate_for(options_.surrogate_tolerance,
                                  options_.influence_radius)
          : nullptr;
  // Far-field fast path (also gated once per evaluate): each pair is
  // evaluated exactly only over its near disc (r <= blend_r1) and the thin
  // edge ring at the influence cutoff, weighted by the complement
  // 1 - tile_weight(r); the smooth mid-zone remainder is added per point
  // from the cluster tiles after the pair loop.
  const FarFieldAggregate* far = active_far_field();
  // Pair-parallel: every chunk of pairs accumulates into its own private
  // buffer (writing `out[n] +=` across chunks would race), and the partial
  // fields merge in chunk index order afterwards. With num_threads == 1
  // this degenerates to the exact serial pair loop.
  std::vector<num::SymTensor2> out = num::parallel_reduce<
      std::vector<num::SymTensor2>>(
      pairs.size(), options_.num_threads,
      [&] { return std::vector<num::SymTensor2>(points.size()); },
      [&](std::vector<num::SymTensor2>& out, std::size_t begin,
          std::size_t end) {
        std::vector<std::uint32_t> affected;
        std::vector<std::uint32_t> ring;
        std::vector<geo::Point> gathered;
        std::vector<double> near_w;
        std::vector<num::SymTensor2> contrib;
        for (std::size_t k = begin; k < end; ++k) {
          const auto [v, a] = pairs[k];
          const geo::Point& victim = centers[v];
          const geo::Point& aggressor = centers[a];
          const double pitch = geo::distance(victim, aggressor);
          if (far != nullptr) {
            point_index.query_radius(victim, far->near_radius(), affected);
            point_index.query_annulus(victim, far->edge_inner(),
                                      options_.influence_radius, ring);
            affected.insert(affected.end(), ring.begin(), ring.end());
          } else {
            point_index.query_radius(victim, options_.influence_radius,
                                     affected);
          }
          const std::size_t m = affected.size();
          if (far != nullptr) {
            near_w.resize(m);
            for (std::size_t j = 0; j < m; ++j) {
              near_w[j] =
                  1.0 - tile_weight(
                            geo::distance(points[affected[j]], victim),
                            far->options(), options_.influence_radius);
            }
          }
          if (surrogate != nullptr) {
            gathered.resize(m);
            for (std::size_t j = 0; j < m; ++j)
              gathered[j] = points[affected[j]];
            contrib.assign(m, num::SymTensor2{});
            if (surrogate->try_accumulate(victim, aggressor, gathered.data(),
                                          m, contrib.data())) {
              if (far != nullptr) {
                for (std::size_t j = 0; j < m; ++j)
                  out[affected[j]] += near_w[j] * contrib[j];
              } else {
                for (std::size_t j = 0; j < m; ++j)
                  out[affected[j]] += contrib[j];
              }
              continue;  // next pair; out-of-domain pitches fall through
            }
          }
          if (options_.use_lookup_table) {
            const ana::PairStressTable& table = model_->table_for_pitch(
                pitch, options_.influence_radius, options_.pitch_quant_step);
            // Batch path: gather the affected points, run the flat kernel
            // (beta hoisted once for this pair), then scatter-add. The
            // chunk-local buffers keep their steady-state capacity across
            // pairs.
            gathered.resize(m);
            for (std::size_t j = 0; j < m; ++j)
              gathered[j] = points[affected[j]];
            contrib.assign(m, num::SymTensor2{});
            table.accumulate(victim, aggressor, gathered.data(), m,
                             contrib.data());
            if (far != nullptr) {
              for (std::size_t j = 0; j < m; ++j)
                out[affected[j]] += near_w[j] * contrib[j];
            } else {
              for (std::size_t j = 0; j < m; ++j)
                out[affected[j]] += contrib[j];
            }
          } else {
            const ana::RegionField& combined =
                model_->combined_for_pitch(pitch);
            for (std::size_t j = 0; j < m; ++j) {
              const std::uint32_t n = affected[j];
              const num::SymTensor2 s = model_->stress_with_combined(
                  combined, victim, aggressor, pitch, points[n]);
              out[n] += far != nullptr ? near_w[j] * s : s;
            }
          }
        }
      },
      [](std::vector<num::SymTensor2>& total,
         const std::vector<num::SymTensor2>& part) {
        for (std::size_t n = 0; n < total.size(); ++n) total[n] += part[n];
      });
  if (far != nullptr) {
    // Tile pass: each point owns its own output slot, so a plain parallel
    // loop is race-free and bitwise independent of the thread count.
    num::parallel_for(points.size(), options_.num_threads, [&](std::size_t i) {
      out[i] += far->eval(points[i]);
    });
  }
  return out;
}

}  // namespace tsv::core
