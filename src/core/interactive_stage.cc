#include "core/interactive_stage.h"

#include "numeric/parallel.h"

namespace tsv::core {
namespace {

geo::Box index_bounds(const tsvlib::Placement& p) {
  return p.empty() ? geo::Box{{0.0, 0.0}, {1.0, 1.0}} : p.bounding_box();
}

}  // namespace

InteractiveStage::InteractiveStage(
    const tsvlib::Placement& placement,
    std::shared_ptr<const ana::InteractiveStressModel> model,
    const InteractiveOptions& options)
    : placement_(placement),
      model_(std::move(model)),
      options_(options),
      tsv_index_(placement.centers(), index_bounds(placement),
                 std::max(options.pair_pitch_cutoff / 2.0, 1.0)) {
  TSV_REQUIRE(model_ != nullptr, "null interactive model");
  TSV_REQUIRE(options_.pair_pitch_cutoff > 0.0 &&
                  options_.influence_radius > 0.0,
              "cutoffs must be positive");
}

num::SymTensor2 InteractiveStage::stress_at(const geo::Point& p) const {
  const auto& centers = placement_.centers();
  std::vector<std::uint32_t> victims;
  tsv_index_.query_radius(p, options_.influence_radius, victims);
  num::SymTensor2 sum;
  std::vector<std::uint32_t> aggressors;
  for (const std::uint32_t v : victims) {
    tsv_index_.query_radius(centers[v], options_.pair_pitch_cutoff,
                            aggressors);
    for (const std::uint32_t a : aggressors) {
      if (a == v) continue;
      sum += model_->stress_at(centers[v], centers[a], p);
    }
  }
  return sum;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
InteractiveStage::ordered_pairs() const {
  const auto& centers = placement_.centers();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  std::vector<std::uint32_t> nearby;
  for (std::uint32_t v = 0; v < centers.size(); ++v) {
    tsv_index_.query_radius(centers[v], options_.pair_pitch_cutoff, nearby);
    for (const std::uint32_t a : nearby) {
      if (a != v) pairs.emplace_back(v, a);
    }
  }
  return pairs;
}

std::vector<num::SymTensor2> InteractiveStage::evaluate(
    const std::vector<geo::Point>& points) const {
  if (placement_.size() < 2 || points.empty())
    return std::vector<num::SymTensor2>(points.size());

  // Index the simulation points so each pair only touches points within the
  // victim's influence radius. The hull is inclusive on every edge, so
  // points exactly on the boundary stay indexed.
  const geo::GridIndex point_index(
      points, geo::Box::bounding(points),
      std::max(options_.influence_radius / 2.0, 1.0));

  const auto& centers = placement_.centers();
  const auto pairs = ordered_pairs();
  // Pair-parallel: every chunk of pairs accumulates into its own private
  // buffer (writing `out[n] +=` across chunks would race), and the partial
  // fields merge in chunk index order afterwards. With num_threads == 1
  // this degenerates to the exact serial pair loop.
  return num::parallel_reduce<std::vector<num::SymTensor2>>(
      pairs.size(), options_.num_threads,
      [&] { return std::vector<num::SymTensor2>(points.size()); },
      [&](std::vector<num::SymTensor2>& out, std::size_t begin,
          std::size_t end) {
        std::vector<std::uint32_t> affected;
        for (std::size_t k = begin; k < end; ++k) {
          const auto [v, a] = pairs[k];
          const geo::Point& victim = centers[v];
          const geo::Point& aggressor = centers[a];
          const double pitch = geo::distance(victim, aggressor);
          point_index.query_radius(victim, options_.influence_radius,
                                   affected);
          if (options_.use_lookup_table) {
            const ana::PairStressTable& table =
                model_->table_for_pitch(pitch, options_.influence_radius);
            for (const std::uint32_t n : affected)
              out[n] += table.stress_at(victim, aggressor, points[n]);
          } else {
            const ana::RegionField& combined =
                model_->combined_for_pitch(pitch);
            for (const std::uint32_t n : affected) {
              out[n] += model_->stress_with_combined(combined, victim,
                                                     aggressor, pitch,
                                                     points[n]);
            }
          }
        }
      },
      [](std::vector<num::SymTensor2>& total,
         const std::vector<num::SymTensor2>& part) {
        for (std::size_t n = 0; n < total.size(); ++n) total[n] += part[n];
      });
}

}  // namespace tsv::core
