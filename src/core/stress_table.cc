#include "core/stress_table.h"

#include <cmath>
#include <numbers>

namespace tsv::core {

RadialStressTable::RadialStressTable(std::vector<double> srr,
                                     std::vector<double> stt,
                                     double max_radius)
    : srr_(std::move(srr)), stt_(std::move(stt)), max_radius_(max_radius) {
  TSV_REQUIRE(srr_.size() == stt_.size(), "component tables differ in size");
  TSV_REQUIRE(srr_.size() >= 2, "table needs at least two samples");
  TSV_REQUIRE(max_radius_ > 0.0, "max radius must be positive");
  inv_dr_ = static_cast<double>(srr_.size() - 1) / max_radius_;
}

RadialStressTable RadialStressTable::from_analytic(
    const ana::SingleTsvModel& model, double max_radius, std::size_t samples) {
  TSV_REQUIRE(samples >= 2, "need at least two samples");
  std::vector<double> srr(samples), stt(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = max_radius * static_cast<double>(i) /
                     static_cast<double>(samples - 1);
    const num::SymTensor2 s = model.stress_cylindrical(r);
    srr[i] = s.s11;
    stt[i] = s.s22;
  }
  return RadialStressTable(std::move(srr), std::move(stt), max_radius);
}

RadialStressTable RadialStressTable::from_fem(const fem::StressField& field,
                                              const geo::Point& center,
                                              double max_radius,
                                              std::size_t samples,
                                              std::size_t rays) {
  TSV_REQUIRE(samples >= 2, "need at least two samples");
  TSV_REQUIRE(rays >= 1, "need at least one ray");
  std::vector<double> srr(samples, 0.0), stt(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = max_radius * static_cast<double>(i) /
                     static_cast<double>(samples - 1);
    for (std::size_t j = 0; j < rays; ++j) {
      // Offset the rays off the axes so samples do not sit on mesh lines.
      const double th = 2.0 * std::numbers::pi *
                        (static_cast<double>(j) + 0.382) /
                        static_cast<double>(rays);
      const geo::Point p{center.x + r * std::cos(th),
                         center.y + r * std::sin(th)};
      const num::SymTensor2 cart = field.sample(p);
      const num::SymTensor2 cyl = num::cartesian_to_cylindrical(cart, th);
      srr[i] += cyl.s11;
      stt[i] += cyl.s22;
    }
    srr[i] /= static_cast<double>(rays);
    stt[i] /= static_cast<double>(rays);
  }
  return RadialStressTable(std::move(srr), std::move(stt), max_radius);
}

num::SymTensor2 RadialStressTable::cylindrical(double r) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  if (r >= max_radius_) return {};
  const double f = r * inv_dr_;
  const std::size_t i = static_cast<std::size_t>(f);
  const double t = f - static_cast<double>(i);
  const std::size_t j = std::min(i + 1, srr_.size() - 1);
  num::SymTensor2 s;
  s.s11 = srr_[i] * (1.0 - t) + srr_[j] * t;
  s.s22 = stt_[i] * (1.0 - t) + stt_[j] * t;
  return s;
}

num::SymTensor2 RadialStressTable::stress_at(const geo::Point& center,
                                             const geo::Point& p) const {
  const double r = geo::distance(center, p);
  const num::SymTensor2 cyl = cylindrical(r);
  if (r == 0.0) return cyl;
  return num::cylindrical_to_cartesian(cyl, geo::angle_of(center, p));
}

double RadialStressTable::max_srr() const {
  double m = 0.0;
  for (double v : srr_) m = std::max(m, std::abs(v));
  return m;
}

double effective_k_from_fem(const fem::StressField& field,
                            const geo::Point& center, double r_min,
                            double r_max, std::size_t samples,
                            std::size_t rays) {
  TSV_REQUIRE(r_max > r_min && r_min > 0.0, "invalid fit range");
  TSV_REQUIRE(samples >= 2 && rays >= 1, "need samples and rays");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = r_min + (r_max - r_min) * static_cast<double>(i) /
                                 static_cast<double>(samples - 1);
    for (std::size_t j = 0; j < rays; ++j) {
      const double th = 2.0 * std::numbers::pi *
                        (static_cast<double>(j) + 0.382) /
                        static_cast<double>(rays);
      const geo::Point p{center.x + r * std::cos(th),
                         center.y + r * std::sin(th)};
      const num::SymTensor2 cyl =
          num::cartesian_to_cylindrical(field.sample(p), th);
      // Use the deviatoric combination (srr - stt)/2 * r^2, which equals K
      // exactly for the eq. (6) field and cancels any residual hydrostatic
      // discretization artifact.
      sum += 0.5 * (cyl.s11 - cyl.s22) * r * r;
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

}  // namespace tsv::core
