#include "core/stress_table.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "numeric/kernels.h"

namespace tsv::core {
namespace {

/// Everything the flat radial kernel needs, hoisted out of the point loops.
struct RadialKernel {
  const double* srr;
  const double* stt;
  std::size_t last;  ///< srr/stt sample count - 1
  double inv_dr;
  double max_radius;

  /// Cartesian tensor for one displacement (dx, dy): one sqrt, a linear
  /// table interpolation and the trig-free double-angle rotation
  /// (cos 2theta = (dx^2-dy^2)/r^2, sin 2theta = 2 dx dy / r^2) — no
  /// atan2/sin/cos. Matches the scalar stress_at to floating-point
  /// regrouping; at r == 0 the rotation degenerates to the identity, and
  /// beyond max_radius the contribution is zero, both as in the scalar path.
  num::SymTensor2 at(double dx, double dy) const {
    const double r2 = dx * dx + dy * dy;
    const double r = std::sqrt(r2);
    if (r >= max_radius) return {};
    const double f = r * inv_dr;
    const std::size_t i0 = static_cast<std::size_t>(f);
    const double t = f - static_cast<double>(i0);
    const std::size_t i1 = std::min(i0 + 1, last);
    const double vrr = srr[i0] * (1.0 - t) + srr[i1] * t;
    const double vtt = stt[i0] * (1.0 - t) + stt[i1] * t;
    const double inv_r2 = r2 > 0.0 ? 1.0 / r2 : 0.0;
    const double cos2t = r2 > 0.0 ? (dx * dx - dy * dy) * inv_r2 : 1.0;
    const double sin2t = 2.0 * dx * dy * inv_r2;
    return num::rotate_axisymmetric(vrr, vtt, cos2t, sin2t);
  }
};

}  // namespace

RadialStressTable::RadialStressTable(std::vector<double> srr,
                                     std::vector<double> stt,
                                     double max_radius)
    : srr_(std::move(srr)), stt_(std::move(stt)), max_radius_(max_radius) {
  TSV_REQUIRE(srr_.size() == stt_.size(), "component tables differ in size");
  TSV_REQUIRE(srr_.size() >= 2, "table needs at least two samples");
  TSV_REQUIRE(max_radius_ > 0.0, "max radius must be positive");
  inv_dr_ = static_cast<double>(srr_.size() - 1) / max_radius_;
}

RadialStressTable RadialStressTable::from_analytic(
    const ana::SingleTsvModel& model, double max_radius, std::size_t samples) {
  TSV_REQUIRE(samples >= 2, "need at least two samples");
  std::vector<double> srr(samples), stt(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = max_radius * static_cast<double>(i) /
                     static_cast<double>(samples - 1);
    const num::SymTensor2 s = model.stress_cylindrical(r);
    srr[i] = s.s11;
    stt[i] = s.s22;
  }
  return RadialStressTable(std::move(srr), std::move(stt), max_radius);
}

RadialStressTable RadialStressTable::from_fem(const fem::StressField& field,
                                              const geo::Point& center,
                                              double max_radius,
                                              std::size_t samples,
                                              std::size_t rays) {
  TSV_REQUIRE(samples >= 2, "need at least two samples");
  TSV_REQUIRE(rays >= 1, "need at least one ray");
  std::vector<double> srr(samples, 0.0), stt(samples, 0.0);
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = max_radius * static_cast<double>(i) /
                     static_cast<double>(samples - 1);
    for (std::size_t j = 0; j < rays; ++j) {
      // Offset the rays off the axes so samples do not sit on mesh lines.
      const double th = 2.0 * std::numbers::pi *
                        (static_cast<double>(j) + 0.382) /
                        static_cast<double>(rays);
      const geo::Point p{center.x + r * std::cos(th),
                         center.y + r * std::sin(th)};
      const num::SymTensor2 cart = field.sample(p);
      const num::SymTensor2 cyl = num::cartesian_to_cylindrical(cart, th);
      srr[i] += cyl.s11;
      stt[i] += cyl.s22;
    }
    srr[i] /= static_cast<double>(rays);
    stt[i] /= static_cast<double>(rays);
  }
  return RadialStressTable(std::move(srr), std::move(stt), max_radius);
}

num::SymTensor2 RadialStressTable::cylindrical(double r) const {
  TSV_REQUIRE(r >= 0.0, "negative radius");
  if (r >= max_radius_) return {};
  const double f = r * inv_dr_;
  const std::size_t i = static_cast<std::size_t>(f);
  const double t = f - static_cast<double>(i);
  const std::size_t j = std::min(i + 1, srr_.size() - 1);
  num::SymTensor2 s;
  s.s11 = srr_[i] * (1.0 - t) + srr_[j] * t;
  s.s22 = stt_[i] * (1.0 - t) + stt_[j] * t;
  return s;
}

num::SymTensor2 RadialStressTable::stress_at(const geo::Point& center,
                                             const geo::Point& p) const {
  const double r = geo::distance(center, p);
  const num::SymTensor2 cyl = cylindrical(r);
  if (r == 0.0) return cyl;
  return num::cylindrical_to_cartesian(cyl, geo::angle_of(center, p));
}

void RadialStressTable::accumulate(const geo::Point& center,
                                   const geo::Point* points, std::size_t n,
                                   num::SymTensor2* out) const {
  const RadialKernel kernel{srr_.data(), stt_.data(), srr_.size() - 1,
                            inv_dr_, max_radius_};
  const double cx = center.x;
  const double cy = center.y;
  for (std::size_t i = 0; i < n; ++i)
    out[i] += kernel.at(points[i].x - cx, points[i].y - cy);
}

num::SymTensor2 RadialStressTable::sum_at(const geo::Point& p,
                                          const geo::Point* centers,
                                          const std::uint32_t* idx,
                                          std::size_t n) const {
  num::KernelScratch& scratch = num::tls_kernel_scratch();
  scratch.ax.resize(n);
  scratch.ay.resize(n);
  double* const dx = scratch.ax.data();
  double* const dy = scratch.ay.data();
  for (std::size_t k = 0; k < n; ++k) {
    const geo::Point& c = centers[idx[k]];
    dx[k] = p.x - c.x;
    dy[k] = p.y - c.y;
  }
  const RadialKernel kernel{srr_.data(), stt_.data(), srr_.size() - 1,
                            inv_dr_, max_radius_};
  // Three scalar accumulators added in k order: the same grouping as the
  // scalar default's SymTensor2 += loop, so the sum stays deterministic and
  // thread-count independent.
  double s11 = 0.0, s22 = 0.0, s12 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const num::SymTensor2 s = kernel.at(dx[k], dy[k]);
    s11 += s.s11;
    s22 += s.s22;
    s12 += s.s12;
  }
  return {s11, s22, s12};
}

double RadialStressTable::max_srr() const {
  double m = 0.0;
  for (double v : srr_) m = std::max(m, std::abs(v));
  return m;
}

double effective_k_from_fem(const fem::StressField& field,
                            const geo::Point& center, double r_min,
                            double r_max, std::size_t samples,
                            std::size_t rays) {
  TSV_REQUIRE(r_max > r_min && r_min > 0.0, "invalid fit range");
  TSV_REQUIRE(samples >= 2 && rays >= 1, "need samples and rays");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double r = r_min + (r_max - r_min) * static_cast<double>(i) /
                                 static_cast<double>(samples - 1);
    for (std::size_t j = 0; j < rays; ++j) {
      const double th = 2.0 * std::numbers::pi *
                        (static_cast<double>(j) + 0.382) /
                        static_cast<double>(rays);
      const geo::Point p{center.x + r * std::cos(th),
                         center.y + r * std::sin(th)};
      const num::SymTensor2 cyl =
          num::cartesian_to_cylindrical(field.sample(p), th);
      // Use the deviatoric combination (srr - stt)/2 * r^2, which equals K
      // exactly for the eq. (6) field and cancels any residual hydrostatic
      // discretization artifact.
      sum += 0.5 * (cyl.s11 - cyl.s22) * r * r;
      ++count;
    }
  }
  return sum / static_cast<double>(count);
}

}  // namespace tsv::core
