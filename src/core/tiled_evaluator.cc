#include "core/tiled_evaluator.h"

#include <chrono>
#include <cmath>

#include "numeric/parallel.h"

namespace tsv::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

TiledEvaluator::TiledEvaluator(const StressFramework& framework,
                               const TiledOptions& options)
    : framework_(&framework), options_(options) {
  TSV_REQUIRE(options_.max_tile_points >= 1,
              "need at least one point per tile");
}

TiledStats TiledEvaluator::evaluate(const geo::SampleGrid& grid,
                                    const TileConsumer& consume) const {
  TSV_REQUIRE(consume != nullptr, "null tile consumer");
  TiledStats stats;
  // Square-ish tiles: side = floor(sqrt(max_tile_points)) capped by the grid
  // extents, split evenly so tile sizes differ by at most one row/column.
  const std::size_t side = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(std::sqrt(static_cast<double>(
                 options_.max_tile_points)))));
  stats.tiles_x = (grid.nx() + side - 1) / side;
  stats.tiles_y = (grid.ny() + side - 1) / side;
  const InteractiveStage* stage2 = framework_->stage2();
  if (stage2 != nullptr) stats.total_pairs = stage2->ordered_pairs().size();

  std::vector<geo::Point> points;
  std::vector<num::SymTensor2> stress;
  std::vector<num::SymTensor2> interactive;
  const std::vector<num::SymTensor2> empty;
  for (std::size_t ty = 0; ty < stats.tiles_y; ++ty) {
    const auto [iy0, iy1] = num::chunk_bounds(grid.ny(), stats.tiles_y, ty);
    for (std::size_t tx = 0; tx < stats.tiles_x; ++tx) {
      const auto [ix0, ix1] = num::chunk_bounds(grid.nx(), stats.tiles_x, tx);
      const std::size_t tnx = ix1 - ix0;
      const std::size_t tny = iy1 - iy0;
      points.clear();
      points.reserve(tnx * tny);
      for (std::size_t iy = iy0; iy < iy1; ++iy)
        for (std::size_t ix = ix0; ix < ix1; ++ix)
          points.push_back(grid.point(ix, iy));
      const geo::Box bounds{grid.point(ix0, iy0),
                            grid.point(ix1 - 1, iy1 - 1)};

      const auto t0 = Clock::now();
      stress = framework_->stage1().evaluate(points);
      stats.stage1_seconds += seconds_since(t0);

      if (stage2 != nullptr) {
        const auto t1 = Clock::now();
        stats.culled_pairs += stage2->ordered_pairs_near(bounds).size();
        interactive = stage2->evaluate(points, bounds);
        num::parallel_for(points.size(),
                          framework_->options().stage2.num_threads,
                          [&](std::size_t i) { stress[i] += interactive[i]; });
        stats.stage2_seconds += seconds_since(t1);
      }

      Tile tile{stats.tiles,
                ix0,
                iy0,
                tnx,
                tny,
                bounds,
                points,
                stress,
                options_.keep_interactive && stage2 != nullptr ? interactive
                                                               : empty};
      consume(tile);
      ++stats.tiles;
      stats.points += points.size();
      stats.peak_tile_points = std::max(stats.peak_tile_points, points.size());
    }
  }
  return stats;
}

}  // namespace tsv::core
