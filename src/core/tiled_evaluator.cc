#include "core/tiled_evaluator.h"

#include <chrono>
#include <cmath>
#include <cstring>

#include "core/error.h"
#include "numeric/parallel.h"

namespace tsv::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class Fnv1a {
 public:
  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= c[i];
      h_ *= 1099511628211ull;
    }
  }
  void f64(double v) { bytes(&v, sizeof(v)); }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

}  // namespace

TiledEvaluator::TiledEvaluator(const StressFramework& framework,
                               const TiledOptions& options)
    : framework_(&framework), options_(options) {
  TSV_REQUIRE(options_.max_tile_points >= 1,
              "need at least one point per tile");
}

std::uint64_t TiledEvaluator::fingerprint(const geo::SampleGrid& grid) const {
  Fnv1a h;
  const tsvlib::Placement& p = framework_->stage1().placement();
  h.u64(p.size());
  for (const geo::Point& c : p.centers()) {
    h.f64(c.x);
    h.f64(c.y);
  }
  h.f64(p.structure().body_radius);
  h.f64(p.structure().liner_thickness);
  h.f64(grid.box().lo.x);
  h.f64(grid.box().lo.y);
  h.f64(grid.box().hi.x);
  h.f64(grid.box().hi.y);
  h.u64(grid.nx());
  h.u64(grid.ny());
  h.u64(options_.max_tile_points);
  h.u64(options_.keep_interactive ? 1 : 0);
  h.u64(framework_->stage2() != nullptr ? 1 : 0);
  return h.value();
}

TiledStats TiledEvaluator::evaluate(const geo::SampleGrid& grid,
                                    const TileConsumer& consume) const {
  return evaluate(grid, consume, CheckpointConfig{0, nullptr, nullptr});
}

TiledStats TiledEvaluator::evaluate(const geo::SampleGrid& grid,
                                    const TileConsumer& consume,
                                    const CheckpointConfig& checkpoint) const {
  TSV_REQUIRE(consume != nullptr, "null tile consumer");
  TiledStats stats;
  // Square-ish tiles: side = floor(sqrt(max_tile_points)) capped by the grid
  // extents, split evenly so tile sizes differ by at most one row/column.
  const std::size_t side = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(std::sqrt(static_cast<double>(
                 options_.max_tile_points)))));
  stats.tiles_x = (grid.nx() + side - 1) / side;
  stats.tiles_y = (grid.ny() + side - 1) / side;
  const InteractiveStage* stage2 = framework_->stage2();
  if (stage2 != nullptr) stats.total_pairs = stage2->ordered_pairs().size();

  const bool checkpointing =
      checkpoint.writer != nullptr && checkpoint.every_tiles > 0;
  const std::size_t total_tiles = stats.tiles_x * stats.tiles_y;

  // Accumulated completed-tile state (only when a writer may need it).
  TiledCheckpoint cp;
  cp.fingerprint = fingerprint(grid);
  if (checkpointing) {
    cp.stress.reserve(grid.size());
    if (options_.keep_interactive && stage2 != nullptr)
      cp.interactive.reserve(grid.size());
  }
  const TiledCheckpoint* resume = checkpoint.resume;
  if (resume != nullptr) {
    if (resume->fingerprint != cp.fingerprint)
      throw InvalidInputError(
          "tiled checkpoint does not match this run (different placement, "
          "grid, or tiling configuration)");
    if (resume->tiles_done > total_tiles)
      throw InvalidInputError(
          "tiled checkpoint claims more finished tiles than the run has");
  }
  std::size_t resume_offset = 0;  // cursor into resume->stress
  std::size_t fresh_tiles = 0;    // computed (not replayed) since last write

  std::vector<geo::Point> points;
  std::vector<num::SymTensor2> stress;
  std::vector<num::SymTensor2> interactive;
  const std::vector<num::SymTensor2> empty;
  for (std::size_t ty = 0; ty < stats.tiles_y; ++ty) {
    const auto [iy0, iy1] = num::chunk_bounds(grid.ny(), stats.tiles_y, ty);
    for (std::size_t tx = 0; tx < stats.tiles_x; ++tx) {
      const auto [ix0, ix1] = num::chunk_bounds(grid.nx(), stats.tiles_x, tx);
      const std::size_t tnx = ix1 - ix0;
      const std::size_t tny = iy1 - iy0;
      points.clear();
      points.reserve(tnx * tny);
      for (std::size_t iy = iy0; iy < iy1; ++iy)
        for (std::size_t ix = ix0; ix < ix1; ++ix)
          points.push_back(grid.point(ix, iy));
      const geo::Box bounds{grid.point(ix0, iy0),
                            grid.point(ix1 - 1, iy1 - 1)};

      const bool replay = resume != nullptr && stats.tiles < resume->tiles_done;
      if (replay) {
        // Finished before the interruption: stream the stored field instead
        // of re-evaluating (bitwise what the original run produced).
        if (resume_offset + points.size() > resume->stress.size())
          throw InvalidInputError(
              "tiled checkpoint is shorter than its tile count claims");
        stress.assign(resume->stress.begin() +
                          static_cast<std::ptrdiff_t>(resume_offset),
                      resume->stress.begin() +
                          static_cast<std::ptrdiff_t>(resume_offset +
                                                      points.size()));
        if (options_.keep_interactive && stage2 != nullptr) {
          if (resume_offset + points.size() > resume->interactive.size())
            throw InvalidInputError(
                "tiled checkpoint is missing its interactive fields");
          interactive.assign(
              resume->interactive.begin() +
                  static_cast<std::ptrdiff_t>(resume_offset),
              resume->interactive.begin() +
                  static_cast<std::ptrdiff_t>(resume_offset + points.size()));
        }
        resume_offset += points.size();
        ++stats.resumed_tiles;
      } else {
        const auto t0 = Clock::now();
        stress = framework_->stage1().evaluate(points);
        stats.stage1_seconds += seconds_since(t0);

        if (stage2 != nullptr) {
          const auto t1 = Clock::now();
          // One pair enumeration per tile, shared between the statistics and
          // the evaluation (evaluate(points, bounds) would re-derive it).
          const auto pairs = stage2->ordered_pairs_near(bounds);
          stats.culled_pairs += pairs.size();
          interactive = stage2->evaluate_with_pairs(points, pairs);
          num::parallel_for(points.size(),
                            framework_->options().stage2.num_threads,
                            [&](std::size_t i) {
                              stress[i] += interactive[i];
                            });
          stats.stage2_seconds += seconds_since(t1);
        }
      }

      Tile tile{stats.tiles,
                ix0,
                iy0,
                tnx,
                tny,
                bounds,
                points,
                stress,
                options_.keep_interactive && stage2 != nullptr ? interactive
                                                               : empty};
      consume(tile);
      ++stats.tiles;
      stats.points += points.size();
      stats.peak_tile_points = std::max(stats.peak_tile_points, points.size());

      if (checkpointing) {
        cp.stress.insert(cp.stress.end(), stress.begin(), stress.end());
        if (options_.keep_interactive && stage2 != nullptr)
          cp.interactive.insert(cp.interactive.end(), interactive.begin(),
                                interactive.end());
        cp.tiles_done = stats.tiles;
        if (!replay) ++fresh_tiles;
        // The final tile needs no checkpoint: the run is complete.
        if (!replay && fresh_tiles % checkpoint.every_tiles == 0 &&
            stats.tiles < total_tiles) {
          const auto t2 = Clock::now();
          checkpoint.writer(cp);
          stats.checkpoint_seconds += seconds_since(t2);
          ++stats.checkpoints_written;
        }
      }
    }
  }
  return stats;
}

}  // namespace tsv::core
