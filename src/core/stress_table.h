#pragma once
// Radial stress look-up table for the single-TSV field, the "table look-up
// method" of Stage I (paper Sec. 4). The axisymmetric field is fully
// described by (srr(r), stt(r)); entries are linearly interpolated.
//
// Tables can be characterized from the exact analytical solution (default)
// or from a FEM solve of an isolated TSV (the paper's approach with COMSOL);
// tests show the two agree to discretization error.

#include <vector>

#include "analytic/single_tsv.h"
#include "core/single_tsv_field.h"
#include "fem/field.h"
#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::core {

class RadialStressTable : public SingleTsvField {
 public:
  /// Uniformly spaced table on [0, max_radius] with `samples` entries.
  RadialStressTable(std::vector<double> srr, std::vector<double> stt,
                    double max_radius);

  /// Characterizes from the exact single-TSV model.
  static RadialStressTable from_analytic(const ana::SingleTsvModel& model,
                                         double max_radius,
                                         std::size_t samples = 4096);

  /// Characterizes from a FEM stress field of a single TSV centered at
  /// `center` by averaging srr/stt over `rays` azimuthal directions.
  static RadialStressTable from_fem(const fem::StressField& field,
                                    const geo::Point& center,
                                    double max_radius,
                                    std::size_t samples = 1024,
                                    std::size_t rays = 16);

  double max_radius() const { return max_radius_; }
  /// Raw table entries (uniform on [0, max_radius]); exposed for binary
  /// snapshots (io/snapshot) — the (srr, stt, max_radius) triple round-trips
  /// through the value constructor bitwise.
  const std::vector<double>& srr() const { return srr_; }
  const std::vector<double>& stt() const { return stt_; }

  /// {srr, stt, 0} at distance r from the TSV center; zero beyond the table.
  num::SymTensor2 cylindrical(double r) const;

  /// Cartesian stress at p for a TSV centered at `center`. This is the
  /// scalar reference path (atan2 + trig rotation); the batch overrides
  /// below are the hot path and agree with it to <= 1e-12 relative
  /// (test_kernels).
  num::SymTensor2 stress_at(const geo::Point& center,
                            const geo::Point& p) const override;

  /// Trig-free batch kernel, "one center, many points": gathers the
  /// displacements into SoA scratch and runs a flat loop — one sqrt, two
  /// table loads and the double-angle rotation per point, no atan2/sin/cos.
  void accumulate(const geo::Point& center, const geo::Point* points,
                  std::size_t n, num::SymTensor2* out) const override;

  /// Trig-free batch kernel, "one point, many centers" (the Stage I
  /// superposition shape). Sums in k order like the scalar default.
  num::SymTensor2 sum_at(const geo::Point& p, const geo::Point* centers,
                         const std::uint32_t* idx,
                         std::size_t n) const override;

  double coverage_radius() const override { return max_radius_; }

  /// Largest |srr| entry (sanity/diagnostics).
  double max_srr() const;

 private:
  std::vector<double> srr_, stt_;
  double max_radius_;
  double inv_dr_;
};

/// Fits the effective far-field constant K (paper eq. 6) of a FEM
/// single-TSV field: the mean of sigma_rr * r^2 over rays and radii in
/// [r_min, r_max]. Using the FEM-effective K (rather than the exact
/// analytic one) keeps Stage II consistent with a FEM-characterized Stage I
/// table — the paper's own methodology with COMSOL.
double effective_k_from_fem(const fem::StressField& field,
                            const geo::Point& center, double r_min,
                            double r_max, std::size_t samples = 48,
                            std::size_t rays = 32);

}  // namespace tsv::core
