#include "core/superposition.h"

#include "numeric/kernels.h"
#include "numeric/parallel.h"

namespace tsv::core {
namespace {

geo::Box index_bounds(const tsvlib::Placement& p) {
  return p.empty() ? geo::Box{{0.0, 0.0}, {1.0, 1.0}} : p.bounding_box();
}

}  // namespace

LinearSuperposition::LinearSuperposition(
    const tsvlib::Placement& placement,
    std::shared_ptr<const SingleTsvField> table,
    const SuperpositionOptions& options)
    : placement_(placement),
      table_(std::move(table)),
      options_(options),
      index_(placement.centers(), index_bounds(placement),
             std::max(options.influence_radius / 2.0, 1.0)) {
  TSV_REQUIRE(table_ != nullptr, "null single-TSV field");
  TSV_REQUIRE(options_.influence_radius > 0.0,
              "influence radius must be positive");
}

LinearSuperposition::LinearSuperposition(const tsvlib::Placement& placement,
                                         RadialStressTable table,
                                         const SuperpositionOptions& options)
    : LinearSuperposition(
          placement,
          std::make_shared<const RadialStressTable>(std::move(table)),
          options) {}

num::SymTensor2 LinearSuperposition::stress_at(const geo::Point& p) const {
  const auto& centers = placement_.centers();
  std::vector<std::uint32_t>& nearby = num::tls_kernel_scratch().idx;
  index_.query_radius(p, options_.influence_radius, nearby);
  return table_->sum_at(p, centers.data(), nearby.data(), nearby.size());
}

std::vector<num::SymTensor2> LinearSuperposition::evaluate(
    const std::vector<geo::Point>& points) const {
  const auto& centers = placement_.centers();
  std::vector<num::SymTensor2> out(points.size());
  num::parallel_for_chunks(
      points.size(), options_.num_threads,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<std::uint32_t> nearby;
        for (std::size_t n = begin; n < end; ++n) {
          index_.query_radius(points[n], options_.influence_radius, nearby);
          out[n] = table_->sum_at(points[n], centers.data(), nearby.data(),
                                  nearby.size());
        }
      });
  return out;
}

}  // namespace tsv::core
