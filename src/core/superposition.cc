#include "core/superposition.h"

#include "numeric/parallel.h"

namespace tsv::core {
namespace {

geo::Box index_bounds(const tsvlib::Placement& p) {
  return p.empty() ? geo::Box{{0.0, 0.0}, {1.0, 1.0}} : p.bounding_box();
}

}  // namespace

LinearSuperposition::LinearSuperposition(
    const tsvlib::Placement& placement,
    std::shared_ptr<const SingleTsvField> table,
    const SuperpositionOptions& options)
    : placement_(placement),
      table_(std::move(table)),
      options_(options),
      index_(placement.centers(), index_bounds(placement),
             std::max(options.influence_radius / 2.0, 1.0)) {
  TSV_REQUIRE(table_ != nullptr, "null single-TSV field");
  TSV_REQUIRE(options_.influence_radius > 0.0,
              "influence radius must be positive");
}

LinearSuperposition::LinearSuperposition(const tsvlib::Placement& placement,
                                         RadialStressTable table,
                                         const SuperpositionOptions& options)
    : LinearSuperposition(
          placement,
          std::make_shared<const RadialStressTable>(std::move(table)),
          options) {}

num::SymTensor2 LinearSuperposition::stress_at(const geo::Point& p) const {
  std::vector<std::uint32_t> nearby;
  index_.query_radius(p, options_.influence_radius, nearby);
  num::SymTensor2 sum;
  for (const std::uint32_t i : nearby)
    sum += table_->stress_at(placement_.centers()[i], p);
  return sum;
}

std::vector<num::SymTensor2> LinearSuperposition::evaluate(
    const std::vector<geo::Point>& points) const {
  std::vector<num::SymTensor2> out(points.size());
  num::parallel_for_chunks(
      points.size(), options_.num_threads,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::vector<std::uint32_t> nearby;
        for (std::size_t n = begin; n < end; ++n) {
          index_.query_radius(points[n], options_.influence_radius, nearby);
          num::SymTensor2 sum;
          for (const std::uint32_t i : nearby)
            sum += table_->stress_at(placement_.centers()[i], points[n]);
          out[n] = sum;
        }
      });
  return out;
}

}  // namespace tsv::core
