#pragma once
// Incremental (delta) stress evaluation for ECO-style placement edits.
//
// Placement optimization loops (stress-driven placement, KOZ-aware ECO)
// evaluate thousands of *nearly identical* placements: each iteration moves,
// adds, or removes a handful of TSVs and asks for the updated field. A full
// re-evaluation costs O(points x TSVs) for Stage I plus O(pairs x points)
// for Stage II; an edit only changes the field inside the influence radius
// of the affected TSVs.
//
// IncrementalEngine owns a placement (with stable TSV ids), a sample grid,
// and the accumulated Stage I / Stage II fields per grid point. apply(Delta)
// updates the fields by subtracting the departing contributions and adding
// the arriving ones:
//
//   Stage I  — per affected TSV, only the grid points within
//              stage1.influence_radius of its old/new center;
//   Stage II — only the ordered pairs involving an affected TSV (partners
//              found through a GridIndex over the TSV centers), each
//              touching the points within stage2.influence_radius of its
//              victim.
//
// The per-pair and per-TSV contribution kernels are the exact code paths of
// LinearSuperposition / InteractiveStage, so an incrementally maintained
// field agrees with a full recompute to floating-point regrouping only
// (<= ~1e-12 of the field scale; see test_incremental_engine). apply() is
// serial and therefore bitwise deterministic: the same edit sequence always
// produces the same bits. rebuild() re-evaluates from scratch to measure and
// clear the accumulated drift.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/interactive_stage.h"
#include "core/superposition.h"
#include "geometry/sample_grid.h"
#include "tsv/placement.h"

namespace tsv::core {

/// One placement edit. `id` is the engine's stable TSV handle: adds append
/// a new slot and removals deactivate one, so ids never shift.
struct EcoOp {
  enum class Kind : std::uint8_t { kAdd, kMove, kRemove };

  Kind kind = Kind::kAdd;
  std::uint32_t id = 0;  ///< target TSV (kMove / kRemove)
  geo::Point center{};   ///< new center (kAdd / kMove)

  static EcoOp add(const geo::Point& c) { return {Kind::kAdd, 0, c}; }
  static EcoOp move(std::uint32_t id, const geo::Point& c) {
    return {Kind::kMove, id, c};
  }
  static EcoOp remove(std::uint32_t id) { return {Kind::kRemove, id, {}}; }
};

/// A batch of edits applied atomically (validation happens before any field
/// is touched, so a throwing apply leaves the engine unchanged).
using Delta = std::vector<EcoOp>;

struct IncrementalOptions {
  SuperpositionOptions stage1{};
  InteractiveOptions stage2{};
  bool enable_interactive = true;  ///< false = Stage I only
  /// Threads for the initial full build and rebuild() (same semantics as
  /// FrameworkOptions::num_threads: 0 = hardware, 1 = serial default).
  /// apply() itself is always serial — deltas are small and serial updates
  /// keep the engine bitwise deterministic.
  std::size_t num_threads = 1;
};

/// Work accounting of one apply(), for the ECO benches: the incremental
/// cost is proportional to point_updates, a full recompute to
/// grid.size() x (TSVs + pairs).
struct ApplyStats {
  std::size_t ops = 0;
  std::size_t dirty_points = 0;          ///< distinct grid points touched
  std::size_t stage1_point_updates = 0;  ///< per-TSV disc point ops
  std::size_t stage2_point_updates = 0;  ///< per-pair disc point ops
  std::size_t removed_pairs = 0;         ///< ordered pairs subtracted
  std::size_t added_pairs = 0;           ///< ordered pairs added
  /// Far-field maintenance (only when stage2.use_far_field is active):
  /// cluster tiles re-folded and grid points updated through tile reads.
  std::size_t clusters_rebuilt = 0;
  std::size_t farfield_point_updates = 0;
  double seconds = 0.0;
};

class IncrementalEngine {
 public:
  /// Builds the engine and fully evaluates both stages over `grid`
  /// (parallel per options.num_threads). `model` may be null only when
  /// options.enable_interactive is false.
  IncrementalEngine(const tsvlib::Placement& placement,
                    const geo::SampleGrid& grid,
                    std::shared_ptr<const SingleTsvField> table,
                    std::shared_ptr<const ana::InteractiveStressModel> model,
                    const IncrementalOptions& options = {});

  const geo::SampleGrid& grid() const { return grid_; }
  const IncrementalOptions& options() const { return options_; }
  const tsvlib::TsvStructure& structure() const { return structure_; }
  const SingleTsvField& table() const { return *table_; }
  std::shared_ptr<const SingleTsvField> shared_table() const { return table_; }
  std::shared_ptr<const ana::InteractiveStressModel> model() const {
    return model_;
  }

  /// Slots ever allocated, including deactivated (removed) ones.
  std::size_t slot_count() const { return centers_.size(); }
  std::size_t active_count() const { return active_count_; }
  bool is_active(std::uint32_t id) const;
  /// Center of an active TSV.
  const geo::Point& center(std::uint32_t id) const;
  /// Ids of the active TSVs in ascending order.
  std::vector<std::uint32_t> active_ids() const;
  /// Materializes the active TSVs (in id order) as a Placement — the
  /// placement a from-scratch evaluation would see.
  tsvlib::Placement placement() const;

  /// The engine's far-field aggregate (lazily built on the first
  /// evaluation/apply that needs it; nullptr when stage2.use_far_field is
  /// off or nothing has needed it yet). The engine keeps it synchronized
  /// with the placement: an edit re-folds exactly the clusters whose pair
  /// set changed.
  const FarFieldAggregate* far_field() const { return far_.get(); }

  /// Accumulated per-point fields, indexed like grid().points().
  const std::vector<num::SymTensor2>& stage1_field() const { return stage1_; }
  const std::vector<num::SymTensor2>& stage2_field() const { return stage2_; }
  /// Stage I + Stage II per point (materialized on call).
  std::vector<num::SymTensor2> total_field() const;

  /// Applies a batch of edits. Throws std::invalid_argument (leaving the
  /// engine untouched) when an op references an inactive id or an edit
  /// brings two active TSVs closer than the TSV diameter 2R'.
  ApplyStats apply(const Delta& delta);

  /// Single-op conveniences. add() returns the new TSV's id.
  std::uint32_t add(const geo::Point& c);
  void move(std::uint32_t id, const geo::Point& c);
  void remove(std::uint32_t id);

  /// Re-evaluates both stages from scratch (parallel per
  /// options.num_threads) and replaces the accumulated fields. Returns the
  /// largest absolute per-component drift (MPa) the incremental fields had
  /// accumulated against the fresh evaluation.
  double rebuild();

  /// Everything needed to resurrect an engine without re-evaluating:
  /// io/snapshot serializes this verbatim (plus the single-TSV table and
  /// the model's pair-table cache).
  struct State {
    tsvlib::TsvStructure structure;
    geo::Box grid_box{{0.0, 0.0}, {1.0, 1.0}};
    std::size_t grid_nx = 1;
    std::size_t grid_ny = 1;
    IncrementalOptions options{};
    std::vector<geo::Point> centers;   ///< all slots, including inactive
    std::vector<std::uint8_t> active;  ///< parallel to centers
    std::vector<num::SymTensor2> stage1;
    std::vector<num::SymTensor2> stage2;
  };
  State state() const;

  /// Restores an engine from a snapshot state without recomputing the
  /// fields. `table` and `model` must match the ones the state was built
  /// with (the snapshot layer reconstructs them from the same file).
  static IncrementalEngine restore(
      State state, std::shared_ptr<const SingleTsvField> table,
      std::shared_ptr<const ana::InteractiveStressModel> model);

 private:
  struct RestoreTag {};
  IncrementalEngine(RestoreTag, State state,
                    std::shared_ptr<const SingleTsvField> table,
                    std::shared_ptr<const ana::InteractiveStressModel> model);

  /// Calls f(point_index, point) for every grid point within `radius` of
  /// `c` (distance <= radius, the GridIndex predicate).
  template <typename F>
  void for_disc_points(const geo::Point& c, double radius, F&& f) const;

  /// Collects the disc around `c` into the disc_* scratch buffers
  /// (disc_contrib_ zeroed to the same length) for the batch kernels.
  void gather_disc(const geo::Point& c, double radius);

  /// Adds (sign = +1) or subtracts (sign = -1) the Stage-I field of a TSV
  /// at `c` over its influence disc.
  void apply_stage1(const geo::Point& c, double sign, ApplyStats& stats);

  /// Adds or subtracts one ordered pair's Stage-II contribution over the
  /// victim's influence disc. Mirrors InteractiveStage::evaluate_pairs.
  void apply_pair(const geo::Point& victim, const geo::Point& aggressor,
                  double sign, ApplyStats& stats);

  /// Far-field variant of apply_pair: only the near disc (the aggregate's
  /// near radius), weighted by the complementary partition of unity
  /// 1 - w(r). The far remainder lives in the cluster tiles, which apply()
  /// maintains separately via FarFieldAggregate::rebuild_cell.
  void apply_pair_near(const geo::Point& victim, const geo::Point& aggressor,
                       double sign, ApplyStats& stats);

  /// Calls f(point_index, point) for every grid point inside `box`
  /// (closed containment, like Box::contains).
  template <typename F>
  void for_box_points(const geo::Box& box, F&& f) const;

  /// Builds the far-field aggregate against `current` if absent.
  void ensure_far_field(const tsvlib::Placement& current) const;

  /// Fresh full evaluation of the current active placement.
  void full_evaluate(std::vector<num::SymTensor2>& stage1,
                     std::vector<num::SymTensor2>& stage2) const;

  void touch(std::size_t point_index, ApplyStats& stats);

  tsvlib::TsvStructure structure_;
  geo::SampleGrid grid_;
  std::shared_ptr<const SingleTsvField> table_;
  std::shared_ptr<const ana::InteractiveStressModel> model_;
  IncrementalOptions options_;

  std::vector<geo::Point> centers_;   ///< slot id -> center
  std::vector<std::uint8_t> active_;  ///< slot id -> alive?
  std::size_t active_count_ = 0;

  std::vector<num::SymTensor2> stage1_;
  std::vector<num::SymTensor2> stage2_;

  /// Lazily built, incrementally maintained far-field tiles (mutable: the
  /// const full_evaluate also materializes it on demand for attachment).
  mutable std::shared_ptr<FarFieldAggregate> far_;

  /// Distinct-dirty-point accounting: stamp_[i] == epoch_ marks a point
  /// already counted during the current apply().
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;

  /// Gather/scatter scratch for the batch kernels (apply() is serial, so
  /// plain members suffice; capacities reach steady state after a few ops).
  std::vector<std::size_t> disc_idx_;
  std::vector<geo::Point> disc_pts_;
  std::vector<num::SymTensor2> disc_contrib_;
};

}  // namespace tsv::core
