#pragma once
// Stage I of Algorithm 1: linear superposition [Jung/Pan/Lim DAC'11].
// Each simulation point accumulates the isolated-TSV field of every TSV
// within the influence radius, found through a uniform-grid spatial index.

#include <memory>
#include <vector>

#include "core/stress_table.h"
#include "geometry/grid_index.h"
#include "tsv/placement.h"

namespace tsv::core {

struct SuperpositionOptions {
  /// TSVs farther than this from a simulation point are ignored
  /// (paper: 25 um; the field decays as 1/r^2).
  double influence_radius = 25.0;
  /// Threads for the batched evaluate: 0 = hardware concurrency, 1 = serial
  /// (the default baseline path). Points are independent, so results are
  /// bitwise identical for every thread count.
  std::size_t num_threads = 1;
};

class LinearSuperposition {
 public:
  LinearSuperposition(const tsvlib::Placement& placement,
                      std::shared_ptr<const SingleTsvField> table,
                      const SuperpositionOptions& options = {});

  /// Convenience overload taking a radial table by value.
  LinearSuperposition(const tsvlib::Placement& placement,
                      RadialStressTable table,
                      const SuperpositionOptions& options = {});

  const tsvlib::Placement& placement() const { return placement_; }
  const SingleTsvField& table() const { return *table_; }
  const geo::GridIndex& index() const { return index_; }
  const SuperpositionOptions& options() const { return options_; }

  /// Stage-I stress at one point.
  num::SymTensor2 stress_at(const geo::Point& p) const;

  /// Stage-I stress at many points, point-parallel over
  /// options().num_threads workers (each owns a contiguous slice of `out`
  /// and its own query scratch buffer).
  std::vector<num::SymTensor2> evaluate(
      const std::vector<geo::Point>& points) const;

 private:
  tsvlib::Placement placement_;
  std::shared_ptr<const SingleTsvField> table_;
  SuperpositionOptions options_;
  geo::GridIndex index_;
};

}  // namespace tsv::core
