#include "core/incremental_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "analytic/surrogate.h"
#include "geometry/grid_index.h"

namespace tsv::core {
namespace {

using Clock = std::chrono::steady_clock;

geo::Box index_bounds(const std::vector<geo::Point>& points) {
  return points.empty() ? geo::Box{{0.0, 0.0}, {1.0, 1.0}}
                        : geo::Box::bounding(points);
}

/// FrameworkOptions-style convenience override: a non-default engine thread
/// knob wins over the per-stage settings for the full evaluations.
template <typename Opt>
Opt with_threads(Opt opt, std::size_t num_threads) {
  if (num_threads != 1) opt.num_threads = num_threads;
  return opt;
}

}  // namespace

IncrementalEngine::IncrementalEngine(
    const tsvlib::Placement& placement, const geo::SampleGrid& grid,
    std::shared_ptr<const SingleTsvField> table,
    std::shared_ptr<const ana::InteractiveStressModel> model,
    const IncrementalOptions& options)
    : structure_(placement.structure()),
      grid_(grid),
      table_(std::move(table)),
      model_(std::move(model)),
      options_(options),
      centers_(placement.centers()),
      active_(placement.size(), 1),
      active_count_(placement.size()) {
  TSV_REQUIRE(table_ != nullptr, "null single-TSV field");
  TSV_REQUIRE(!options_.enable_interactive || model_ != nullptr,
              "interactive stage enabled but no model supplied");
  TSV_REQUIRE(table_->coverage_radius() >= options_.stage1.influence_radius,
              "stress table must cover the influence radius");
  full_evaluate(stage1_, stage2_);
}

IncrementalEngine::IncrementalEngine(
    RestoreTag, State state, std::shared_ptr<const SingleTsvField> table,
    std::shared_ptr<const ana::InteractiveStressModel> model)
    : structure_(state.structure),
      grid_(state.grid_box, state.grid_nx, state.grid_ny),
      table_(std::move(table)),
      model_(std::move(model)),
      options_(state.options),
      centers_(std::move(state.centers)),
      active_(std::move(state.active)),
      stage1_(std::move(state.stage1)),
      stage2_(std::move(state.stage2)) {
  TSV_REQUIRE(table_ != nullptr, "null single-TSV field");
  TSV_REQUIRE(!options_.enable_interactive || model_ != nullptr,
              "interactive stage enabled but no model supplied");
  TSV_REQUIRE(active_.size() == centers_.size(),
              "engine state: active flags do not match centers");
  TSV_REQUIRE(stage1_.size() == grid_.size() && stage2_.size() == grid_.size(),
              "engine state: field size does not match the grid");
  active_count_ = static_cast<std::size_t>(
      std::count(active_.begin(), active_.end(), std::uint8_t{1}));
}

IncrementalEngine IncrementalEngine::restore(
    State state, std::shared_ptr<const SingleTsvField> table,
    std::shared_ptr<const ana::InteractiveStressModel> model) {
  return IncrementalEngine(RestoreTag{}, std::move(state), std::move(table),
                           std::move(model));
}

bool IncrementalEngine::is_active(std::uint32_t id) const {
  return id < active_.size() && active_[id] != 0;
}

const geo::Point& IncrementalEngine::center(std::uint32_t id) const {
  TSV_REQUIRE(is_active(id), "no active TSV with this id");
  return centers_[id];
}

std::vector<std::uint32_t> IncrementalEngine::active_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(active_count_);
  for (std::uint32_t id = 0; id < centers_.size(); ++id)
    if (active_[id]) ids.push_back(id);
  return ids;
}

tsvlib::Placement IncrementalEngine::placement() const {
  std::vector<geo::Point> centers;
  centers.reserve(active_count_);
  for (std::uint32_t id = 0; id < centers_.size(); ++id)
    if (active_[id]) centers.push_back(centers_[id]);
  return tsvlib::Placement(structure_, std::move(centers));
}

std::vector<num::SymTensor2> IncrementalEngine::total_field() const {
  std::vector<num::SymTensor2> total = stage1_;
  for (std::size_t i = 0; i < total.size(); ++i) total[i] += stage2_[i];
  return total;
}

template <typename F>
void IncrementalEngine::for_disc_points(const geo::Point& c, double radius,
                                        F&& f) const {
  const geo::Box& b = grid_.box();
  const double r2 = radius * radius;
  // Conservative index window (one extra cell each side guards the floor /
  // ceil rounding); the exact GridIndex predicate distance^2 <= radius^2
  // then decides membership, so the dirty set matches a spatial-index query
  // bit for bit.
  const auto axis_range = [radius](double lo, double step, std::size_t n,
                                   double cc) {
    long i0 = 0;
    long i1 = static_cast<long>(n) - 1;
    if (step > 0.0) {
      i0 = std::max(
          i0, static_cast<long>(std::floor((cc - radius - lo) / step)) - 1);
      i1 = std::min(
          i1, static_cast<long>(std::ceil((cc + radius - lo) / step)) + 1);
    }
    return std::pair<long, long>{i0, i1};
  };
  const auto [ix0, ix1] = axis_range(b.lo.x, grid_.dx(), grid_.nx(), c.x);
  const auto [iy0, iy1] = axis_range(b.lo.y, grid_.dy(), grid_.ny(), c.y);
  for (long iy = iy0; iy <= iy1; ++iy) {
    for (long ix = ix0; ix <= ix1; ++ix) {
      const geo::Point p = grid_.point(static_cast<std::size_t>(ix),
                                       static_cast<std::size_t>(iy));
      if (geo::distance_squared(p, c) <= r2)
        f(static_cast<std::size_t>(iy) * grid_.nx() +
              static_cast<std::size_t>(ix),
          p);
    }
  }
}

void IncrementalEngine::touch(std::size_t point_index, ApplyStats& stats) {
  if (stamp_[point_index] != epoch_) {
    stamp_[point_index] = epoch_;
    ++stats.dirty_points;
  }
}

void IncrementalEngine::gather_disc(const geo::Point& c, double radius) {
  disc_idx_.clear();
  disc_pts_.clear();
  for_disc_points(c, radius, [&](std::size_t i, const geo::Point& p) {
    disc_idx_.push_back(i);
    disc_pts_.push_back(p);
  });
  disc_contrib_.assign(disc_pts_.size(), num::SymTensor2{});
}

void IncrementalEngine::apply_stage1(const geo::Point& c, double sign,
                                     ApplyStats& stats) {
  // Batch path: gather the disc once, run the flat accumulate kernel, then
  // scatter with the edit's sign. apply() is serial, so the engine-owned
  // scratch buffers are safe to reuse across discs.
  gather_disc(c, options_.stage1.influence_radius);
  table_->accumulate(c, disc_pts_.data(), disc_pts_.size(),
                     disc_contrib_.data());
  for (std::size_t j = 0; j < disc_idx_.size(); ++j) {
    stage1_[disc_idx_[j]] += sign * disc_contrib_[j];
    touch(disc_idx_[j], stats);
  }
  stats.stage1_point_updates += disc_idx_.size();
}

template <typename F>
void IncrementalEngine::for_box_points(const geo::Box& box, F&& f) const {
  const geo::Box& b = grid_.box();
  const auto axis_range = [](double lo0, double hi0, double lo, double step,
                             std::size_t n) {
    long i0 = 0;
    long i1 = static_cast<long>(n) - 1;
    if (step > 0.0) {
      i0 = std::max(i0,
                    static_cast<long>(std::floor((lo0 - lo) / step)) - 1);
      i1 = std::min(i1, static_cast<long>(std::ceil((hi0 - lo) / step)) + 1);
    }
    return std::pair<long, long>{i0, i1};
  };
  const auto [ix0, ix1] =
      axis_range(box.lo.x, box.hi.x, b.lo.x, grid_.dx(), grid_.nx());
  const auto [iy0, iy1] =
      axis_range(box.lo.y, box.hi.y, b.lo.y, grid_.dy(), grid_.ny());
  for (long iy = iy0; iy <= iy1; ++iy) {
    for (long ix = ix0; ix <= ix1; ++ix) {
      const geo::Point p = grid_.point(static_cast<std::size_t>(ix),
                                       static_cast<std::size_t>(iy));
      if (box.contains(p))
        f(static_cast<std::size_t>(iy) * grid_.nx() +
              static_cast<std::size_t>(ix),
          p);
    }
  }
}

void IncrementalEngine::ensure_far_field(
    const tsvlib::Placement& current) const {
  if (far_ != nullptr) return;
  far_ = FarFieldAggregate::build(
      current, *model_, with_threads(options_.stage2, options_.num_threads),
      options_.stage2.far_field);
}

void IncrementalEngine::apply_pair_near(const geo::Point& victim,
                                        const geo::Point& aggressor,
                                        double sign, ApplyStats& stats) {
  // Mirrors the exact half of InteractiveStage::evaluate_pairs in far-field
  // mode: the near disc (r <= blend_r1) plus the edge ring at the influence
  // cutoff, same dispatch, same 1 - tile_weight(r) complement weight, so
  // the incremental exact sum matches the full evaluation's contribution.
  const InteractiveOptions& opt = options_.stage2;
  const FarFieldOptions& fopt = far_->options();
  const double pitch = geo::distance(victim, aggressor);

  disc_idx_.clear();
  disc_pts_.clear();
  const auto append = [&](std::size_t i, const geo::Point& p) {
    disc_idx_.push_back(i);
    disc_pts_.push_back(p);
  };
  for_disc_points(victim, far_->near_radius(), append);
  const double ei2 = far_->edge_inner() * far_->edge_inner();
  for_disc_points(victim, opt.influence_radius,
                  [&](std::size_t i, const geo::Point& p) {
                    if (geo::distance_squared(p, victim) > ei2) append(i, p);
                  });
  disc_contrib_.assign(disc_pts_.size(), num::SymTensor2{});

  const auto scatter = [&] {
    for (std::size_t j = 0; j < disc_idx_.size(); ++j) {
      const double wn = 1.0 - tile_weight(geo::distance(disc_pts_[j], victim),
                                          fopt, opt.influence_radius);
      stage2_[disc_idx_[j]] += sign * (wn * disc_contrib_[j]);
      touch(disc_idx_[j], stats);
    }
    stats.stage2_point_updates += disc_idx_.size();
  };
  if (opt.allow_surrogate) {
    const std::shared_ptr<const ana::PairSurrogate> surrogate =
        model_->surrogate_for(opt.surrogate_tolerance, opt.influence_radius);
    if (surrogate != nullptr &&
        surrogate->try_accumulate(victim, aggressor, disc_pts_.data(),
                                  disc_pts_.size(), disc_contrib_.data())) {
      scatter();
      return;
    }
  }
  if (opt.use_lookup_table) {
    const ana::PairStressTable& table = model_->table_for_pitch(
        pitch, opt.influence_radius, opt.pitch_quant_step);
    table.accumulate(victim, aggressor, disc_pts_.data(), disc_pts_.size(),
                     disc_contrib_.data());
  } else {
    const ana::RegionField& combined = model_->combined_for_pitch(pitch);
    for (std::size_t j = 0; j < disc_pts_.size(); ++j) {
      disc_contrib_[j] = model_->stress_with_combined(
          combined, victim, aggressor, pitch, disc_pts_[j]);
    }
  }
  scatter();
}

void IncrementalEngine::apply_pair(const geo::Point& victim,
                                   const geo::Point& aggressor, double sign,
                                   ApplyStats& stats) {
  // Mirrors the inner loop of InteractiveStage::evaluate_pairs so that the
  // incremental sum is built from the very same contributions a full
  // evaluation would accumulate.
  const double pitch = geo::distance(victim, aggressor);
  const InteractiveOptions& opt = options_.stage2;
  if (opt.allow_surrogate) {
    // Same certificate/coverage gate as InteractiveStage::evaluate_pairs,
    // so an engine edit adds/removes exactly the contribution a full
    // surrogate-path evaluation would have accumulated.
    const std::shared_ptr<const ana::PairSurrogate> surrogate =
        model_->surrogate_for(opt.surrogate_tolerance, opt.influence_radius);
    if (surrogate != nullptr) {
      gather_disc(victim, opt.influence_radius);
      if (surrogate->try_accumulate(victim, aggressor, disc_pts_.data(),
                                    disc_pts_.size(), disc_contrib_.data())) {
        for (std::size_t j = 0; j < disc_idx_.size(); ++j) {
          stage2_[disc_idx_[j]] += sign * disc_contrib_[j];
          touch(disc_idx_[j], stats);
        }
        stats.stage2_point_updates += disc_idx_.size();
        return;
      }
    }
  }
  if (opt.use_lookup_table) {
    const ana::PairStressTable& table = model_->table_for_pitch(
        pitch, opt.influence_radius, opt.pitch_quant_step);
    gather_disc(victim, opt.influence_radius);
    table.accumulate(victim, aggressor, disc_pts_.data(), disc_pts_.size(),
                     disc_contrib_.data());
    for (std::size_t j = 0; j < disc_idx_.size(); ++j) {
      stage2_[disc_idx_[j]] += sign * disc_contrib_[j];
      touch(disc_idx_[j], stats);
    }
    stats.stage2_point_updates += disc_idx_.size();
  } else {
    const ana::RegionField& combined = model_->combined_for_pitch(pitch);
    for_disc_points(victim, opt.influence_radius,
                    [&](std::size_t i, const geo::Point& p) {
                      stage2_[i] += sign * model_->stress_with_combined(
                                               combined, victim, aggressor,
                                               pitch, p);
                      touch(i, stats);
                      ++stats.stage2_point_updates;
                    });
  }
}

ApplyStats IncrementalEngine::apply(const Delta& delta) {
  const auto t0 = Clock::now();
  ApplyStats stats;
  stats.ops = delta.size();

  // --- Simulate the batch to its net effect. Ops apply sequentially, so a
  // TSV moved twice in one delta nets to a single old -> final move.
  std::vector<geo::Point> new_centers = centers_;
  std::vector<std::uint8_t> new_active = active_;
  for (const EcoOp& op : delta) {
    switch (op.kind) {
      case EcoOp::Kind::kAdd:
        new_centers.push_back(op.center);
        new_active.push_back(1);
        break;
      case EcoOp::Kind::kMove:
        TSV_REQUIRE(op.id < new_centers.size() && new_active[op.id] != 0,
                    "move of an unknown or removed TSV id");
        new_centers[op.id] = op.center;
        break;
      case EcoOp::Kind::kRemove:
        TSV_REQUIRE(op.id < new_centers.size() && new_active[op.id] != 0,
                    "remove of an unknown or removed TSV id");
        new_active[op.id] = 0;
        break;
    }
  }

  // Net departing (was active, now gone or elsewhere) and arriving slots.
  std::vector<std::uint32_t> departing;
  std::vector<std::uint32_t> arriving;
  for (std::uint32_t id = 0; id < new_centers.size(); ++id) {
    const bool was = id < centers_.size() && active_[id] != 0;
    const bool now = new_active[id] != 0;
    const bool moved = was && now && (centers_[id].x != new_centers[id].x ||
                                      centers_[id].y != new_centers[id].y);
    if (was && (!now || moved)) departing.push_back(id);
    if (now && (!was || moved)) arriving.push_back(id);
  }
  if (departing.empty() && arriving.empty()) {
    // Pure no-op batches (e.g. a move to the identical position) still
    // commit the (possibly grown) slot tables.
    centers_ = std::move(new_centers);
    active_ = std::move(new_active);
    stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return stats;
  }

  // --- Validate the final placement around every arriving TSV before any
  // field is touched, so a rejected delta leaves the engine unchanged.
  std::vector<geo::Point> final_pts;
  std::vector<std::uint32_t> final_ids;
  final_pts.reserve(new_centers.size());
  for (std::uint32_t id = 0; id < new_centers.size(); ++id) {
    if (new_active[id]) {
      final_pts.push_back(new_centers[id]);
      final_ids.push_back(id);
    }
  }
  const double diameter = 2.0 * structure_.outer_radius();
  const geo::GridIndex final_index(
      final_pts, index_bounds(final_pts),
      std::max(options_.stage2.pair_pitch_cutoff / 2.0, 1.0));
  {
    std::vector<std::uint32_t> close;
    for (const std::uint32_t id : arriving) {
      final_index.query_radius(new_centers[id], diameter, close);
      for (const std::uint32_t k : close) {
        const std::uint32_t other = final_ids[k];
        TSV_REQUIRE(other == id ||
                        geo::distance(new_centers[id], new_centers[other]) >=
                            diameter,
                    "edit places two TSVs closer than the TSV diameter 2R'");
      }
    }
  }

  if (++epoch_ == 0) {  // wrapped: reset stamps so stale marks cannot match
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  if (stamp_.size() != grid_.size()) stamp_.assign(grid_.size(), 0);

  const bool interactive = options_.enable_interactive;

  // --- Far-field setup: materialize the aggregate against the PRE-edit
  // placement (its tiles are subtracted before re-folding). Mirrors the
  // full path's gate: when the certificate fails the tolerance, evaluation
  // ignores the aggregate, so the delta must use the direct path too.
  const bool farfield = interactive && options_.stage2.use_far_field;
  if (farfield) ensure_far_field(placement());
  const bool far_on =
      farfield && far_ != nullptr &&
      far_->certificate().certified_within(options_.stage2.far_field_tolerance);
  std::vector<std::int64_t> touched_cells;

  // --- Subtract the departing contributions against the OLD placement.
  if (!departing.empty()) {
    std::vector<geo::Point> old_pts;
    std::vector<std::uint32_t> old_ids;
    old_pts.reserve(active_count_);
    for (std::uint32_t id = 0; id < centers_.size(); ++id) {
      if (active_[id]) {
        old_pts.push_back(centers_[id]);
        old_ids.push_back(id);
      }
    }
    const geo::GridIndex old_index(
        old_pts, index_bounds(old_pts),
        std::max(options_.stage2.pair_pitch_cutoff / 2.0, 1.0));

    std::vector<std::pair<std::uint32_t, std::uint32_t>> gone_pairs;
    if (interactive) {
      std::vector<std::uint32_t> nearby;
      for (const std::uint32_t id : departing) {
        old_index.query_radius(centers_[id],
                               options_.stage2.pair_pitch_cutoff, nearby);
        for (const std::uint32_t k : nearby) {
          const std::uint32_t partner = old_ids[k];
          if (partner == id) continue;
          gone_pairs.emplace_back(std::min(id, partner),
                                  std::max(id, partner));
        }
      }
      std::sort(gone_pairs.begin(), gone_pairs.end());
      gone_pairs.erase(std::unique(gone_pairs.begin(), gone_pairs.end()),
                       gone_pairs.end());
    }
    for (const std::uint32_t id : departing) {
      apply_stage1(centers_[id], -1.0, stats);
      // The victim's own cell is touched even when it has no pairs: build()
      // keys clusters by victim cell, so the cluster must disappear (or
      // shrink) exactly as a fresh build over the edited placement would.
      if (far_on) touched_cells.push_back(far_->cell_key(centers_[id]));
    }
    for (const auto& [u, v] : gone_pairs) {
      if (far_on) {
        apply_pair_near(centers_[u], centers_[v], -1.0, stats);
        apply_pair_near(centers_[v], centers_[u], -1.0, stats);
        touched_cells.push_back(far_->cell_key(centers_[u]));
        touched_cells.push_back(far_->cell_key(centers_[v]));
      } else {
        apply_pair(centers_[u], centers_[v], -1.0, stats);
        apply_pair(centers_[v], centers_[u], -1.0, stats);
      }
      stats.removed_pairs += 2;
    }
  }

  // --- Commit the new placement.
  centers_ = std::move(new_centers);
  active_ = std::move(new_active);
  active_count_ = final_pts.size();

  // --- Add the arriving contributions against the NEW placement.
  if (!arriving.empty()) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> fresh_pairs;
    if (interactive) {
      std::vector<std::uint32_t> nearby;
      for (const std::uint32_t id : arriving) {
        final_index.query_radius(centers_[id],
                                 options_.stage2.pair_pitch_cutoff, nearby);
        for (const std::uint32_t k : nearby) {
          const std::uint32_t partner = final_ids[k];
          if (partner == id) continue;
          fresh_pairs.emplace_back(std::min(id, partner),
                                   std::max(id, partner));
        }
      }
      std::sort(fresh_pairs.begin(), fresh_pairs.end());
      fresh_pairs.erase(std::unique(fresh_pairs.begin(), fresh_pairs.end()),
                        fresh_pairs.end());
    }
    for (const std::uint32_t id : arriving) {
      apply_stage1(centers_[id], +1.0, stats);
      // Mirror of the departing side: a pair-less arrival still owns a
      // (zero-pair) cluster in a fresh build, so materialize its cell.
      if (far_on) touched_cells.push_back(far_->cell_key(centers_[id]));
    }
    for (const auto& [u, v] : fresh_pairs) {
      if (far_on) {
        apply_pair_near(centers_[u], centers_[v], +1.0, stats);
        apply_pair_near(centers_[v], centers_[u], +1.0, stats);
        touched_cells.push_back(far_->cell_key(centers_[u]));
        touched_cells.push_back(far_->cell_key(centers_[v]));
      } else {
        apply_pair(centers_[u], centers_[v], +1.0, stats);
        apply_pair(centers_[v], centers_[u], +1.0, stats);
      }
      stats.added_pairs += 2;
    }
  }

  // --- Re-fold exactly the clusters whose pair set changed: subtract the
  // stale tile's reads, rebuild it from the committed placement through
  // the canonical enumeration (bitwise a fresh build), add the new reads.
  if (far_on && !touched_cells.empty()) {
    std::sort(touched_cells.begin(), touched_cells.end());
    touched_cells.erase(
        std::unique(touched_cells.begin(), touched_cells.end()),
        touched_cells.end());
    for (const std::int64_t key : touched_cells) {
      const geo::Box support = far_->cell_support(key);
      for_box_points(support, [&](std::size_t i, const geo::Point& p) {
        stage2_[i] -= far_->eval_cell(key, p);
        touch(i, stats);
        ++stats.farfield_point_updates;
      });
      far_->rebuild_cell(key, final_pts, final_index, *model_,
                         options_.stage2);
      for_box_points(support, [&](std::size_t i, const geo::Point& p) {
        stage2_[i] += far_->eval_cell(key, p);
        ++stats.farfield_point_updates;
      });
      ++stats.clusters_rebuilt;
    }
    far_->refresh_fingerprint(final_pts);
  }

  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return stats;
}

std::uint32_t IncrementalEngine::add(const geo::Point& c) {
  const std::uint32_t id = static_cast<std::uint32_t>(centers_.size());
  apply({EcoOp::add(c)});
  return id;
}

void IncrementalEngine::move(std::uint32_t id, const geo::Point& c) {
  apply({EcoOp::move(id, c)});
}

void IncrementalEngine::remove(std::uint32_t id) {
  apply({EcoOp::remove(id)});
}

void IncrementalEngine::full_evaluate(
    std::vector<num::SymTensor2>& stage1,
    std::vector<num::SymTensor2>& stage2) const {
  const tsvlib::Placement current = placement();
  const std::vector<geo::Point> points = grid_.points();
  const LinearSuperposition s1(
      current, table_, with_threads(options_.stage1, options_.num_threads));
  stage1 = s1.evaluate(points);
  if (options_.enable_interactive && current.size() >= 2) {
    InteractiveStage s2(
        current, model_, with_threads(options_.stage2, options_.num_threads));
    if (options_.stage2.use_far_field) {
      // The engine-maintained aggregate; the stage's own gates (cutoffs,
      // fingerprint, certificate tolerance) decide whether it is used.
      ensure_far_field(current);
      s2.attach_far_field(far_);
    }
    stage2 = s2.evaluate(points);
  } else {
    stage2.assign(points.size(), num::SymTensor2{});
  }
}

double IncrementalEngine::rebuild() {
  std::vector<num::SymTensor2> fresh1;
  std::vector<num::SymTensor2> fresh2;
  full_evaluate(fresh1, fresh2);
  double drift = 0.0;
  const auto dev = [](const num::SymTensor2& a, const num::SymTensor2& b) {
    return std::max({std::abs(a.s11 - b.s11), std::abs(a.s22 - b.s22),
                     std::abs(a.s12 - b.s12)});
  };
  for (std::size_t i = 0; i < stage1_.size(); ++i) {
    drift = std::max(drift, dev(stage1_[i], fresh1[i]));
    drift = std::max(drift, dev(stage2_[i], fresh2[i]));
  }
  stage1_ = std::move(fresh1);
  stage2_ = std::move(fresh2);
  return drift;
}

IncrementalEngine::State IncrementalEngine::state() const {
  State s;
  s.structure = structure_;
  s.grid_box = grid_.box();
  s.grid_nx = grid_.nx();
  s.grid_ny = grid_.ny();
  s.options = options_;
  s.centers = centers_;
  s.active = active_;
  s.stage1 = stage1_;
  s.stage2 = stage2_;
  return s;
}

}  // namespace tsv::core
