#include "core/framework.h"

#include <chrono>

#include "numeric/parallel.h"

namespace tsv::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

SuperpositionOptions with_threads(SuperpositionOptions opt,
                                  std::size_t num_threads) {
  if (num_threads != 1) opt.num_threads = num_threads;
  return opt;
}

}  // namespace

StressFramework::StressFramework(const tsvlib::Placement& placement,
                                 const FrameworkOptions& options)
    : StressFramework(placement, nullptr, options) {}

StressFramework::StressFramework(
    const tsvlib::Placement& placement,
    std::shared_ptr<const ana::InteractiveStressModel> model,
    const FrameworkOptions& options)
    : StressFramework(
          placement,
          RadialStressTable::from_analytic(
              ana::SingleTsvModel(placement.structure(), options.load),
              options.table_radius, options.table_samples),
          std::move(model), options) {}

StressFramework::StressFramework(
    const tsvlib::Placement& placement, RadialStressTable table,
    std::shared_ptr<const ana::InteractiveStressModel> model,
    const FrameworkOptions& options)
    : StressFramework(
          placement,
          std::make_shared<const RadialStressTable>(std::move(table)),
          std::move(model), options) {}

StressFramework::StressFramework(
    const tsvlib::Placement& placement,
    std::shared_ptr<const SingleTsvField> table,
    std::shared_ptr<const ana::InteractiveStressModel> model,
    const FrameworkOptions& options)
    : options_(options),
      single_(placement.structure(), options.load),
      stage1_(placement, std::move(table),
              with_threads(options.stage1, options.num_threads)),
      model_(std::move(model)) {
  if (options_.num_threads != 1) {
    options_.stage1.num_threads = options_.num_threads;
    options_.stage2.num_threads = options_.num_threads;
  }
  TSV_REQUIRE(stage1_.table().coverage_radius() >=
                  options_.stage1.influence_radius,
              "stress table must cover the influence radius");
  if (options_.enable_interactive) {
    if (model_ == nullptr) {
      model_ = std::make_shared<const ana::InteractiveStressModel>(
          placement.structure(), options_.load, options_.characterization);
    }
    stage2_ = std::make_unique<InteractiveStage>(placement, model_,
                                                 options_.stage2);
    if (options_.stage2.use_far_field && placement.size() >= 2) {
      // Fold the far field once at construction; the stage only routes
      // through it when the build's certificate passes the tolerance gate.
      stage2_->attach_far_field(FarFieldAggregate::build(
          placement, *model_, options_.stage2, options_.stage2.far_field));
    }
  }
}

StressResult StressFramework::evaluate(
    const std::vector<geo::Point>& points) const {
  StressResult result;
  const auto t0 = Clock::now();
  result.stress = stage1_.evaluate(points);
  result.stage1_seconds = seconds_since(t0);

  if (stage2_ != nullptr) {
    const auto t1 = Clock::now();
    result.interactive = stage2_->evaluate(points);
    num::parallel_for(points.size(), options_.stage2.num_threads,
                      [&](std::size_t i) {
                        result.stress[i] += result.interactive[i];
                      });
    result.stage2_seconds = seconds_since(t1);
  }
  return result;
}

StressResult StressFramework::evaluate(const geo::SampleGrid& grid) const {
  return evaluate(grid.points());
}

num::SymTensor2 StressFramework::stress_at(const geo::Point& p) const {
  num::SymTensor2 s = stage1_.stress_at(p);
  if (stage2_ != nullptr) s += stage2_->stress_at(p);
  return s;
}

}  // namespace tsv::core
