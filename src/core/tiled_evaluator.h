#pragma once
// Tiled, streaming evaluation of the two-stage framework over a sample
// grid — the full-chip driver. A 10k-TSV chip sampled at sub-um spacing has
// millions of points; materializing the whole field (plus the Stage II
// partial buffers of the pair-parallel reduce) costs O(chip) memory. This
// driver splits the grid into cache-sized tiles, evaluates both stages per
// tile (Stage II enumerates only the pairs whose victim can reach the tile,
// via the TSV grid index) and hands each finished tile to a consumer, so
// peak memory is O(tile) and results stream in deterministic row-major
// tile order. The per-tile evaluations reuse the framework's thread pool:
// tiles x threads compose because the outer tile loop is serial.

#include <functional>
#include <vector>

#include "core/framework.h"
#include "geometry/sample_grid.h"

namespace tsv::core {

struct TiledOptions {
  /// Upper bound on points per tile. The default keeps a tile's output plus
  /// one private Stage II buffer per thread comfortably inside the last
  /// level cache for typical thread counts (64k points x 24 B/tensor =
  /// 1.5 MB per buffer).
  std::size_t max_tile_points = 64 * 1024;
  /// Also expose the Stage II part of each tile (Tile::interactive). Off by
  /// default: most consumers only need the total field.
  bool keep_interactive = false;
};

/// One finished tile, valid only for the duration of the consumer call.
struct Tile {
  std::size_t index = 0;  ///< running number, row-major (y-outer) tile order
  std::size_t ix0 = 0;    ///< first grid column of the tile
  std::size_t iy0 = 0;    ///< first grid row of the tile
  std::size_t nx = 0;     ///< tile extent in columns
  std::size_t ny = 0;     ///< tile extent in rows
  geo::Box bounds;        ///< hull of the tile's points
  /// Tile points, row-major within the tile (y outer), and the fields at
  /// them; `interactive` is empty unless TiledOptions::keep_interactive.
  const std::vector<geo::Point>& points;
  const std::vector<num::SymTensor2>& stress;
  const std::vector<num::SymTensor2>& interactive;
};

using TileConsumer = std::function<void(const Tile&)>;

struct TiledStats {
  std::size_t tiles = 0;
  std::size_t tiles_x = 0;
  std::size_t tiles_y = 0;
  std::size_t points = 0;
  std::size_t peak_tile_points = 0;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
  /// Ordered pairs in the whole design, and the total over tiles of the
  /// pairs each tile actually evaluated. Their ratio measures how much the
  /// per-tile culling saves vs. evaluating every pair against every tile.
  std::size_t total_pairs = 0;
  std::size_t culled_pairs = 0;
};

class TiledEvaluator {
 public:
  explicit TiledEvaluator(const StressFramework& framework,
                          const TiledOptions& options = {});

  const TiledOptions& options() const { return options_; }

  /// Evaluates the framework over `grid`, streaming tiles to `consume` in
  /// row-major tile order. The Tile references are only valid inside the
  /// callback — copy what you keep.
  TiledStats evaluate(const geo::SampleGrid& grid,
                      const TileConsumer& consume) const;

 private:
  const StressFramework* framework_;
  TiledOptions options_;
};

}  // namespace tsv::core
