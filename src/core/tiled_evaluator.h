#pragma once
// Tiled, streaming evaluation of the two-stage framework over a sample
// grid — the full-chip driver. A 10k-TSV chip sampled at sub-um spacing has
// millions of points; materializing the whole field (plus the Stage II
// partial buffers of the pair-parallel reduce) costs O(chip) memory. This
// driver splits the grid into cache-sized tiles, evaluates both stages per
// tile (Stage II enumerates only the pairs whose victim can reach the tile,
// via the TSV grid index) and hands each finished tile to a consumer, so
// peak memory is O(tile) and results stream in deterministic row-major
// tile order. The per-tile evaluations reuse the framework's thread pool:
// tiles x threads compose because the outer tile loop is serial.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/framework.h"
#include "geometry/sample_grid.h"

namespace tsv::core {

struct TiledOptions {
  /// Upper bound on points per tile. The default keeps a tile's output plus
  /// one private Stage II buffer per thread comfortably inside the last
  /// level cache for typical thread counts (64k points x 24 B/tensor =
  /// 1.5 MB per buffer).
  std::size_t max_tile_points = 64 * 1024;
  /// Also expose the Stage II part of each tile (Tile::interactive). Off by
  /// default: most consumers only need the total field.
  bool keep_interactive = false;
};

/// One finished tile, valid only for the duration of the consumer call.
struct Tile {
  std::size_t index = 0;  ///< running number, row-major (y-outer) tile order
  std::size_t ix0 = 0;    ///< first grid column of the tile
  std::size_t iy0 = 0;    ///< first grid row of the tile
  std::size_t nx = 0;     ///< tile extent in columns
  std::size_t ny = 0;     ///< tile extent in rows
  geo::Box bounds;        ///< hull of the tile's points
  /// Tile points, row-major within the tile (y outer), and the fields at
  /// them; `interactive` is empty unless TiledOptions::keep_interactive.
  const std::vector<geo::Point>& points;
  const std::vector<num::SymTensor2>& stress;
  const std::vector<num::SymTensor2>& interactive;
};

using TileConsumer = std::function<void(const Tile&)>;

/// Completed-tile state of an interrupted (or in-flight) tiled run — enough
/// to resume without re-evaluating finished tiles. The fingerprint binds
/// the state to one (placement, grid, tiling) configuration so a stale
/// checkpoint can never be resumed against the wrong run. Persistence is
/// the io layer's job (io::save_tiled_checkpoint / load_tiled_checkpoint).
struct TiledCheckpoint {
  std::uint64_t fingerprint = 0;
  std::size_t tiles_done = 0;
  /// Fields of the finished tiles, concatenated in row-major tile order
  /// (each tile row-major internally, matching Tile::stress).
  std::vector<num::SymTensor2> stress;
  /// Stage II parts, only populated when TiledOptions::keep_interactive.
  std::vector<num::SymTensor2> interactive;
};

/// Checkpointing policy for one evaluate() run.
struct CheckpointConfig {
  /// Call `writer` after every this many freshly computed tiles. The final
  /// tile never triggers a write: a completed run needs no checkpoint.
  std::size_t every_tiles = 16;
  /// Persistence hook (e.g. [&](const auto& cp) {
  /// io::save_tiled_checkpoint(path, cp); }). Null disables writing, which
  /// makes resume-only replay possible.
  std::function<void(const TiledCheckpoint&)> writer;
  /// Resume state: finished tiles are replayed to the consumer from the
  /// stored fields (bitwise identical, no re-evaluation) and computation
  /// continues at the first unfinished tile. Must match this run's
  /// fingerprint (throws tsv::InvalidInputError otherwise).
  const TiledCheckpoint* resume = nullptr;
};

struct TiledStats {
  std::size_t tiles = 0;
  std::size_t tiles_x = 0;
  std::size_t tiles_y = 0;
  std::size_t points = 0;
  std::size_t peak_tile_points = 0;
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
  /// Ordered pairs in the whole design, and the total over tiles of the
  /// pairs each tile actually evaluated. Their ratio measures how much the
  /// per-tile culling saves vs. evaluating every pair against every tile.
  std::size_t total_pairs = 0;
  std::size_t culled_pairs = 0;
  /// Checkpoint accounting: tiles replayed from a resume checkpoint instead
  /// of evaluated, checkpoint writes performed, and the wall-clock they
  /// cost (the overhead the ≤5% budget in EXPERIMENTS.md tracks).
  std::size_t resumed_tiles = 0;
  std::size_t checkpoints_written = 0;
  double checkpoint_seconds = 0.0;
};

class TiledEvaluator {
 public:
  explicit TiledEvaluator(const StressFramework& framework,
                          const TiledOptions& options = {});

  const TiledOptions& options() const { return options_; }

  /// Evaluates the framework over `grid`, streaming tiles to `consume` in
  /// row-major tile order. The Tile references are only valid inside the
  /// callback — copy what you keep.
  TiledStats evaluate(const geo::SampleGrid& grid,
                      const TileConsumer& consume) const;

  /// Same, with periodic checkpointing and/or resume (see CheckpointConfig).
  /// The streamed tiles — replayed and computed — are identical to an
  /// uninterrupted run's.
  TiledStats evaluate(const geo::SampleGrid& grid, const TileConsumer& consume,
                      const CheckpointConfig& checkpoint) const;

  /// FNV-1a fingerprint of everything a checkpoint must agree on: the
  /// placement (centers + structure), the grid geometry, the tile budget,
  /// and keep_interactive.
  std::uint64_t fingerprint(const geo::SampleGrid& grid) const;

 private:
  const StressFramework* framework_;
  TiledOptions options_;
};

}  // namespace tsv::core
