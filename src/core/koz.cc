#include "core/koz.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace tsv::core {

std::vector<KozContour> compute_koz(const StressFramework& framework,
                                    const tsvlib::Placement& placement,
                                    const KozOptions& options) {
  TSV_REQUIRE(options.rays >= 8, "need at least 8 rays");
  TSV_REQUIRE(options.radial_step > 0.0, "radial step must be positive");
  TSV_REQUIRE(options.max_radius > placement.structure().outer_radius(),
              "max radius must reach beyond the TSV");
  const double r0 = placement.structure().outer_radius();

  std::vector<KozContour> contours;
  contours.reserve(placement.size());
  for (std::size_t t = 0; t < placement.size(); ++t) {
    const geo::Point& c = placement.centers()[t];
    KozContour contour;
    contour.tsv_index = t;
    contour.radius.resize(options.rays, r0);
    for (std::size_t k = 0; k < options.rays; ++k) {
      const double th = 2.0 * std::numbers::pi * static_cast<double>(k) /
                        static_cast<double>(options.rays);
      const geo::Point dir{std::cos(th), std::sin(th)};
      // Outward scan: the KOZ boundary is the last radius above the limit
      // (the metric can re-exceed the limit further out near another TSV;
      // we attribute such regions to the TSV that owns them, so scan from
      // r0 and remember the largest violating radius within max_radius/2 —
      // half the scan cap keeps distinct TSVs' zones from swallowing each
      // other).
      const double attribution_cap = options.max_radius / 2.0;
      double last_violation = r0;
      for (double r = r0; r <= attribution_cap; r += options.radial_step) {
        const geo::Point p = c + r * dir;
        if (placement.inside_any_tsv(p)) continue;  // another TSV's body
        const double v =
            std::abs(extract(options.measure, framework.stress_at(p)));
        if (v > options.limit) last_violation = r;
      }
      contour.radius[k] = last_violation;
    }
    contour.max_radius = *std::max_element(contour.radius.begin(),
                                           contour.radius.end());
    contour.min_radius = *std::min_element(contour.radius.begin(),
                                           contour.radius.end());
    // Polygonal area of the star-shaped contour.
    double area = 0.0;
    for (std::size_t k = 0; k < options.rays; ++k) {
      const double r1 = contour.radius[k];
      const double r2 = contour.radius[(k + 1) % options.rays];
      area += 0.5 * r1 * r2 *
              std::sin(2.0 * std::numbers::pi / static_cast<double>(options.rays));
    }
    contour.area = area;
    contours.push_back(std::move(contour));
  }
  return contours;
}

KozReport summarize_koz(const std::vector<KozContour>& contours) {
  KozReport report;
  if (contours.empty()) return report;
  double sum = 0.0;
  for (const KozContour& c : contours) {
    sum += c.max_radius;
    report.total_area += c.area;
    if (c.max_radius > report.worst_radius) {
      report.worst_radius = c.max_radius;
      report.worst_tsv = c.tsv_index;
    }
    if (c.min_radius > 0.0)
      report.worst_asymmetry =
          std::max(report.worst_asymmetry, c.max_radius / c.min_radius);
  }
  report.mean_radius = sum / static_cast<double>(contours.size());
  return report;
}

}  // namespace tsv::core
