#include "core/line_scan.h"

#include "numeric/check.h"

namespace tsv::core {

LineScan make_line_scan(const geo::Point& from, const geo::Point& to,
                        std::size_t samples) {
  TSV_REQUIRE(samples >= 2, "need at least two samples");
  LineScan scan;
  scan.arc.reserve(samples);
  scan.points.reserve(samples);
  const double len = geo::distance(from, to);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(samples - 1);
    scan.arc.push_back(t * len);
    scan.points.push_back(from + t * (to - from));
  }
  return scan;
}

std::vector<num::SymTensor2> sample_line(
    const LineScan& scan,
    const std::function<num::SymTensor2(const geo::Point&)>& field) {
  std::vector<num::SymTensor2> out;
  out.reserve(scan.points.size());
  for (const auto& p : scan.points) out.push_back(field(p));
  return out;
}

}  // namespace tsv::core
