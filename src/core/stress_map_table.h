#pragma once
// 2D single-TSV stress map, the characterization format of the original
// linear-superposition method [Jung DAC'11]: the full tensor field of an
// isolated TSV on a regular grid around its center, bilinearly interpolated
// at query time. Characterized from a FEM solve so that model-vs-FEM
// comparisons share the same discretized single-TSV field.

#include <vector>

#include "core/single_tsv_field.h"
#include "fem/field.h"

namespace tsv::core {

class StressMapTable : public SingleTsvField {
 public:
  /// Map over [-half_extent, half_extent]^2 with the given grid spacing.
  StressMapTable(std::vector<num::SymTensor2> values, std::size_t n,
                 double half_extent);

  /// Samples a FEM single-TSV field centered at `center` on a
  /// (2*half_extent/spacing + 1)^2 grid.
  static StressMapTable from_fem(const fem::StressField& field,
                                 const geo::Point& center, double half_extent,
                                 double spacing);

  num::SymTensor2 stress_at(const geo::Point& center,
                            const geo::Point& p) const override;
  double coverage_radius() const override { return half_extent_; }

  std::size_t grid_size() const { return n_; }

 private:
  std::vector<num::SymTensor2> values_;  ///< row-major, y outer
  std::size_t n_ = 0;                    ///< points per axis
  double half_extent_ = 0.0;
  double inv_spacing_ = 0.0;
};

}  // namespace tsv::core
