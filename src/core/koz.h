#pragma once
// Keep-out-zone (KOZ) and reliability analysis on top of the stress
// framework — the downstream applications the paper motivates (its refs
// [1, 2]: stress-driven placement with TSV keep-out zones and stress-aware
// timing; ref [4]: interfacial crack analysis).
//
// A keep-out zone is the region around a TSV where a stress-derived metric
// (von Mises for reliability, mobility shift for timing) exceeds a limit,
// so devices must not be placed there. Interactive stress makes KOZs
// non-circular and placement-dependent; this module measures them from the
// evaluated field rather than assuming the isolated-TSV radius.

#include <functional>
#include <vector>

#include "core/framework.h"
#include "core/metrics.h"
#include "geometry/point.h"
#include "tsv/placement.h"

namespace tsv::core {

struct KozOptions {
  StressMeasure measure = StressMeasure::kVonMises;
  double limit = 100.0;        ///< MPa; metric above this is keep-out
  double max_radius = 25.0;    ///< um, search cap per TSV
  std::size_t rays = 64;       ///< angular resolution of the KOZ contour
  double radial_step = 0.1;    ///< um, contour search resolution
};

/// Keep-out contour of one TSV: per ray, the largest radius at which the
/// metric still exceeds the limit (at least the TSV outer radius).
struct KozContour {
  std::size_t tsv_index = 0;
  std::vector<double> radius;  ///< per ray, um; rays uniform in [0, 2 pi)
  double max_radius = 0.0;
  double min_radius = 0.0;
  double area = 0.0;  ///< um^2, polygonal area of the contour
};

/// Computes the KOZ contour of every TSV under the given framework.
std::vector<KozContour> compute_koz(const StressFramework& framework,
                                    const tsvlib::Placement& placement,
                                    const KozOptions& options = {});

/// Summary across a placement.
struct KozReport {
  double mean_radius = 0.0;      ///< mean of per-TSV max radii, um
  double worst_radius = 0.0;     ///< largest keep-out radius anywhere, um
  std::size_t worst_tsv = 0;
  double total_area = 0.0;       ///< sum of KOZ areas, um^2
  /// Largest KOZ asymmetry (max/min radius per TSV) — 1.0 for isolated
  /// TSVs; interactive stress between close TSVs stretches the contour.
  double worst_asymmetry = 1.0;
};

KozReport summarize_koz(const std::vector<KozContour>& contours);

}  // namespace tsv::core
