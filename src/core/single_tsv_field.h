#pragma once
// Abstraction over "the characterized stress field of one isolated TSV",
// the quantity Stage I superposes. Two implementations exist:
//   * RadialStressTable — 1D axisymmetric table (exact for the analytic
//     model, azimuthally averaged for FEM characterizations);
//   * StressMapTable — full 2D map sampled from a FEM solve, faithful to
//     the original linear-superposition method [Jung DAC'11], which stores
//     per-component stress maps of a single TSV.

#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::core {

class SingleTsvField {
 public:
  virtual ~SingleTsvField() = default;

  /// Cartesian stress at p contributed by a TSV centered at `center`.
  /// Must return zero beyond coverage_radius().
  virtual num::SymTensor2 stress_at(const geo::Point& center,
                                    const geo::Point& p) const = 0;

  /// Radius around the TSV center the characterization covers, um.
  virtual double coverage_radius() const = 0;
};

}  // namespace tsv::core
