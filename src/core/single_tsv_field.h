#pragma once
// Abstraction over "the characterized stress field of one isolated TSV",
// the quantity Stage I superposes. Two implementations exist:
//   * RadialStressTable — 1D axisymmetric table (exact for the analytic
//     model, azimuthally averaged for FEM characterizations);
//   * StressMapTable — full 2D map sampled from a FEM solve, faithful to
//     the original linear-superposition method [Jung DAC'11], which stores
//     per-component stress maps of a single TSV.

#include <cstddef>
#include <cstdint>

#include "geometry/point.h"
#include "numeric/tensor.h"

namespace tsv::core {

class SingleTsvField {
 public:
  virtual ~SingleTsvField() = default;

  /// Cartesian stress at p contributed by a TSV centered at `center`.
  /// Must return zero beyond coverage_radius().
  virtual num::SymTensor2 stress_at(const geo::Point& center,
                                    const geo::Point& p) const = 0;

  /// Batch "one center, many points" shape (ECO delta application, tile
  /// sweeps): adds this TSV's field at each of points[0..n) into out[i].
  /// The base implementation is the scalar stress_at loop;
  /// RadialStressTable overrides it with the trig-free flat kernel.
  virtual void accumulate(const geo::Point& center, const geo::Point* points,
                          std::size_t n, num::SymTensor2* out) const {
    for (std::size_t i = 0; i < n; ++i) out[i] += stress_at(center, points[i]);
  }

  /// Batch "one point, many centers" shape (Stage I superposition): the sum
  /// of this field at p over the TSVs centers[idx[k]], k in [0, n), added in
  /// k order. The base implementation is the scalar loop, bitwise identical
  /// to summing stress_at by hand; RadialStressTable overrides it with the
  /// trig-free flat kernel.
  virtual num::SymTensor2 sum_at(const geo::Point& p,
                                 const geo::Point* centers,
                                 const std::uint32_t* idx,
                                 std::size_t n) const {
    num::SymTensor2 sum;
    for (std::size_t k = 0; k < n; ++k) sum += stress_at(centers[idx[k]], p);
    return sum;
  }

  /// Radius around the TSV center the characterization covers, um.
  virtual double coverage_radius() const = 0;
};

}  // namespace tsv::core
