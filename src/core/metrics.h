#pragma once
// Error-metric engine reproducing the paper's table columns: average error
// over the monitored region, thresholded averages and error rates, and the
// critical-region variants (Sec. 5.1).

#include <functional>
#include <optional>
#include <vector>

#include "geometry/point.h"
#include "numeric/tensor.h"
#include "tsv/placement.h"

namespace tsv::core {

/// Scalar stress measure extracted from the tensor field.
enum class StressMeasure { kSigmaXX, kSigmaYY, kSigmaXY, kVonMises,
                           kMaxTensile };

double extract(StressMeasure m, const num::SymTensor2& s);
const char* to_string(StressMeasure m);

struct ErrorStats {
  double avg_error = 0.0;          ///< mean |model - golden|, MPa, all points
  double avg_error_thr10 = 0.0;    ///< restricted to |golden| >= 10 MPa
  double rate_thr10 = 0.0;         ///< mean |err|/|golden| (%), same subset
  double avg_error_thr50 = 0.0;
  double rate_thr50 = 0.0;
  double critical_avg_error_thr50 = 0.0;  ///< critical region, thr 50
  double critical_rate_thr50 = 0.0;
  std::size_t n_points = 0;
  std::size_t n_thr10 = 0;
  std::size_t n_thr50 = 0;
  std::size_t n_critical = 0;
};

struct MetricsOptions {
  double threshold_low = 10.0;    ///< MPa
  double threshold_high = 50.0;   ///< MPa
  /// Critical region: within this distance of any TSV center (paper: 3.3 um).
  double critical_radius = 3.3;
};

/// Compares a model field against the golden field at `points`.
/// All three vectors must align index-wise.
ErrorStats compare_fields(StressMeasure measure,
                          const std::vector<geo::Point>& points,
                          const std::vector<num::SymTensor2>& model,
                          const std::vector<num::SymTensor2>& golden,
                          const tsvlib::Placement& placement,
                          const MetricsOptions& options = {});

/// Maximum |model - golden| of the measure over the points.
double max_abs_error(StressMeasure measure,
                     const std::vector<num::SymTensor2>& model,
                     const std::vector<num::SymTensor2>& golden);

}  // namespace tsv::core
