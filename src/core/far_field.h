#pragma once
// Hierarchical far-field aggregation for Stage II — the full-chip scaling
// path for 100k..1M-TSV designs.
//
// The direct Stage II batch path costs O(pairs x points-per-disc): every
// ordered pair touches every simulation point within `influence_radius`
// (25 um) of its victim, i.e. ~500 points per pair at 2 um grid spacing.
// The cost is dominated by the *far* part of each disc, where the
// pair-local field is smooth and small — exactly the part that does not
// need per-pair, per-point resolution.
//
// This module splits each pair's contribution with a C1 partition of unity
// w(r) over the victim distance r (far_weight: 0 inside blend_r0, 1 beyond
// blend_r1):
//
//   pair field = (1 - w*v) * pair field   exact part, evaluated per pair
//                                         over the small disc r <= blend_r1
//                                         plus the thin edge ring at the
//                                         influence cutoff (see edge_width)
//              +      w*v  * pair field   smooth far part, folded ONCE at
//                                         build time into per-cluster tiles
//
// Clusters are the cells of a fixed uniform grid (cell_size, absolute
// origin at (0,0) so cell keys are stable under ECO edits). Each cluster
// owns one float32 tile sampled at `tile_spacing` — coarser than the
// simulation grid, which is what makes the fold profitable — over its
// support box (cell box expanded by influence_radius). Evaluation at a
// point is the near pairs plus a bilinear read of every overlapping
// cluster tile: O(near pairs) + O(1) per point instead of O(all pairs in
// 25 um).
//
// Accuracy is machine-checked, mirroring SurrogateCertificate: build()
// probes sampled clusters at deterministic pseudo-random points, compares
// the tile read against the exact weighted series sum, and records a
// FarFieldCertificate. InteractiveStage only routes through the aggregate
// when the certificate attests a relative bound within the configured
// tolerance AND the aggregate's placement fingerprint matches the stage's
// placement — otherwise the use_far_field flag is inert, like
// allow_surrogate without an attached surrogate.
//
// Determinism: tiles accumulate in double over a canonical pair order
// (ascending victim index, partners in GridIndex query order) and narrow
// to float32 once, independent of thread count. IncrementalEngine rebuilds
// a touched cluster through the very same enumeration, so an
// incrementally maintained tile is bitwise identical to a fresh build's.

#include <cstdint>
#include <atomic>
#include <memory>
#include <vector>

#include "analytic/interaction.h"
#include "geometry/grid_index.h"
#include "tsv/placement.h"

namespace tsv::core {

struct InteractiveOptions;  // core/interactive_stage.h (includes this file)

struct FarFieldOptions {
  /// Cluster cell size, um. Cells live on a fixed grid anchored at (0,0)
  /// (floor(x / cell_size)), so keys never shift when the placement edits.
  double cell_size = 100.0;
  /// Tile sample spacing, um. Tiles are read with bicubic (Catmull-Rom)
  /// interpolation; 1.0 um certifies ~5e-3 on dense full-chip designs
  /// (regular arrays stack blend-onset error coherently, so they need a
  /// finer spacing than sparse random placements). Spacing only changes
  /// fold time and tile memory — the per-point eval cost is spacing-free —
  /// and the certificate measures what the coarseness actually costs.
  double tile_spacing = 1.0;
  /// Partition-of-unity blend window over victim distance r: the far
  /// weight w(r) is 0 for r <= blend_r0, 1 for r >= blend_r1, smoothstep
  /// in between. Near pairs are enumerated out to blend_r1 only.
  double blend_r0 = 6.0;
  double blend_r1 = 10.0;
  /// Width of the exact edge ring at the influence cutoff. The direct path
  /// truncates every pair hard at influence_radius, a jump of |pair field|
  /// there (~1-2% of the field scale) that no smooth tile can represent.
  /// Tiles therefore carry w(r) * v(r) * field with v(r) tapering from 1
  /// at influence - edge_width to 0 at influence (far_weight mirrored),
  /// and the complement w * (1 - v) is evaluated exactly per pair over the
  /// thin annulus — the tiles stay C1 and the bicubic read converges.
  /// Sweeps show the bound is insensitive to the width (blend-onset
  /// curvature dominates), so keep the ring thin: its area is exact work.
  double edge_width = 1.5;
  /// Error-certificate sampling: up to cert_max_clusters clusters (evenly
  /// strided over the deterministic cluster order), cert_samples_per_cluster
  /// probe points each (LCG seeded by the cluster key).
  std::size_t cert_max_clusters = 48;
  std::size_t cert_samples_per_cluster = 24;
  /// Safety factor applied to the observed max error when deriving the
  /// certified bound (mirrors SurrogateOptions::certificate_margin).
  double cert_margin = 1.5;
};

/// Machine-checked accuracy record of one built aggregate: the observed
/// worst probe deviation of the tile read against the exact weighted
/// series far field, normalized by the exact total Stage II field scale.
struct FarFieldCertificate {
  double cell_size = 0.0;
  double tile_spacing = 0.0;
  double blend_r0 = 0.0;
  double blend_r1 = 0.0;
  double edge_width = 0.0;
  std::uint64_t cluster_count = 0;   ///< clusters in the aggregate
  std::uint64_t probed_clusters = 0; ///< clusters actually sampled
  std::uint64_t sample_count = 0;    ///< probe points checked
  /// max over probes of the exact total Stage II magnitude (MPa) — the
  /// scale the relative bound is against.
  double field_scale = 0.0;
  /// max over probes of |tile read - exact weighted far field| (MPa).
  double max_abs_error = 0.0;
  /// cert_margin * max_abs_error / field_scale; 0 when nothing probed.
  double certified_rel_bound = 0.0;

  bool certified_within(double tolerance) const {
    return sample_count > 0 && certified_rel_bound > 0.0 &&
           certified_rel_bound <= tolerance;
  }
};

/// Build-time work accounting, including the per-pair dispatch fallback
/// counters (mirrors SurrogateUseStats): pairs folded through the
/// surrogate vs the quantized table vs the exact series.
struct FarFieldBuildStats {
  std::size_t clusters = 0;
  std::size_t pairs = 0;            ///< ordered pairs folded into tiles
  std::size_t surrogate_pairs = 0;  ///< folded via the certified surrogate
  std::size_t table_pairs = 0;      ///< fell back to the quantized table
  std::size_t series_pairs = 0;     ///< fell back to the exact series
  std::size_t tile_samples = 0;     ///< float32 samples across all tiles
  std::size_t clusters_rebuilt = 0; ///< incremental rebuilds since build
};

/// C1 partition of unity over victim distance: 0 for r <= r0 (near field,
/// exact per pair), 1 for r >= r1 (far field, tiles), smoothstep between.
inline double far_weight(double r, double r0, double r1) {
  if (r <= r0) return 0.0;
  if (r >= r1) return 1.0;
  const double s = (r - r0) / (r1 - r0);
  return s * s * (3.0 - 2.0 * s);
}

/// Fraction of a pair's far part carried by the tiles at victim distance r:
/// w(r) ramped down to 0 across the edge ring [influence - edge_width,
/// influence] so the tiles vanish smoothly at the hard cutoff. The exact
/// per-pair complement is 1 - tile_weight (near disc + edge ring).
inline double tile_weight(double r, const FarFieldOptions& o,
                          double influence) {
  const double w = far_weight(r, o.blend_r0, o.blend_r1);
  if (w <= 0.0) return 0.0;
  return w * (1.0 - far_weight(r, influence - o.edge_width, influence));
}

/// FNV-1a over the raw center coordinate bytes — the placement identity an
/// aggregate is bound to (same digest InteractiveStage uses for its point
/// cache).
std::uint64_t fingerprint_centers(const std::vector<geo::Point>& centers);

class FarFieldAggregate {
 public:
  /// Folds the far part of every ordered pair of `placement` into cluster
  /// tiles and certifies the result. `stage2` supplies the pair cutoffs
  /// and the dispatch knobs (surrogate/table/series, threads).
  static std::shared_ptr<FarFieldAggregate> build(
      const tsvlib::Placement& placement,
      const ana::InteractiveStressModel& model,
      const InteractiveOptions& stage2, const FarFieldOptions& options);

  const FarFieldOptions& options() const { return options_; }
  const FarFieldCertificate& certificate() const { return certificate_; }
  const FarFieldBuildStats& build_stats() const { return stats_; }
  std::uint64_t placement_fingerprint() const { return fingerprint_; }
  std::size_t cluster_count() const { return clusters_.size(); }
  /// Near-pair enumeration radius (= blend_r1): beyond it (and outside the
  /// edge ring) a pair contributes through tiles only.
  double near_radius() const { return options_.blend_r1; }
  /// Inner radius of the exact edge ring at the influence cutoff: pairs
  /// with victim distance in (edge_inner, influence] carry the complement
  /// weight 1 - tile_weight exactly.
  double edge_inner() const { return influence_radius_ - options_.edge_width; }
  /// Approximate float32 tile bytes held by the aggregate.
  std::size_t tile_bytes() const;

  /// True when `stage2` carries the same pair cutoffs this aggregate was
  /// folded with (a mismatched aggregate must stay inert).
  bool compatible_with(const InteractiveOptions& stage2) const;

  /// Far-field stress at p: bilinear reads of every cluster tile whose
  /// support box contains p (float32 samples widened, double arithmetic).
  num::SymTensor2 eval(const geo::Point& p) const;

  /// Batch variant: out[i] += far field at points[i]. Per-point
  /// independent, so callers may chunk it across threads freely.
  void accumulate(const geo::Point* points, std::size_t n,
                  num::SymTensor2* out) const;

  // --- incremental maintenance (IncrementalEngine) -----------------------

  /// Cluster key of the cell containing `c` (fixed absolute grid).
  std::int64_t cell_key(const geo::Point& c) const;
  /// Support box of a cell — the region whose grid points a rebuild of
  /// this cluster can change. Pure geometry; valid for empty cells too.
  geo::Box cell_support(std::int64_t key) const;
  /// Tile read of ONE cluster (zero for empty cells or p outside the
  /// support) — the engine subtracts/adds exactly the rebuilt cluster.
  num::SymTensor2 eval_cell(std::int64_t key, const geo::Point& p) const;

  /// Re-folds one cluster from scratch against `centers` (the compacted
  /// active placement, in id order) using `tsv_index` built over the same
  /// centers with the InteractiveStage cell size. The canonical pair
  /// enumeration makes the result bitwise identical to what build() over
  /// the same placement would produce.
  void rebuild_cell(std::int64_t key, const std::vector<geo::Point>& centers,
                    const geo::GridIndex& tsv_index,
                    const ana::InteractiveStressModel& model,
                    const InteractiveOptions& stage2);

  /// Rebinds the aggregate to an edited placement after rebuild_cell calls
  /// (the engine passes its compacted active centers).
  void refresh_fingerprint(const std::vector<geo::Point>& centers);

 private:
  struct Cluster {
    std::int64_t key = 0;
    geo::Box support{{0.0, 0.0}, {1.0, 1.0}};
    std::size_t nx = 0;  ///< tile samples per row
    std::size_t ny = 0;  ///< tile rows
    double hx = 0.0;     ///< actual sample spacing (support width / (nx-1))
    double hy = 0.0;
    /// ny x nx row-major float32 samples of the weighted far field.
    std::vector<float> s11, s22, s12;
    std::size_t pairs = 0;  ///< ordered pairs folded into this tile
  };

  FarFieldAggregate() = default;

  /// Dense cell -> cluster slot lookup covering [ci_min_, ci_min_+ncx_) x
  /// [cj_min_, cj_min_+ncy_); -1 = empty cell. Grown on demand by
  /// rebuild_cell when an edit reaches a virgin cell.
  std::int32_t slot_of(std::int64_t ci, std::int64_t cj) const;
  std::int32_t ensure_slot(std::int64_t key);
  void index_insert(std::int64_t key, std::int32_t slot);

  Cluster make_cluster(std::int64_t key) const;
  /// Folds the far part of every ordered pair with a victim in `victims`
  /// into `c` (double accumulation, narrowed to float32 at the end).
  void fold_cluster(Cluster& c, const std::vector<std::uint32_t>& victims,
                    const std::vector<geo::Point>& centers,
                    const geo::GridIndex& tsv_index,
                    const ana::InteractiveStressModel& model,
                    const InteractiveOptions& stage2,
                    std::size_t& surrogate_pairs, std::size_t& table_pairs,
                    std::size_t& series_pairs) const;
  void certify(const tsvlib::Placement& placement,
               const geo::GridIndex& tsv_index,
               const ana::InteractiveStressModel& model,
               const InteractiveOptions& stage2);

  FarFieldOptions options_{};
  double influence_radius_ = 0.0;
  double pair_pitch_cutoff_ = 0.0;
  std::uint64_t fingerprint_ = 0;
  FarFieldCertificate certificate_{};
  FarFieldBuildStats stats_{};

  std::vector<Cluster> clusters_;
  std::int64_t ci_min_ = 0;
  std::int64_t cj_min_ = 0;
  std::int64_t ncx_ = 0;
  std::int64_t ncy_ = 0;
  std::vector<std::int32_t> grid_slots_;
  /// Cells a point's 3x3.. neighborhood must scan: ceil(influence / cell).
  std::int64_t reach_ = 1;
};

}  // namespace tsv::core
