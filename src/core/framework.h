#pragma once
// The paper's contribution: the two-stage semi-analytical full-chip stress
// modeling framework (Algorithm 1).
//
//   Stage I  — linear superposition of characterized single-TSV fields
//              over nearby TSVs (the prior art baseline).
//   Stage II — analytical interactive stress of nearby TSV pairs.
//
// Run Stage I alone for the LS baseline, or both for the proposed framework
// (PF). Timings for both stages are reported for the Table 6 study.

#include <memory>
#include <vector>

#include "core/interactive_stage.h"
#include "core/superposition.h"
#include "geometry/sample_grid.h"
#include "materials/material.h"
#include "tsv/placement.h"

namespace tsv::core {

struct FrameworkOptions {
  mat::ThermalLoad load{};
  SuperpositionOptions stage1{};
  InteractiveOptions stage2{};
  ana::InclusionResponseOptions characterization{};
  /// Radial table extent; must cover the influence radius.
  double table_radius = 30.0;
  std::size_t table_samples = 4096;
  bool enable_interactive = true;  ///< false = plain linear superposition
  /// Convenience thread knob for both stages: 0 = hardware concurrency,
  /// n > 1 = n threads; either overrides stage1.num_threads and
  /// stage2.num_threads at construction. The default 1 leaves the per-stage
  /// settings untouched (per-stage defaults are serial).
  std::size_t num_threads = 1;
};

struct StressResult {
  std::vector<num::SymTensor2> stress;      ///< total (Stage I [+ II])
  std::vector<num::SymTensor2> interactive; ///< Stage II part (empty if off)
  double stage1_seconds = 0.0;
  double stage2_seconds = 0.0;
};

class StressFramework {
 public:
  StressFramework(const tsvlib::Placement& placement,
                  const FrameworkOptions& options = {});

  /// Shares a pre-built characterization (it depends only on the TSV
  /// structure, so sweeps over placements should reuse it).
  StressFramework(const tsvlib::Placement& placement,
                  std::shared_ptr<const ana::InteractiveStressModel> model,
                  const FrameworkOptions& options = {});

  /// Full injection: caller supplies the Stage-I single-TSV field (e.g. a
  /// StressMapTable characterized from a FEM solve, the methodology of the
  /// original LS work) and the Stage-II model (may be null when
  /// options.enable_interactive is false).
  StressFramework(const tsvlib::Placement& placement,
                  std::shared_ptr<const SingleTsvField> table,
                  std::shared_ptr<const ana::InteractiveStressModel> model,
                  const FrameworkOptions& options = {});

  /// Convenience overload taking a radial table by value.
  StressFramework(const tsvlib::Placement& placement, RadialStressTable table,
                  std::shared_ptr<const ana::InteractiveStressModel> model,
                  const FrameworkOptions& options = {});

  const FrameworkOptions& options() const { return options_; }
  const LinearSuperposition& stage1() const { return stage1_; }
  const InteractiveStage* stage2() const { return stage2_.get(); }
  const ana::SingleTsvModel& single_tsv() const { return single_; }

  /// Full evaluation at a list of points.
  StressResult evaluate(const std::vector<geo::Point>& points) const;

  /// Convenience: evaluate over a grid (row-major point order).
  StressResult evaluate(const geo::SampleGrid& grid) const;

  /// Single-point evaluation (slow path; prefer the batched overloads).
  num::SymTensor2 stress_at(const geo::Point& p) const;

 private:
  FrameworkOptions options_;
  ana::SingleTsvModel single_;
  LinearSuperposition stage1_;
  std::shared_ptr<const ana::InteractiveStressModel> model_;
  std::unique_ptr<InteractiveStage> stage2_;
};

}  // namespace tsv::core
