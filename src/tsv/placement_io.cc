#include "tsv/placement_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tsv::tsvlib {
namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "placement parse error at line " << line_no << ": " << what;
  throw std::runtime_error(os.str());
}

}  // namespace

Placement read_placement(std::istream& in) {
  TsvStructure structure;
  bool have_structure = false;
  std::vector<geo::Point> centers;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line
    if (keyword == "structure") {
      double r = 0.0;
      double t = 0.0;
      std::string liner;
      if (!(ls >> r >> t >> liner))
        parse_error(line_no, "expected: structure <R> <t> <BCB|SiO2>");
      structure.body_radius = r;
      structure.liner_thickness = t;
      if (liner == "BCB") {
        structure.liner = mat::bcb();
      } else if (liner == "SiO2") {
        structure.liner = mat::silicon_dioxide();
      } else {
        parse_error(line_no, "unknown liner material '" + liner + "'");
      }
      have_structure = true;
    } else if (keyword == "tsv") {
      geo::Point p;
      if (!(ls >> p.x >> p.y)) parse_error(line_no, "expected: tsv <x> <y>");
      centers.push_back(p);
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!have_structure)
    throw std::runtime_error("placement file has no 'structure' line");
  return Placement(structure, std::move(centers));
}

Placement read_placement_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open placement file: " + path);
  return read_placement(in);
}

void write_placement(std::ostream& out, const Placement& p) {
  const TsvStructure& s = p.structure();
  out << "# tsvstress placement, lengths in um\n";
  out << "structure " << s.body_radius << ' ' << s.liner_thickness << ' '
      << s.liner.name << '\n';
  for (const auto& c : p.centers()) out << "tsv " << c.x << ' ' << c.y << '\n';
}

void write_placement_file(const std::string& path, const Placement& p) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_placement(out, p);
}

}  // namespace tsv::tsvlib
