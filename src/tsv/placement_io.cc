#include "tsv/placement_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace tsv::tsvlib {
namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  std::ostringstream os;
  os << "placement parse error at line " << line_no << ": " << what;
  throw InvalidInputError(os.str());
}

/// strtod-based double parsing: unlike istream extraction it accepts the
/// full C grammar ("nan", "inf", overflow to infinity), so garbage
/// coordinates parse *successfully* here and are then rejected by the
/// explicit finiteness validation below with a clear, line-numbered error
/// instead of leaking NaN/Inf into the engines.
bool parse_double(std::istream& in, double& out) {
  std::string token;
  if (!(in >> token)) return false;
  const char* begin = token.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end == begin + token.size() && end != begin;
}

void require_finite(std::size_t line_no, const char* what, double v) {
  if (!std::isfinite(v)) {
    std::ostringstream os;
    os << what << " is not a finite number (" << v << ")";
    parse_error(line_no, os.str());
  }
}

}  // namespace

Placement read_placement(std::istream& in) {
  TsvStructure structure;
  bool have_structure = false;
  std::vector<geo::Point> centers;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string keyword;
    if (!(ls >> keyword)) continue;  // blank line
    if (keyword == "structure") {
      double r = 0.0;
      double t = 0.0;
      std::string liner;
      if (!parse_double(ls, r) || !parse_double(ls, t) || !(ls >> liner))
        parse_error(line_no, "expected: structure <R> <t> <BCB|SiO2>");
      require_finite(line_no, "body radius", r);
      require_finite(line_no, "liner thickness", t);
      if (r <= 0.0) parse_error(line_no, "body radius must be positive");
      if (t < 0.0)
        parse_error(line_no, "liner thickness must be non-negative");
      structure.body_radius = r;
      structure.liner_thickness = t;
      if (liner == "BCB") {
        structure.liner = mat::bcb();
      } else if (liner == "SiO2") {
        structure.liner = mat::silicon_dioxide();
      } else {
        parse_error(line_no, "unknown liner material '" + liner + "'");
      }
      have_structure = true;
    } else if (keyword == "tsv") {
      geo::Point p;
      if (!parse_double(ls, p.x) || !parse_double(ls, p.y))
        parse_error(line_no, "expected: tsv <x> <y>");
      require_finite(line_no, "tsv x coordinate", p.x);
      require_finite(line_no, "tsv y coordinate", p.y);
      centers.push_back(p);
    } else {
      parse_error(line_no, "unknown keyword '" + keyword + "'");
    }
  }
  if (!have_structure)
    throw InvalidInputError("placement file has no 'structure' line");
  return Placement(structure, std::move(centers));
}

Placement read_placement_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInputError("cannot open placement file: " + path);
  return read_placement(in);
}

void write_placement(std::ostream& out, const Placement& p) {
  const TsvStructure& s = p.structure();
  out << "# tsvstress placement, lengths in um\n";
  out << "structure " << s.body_radius << ' ' << s.liner_thickness << ' '
      << s.liner.name << '\n';
  for (const auto& c : p.centers()) out << "tsv " << c.x << ' ' << c.y << '\n';
}

void write_placement_file(const std::string& path, const Placement& p) {
  std::ofstream out(path);
  if (!out) throw InvalidInputError("cannot open for write: " + path);
  write_placement(out, p);
}

}  // namespace tsv::tsvlib
