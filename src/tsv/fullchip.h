#pragma once
// Synthetic full-chip TSV workloads (the scale of the paper's Table 6 and
// beyond). Real designs mix three populations: regular power/ground TSV
// arrays, tightly clustered signal banks, and sparse TSVs scattered through
// logic regions. A seeded generator composes all three on one chip with a
// global minimum-pitch guarantee (enforced incrementally through
// geo::OccupancyGrid, the dynamic sibling of the framework's GridIndex), so
// scalability benches and property tests get reproducible designs at any
// size without shipping placement files.

#include <cstdint>
#include <string>
#include <vector>

#include "tsv/placement.h"

namespace tsv::tsvlib {

enum class TsvKind : std::uint8_t { kArray, kBank, kRandom };

const char* to_string(TsvKind kind);

struct FullChipSpec {
  geo::Box chip{{0.0, 0.0}, {500.0, 500.0}};
  double min_pitch = 10.0;  ///< um, global center-to-center floor
  std::uint64_t seed = 1;

  /// Regular arrays (power/ground bundles): `array_blocks` blocks of
  /// array_nx x array_ny TSVs at array_pitch, dropped at random
  /// non-conflicting anchors.
  std::size_t array_blocks = 2;
  std::size_t array_nx = 8;
  std::size_t array_ny = 8;
  double array_pitch = 10.0;

  /// Clustered signal banks: `bank_count` banks of `bank_size` TSVs thrown
  /// uniformly into a disc of `bank_radius` around a random bank center.
  std::size_t bank_count = 4;
  std::size_t bank_size = 16;
  double bank_radius = 25.0;

  /// Sparse logic-region TSVs, uniform over the whole chip.
  std::size_t random_count = 128;

  std::size_t total() const {
    return array_blocks * array_nx * array_ny + bank_count * bank_size +
           random_count;
  }
};

/// A generated design: the placement plus the population each TSV belongs
/// to (`kinds` aligns with placement.centers()).
struct FullChipDesign {
  Placement placement;
  std::vector<TsvKind> kinds;

  std::size_t count(TsvKind kind) const;
};

/// Generates a design satisfying `spec`. Deterministic for a given seed.
/// Throws std::runtime_error when the chip cannot fit the requested
/// populations under the min-pitch constraint (too many rejections), and
/// std::invalid_argument for inconsistent specs (e.g. array_pitch below
/// min_pitch).
FullChipDesign make_fullchip(const TsvStructure& s, const FullChipSpec& spec);

/// Spec with the default population mix (~40% array / ~30% bank / ~30%
/// logic) scaled to `count` TSVs on a square chip sized for `density`
/// TSVs per um^2 overall (paper Table 6 sweeps 0.25e-2 to 1.0e-2).
FullChipSpec spec_for_count(std::size_t count, double density,
                            std::uint64_t seed);

/// CSV export (columns x_um, y_um, kind) for plotting and external tools.
void write_fullchip_csv(const std::string& path, const FullChipDesign& design);

}  // namespace tsv::tsvlib
