#pragma once
// Plain-text placement format:
//
//   # comment
//   structure <body_radius_um> <liner_thickness_um> <liner_material>
//   tsv <x_um> <y_um>
//   tsv ...
//
// liner_material is one of: BCB, SiO2. Body is copper, substrate silicon
// (the paper's baseline); extend here if more stacks are needed.

#include <iosfwd>
#include <string>

#include "tsv/placement.h"

namespace tsv::tsvlib {

/// Parses the placement format; throws tsv::InvalidInputError (a
/// std::runtime_error) with a line number on malformed input. Validation is
/// strict: NaN/Inf coordinates, a non-positive body radius, and a negative
/// liner thickness are rejected at parse time so they can never reach the
/// engines.
Placement read_placement(std::istream& in);
Placement read_placement_file(const std::string& path);

void write_placement(std::ostream& out, const Placement& p);
void write_placement_file(const std::string& path, const Placement& p);

}  // namespace tsv::tsvlib
