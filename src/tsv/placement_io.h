#pragma once
// Plain-text placement format:
//
//   # comment
//   structure <body_radius_um> <liner_thickness_um> <liner_material>
//   tsv <x_um> <y_um>
//   tsv ...
//
// liner_material is one of: BCB, SiO2. Body is copper, substrate silicon
// (the paper's baseline); extend here if more stacks are needed.

#include <iosfwd>
#include <string>

#include "tsv/placement.h"

namespace tsv::tsvlib {

/// Parses the placement format; throws std::runtime_error with a line number
/// on malformed input.
Placement read_placement(std::istream& in);
Placement read_placement_file(const std::string& path);

void write_placement(std::ostream& out, const Placement& p);
void write_placement_file(const std::string& path, const Placement& p);

}  // namespace tsv::tsvlib
