#include "tsv/fullchip.h"

#include <cmath>
#include <numbers>
#include <random>
#include <stdexcept>

#include "core/error.h"
#include "geometry/grid_index.h"
#include "io/csv.h"

namespace tsv::tsvlib {
namespace {

/// Shared generator state: the occupancy grid holds every accepted center,
/// so the min-pitch test is O(1) per candidate regardless of design size.
struct Builder {
  const FullChipSpec& spec;
  std::mt19937_64 rng;
  geo::OccupancyGrid occupied;
  std::vector<TsvKind> kinds;

  explicit Builder(const FullChipSpec& s)
      : spec(s),
        rng(s.seed),
        occupied(s.chip, std::max(s.min_pitch, 1.0)) {}

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  }

  bool fits(const geo::Point& p) const {
    return spec.chip.contains(p) &&
           !occupied.any_within(p, spec.min_pitch * (1.0 - 1e-12));
  }

  void accept(const geo::Point& p, TsvKind kind) {
    occupied.insert(p);
    kinds.push_back(kind);
  }

  [[noreturn]] void fail(const char* population) {
    throw ResourceLimitError(
        std::string("make_fullchip: could not place the ") + population +
        " population under the min-pitch constraint; enlarge the chip or "
        "reduce the TSV counts");
  }
};

void place_arrays(Builder& b) {
  const FullChipSpec& spec = b.spec;
  if (spec.array_blocks == 0 || spec.array_nx * spec.array_ny == 0) return;
  const double ex = static_cast<double>(spec.array_nx - 1) * spec.array_pitch;
  const double ey = static_cast<double>(spec.array_ny - 1) * spec.array_pitch;
  if (ex > spec.chip.width() || ey > spec.chip.height())
    throw std::invalid_argument(
        "make_fullchip: an array block does not fit the chip");
  std::vector<geo::Point> block;
  block.reserve(spec.array_nx * spec.array_ny);
  for (std::size_t i = 0; i < spec.array_blocks; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
      const geo::Point origin{b.uniform(spec.chip.lo.x, spec.chip.hi.x - ex),
                              b.uniform(spec.chip.lo.y, spec.chip.hi.y - ey)};
      block.clear();
      bool ok = true;
      for (std::size_t iy = 0; iy < spec.array_ny && ok; ++iy) {
        for (std::size_t ix = 0; ix < spec.array_nx && ok; ++ix) {
          const geo::Point p{
              origin.x + static_cast<double>(ix) * spec.array_pitch,
              origin.y + static_cast<double>(iy) * spec.array_pitch};
          // Block-internal spacing is array_pitch >= min_pitch by
          // construction; only conflicts against already-accepted TSVs
          // need checking.
          if (!b.fits(p)) ok = false;
          block.push_back(p);
        }
      }
      if (!ok) continue;
      for (const geo::Point& p : block) b.accept(p, TsvKind::kArray);
      placed = true;
    }
    if (!placed) b.fail("array");
  }
}

void place_banks(Builder& b) {
  const FullChipSpec& spec = b.spec;
  if (spec.bank_count == 0 || spec.bank_size == 0) return;
  std::vector<geo::Point> bank;
  bank.reserve(spec.bank_size);
  for (std::size_t i = 0; i < spec.bank_count; ++i) {
    bool placed = false;
    for (int attempt = 0; attempt < 100 && !placed; ++attempt) {
      const geo::Point center{b.uniform(spec.chip.lo.x, spec.chip.hi.x),
                              b.uniform(spec.chip.lo.y, spec.chip.hi.y)};
      bank.clear();
      bool ok = true;
      for (std::size_t k = 0; k < spec.bank_size && ok; ++k) {
        bool found = false;
        for (int draw = 0; draw < 300 && !found; ++draw) {
          // Uniform in the disc: r = R sqrt(u).
          const double r = spec.bank_radius * std::sqrt(b.uniform(0.0, 1.0));
          const double phi = b.uniform(0.0, 2.0 * std::numbers::pi);
          const geo::Point p{center.x + r * std::cos(phi),
                             center.y + r * std::sin(phi)};
          if (!b.fits(p)) continue;
          bool local_ok = true;
          for (const geo::Point& q : bank) {
            if (geo::distance_squared(p, q) <
                spec.min_pitch * spec.min_pitch) {
              local_ok = false;
              break;
            }
          }
          if (!local_ok) continue;
          bank.push_back(p);
          found = true;
        }
        if (!found) ok = false;
      }
      if (!ok) continue;
      for (const geo::Point& p : bank) b.accept(p, TsvKind::kBank);
      placed = true;
    }
    if (!placed) b.fail("bank");
  }
}

void place_random(Builder& b) {
  const FullChipSpec& spec = b.spec;
  const std::size_t max_attempts = spec.random_count * 2000 + 10000;
  std::size_t attempts = 0;
  for (std::size_t placed = 0; placed < spec.random_count;) {
    if (++attempts > max_attempts) b.fail("logic-region");
    const geo::Point p{b.uniform(spec.chip.lo.x, spec.chip.hi.x),
                       b.uniform(spec.chip.lo.y, spec.chip.hi.y)};
    if (!b.fits(p)) continue;
    b.accept(p, TsvKind::kRandom);
    ++placed;
  }
}

}  // namespace

const char* to_string(TsvKind kind) {
  switch (kind) {
    case TsvKind::kArray:
      return "array";
    case TsvKind::kBank:
      return "bank";
    case TsvKind::kRandom:
      return "random";
  }
  return "?";
}

std::size_t FullChipDesign::count(TsvKind kind) const {
  std::size_t n = 0;
  for (const TsvKind k : kinds) n += (k == kind) ? 1 : 0;
  return n;
}

FullChipDesign make_fullchip(const TsvStructure& s, const FullChipSpec& spec) {
  TSV_REQUIRE(spec.min_pitch >= 2.0 * s.outer_radius(),
              "min_pitch must keep TSVs from overlapping");
  if (spec.array_blocks > 0 && spec.array_nx * spec.array_ny > 1 &&
      spec.array_pitch < spec.min_pitch)
    throw std::invalid_argument(
        "make_fullchip: array_pitch below the global min_pitch");
  TSV_REQUIRE(spec.bank_count == 0 || spec.bank_radius > 0.0,
              "bank_radius must be positive");

  Builder b(spec);
  place_arrays(b);
  place_banks(b);
  place_random(b);

  FullChipDesign design{Placement(s, b.occupied.points()),
                        std::move(b.kinds)};
  return design;
}

FullChipSpec spec_for_count(std::size_t count, double density,
                            std::uint64_t seed) {
  TSV_REQUIRE(density > 0.0, "density must be positive");
  FullChipSpec spec;
  spec.seed = seed;
  const double side = std::sqrt(static_cast<double>(count) / density);
  spec.chip = geo::Box{{0.0, 0.0}, {side, side}};

  // ~40% arrays / ~30% banks / ~30% logic; the logic share absorbs the
  // rounding so total() == count exactly.
  const std::size_t block_tsvs = spec.array_nx * spec.array_ny;
  spec.array_blocks = static_cast<std::size_t>(
      std::round(0.4 * static_cast<double>(count) /
                 static_cast<double>(block_tsvs)));
  spec.bank_count = static_cast<std::size_t>(
      std::round(0.3 * static_cast<double>(count) /
                 static_cast<double>(spec.bank_size)));
  const std::size_t structured =
      spec.array_blocks * block_tsvs + spec.bank_count * spec.bank_size;
  if (structured > count) {
    // Tiny designs: fall back to pure logic-region TSVs.
    spec.array_blocks = 0;
    spec.bank_count = 0;
    spec.random_count = count;
  } else {
    spec.random_count = count - structured;
  }
  return spec;
}

void write_fullchip_csv(const std::string& path,
                        const FullChipDesign& design) {
  io::CsvWriter csv(path);
  csv.header({"x_um", "y_um", "kind"});
  const auto& centers = design.placement.centers();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    csv.row({std::to_string(centers[i].x), std::to_string(centers[i].y),
             to_string(design.kinds[i])});
  }
}

}  // namespace tsv::tsvlib
