#pragma once
// Placement generators for the paper's experiments: TSV pair (Sec. 5.1),
// five-TSV cross (Fig. 5), regular arrays and random placements with a
// minimum-pitch constraint (Table 6 scalability study).

#include <cstdint>

#include "tsv/placement.h"

namespace tsv::tsvlib {

/// Two TSVs on the x-axis, `pitch` apart, centered on the origin.
Placement make_pair(const TsvStructure& s, double pitch);

/// Five TSVs: one at the origin and four at distance `pitch` along +-x/+-y
/// (the cross of Fig. 5; its minimal pitch is `pitch`).
Placement make_five_cross(const TsvStructure& s, double pitch);

/// nx x ny regular array with the given pitch, lower-left TSV at `origin`.
Placement make_array(const TsvStructure& s, std::size_t nx, std::size_t ny,
                     double pitch, geo::Point origin = {0.0, 0.0});

/// `count` TSVs uniformly random in `area`, rejecting candidates closer than
/// `min_pitch` to an accepted TSV. Deterministic for a given seed. Throws
/// std::runtime_error if the area cannot fit the TSVs (too many rejections).
Placement make_random(const TsvStructure& s, std::size_t count,
                      const geo::Box& area, double min_pitch,
                      std::uint64_t seed);

/// Random placement sized to hit a target density (TSVs per um^2) with
/// `count` TSVs in a square region (paper Table 6 workloads). For densities
/// close to the square-array packing limit dart throwing cannot converge;
/// use make_jittered_array instead.
Placement make_random_with_density(const TsvStructure& s, std::size_t count,
                                   double density, double min_pitch,
                                   std::uint64_t seed);

/// Square-ish array hitting `density` (TSVs per um^2) with `count` TSVs,
/// each jittered uniformly so that the pitch never drops below `min_pitch`.
/// This reaches the dense-array packing limit (paper: 1.0e-2 um^-2 at 10 um
/// pitch) that rejection sampling cannot.
Placement make_jittered_array(const TsvStructure& s, std::size_t count,
                              double density, double min_pitch,
                              std::uint64_t seed);

}  // namespace tsv::tsvlib
