#include "tsv/generators.h"

#include <cmath>
#include <random>
#include <stdexcept>

#include "core/error.h"
#include "geometry/grid_index.h"

namespace tsv::tsvlib {

Placement make_pair(const TsvStructure& s, double pitch) {
  TSV_REQUIRE(pitch > 0.0, "pitch must be positive");
  Placement p(s, {{-pitch / 2.0, 0.0}, {pitch / 2.0, 0.0}});
  p.validate_no_overlap();
  return p;
}

Placement make_five_cross(const TsvStructure& s, double pitch) {
  TSV_REQUIRE(pitch > 0.0, "pitch must be positive");
  Placement p(s, {{0.0, 0.0},
                  {pitch, 0.0},
                  {-pitch, 0.0},
                  {0.0, pitch},
                  {0.0, -pitch}});
  p.validate_no_overlap();
  return p;
}

Placement make_array(const TsvStructure& s, std::size_t nx, std::size_t ny,
                     double pitch, geo::Point origin) {
  TSV_REQUIRE(nx >= 1 && ny >= 1, "array needs at least one TSV per axis");
  TSV_REQUIRE(pitch > 0.0, "pitch must be positive");
  Placement p(s);
  for (std::size_t iy = 0; iy < ny; ++iy)
    for (std::size_t ix = 0; ix < nx; ++ix)
      p.add({origin.x + static_cast<double>(ix) * pitch,
             origin.y + static_cast<double>(iy) * pitch});
  p.validate_no_overlap();
  return p;
}

Placement make_random(const TsvStructure& s, std::size_t count,
                      const geo::Box& area, double min_pitch,
                      std::uint64_t seed) {
  TSV_REQUIRE(min_pitch >= 2.0 * s.outer_radius(),
              "min_pitch must keep TSVs from overlapping");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(area.lo.x, area.hi.x);
  std::uniform_real_distribution<double> uy(area.lo.y, area.hi.y);

  // Dart throwing with a dynamic bucket grid: the min-pitch test is O(1)
  // per candidate, so 10k+ TSV full-chip workloads generate in linear time
  // instead of the quadratic scan this used before.
  geo::OccupancyGrid accepted(area, min_pitch);
  const std::size_t max_attempts = count * 1000 + 10000;
  std::size_t attempts = 0;
  while (accepted.size() < count) {
    if (++attempts > max_attempts)
      throw ResourceLimitError(
          "make_random: could not fit the requested TSV count into the area "
          "under the min-pitch constraint");
    const geo::Point cand{ux(rng), uy(rng)};
    if (!accepted.any_within(cand, min_pitch * (1.0 - 1e-12)))
      accepted.insert(cand);
  }
  Placement p(s, accepted.points());
  return p;
}

Placement make_random_with_density(const TsvStructure& s, std::size_t count,
                                   double density, double min_pitch,
                                   std::uint64_t seed) {
  TSV_REQUIRE(density > 0.0, "density must be positive");
  const double area = static_cast<double>(count) / density;
  const double side = std::sqrt(area);
  return make_random(s, count, geo::Box{{0.0, 0.0}, {side, side}}, min_pitch,
                     seed);
}

Placement make_jittered_array(const TsvStructure& s, std::size_t count,
                              double density, double min_pitch,
                              std::uint64_t seed) {
  TSV_REQUIRE(density > 0.0, "density must be positive");
  TSV_REQUIRE(min_pitch >= 2.0 * s.outer_radius(),
              "min_pitch must keep TSVs from overlapping");
  const double pitch = 1.0 / std::sqrt(density);
  TSV_REQUIRE(pitch >= min_pitch,
              "requested density exceeds the min-pitch packing limit");
  // Jitter amplitude that provably preserves min_pitch: if every TSV moves at
  // most j in each axis, the worst-case pitch is pitch - 2*sqrt(2)*j.
  const double j = (pitch - min_pitch) / (2.0 * std::sqrt(2.0));
  const std::size_t nx =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(count))));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jitter(-j, j);
  Placement p(s);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    p.add({static_cast<double>(ix) * pitch + jitter(rng),
           static_cast<double>(iy) * pitch + jitter(rng)});
  }
  p.validate_no_overlap();
  return p;
}

}  // namespace tsv::tsvlib
