#pragma once
// A placement: one TSV structure shared by all instances plus the instance
// centers. (All TSVs on a die share the process geometry; the paper models a
// single structure per experiment.)

#include <vector>

#include "geometry/point.h"
#include "materials/material.h"
#include "tsv/structure.h"

namespace tsv::tsvlib {

class Placement {
 public:
  Placement() = default;
  explicit Placement(TsvStructure structure) : structure_(structure) {
    structure_.validate();
  }
  Placement(TsvStructure structure, std::vector<geo::Point> centers)
      : structure_(structure), centers_(std::move(centers)) {
    structure_.validate();
  }

  const TsvStructure& structure() const { return structure_; }
  const std::vector<geo::Point>& centers() const { return centers_; }
  std::size_t size() const { return centers_.size(); }
  bool empty() const { return centers_.empty(); }

  void add(const geo::Point& center) { centers_.push_back(center); }

  /// Smallest center-to-center pitch; +inf for fewer than two TSVs.
  double min_pitch() const;

  /// TSVs per um^2 over the bounding box of centers (paper Table 6 metric).
  /// Returns 0 for fewer than two TSVs.
  double density() const;

  /// Bounding box of the TSV outlines (centers inflated by R').
  geo::Box bounding_box() const;

  /// True if point p lies inside the body or liner of any TSV.
  bool inside_any_tsv(const geo::Point& p) const;

  /// Throws std::invalid_argument if two TSVs overlap (pitch < 2 R').
  void validate_no_overlap() const;

 private:
  TsvStructure structure_;
  std::vector<geo::Point> centers_;
};

}  // namespace tsv::tsvlib
