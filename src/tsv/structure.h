#pragma once
// The TSV structure of the paper (Fig. 1): a copper body of radius R wrapped
// in a liner of thickness t (outer radius R' = R + t), embedded in silicon.
// The landing pad dimension is carried for documentation/completeness; the
// device-layer plane model does not use it (see DESIGN.md).

#include "materials/material.h"
#include "numeric/check.h"

namespace tsv::tsvlib {

struct TsvStructure {
  double body_radius = 2.5;      ///< R, um (paper: 2.5)
  double liner_thickness = 0.5;  ///< t, um (paper: 0.5)
  double landing_pad = 6.0;      ///< um (paper: 6, unused by the 2D model)
  mat::Material body = mat::copper();
  mat::Material liner = mat::bcb();
  mat::Material substrate = mat::silicon();

  /// R' = R + t, um.
  double outer_radius() const { return body_radius + liner_thickness; }
  /// k = R / R' as used by the paper's Appendix A.4.
  double radius_ratio() const { return body_radius / outer_radius(); }

  void validate() const {
    TSV_REQUIRE(body_radius > 0.0, "body radius must be positive");
    TSV_REQUIRE(liner_thickness >= 0.0, "liner thickness must be >= 0");
    body.validate();
    liner.validate();
    substrate.validate();
  }

  /// Baseline structure of the paper (BCB liner).
  static TsvStructure baseline_bcb() { return {}; }
  /// Alternative liner material studied in Appendix A.2.
  static TsvStructure baseline_sio2() {
    TsvStructure s;
    s.liner = mat::silicon_dioxide();
    return s;
  }
};

}  // namespace tsv::tsvlib
