#include "tsv/placement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace tsv::tsvlib {

double Placement::min_pitch() const {
  if (centers_.size() < 2) return std::numeric_limits<double>::infinity();
  // O(n^2) is fine for validation use; the framework itself never calls this
  // in a hot path.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < centers_.size(); ++i)
    for (std::size_t j = i + 1; j < centers_.size(); ++j)
      best = std::min(best, geo::distance(centers_[i], centers_[j]));
  return best;
}

double Placement::density() const {
  if (centers_.size() < 2) return 0.0;
  geo::Point lo = centers_.front();
  geo::Point hi = centers_.front();
  for (const auto& c : centers_) {
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
  }
  const double area = (hi.x - lo.x) * (hi.y - lo.y);
  if (area <= 0.0) return 0.0;
  return static_cast<double>(centers_.size()) / area;
}

geo::Box Placement::bounding_box() const {
  TSV_REQUIRE(!centers_.empty(), "bounding box of an empty placement");
  geo::Point lo = centers_.front();
  geo::Point hi = centers_.front();
  for (const auto& c : centers_) {
    lo.x = std::min(lo.x, c.x);
    lo.y = std::min(lo.y, c.y);
    hi.x = std::max(hi.x, c.x);
    hi.y = std::max(hi.y, c.y);
  }
  const double r = structure_.outer_radius();
  return geo::Box{{lo.x - r, lo.y - r}, {hi.x + r, hi.y + r}};
}

bool Placement::inside_any_tsv(const geo::Point& p) const {
  const double r2 = structure_.outer_radius() * structure_.outer_radius();
  return std::any_of(centers_.begin(), centers_.end(), [&](const geo::Point& c) {
    return geo::distance_squared(c, p) < r2;
  });
}

void Placement::validate_no_overlap() const {
  const double min_allowed = 2.0 * structure_.outer_radius();
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    for (std::size_t j = i + 1; j < centers_.size(); ++j) {
      const double d = geo::distance(centers_[i], centers_[j]);
      if (d < min_allowed) {
        std::ostringstream os;
        os << "TSVs " << i << " and " << j << " overlap: pitch " << d
           << " um < 2 R' = " << min_allowed << " um";
        throw std::invalid_argument(os.str());
      }
    }
  }
}

}  // namespace tsv::tsvlib
