// Full-chip stress analysis: a few hundred TSVs, a dense simulation grid,
// von Mises hot-spot extraction and a CSV field dump — the workload the
// paper's framework is built for.
//
//   build/examples/fullchip_analysis [placement.tsv]
//
// With no argument a 15x15 jittered TSV array (10 um minimal pitch) is
// generated; with an argument the placement file is loaded (see
// tsv/placement_io.h for the format).

#include <algorithm>
#include <cstdio>

#include "core/framework.h"
#include "core/koz.h"
#include "io/csv.h"
#include "tsv/generators.h"
#include "tsv/placement_io.h"

int main(int argc, char** argv) {
  using namespace tsv;

  const tsvlib::Placement placement =
      argc > 1 ? tsvlib::read_placement_file(argv[1])
               : tsvlib::make_jittered_array(
                     tsvlib::TsvStructure::baseline_bcb(), 225, 0.69e-2, 10.0,
                     2024);
  std::printf("placement: %zu TSVs, min pitch %.2f um, density %.3g /um^2\n",
              placement.size(), placement.min_pitch(), placement.density());

  const core::StressFramework framework(placement);

  // Simulation grid over the chip with a 25 um halo.
  const geo::Box roi = placement.bounding_box().expanded(25.0);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi, 0.5);
  std::printf("grid: %zu x %zu = %zu points (%.0f x %.0f um)\n", grid.nx(),
              grid.ny(), grid.size(), roi.width(), roi.height());

  const core::StressResult result = framework.evaluate(grid);
  std::printf("stage I %.2fs, stage II %.2fs (AR = %.0f%%)\n",
              result.stage1_seconds, result.stage2_seconds,
              result.stage1_seconds > 0.0
                  ? 100.0 * result.stage2_seconds / result.stage1_seconds
                  : 0.0);

  // Von Mises hot spots in the device layer (outside the TSVs themselves).
  const std::vector<geo::Point> pts = grid.points();
  struct HotSpot {
    double vm;
    geo::Point p;
  };
  std::vector<HotSpot> hot;
  std::vector<double> vm_field(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    vm_field[i] = num::von_mises_plane_stress(result.stress[i]);
    if (!placement.inside_any_tsv(pts[i]) && vm_field[i] > 0.0)
      hot.push_back({vm_field[i], pts[i]});
  }
  std::partial_sort(hot.begin(), hot.begin() + std::min<std::size_t>(5, hot.size()),
                    hot.end(),
                    [](const HotSpot& a, const HotSpot& b) { return a.vm > b.vm; });
  std::printf("\ntop von Mises hot spots (substrate):\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, hot.size()); ++i)
    std::printf("  %.1f MPa at (%.2f, %.2f)\n", hot[i].vm, hot[i].p.x,
                hot[i].p.y);

  // Interactive-stress significance: how much Stage II moved the answer.
  double max_interactive = 0.0;
  for (const auto& s : result.interactive)
    max_interactive =
        std::max(max_interactive, num::von_mises_plane_stress(s));
  std::printf("largest interactive von Mises correction: %.1f MPa\n",
              max_interactive);

  io::write_scalar_field("fullchip_von_mises.csv", pts, vm_field);
  std::printf("wrote fullchip_von_mises.csv\n");

  // Keep-out-zone report on the 9 most crowded TSVs (full-chip KOZ over
  // every TSV is the same call without the sub-placement).
  tsvlib::Placement crowded(placement.structure());
  for (std::size_t i = 0; i < std::min<std::size_t>(9, placement.size()); ++i)
    crowded.add(placement.centers()[i]);
  const core::StressFramework crowded_fw(crowded);
  core::KozOptions koz_opt;
  koz_opt.limit = 120.0;
  const auto contours = core::compute_koz(crowded_fw, crowded, koz_opt);
  const core::KozReport koz = core::summarize_koz(contours);
  std::printf("\nkeep-out zones (von Mises > %.0f MPa, first 9 TSVs):\n",
              koz_opt.limit);
  std::printf("  mean radius %.2f um, worst %.2f um (TSV %zu), total area "
              "%.0f um^2, worst asymmetry %.2fx\n",
              koz.mean_radius, koz.worst_radius, koz.worst_tsv,
              koz.total_area, koz.worst_asymmetry);
  return 0;
}
