// Quickstart: compute TSV-induced stress around a pair of TSVs with the
// two-stage semi-analytical framework and print a small report.
//
//   build/examples/quickstart
//
// Demonstrates: TsvStructure, Placement, StressFramework (LS baseline vs
// the proposed framework), querying single points and line scans.

#include <cstdio>

#include "core/framework.h"
#include "core/line_scan.h"
#include "tsv/generators.h"

int main() {
  using namespace tsv;

  // The paper's baseline TSV: 2.5 um copper body, 0.5 um BCB liner,
  // silicon substrate, -250 K anneal cool-down.
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const tsvlib::Placement pair = tsvlib::make_pair(structure, 10.0);

  // Proposed framework: Stage I (linear superposition of the characterized
  // single-TSV field) + Stage II (analytical interactive stress).
  const core::StressFramework framework(pair);

  // Baseline for comparison: Stage I only.
  core::FrameworkOptions ls_options;
  ls_options.enable_interactive = false;
  const core::StressFramework baseline(pair, ls_options);

  std::printf("Two TSVs, 10 um pitch, BCB liner, dT = -250 K\n");
  std::printf("K (single TSV far-field constant) = %.1f MPa*um^2\n\n",
              framework.single_tsv().k_constant());

  std::printf("%8s  %12s  %12s  %12s\n", "x (um)", "LS sxx", "PF sxx",
              "interactive");
  for (double x = 0.0; x <= 12.0; x += 1.0) {
    const geo::Point p{x, 0.0};
    const double ls = baseline.stress_at(p).s11;
    const double pf = framework.stress_at(p).s11;
    std::printf("%8.1f  %10.2f    %10.2f    %10.2f\n", x, ls, pf, pf - ls);
  }

  // Von Mises along a vertical line above the left TSV.
  const core::LineScan scan = core::make_line_scan({-5.0, 0.0}, {-5.0, 10.0}, 6);
  std::printf("\nvon Mises above the left TSV center:\n");
  for (std::size_t i = 0; i < scan.points.size(); ++i) {
    const double vm =
        num::von_mises_plane_stress(framework.stress_at(scan.points[i]));
    std::printf("  y = %5.1f um: %7.2f MPa\n", scan.points[i].y, vm);
  }
  return 0;
}
