// Carrier-mobility variation map: the stress tensor is converted to a
// first-order piezoresistive mobility shift for n- and p-type devices —
// the "device performance" application motivating the paper (its refs
// [1, 2]: stress-driven placement and stress-aware timing).
//
//   build/examples/mobility_variation
//
// Writes mobility_nmos.csv / mobility_pmos.csv (percent mobility change)
// and prints keep-out-zone style statistics: the radius around a TSV where
// |dmu/mu| exceeds a threshold.

#include <cmath>
#include <cstdio>

#include "core/framework.h"
#include "io/csv.h"
#include "tsv/generators.h"

namespace {

// First-order piezoresistance of silicon at room temperature, 1/MPa.
// (Channel along [110] on a (001) wafer; standard bulk values:
// n-Si: pi11 = -102.2, pi12 = 53.4, pi44 = -13.6 [1e-11/Pa];
// p-Si: pi11 = 6.6, pi12 = -1.1, pi44 = 138.1.)
struct Piezo {
  double pi_l;  // along channel
  double pi_t;  // transverse, in plane
};

// [110]-projected coefficients: pi_l = (pi11 + pi12 + pi44)/2,
// pi_t = (pi11 + pi12 - pi44)/2, converted to 1/MPa.
constexpr Piezo kNmos{(-102.2 + 53.4 - 13.6) / 2.0 * 1e-5,
                      (-102.2 + 53.4 + 13.6) / 2.0 * 1e-5};
constexpr Piezo kPmos{(6.6 - 1.1 + 138.1) / 2.0 * 1e-5,
                      (6.6 - 1.1 - 138.1) / 2.0 * 1e-5};

/// dmu/mu = -(pi_l sigma_xx + pi_t sigma_yy), channel along x.
double mobility_shift(const Piezo& pz, const tsv::num::SymTensor2& s) {
  return -(pz.pi_l * s.s11 + pz.pi_t * s.s22);
}

}  // namespace

int main() {
  using namespace tsv;
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const tsvlib::Placement placement = tsvlib::make_five_cross(structure, 10.0);
  const core::StressFramework framework(placement);

  const geo::Box roi = placement.bounding_box().expanded(15.0);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi, 0.25);
  const std::vector<geo::Point> pts = grid.points();
  const core::StressResult result = framework.evaluate(pts);

  std::vector<double> dmu_n(pts.size()), dmu_p(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    dmu_n[i] = 100.0 * mobility_shift(kNmos, result.stress[i]);
    dmu_p[i] = 100.0 * mobility_shift(kPmos, result.stress[i]);
  }
  io::write_scalar_field("mobility_nmos.csv", pts, dmu_n);
  io::write_scalar_field("mobility_pmos.csv", pts, dmu_p);
  std::printf("wrote mobility_nmos.csv / mobility_pmos.csv (%zu points)\n",
              pts.size());

  // Keep-out radius: distance from the center TSV beyond which the shift
  // stays under the threshold on the +x axis.
  for (const double threshold : {5.0, 2.0, 1.0}) {
    double koz_n = structure.outer_radius();
    double koz_p = structure.outer_radius();
    for (double r = 30.0; r > structure.outer_radius(); r -= 0.1) {
      const num::SymTensor2 s = framework.stress_at({r, 0.0});
      if (std::abs(100.0 * mobility_shift(kNmos, s)) > threshold)
        koz_n = std::max(koz_n, r);
      if (std::abs(100.0 * mobility_shift(kPmos, s)) > threshold)
        koz_p = std::max(koz_p, r);
    }
    std::printf("|dmu/mu| > %.0f%% keep-out radius: NMOS %.1f um, PMOS %.1f "
                "um\n", threshold, koz_n, koz_p);
  }
  return 0;
}
