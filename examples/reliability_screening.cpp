// Reliability screening: rank TSV pairs by the von Mises stress between
// them and flag pairs whose interactive stress changes the verdict — the
// paper's motivating use case (LS can misjudge reliability when TSVs are
// close; Sec. 1 and Table 1).
//
//   build/examples/reliability_screening [vm_limit_mpa]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/framework.h"
#include "tsv/generators.h"

int main(int argc, char** argv) {
  using namespace tsv;
  const double vm_limit = argc > 1 ? std::atof(argv[1]) : 110.0;

  // A deliberately uneven placement: a dense cluster plus scattered TSVs.
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  tsvlib::Placement placement(structure);
  const tsvlib::Placement cluster = tsvlib::make_array(structure, 3, 3, 8.0);
  const tsvlib::Placement scattered = tsvlib::make_random(
      structure, 12, geo::Box{{30.0, 0.0}, {90.0, 60.0}}, 14.0, 99);
  for (const auto& c : cluster.centers()) placement.add(c);
  for (const auto& c : scattered.centers()) placement.add(c);
  placement.validate_no_overlap();

  core::FrameworkOptions ls_opt;
  ls_opt.enable_interactive = false;
  const core::StressFramework ls(placement, ls_opt);
  const core::StressFramework pf(placement);

  std::printf("screening %zu TSVs against a %g MPa von Mises limit\n",
              placement.size(), vm_limit);
  std::printf("(probe: midpoint and quarter points of every pair closer "
              "than 25 um)\n\n");

  struct PairRisk {
    std::size_t a, b;
    double pitch;
    double vm_ls, vm_pf;
  };
  std::vector<PairRisk> risks;
  const auto& centers = placement.centers();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (std::size_t j = i + 1; j < centers.size(); ++j) {
      const double pitch = geo::distance(centers[i], centers[j]);
      if (pitch > 25.0) continue;
      double vm_ls = 0.0, vm_pf = 0.0;
      for (const double t : {0.3, 0.5, 0.7}) {
        const geo::Point p = centers[i] + t * (centers[j] - centers[i]);
        if (placement.inside_any_tsv(p)) continue;
        vm_ls = std::max(vm_ls,
                         num::von_mises_plane_stress(ls.stress_at(p)));
        vm_pf = std::max(vm_pf,
                         num::von_mises_plane_stress(pf.stress_at(p)));
      }
      risks.push_back({i, j, pitch, vm_ls, vm_pf});
    }
  }
  std::sort(risks.begin(), risks.end(),
            [](const PairRisk& x, const PairRisk& y) {
              return x.vm_pf > y.vm_pf;
            });

  std::printf("%4s %4s %9s %12s %12s %s\n", "TSV", "TSV", "pitch(um)",
              "LS vm(MPa)", "PF vm(MPa)", "verdict");
  int flips = 0;
  for (const PairRisk& r : risks) {
    const bool fail_ls = r.vm_ls > vm_limit;
    const bool fail_pf = r.vm_pf > vm_limit;
    const char* verdict = fail_pf ? (fail_ls ? "FAIL" : "FAIL (LS missed)")
                                  : (fail_ls ? "ok (LS false alarm)" : "ok");
    if (fail_ls != fail_pf) ++flips;
    std::printf("%4zu %4zu %9.2f %12.1f %12.1f %s\n", r.a, r.b, r.pitch,
                r.vm_ls, r.vm_pf, verdict);
  }
  std::printf("\n%d of %zu close pairs change verdict once interactive "
              "stress is modeled\n", flips, risks.size());
  return 0;
}
