// Reproduces Figure 6: sigma_xx error maps of LS and PF for the five-TSV
// cross placement (Fig. 5, minimal pitch 10 um). Writes
// fig6_error_ls.csv / fig6_error_pf.csv; the paper quotes LS errors up to
// ~60 MPa and PF generally within ~25 MPa.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "io/csv.h"
#include "tsv/generators.h"

int main(int argc, char** argv) {
  using namespace tsv;
  const auto config = bench::BenchConfig::parse(argc, argv);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};

  std::printf("=== Figure 6: sigma_xx error maps, five TSVs (10 um pitch), "
              "BCB ===\n");
  const bench::Characterization ch =
      bench::characterize(structure, load, config);
  const tsvlib::Placement five = tsvlib::make_five_cross(structure, 10.0);
  const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 60.0);
  const fem::FemSolution golden = bench::golden_solve(five, load, roi, config);

  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi,
                                                             config.spacing);
  const std::vector<geo::Point> pts = grid.points();
  const std::vector<num::SymTensor2> gold =
      bench::sample_field(golden.stress, pts);

  core::FrameworkOptions ls_opt;
  ls_opt.enable_interactive = false;
  const core::StressFramework ls(five, ch.table, nullptr, ls_opt);
  const core::StressFramework pf(five, ch.table, ch.model,
                                 core::FrameworkOptions{});
  const auto r_ls = ls.evaluate(pts);
  const auto r_pf = pf.evaluate(pts);

  // See bench_fig4_error_map.cc: the interface smear band of the golden is
  // reported separately from the rest of the substrate.
  const double band = structure.outer_radius() + 2.5 * config.element_size;
  const auto min_dist = [&](const geo::Point& p) {
    double d = 1e300;
    for (const auto& c : five.centers())
      d = std::min(d, geo::distance(c, p));
    return d;
  };
  std::vector<double> err_ls(pts.size()), err_pf(pts.size());
  double max_ls = 0.0, max_pf = 0.0, far_ls = 0.0, far_pf = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    err_ls[i] = r_ls.stress[i].s11 - gold[i].s11;
    err_pf[i] = r_pf.stress[i].s11 - gold[i].s11;
    if (five.inside_any_tsv(pts[i])) continue;
    max_ls = std::max(max_ls, std::abs(err_ls[i]));
    max_pf = std::max(max_pf, std::abs(err_pf[i]));
    if (min_dist(pts[i]) > band) {
      far_ls = std::max(far_ls, std::abs(err_ls[i]));
      far_pf = std::max(far_pf, std::abs(err_pf[i]));
    }
  }
  io::write_scalar_field(config.out_dir + "/fig6_error_ls.csv", pts, err_ls);
  io::write_scalar_field(config.out_dir + "/fig6_error_pf.csv", pts, err_pf);
  std::printf("wrote fig6_error_ls.csv / fig6_error_pf.csv (%zu points)\n",
              pts.size());
  std::printf("substrate max |error|: LS %.1f MPa, PF %.1f MPa\n", max_ls,
              max_pf);
  std::printf("beyond the interface smear band (r > %.2f um): LS %.1f MPa, "
              "PF %.1f MPa\n", band, far_ls, far_pf);
  return 0;
}
