// Reproduces Table 6 (Appendix A.3): run-time scalability of the proposed
// framework. AR = additional run time of Stage II relative to Stage I
// (linear superposition), across TSV count, TSV density and simulation
// point count. No FEM golden is needed here.
//
// The paper's absolute AR (12% in MATLAB) is implementation-specific; what
// the table demonstrates — and what this bench verifies — are the trends:
// AR is roughly constant in the TSV count (cases 1-3), grows with TSV
// density (cases 1, 4, 5) and is roughly constant in the simulation point
// count (cases 1, 6, 7). See EXPERIMENTS.md.
//
// Each case is run twice: serial (threads=1, the exact baseline path) and
// parallel (threads=N from --threads, default 8; 0 = hardware concurrency).
// Trend checks use the serial rows so they stay comparable with the paper;
// a per-case Stage I/II speedup summary follows the table.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "numeric/parallel.h"
#include "tsv/generators.h"

namespace {

struct Case {
  int id;
  std::size_t tsv_count;
  double density;       // TSVs per um^2
  std::size_t points;   // simulation points
};

struct Timing {
  double stage1 = 0.0;
  double stage2 = 0.0;
  double lookup2 = 0.0;  // Stage II with the polar look-up table
  double ar() const { return stage1 > 0.0 ? 100.0 * stage2 / stage1 : 0.0; }
  double lookup_ar() const {
    return stage1 > 0.0 ? 100.0 * lookup2 / stage1 : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tsv;
  const auto config = bench::BenchConfig::parse(argc, argv);
  const std::size_t par_threads = num::resolve_thread_count(config.threads);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};

  std::printf("=== Table 6: run-time scalability (AR = stage II / stage I) "
              "===\n");
  std::printf("host hardware threads: %zu; parallel rows use threads=%zu\n",
              num::hardware_thread_count(), par_threads);

  // Paper cases: (count, density x 1e-2 um^-2, points).
  std::vector<Case> cases = {
      {1, 100, 1.00e-2, 500'000}, {2, 500, 1.00e-2, 500'000},
      {3, 1000, 1.00e-2, 500'000}, {4, 100, 0.69e-2, 500'000},
      {5, 100, 0.25e-2, 500'000}, {6, 100, 1.00e-2, 1'000'000},
      {7, 100, 1.00e-2, 2'000'000}};
  if (config.fast) {
    for (auto& c : cases) c.points /= 10;
  }

  // Characterization is shared (structure-only); use the analytic table so
  // this bench runs without any FEM solve.
  const ana::SingleTsvModel single(structure, load);
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single, 30.0, 4096);
  const auto response = std::make_shared<const ana::InclusionResponse>(
      structure);
  const auto model = std::make_shared<const ana::InteractiveStressModel>(
      response, single.k_hat());

  const auto run_case = [&](const tsvlib::Placement& placement,
                            const geo::SampleGrid& grid,
                            std::size_t threads) {
    core::FrameworkOptions opt;
    opt.num_threads = threads;
    const core::StressFramework pf(placement, table, model, opt);
    const core::StressResult res = pf.evaluate(grid);

    // Same workload with the Stage-II polar look-up table (the "table
    // look-up" variant; ~1% field accuracy cost, see bench_ablation).
    core::FrameworkOptions lookup_opt;
    lookup_opt.num_threads = threads;
    lookup_opt.stage2.use_lookup_table = true;
    const core::StressFramework pf_lookup(placement, table, model, lookup_opt);
    const core::StressResult res_lookup = pf_lookup.evaluate(grid);

    return Timing{res.stage1_seconds, res.stage2_seconds,
                  res_lookup.stage2_seconds};
  };

  io::TablePrinter out({"case", "TSVs", "dens(1e-2/um^2)", "points",
                        "threads", "stageI(s)", "stageII(s)", "AR(%)",
                        "lookupII(s)", "lookupAR(%)"});
  std::vector<Timing> serial(cases.size());
  std::vector<Timing> parallel(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const tsvlib::Placement placement = tsvlib::make_jittered_array(
        structure, c.tsv_count, c.density, 10.0, 12345 + c.id);
    // Simulation points cover the array plus a 25 um halo.
    const geo::Box roi = placement.bounding_box().expanded(25.0);
    const double aspect = roi.width() / roi.height();
    const std::size_t ny = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(c.points) / aspect));
    const std::size_t nx = c.points / std::max<std::size_t>(ny, 1);
    const geo::SampleGrid grid(roi, std::max<std::size_t>(nx, 2),
                               std::max<std::size_t>(ny, 2));

    serial[i] = run_case(placement, grid, 1);
    parallel[i] = run_case(placement, grid, par_threads);

    const auto add_row = [&](std::size_t threads, const Timing& t) {
      out.add_row({std::to_string(c.id), std::to_string(c.tsv_count),
                   io::TablePrinter::format(c.density * 100.0, 3),
                   std::to_string(grid.size()), std::to_string(threads),
                   io::TablePrinter::format(t.stage1, 3),
                   io::TablePrinter::format(t.stage2, 3),
                   io::TablePrinter::format(t.ar(), 3),
                   io::TablePrinter::format(t.lookup2, 3),
                   io::TablePrinter::format(t.lookup_ar(), 3)});
    };
    add_row(1, serial[i]);
    add_row(par_threads, parallel[i]);
  }
  out.print(std::cout);
  std::printf("\n(The paper reports AR around 12%% for its MATLAB "
              "implementation, whose Stage I interpolation is far slower "
              "relative to Stage II than this C++ Stage I; the absolute AR "
              "is implementation-specific while the trends below are the "
              "paper's claims.)\n");

  std::printf("\nparallel speedup (serial / threads=%zu):\n", par_threads);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const double s1 = parallel[i].stage1 > 0.0
                          ? serial[i].stage1 / parallel[i].stage1
                          : 0.0;
    const double s2 = parallel[i].stage2 > 0.0
                          ? serial[i].stage2 / parallel[i].stage2
                          : 0.0;
    std::printf("  case %d: stage I %.2fx, stage II %.2fx\n", cases[i].id, s1,
                s2);
  }

  std::printf("\ntrend checks (paper Appendix A.3, serial rows):\n");
  std::printf("  AR vs TSV count   (1,2,3): %.0f%% %.0f%% %.0f%% — expect "
              "roughly constant\n", serial[0].ar(), serial[1].ar(),
              serial[2].ar());
  std::printf("  AR vs density     (5,4,1): %.0f%% %.0f%% %.0f%% — expect "
              "increasing\n", serial[4].ar(), serial[3].ar(), serial[0].ar());
  std::printf("  AR vs point count (1,6,7): %.0f%% %.0f%% %.0f%% — expect "
              "roughly constant\n", serial[0].ar(), serial[5].ar(),
              serial[6].ar());
  return 0;
}
