// Reproduces Table 6 (Appendix A.3): run-time scalability of the proposed
// framework. AR = additional run time of Stage II relative to Stage I
// (linear superposition), across TSV count, TSV density and simulation
// point count. No FEM golden is needed here.
//
// The paper's absolute AR (12% in MATLAB) is implementation-specific; what
// the table demonstrates — and what this bench verifies — are the trends:
// AR is roughly constant in the TSV count (cases 1-3), grows with TSV
// density (cases 1, 4, 5) and is roughly constant in the simulation point
// count (cases 1, 6, 7). See EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "tsv/generators.h"

namespace {

struct Case {
  int id;
  std::size_t tsv_count;
  double density;       // TSVs per um^2
  std::size_t points;   // simulation points
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tsv;
  const auto config = bench::BenchConfig::parse(argc, argv);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};

  std::printf("=== Table 6: run-time scalability (AR = stage II / stage I) "
              "===\n");

  // Paper cases: (count, density x 1e-2 um^-2, points).
  std::vector<Case> cases = {
      {1, 100, 1.00e-2, 500'000}, {2, 500, 1.00e-2, 500'000},
      {3, 1000, 1.00e-2, 500'000}, {4, 100, 0.69e-2, 500'000},
      {5, 100, 0.25e-2, 500'000}, {6, 100, 1.00e-2, 1'000'000},
      {7, 100, 1.00e-2, 2'000'000}};
  if (config.fast) {
    for (auto& c : cases) c.points /= 10;
  }

  // Characterization is shared (structure-only); use the analytic table so
  // this bench runs without any FEM solve.
  const ana::SingleTsvModel single(structure, load);
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single, 30.0, 4096);
  const auto response = std::make_shared<const ana::InclusionResponse>(
      structure);
  const auto model = std::make_shared<const ana::InteractiveStressModel>(
      response, single.k_hat());

  io::TablePrinter out({"case", "TSVs", "dens(1e-2/um^2)", "points",
                        "stageI(s)", "stageII(s)", "AR(%)", "lookupII(s)",
                        "lookupAR(%)"});
  std::vector<double> ar(cases.size());
  std::vector<double> ar_lookup(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const tsvlib::Placement placement = tsvlib::make_jittered_array(
        structure, c.tsv_count, c.density, 10.0, 12345 + c.id);
    // Simulation points cover the array plus a 25 um halo.
    const geo::Box roi = placement.bounding_box().expanded(25.0);
    const double aspect = roi.width() / roi.height();
    const std::size_t ny = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(c.points) / aspect));
    const std::size_t nx = c.points / std::max<std::size_t>(ny, 1);
    const geo::SampleGrid grid(roi, std::max<std::size_t>(nx, 2),
                               std::max<std::size_t>(ny, 2));

    const core::StressFramework pf(placement, table, model,
                                   core::FrameworkOptions{});
    const core::StressResult res = pf.evaluate(grid);
    ar[i] = res.stage1_seconds > 0.0
                ? 100.0 * res.stage2_seconds / res.stage1_seconds
                : 0.0;

    // Same workload with the Stage-II polar look-up table (the "table
    // look-up" variant; ~1% field accuracy cost, see bench_ablation).
    core::FrameworkOptions lookup_opt;
    lookup_opt.stage2.use_lookup_table = true;
    const core::StressFramework pf_lookup(placement, table, model, lookup_opt);
    const core::StressResult res_lookup = pf_lookup.evaluate(grid);
    ar_lookup[i] = res_lookup.stage1_seconds > 0.0
                       ? 100.0 * res_lookup.stage2_seconds /
                             res_lookup.stage1_seconds
                       : 0.0;

    out.add_row({std::to_string(c.id), std::to_string(c.tsv_count),
                 io::TablePrinter::format(c.density * 100.0, 3),
                 std::to_string(grid.size()),
                 io::TablePrinter::format(res.stage1_seconds, 3),
                 io::TablePrinter::format(res.stage2_seconds, 3),
                 io::TablePrinter::format(ar[i], 3),
                 io::TablePrinter::format(res_lookup.stage2_seconds, 3),
                 io::TablePrinter::format(ar_lookup[i], 3)});
  }
  out.print(std::cout);
  std::printf("\n(The paper reports AR around 12%% for its MATLAB "
              "implementation, whose Stage I interpolation is far slower "
              "relative to Stage II than this C++ Stage I; the absolute AR "
              "is implementation-specific while the trends below are the "
              "paper's claims.)\n");

  std::printf("\ntrend checks (paper Appendix A.3):\n");
  std::printf("  AR vs TSV count   (1,2,3): %.0f%% %.0f%% %.0f%% — expect "
              "roughly constant\n", ar[0], ar[1], ar[2]);
  std::printf("  AR vs density     (5,4,1): %.0f%% %.0f%% %.0f%% — expect "
              "increasing\n", ar[4], ar[3], ar[0]);
  std::printf("  AR vs point count (1,6,7): %.0f%% %.0f%% %.0f%% — expect "
              "roughly constant\n", ar[0], ar[5], ar[6]);
  return 0;
}
