#include "common.h"

#include <cstdio>
#include <fstream>
#include <iostream>

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "io/atomic_file.h"
#include "tsv/generators.h"

namespace tsv::bench {
namespace {

using Clock = std::chrono::steady_clock;

double parse_value(const std::string& arg, const std::string& prefix) {
  return std::stod(arg.substr(prefix.size()));
}

}  // namespace

BenchConfig BenchConfig::parse(int argc, char** argv) {
  BenchConfig c;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      // The mesh stays at 0.25 um: (a) coarser meshes leave staircase holes
      // in the 0.5 um liner ring, and (b) the paper's pitches (d/2 in
      // multiples of 0.25) stay mesh-phase aligned with the characterization
      // map only for h dividing 0.25. Fast mode just coarsens the sampling.
      c.fast = true;
      c.spacing = 1.0;
    } else if (arg.rfind("--element-size=", 0) == 0) {
      c.element_size = parse_value(arg, "--element-size=");
    } else if (arg.rfind("--spacing=", 0) == 0) {
      c.spacing = parse_value(arg, "--spacing=");
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      c.out_dir = arg.substr(std::strlen("--out-dir="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      c.threads = static_cast<std::size_t>(
          std::stoul(arg.substr(std::strlen("--threads="))));
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // Ignore google-benchmark flags when mixed binaries share a runner.
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return c;
}

Characterization characterize(const tsvlib::TsvStructure& structure,
                              const mat::ThermalLoad& load,
                              const BenchConfig& config) {
  const auto t0 = Clock::now();
  fem::FemOptions opt;
  opt.element_size = config.element_size;
  opt.margin = config.margin;
  const tsvlib::Placement one(structure, {{0.0, 0.0}});
  // The table must reach the Stage-I influence radius (25 um); solve a
  // domain that keeps the field accurate out to 30 um.
  const fem::FemSolution sol = fem::solve_thermo_elastic(
      one, load, geo::Box{{-30.0, -30.0}, {30.0, 30.0}}, opt);
  // Map resolution matches the FEM mesh so sampling reproduces the
  // discretized field exactly at mesh-phase-aligned centers.
  Characterization ch{
      std::make_shared<const core::StressMapTable>(
          core::StressMapTable::from_fem(sol.stress, {0.0, 0.0}, 30.0,
                                         config.element_size)),
      core::effective_k_from_fem(sol.stress, {0.0, 0.0}, 5.0, 15.0),
      std::make_shared<const ana::InclusionResponse>(structure),
      nullptr,
      0.0};
  const double r2 = structure.outer_radius() * structure.outer_radius();
  ch.model = std::make_shared<const ana::InteractiveStressModel>(
      ch.response, ch.k_fem / r2);
  ch.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return ch;
}

fem::FemSolution golden_solve(const tsvlib::Placement& placement,
                              const mat::ThermalLoad& load,
                              const geo::Box& roi, const BenchConfig& config) {
  fem::FemOptions opt;
  opt.element_size = config.element_size;
  opt.margin = config.margin;
  return fem::solve_thermo_elastic(placement, load, roi, opt);
}

std::vector<num::SymTensor2> sample_field(const fem::StressField& field,
                                          const std::vector<geo::Point>& pts) {
  std::vector<num::SymTensor2> out(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) out[i] = field.sample(pts[i]);
  return out;
}

std::vector<double> stats_row(const core::ErrorStats& st) {
  return {st.avg_error,          st.avg_error_thr10,
          st.rate_thr10,         st.avg_error_thr50,
          st.rate_thr50,         st.critical_avg_error_thr50,
          st.critical_rate_thr50};
}

std::vector<std::string> table_headers(const std::string& first_column) {
  return {first_column,
          "AvgErr(MPa)",
          "Thr10:Err",
          "Thr10:Rate%",
          "Thr50:Err",
          "Thr50:Rate%",
          "Crit:Err",
          "Crit:Rate%"};
}

JsonRow::JsonRow(const std::string& bench_name) { str("bench", bench_name); }

JsonRow& JsonRow::raw(const std::string& key, const std::string& value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + key + "\":" + value;
  return *this;
}

JsonRow& JsonRow::str(const std::string& key, const std::string& value) {
  std::string escaped = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  escaped += '"';
  return raw(key, escaped);
}

JsonRow& JsonRow::num(const std::string& key, double value, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return raw(key, buf);
}

JsonRow& JsonRow::uint(const std::string& key, std::uint64_t value) {
  return raw(key, std::to_string(value));
}

JsonRow& JsonRow::boolean(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

std::string JsonRow::json() const { return "{" + body_ + "}"; }

void append_jsonl(const std::string& path, const JsonRow& row) {
  const std::string line = row.json();
  std::printf("json: %s\n", line.c_str());
  try {
    // Atomic append (write temp + rename): a crash mid-append can corrupt a
    // plain O_APPEND stream's last line; here the previous file survives.
    io::atomic_append_line(path, line);
  } catch (const std::exception& e) {
    // Results already went to stdout; a failed journal append should not
    // kill a long benchmark run.
    std::fprintf(stderr, "warning: %s\n", e.what());
  }
}

std::vector<PairSweepResult> run_pair_sweep(
    const tsvlib::TsvStructure& structure, core::StressMeasure measure,
    const std::vector<double>& pitches, const BenchConfig& config,
    const std::string& title) {
  const mat::ThermalLoad load{};
  std::printf("%s\n", title.c_str());
  std::printf("liner=%s measure=%s mesh=%.3gum grid=%.3gum\n",
              structure.liner.name.c_str(), core::to_string(measure),
              config.element_size, config.spacing);
  const Characterization ch = characterize(structure, load, config);
  std::printf("characterization: K_fem=%.1f MPa*um^2 (%.1fs)\n", ch.k_fem,
              ch.seconds);

  std::vector<PairSweepResult> results;
  io::TablePrinter ls_table(table_headers("d(um)"));
  io::TablePrinter pf_table(table_headers("d(um)"));
  for (const double d : pitches) {
    const tsvlib::Placement pair = tsvlib::make_pair(structure, d);
    // Paper Sec. 5.1: monitored region 60 x 30 um centered on the pair
    // midpoint; critical region r <= 3.3 um; thresholds 10 / 50 MPa.
    const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 30.0);
    const fem::FemSolution golden = golden_solve(pair, load, roi, config);
    const geo::SampleGrid grid = geo::SampleGrid::with_spacing(
        roi, config.spacing);
    const std::vector<geo::Point> pts = grid.points();
    const std::vector<num::SymTensor2> gold =
        sample_field(golden.stress, pts);

    core::FrameworkOptions ls_opt;
    ls_opt.enable_interactive = false;
    const core::StressFramework ls(pair, ch.table, nullptr, ls_opt);
    const core::StressFramework pf(pair, ch.table, ch.model,
                                   core::FrameworkOptions{});
    const core::StressResult r_ls = ls.evaluate(pts);
    const core::StressResult r_pf = pf.evaluate(pts);

    PairSweepResult row;
    row.pitch = d;
    row.ls = core::compare_fields(measure, pts, r_ls.stress, gold, pair);
    row.pf = core::compare_fields(measure, pts, r_pf.stress, gold, pair);
    row.stage1_seconds = r_pf.stage1_seconds;
    row.stage2_seconds = r_pf.stage2_seconds;
    results.push_back(row);
    ls_table.add_row(io::TablePrinter::format(d, 3), stats_row(row.ls));
    pf_table.add_row(io::TablePrinter::format(d, 3), stats_row(row.pf));
  }

  std::printf("\nLS (linear superposition [Jung DAC'11]):\n");
  ls_table.print(std::cout);
  std::printf("\nPF (proposed framework, Stage I + II):\n");
  pf_table.print(std::cout);

  double s1 = 0.0, s2 = 0.0;
  for (const auto& r : results) {
    s1 += r.stage1_seconds;
    s2 += r.stage2_seconds;
  }
  std::printf("\nrun time: stage I %.3fs, stage II %.3fs, AR = %.1f%%\n", s1,
              s2, s1 > 0.0 ? 100.0 * s2 / s1 : 0.0);
  return results;
}

}  // namespace tsv::bench
