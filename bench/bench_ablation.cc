// Ablation studies for the design choices called out in DESIGN.md:
//   (a) series truncation of the interactive model (paper: m_max = 10) —
//       accuracy of PF at d = 8 um as the basis order grows;
//   (b) Stage-I table source — analytic (exact) vs FEM-characterized; the
//       FEM table cancels the golden's discretization bias (the paper's own
//       setup: both golden and tables come from the same FEM tool);
//   (c) FEM interface handling — centroid stamping vs Hill-blended
//       constitutive law on cut elements, measured against the exact
//       single-TSV solution.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "tsv/generators.h"

using namespace tsv;

namespace {

void ablate_series_order(const bench::BenchConfig& config) {
  std::printf("\n--- (a) interactive series truncation, two TSVs d = 8 um "
              "---\n");
  const tsvlib::TsvStructure s = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  const bench::Characterization ch = bench::characterize(s, load, config);
  const tsvlib::Placement pair = tsvlib::make_pair(s, 8.0);
  const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 30.0);
  const fem::FemSolution golden = bench::golden_solve(pair, load, roi, config);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi,
                                                             config.spacing);
  const auto pts = grid.points();
  const auto gold = bench::sample_field(golden.stress, pts);

  io::TablePrinter table({"max_basis_power", "Thr50:Rate%", "Crit:Rate%"});
  {
    core::FrameworkOptions ls_opt;
    ls_opt.enable_interactive = false;
    const core::StressFramework ls(pair, ch.table, nullptr, ls_opt);
    const auto e = core::compare_fields(core::StressMeasure::kSigmaXX, pts,
                                        ls.evaluate(pts).stress, gold, pair);
    table.add_row(std::string("LS (none)"),
                  {e.rate_thr50, e.critical_rate_thr50});
  }
  for (const int m : {2, 4, 6, 8, 12}) {
    ana::InclusionResponseOptions opt;
    opt.max_basis_power = m;
    opt.series_order = m + 6;
    opt.collocation_points = 4 * opt.series_order;
    auto response = std::make_shared<const ana::InclusionResponse>(s, opt);
    auto model = std::make_shared<const ana::InteractiveStressModel>(
        response, ch.k_fem / (s.outer_radius() * s.outer_radius()));
    const core::StressFramework pf(pair, ch.table, model,
                                   core::FrameworkOptions{});
    const auto e = core::compare_fields(core::StressMeasure::kSigmaXX, pts,
                                        pf.evaluate(pts).stress, gold, pair);
    table.add_row(std::to_string(m), {e.rate_thr50, e.critical_rate_thr50});
  }
  table.print(std::cout);
}

void ablate_table_source(const bench::BenchConfig& config) {
  std::printf("\n--- (b) Stage-I table source (two TSVs d = 10 um) ---\n");
  const tsvlib::TsvStructure s = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  const bench::Characterization ch = bench::characterize(s, load, config);
  const ana::SingleTsvModel exact(s, load);
  const core::RadialStressTable analytic_table =
      core::RadialStressTable::from_analytic(exact, 30.0, 4096);

  const tsvlib::Placement pair = tsvlib::make_pair(s, 10.0);
  const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 30.0);
  const fem::FemSolution golden = bench::golden_solve(pair, load, roi, config);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi,
                                                             config.spacing);
  const auto pts = grid.points();
  const auto gold = bench::sample_field(golden.stress, pts);

  io::TablePrinter table({"table source", "LS AvgErr(MPa)", "LS Thr50:Rate%"});
  core::FrameworkOptions ls_opt;
  ls_opt.enable_interactive = false;
  {
    const core::StressFramework ls(pair, ch.table, nullptr, ls_opt);
    const auto e = core::compare_fields(core::StressMeasure::kSigmaXX, pts,
                                        ls.evaluate(pts).stress, gold, pair);
    table.add_row(std::string("FEM-characterized"),
                  {e.avg_error, e.rate_thr50});
  }
  {
    const core::StressFramework ls(pair, analytic_table, nullptr, ls_opt);
    const auto e = core::compare_fields(core::StressMeasure::kSigmaXX, pts,
                                        ls.evaluate(pts).stress, gold, pair);
    table.add_row(std::string("analytic (exact)"),
                  {e.avg_error, e.rate_thr50});
  }
  table.print(std::cout);
  std::printf("(the FEM table absorbs the golden's staircase bias; with the "
              "exact table the LS error mixes discretization and "
              "interactive effects)\n");
}

void ablate_fem_blending(const bench::BenchConfig& config) {
  std::printf("\n--- (c) FEM interface handling vs exact single-TSV field "
              "---\n");
  const tsvlib::TsvStructure s = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  const ana::SingleTsvModel exact(s, load);
  const tsvlib::Placement one(s, {{0.0, 0.0}});

  io::TablePrinter table({"interface handling", "K_fem/K_exact",
                          "worst srr err r in [4.5,8] (MPa)"});
  for (const bool blend : {false, true}) {
    fem::FemOptions opt;
    opt.element_size = config.element_size;
    opt.margin = config.margin;
    opt.blend_interfaces = blend;
    const fem::FemSolution sol = fem::solve_thermo_elastic(
        one, load, geo::Box{{-10, -10}, {10, 10}}, opt);
    const double k_fem =
        core::effective_k_from_fem(sol.stress, {0, 0}, 4.5, 8.0);
    double worst = 0.0;
    for (double r = 4.5; r <= 8.0; r += 0.5) {
      for (double th = 0.1; th < 6.2; th += 0.37) {
        const geo::Point p{r * std::cos(th), r * std::sin(th)};
        const num::SymTensor2 cyl =
            num::cartesian_to_cylindrical(sol.stress.sample(p), th);
        worst = std::max(worst,
                         std::abs(cyl.s11 - exact.stress_cylindrical(r).s11));
      }
    }
    table.add_row(blend ? std::string("Hill-blended cut cells")
                        : std::string("centroid stamping"),
                  {k_fem / exact.k_constant(), worst});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::parse(argc, argv);
  std::printf("=== Ablation studies (mesh=%.3gum grid=%.3gum) ===\n",
              config.element_size, config.spacing);
  ablate_series_order(config);
  ablate_table_source(config);
  ablate_fem_blending(config);
  return 0;
}
