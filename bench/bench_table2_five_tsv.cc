// Reproduces Table 2: the five-TSV cross placement (Fig. 5, minimal pitch
// 10 um) — sigma_xx and von Mises error of LS and PF against the FEM
// golden. Monitored region 60x60 um, thresholds 10/50 MPa, critical region
// r <= 3.3 um.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "tsv/generators.h"

int main(int argc, char** argv) {
  using namespace tsv;
  const auto config = bench::BenchConfig::parse(argc, argv);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  std::printf("=== Table 2: five TSVs (cross, 10 um pitch), BCB liner ===\n");
  std::printf("mesh=%.3gum grid=%.3gum\n", config.element_size,
              config.spacing);

  const bench::Characterization ch =
      bench::characterize(structure, load, config);
  std::printf("characterization: K_fem=%.1f MPa*um^2 (%.1fs)\n", ch.k_fem,
              ch.seconds);

  const tsvlib::Placement five = tsvlib::make_five_cross(structure, 10.0);
  const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 60.0);
  const fem::FemSolution golden = bench::golden_solve(five, load, roi, config);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi,
                                                             config.spacing);
  const std::vector<geo::Point> pts = grid.points();
  const std::vector<num::SymTensor2> gold =
      bench::sample_field(golden.stress, pts);

  core::FrameworkOptions ls_opt;
  ls_opt.enable_interactive = false;
  const core::StressFramework ls(five, ch.table, nullptr, ls_opt);
  const core::StressFramework pf(five, ch.table, ch.model,
                                 core::FrameworkOptions{});
  const core::StressResult r_ls = ls.evaluate(pts);
  const core::StressResult r_pf = pf.evaluate(pts);

  io::TablePrinter table(bench::table_headers("method/measure"));
  for (const auto measure :
       {core::StressMeasure::kSigmaXX, core::StressMeasure::kVonMises}) {
    const core::ErrorStats e_ls =
        core::compare_fields(measure, pts, r_ls.stress, gold, five);
    const core::ErrorStats e_pf =
        core::compare_fields(measure, pts, r_pf.stress, gold, five);
    table.add_row(std::string("LS ") + core::to_string(measure),
                  bench::stats_row(e_ls));
    table.add_row(std::string("PF ") + core::to_string(measure),
                  bench::stats_row(e_pf));
  }
  table.print(std::cout);
  std::printf("\nrun time: stage I %.3fs, stage II %.3fs, AR = %.1f%%\n",
              r_pf.stage1_seconds, r_pf.stage2_seconds,
              r_pf.stage1_seconds > 0.0
                  ? 100.0 * r_pf.stage2_seconds / r_pf.stage1_seconds
                  : 0.0);
  return 0;
}
