// Stress-service latency/throughput bench: one in-process daemon on a Unix
// socket, one client, a warm full-chip session.
//
//   bench_server [--tsvs=N] [--spacing=X] [--density=D] [--queries=N]
//                [--edits=N] [--out-dir=PATH]
//
// Measures, against a resident (warm) session:
//   * point-query latency (one [x, y] per request) — p50/p99 and
//     sustained queries/s over the full run;
//   * ECO edit-batch latency (one single-TSV move per request), on two
//     sessions — journal fsync on (the default durability contract) and
//     off — so the journal's per-batch durability overhead is measured,
//     not guessed (EXPERIMENTS.md appendix);
//   * region-window throughput (grid points returned per second).
//
// Appends a JSONL row to <out-dir>/server.jsonl (schema: bench/common.h);
// tools/check_kernel_perf.py-style guards can trend it. The session is
// opened over the wire from serialized placement text, so the measured path
// is the full protocol stack, not a shortcut into the engine.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "common.h"
#include "server/client.h"
#include "server/server.h"
#include "tsv/fullchip.h"
#include "tsv/placement_io.h"

namespace {

using namespace tsv;

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double ms_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tsvs = 1000;
  double spacing = 1.0;
  double density = 0.25e-2;
  std::size_t n_queries = 2000;
  std::size_t n_edits = 64;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--tsvs=", 0) == 0) tsvs = std::stoul(value("--tsvs="));
    else if (arg.rfind("--spacing=", 0) == 0)
      spacing = std::stod(value("--spacing="));
    else if (arg.rfind("--density=", 0) == 0)
      density = std::stod(value("--density="));
    else if (arg.rfind("--queries=", 0) == 0)
      n_queries = std::stoul(value("--queries="));
    else if (arg.rfind("--edits=", 0) == 0)
      n_edits = std::stoul(value("--edits="));
    else if (arg.rfind("--out-dir=", 0) == 0) out_dir = value("--out-dir=");
    else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  const tsvlib::TsvStructure structure{};
  const tsvlib::FullChipSpec spec =
      tsvlib::spec_for_count(tsvs, density, 90000 + tsvs);
  const tsvlib::FullChipDesign design = tsvlib::make_fullchip(structure, spec);
  std::ostringstream placement_text;
  tsvlib::write_placement(placement_text, design.placement);

  const std::string socket_path = out_dir + "/bench_server.sock";
  server::ServerOptions options;
  options.unix_path = socket_path;
  options.snapshot_dir = out_dir + "/bench_server_snaps";
  server::StressServer daemon(options);
  std::thread daemon_thread([&] { daemon.run(); });

  server::Client client = server::Client::connect_unix(socket_path);
  std::printf("daemon on %s; opening %zu-TSV session (spacing %.2g um)\n",
              daemon.endpoint().c_str(), design.placement.size(), spacing);

  const auto open_start = std::chrono::steady_clock::now();
  server::JsonValue open_req = server::Client::request("open", "bench");
  open_req.set("placement", server::JsonValue(placement_text.str()));
  open_req.set("spacing", server::JsonValue(spacing));
  const server::JsonValue opened = client.call(open_req);
  const double open_ms = ms_since(open_start);
  const auto grid_points =
      static_cast<std::size_t>(opened.at("grid_nx").as_number() *
                               opened.at("grid_ny").as_number());
  std::printf("session open (cold build): %.0f ms, %zu grid points\n",
              open_ms, grid_points);

  // Warm point queries: uniform random probes over the chip, one point per
  // request — the latency floor a placement loop would see.
  std::mt19937_64 rng(12345);
  std::uniform_real_distribution<double> ux(spec.chip.lo.x, spec.chip.hi.x);
  std::uniform_real_distribution<double> uy(spec.chip.lo.y, spec.chip.hi.y);
  std::vector<double> query_ms;
  query_ms.reserve(n_queries);
  const auto queries_start = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < n_queries; ++q) {
    server::JsonValue req = server::Client::request("query", "bench");
    server::JsonValue xy = server::JsonValue::array();
    xy.items().push_back(server::JsonValue(ux(rng)));
    xy.items().push_back(server::JsonValue(uy(rng)));
    server::JsonValue points = server::JsonValue::array();
    points.items().push_back(std::move(xy));
    req.set("points", std::move(points));
    const auto t0 = std::chrono::steady_clock::now();
    client.call(req);
    query_ms.push_back(ms_since(t0));
  }
  const double queries_wall_s = ms_since(queries_start) / 1000.0;
  const double queries_per_s =
      static_cast<double>(n_queries) / queries_wall_s;
  const double q_p50 = percentile(query_ms, 0.50);
  const double q_p99 = percentile(query_ms, 0.99);
  std::printf("point queries: %zu in %.2f s -> %.0f/s, p50 %.3f ms, "
              "p99 %.3f ms\n",
              n_queries, queries_wall_s, queries_per_s, q_p50, q_p99);

  // ECO edits: jitter one random TSV per batch (legal: +/- 0.5 um keeps the
  // min-pitch floor intact at the default 10 um pitch). Run once against
  // the default session (journal fsync on every acked batch) and once
  // against a journal_fsync=false session, so the row separates engine
  // cost from durability cost.
  std::uniform_int_distribution<std::uint32_t> pick(
      0, static_cast<std::uint32_t>(design.placement.size() - 1));
  std::uniform_real_distribution<double> jitter(-0.5, 0.5);
  const auto measure_edits = [&](const std::string& session) {
    std::vector<double> edit_ms;
    edit_ms.reserve(n_edits);
    for (std::size_t e = 0; e < n_edits; ++e) {
      const std::uint32_t id = pick(rng);
      const geo::Point c = design.placement.centers()[id];
      server::JsonValue op = server::JsonValue::object();
      op.set("op", server::JsonValue("move"));
      op.set("id", server::JsonValue(id));
      op.set("x", server::JsonValue(c.x + jitter(rng)));
      op.set("y", server::JsonValue(c.y + jitter(rng)));
      server::JsonValue ops = server::JsonValue::array();
      ops.items().push_back(std::move(op));
      server::JsonValue req = server::Client::request("eco", session);
      req.set("ops", std::move(ops));
      const auto t0 = std::chrono::steady_clock::now();
      client.call(req);
      edit_ms.push_back(ms_since(t0));
    }
    return edit_ms;
  };
  const std::vector<double> edit_ms = measure_edits("bench");
  const double e_p50 = percentile(edit_ms, 0.50);
  const double e_p99 = percentile(edit_ms, 0.99);
  std::printf("eco edits (journal fsync): %zu single-move batches, "
              "p50 %.2f ms, p99 %.2f ms\n",
              n_edits, e_p50, e_p99);

  server::JsonValue open_nofsync =
      server::Client::request("open", "bench_nofsync");
  open_nofsync.set("placement", server::JsonValue(placement_text.str()));
  open_nofsync.set("spacing", server::JsonValue(spacing));
  open_nofsync.set("journal_fsync", server::JsonValue(false));
  client.call(open_nofsync);
  const std::vector<double> edit_nofsync_ms = measure_edits("bench_nofsync");
  const double en_p50 = percentile(edit_nofsync_ms, 0.50);
  const double en_p99 = percentile(edit_nofsync_ms, 0.99);
  std::printf("eco edits (no fsync):      %zu single-move batches, "
              "p50 %.2f ms, p99 %.2f ms (journal overhead p50 %+.2f ms)\n",
              n_edits, en_p50, en_p99, e_p50 - en_p50);
  server::JsonValue close_nofsync =
      server::Client::request("close", "bench_nofsync");
  close_nofsync.set("discard", server::JsonValue(true));
  client.call(close_nofsync);

  // Region throughput: a 100 x 100 um window per request.
  const double wx = std::min(100.0, spec.chip.width());
  const double wy = std::min(100.0, spec.chip.height());
  std::size_t region_points = 0;
  const auto region_start = std::chrono::steady_clock::now();
  constexpr std::size_t kRegionRequests = 16;
  for (std::size_t r = 0; r < kRegionRequests; ++r) {
    const double x0 = ux(rng) * (1.0 - wx / spec.chip.width());
    const double y0 = uy(rng) * (1.0 - wy / spec.chip.height());
    server::JsonValue req = server::Client::request("region", "bench");
    req.set("x0", server::JsonValue(x0));
    req.set("y0", server::JsonValue(y0));
    req.set("x1", server::JsonValue(x0 + wx));
    req.set("y1", server::JsonValue(y0 + wy));
    const server::JsonValue resp = client.call(req);
    region_points += resp.at("value").as_array().size();
  }
  const double region_wall_s = ms_since(region_start) / 1000.0;
  const double region_pts_per_s =
      static_cast<double>(region_points) / region_wall_s;
  std::printf("region maps: %zu requests, %zu points in %.2f s -> "
              "%.3g points/s\n",
              kRegionRequests, region_points, region_wall_s,
              region_pts_per_s);

  client.call(server::Client::request("shutdown"));
  daemon_thread.join();

  bench::JsonRow row("server");
  row.uint("tsvs", design.placement.size())
      .uint("grid_points", grid_points)
      .num("spacing_um", spacing)
      .num("open_ms", open_ms, "%.1f")
      .uint("queries", n_queries)
      .num("point_queries_per_s", queries_per_s, "%.1f")
      .num("query_p50_ms", q_p50, "%.4f")
      .num("query_p99_ms", q_p99, "%.4f")
      .uint("edits", n_edits)
      .num("eco_p50_ms", e_p50, "%.3f")
      .num("eco_p99_ms", e_p99, "%.3f")
      .num("eco_nofsync_p50_ms", en_p50, "%.3f")
      .num("eco_nofsync_p99_ms", en_p99, "%.3f")
      .num("region_points_per_s", region_pts_per_s, "%.4g")
      .num("peak_rss_mb", peak_rss_mb(), "%.1f");
  bench::append_jsonl(out_dir + "/server.jsonl", row);
  std::printf("appended row to %s/server.jsonl\n", out_dir.c_str());
  return 0;
}
