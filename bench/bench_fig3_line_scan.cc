// Reproduces Figure 3: sigma_xx along the line through the centers of two
// baseline (BCB) TSVs — FEM golden vs linear superposition vs the proposed
// framework. Writes fig3_line_scan.csv and prints a summary of the
// overestimation LS shows in the inter-TSV region.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/line_scan.h"
#include "io/csv.h"
#include "tsv/generators.h"

int main(int argc, char** argv) {
  using namespace tsv;
  const auto config = bench::BenchConfig::parse(argc, argv);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  const double pitch = 10.0;  // Fig. 3 uses a small pitch; 10 um = Fig. 4's

  std::printf("=== Figure 3: sigma_xx along the line through two TSV centers "
              "(d = %.0f um, BCB) ===\n", pitch);

  const bench::Characterization ch =
      bench::characterize(structure, load, config);
  const tsvlib::Placement pair = tsvlib::make_pair(structure, pitch);
  const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 30.0);
  const fem::FemSolution golden = bench::golden_solve(pair, load, roi, config);

  core::FrameworkOptions ls_opt;
  ls_opt.enable_interactive = false;
  const core::StressFramework ls(pair, ch.table, nullptr, ls_opt);
  const core::StressFramework pf(pair, ch.table, ch.model,
                                 core::FrameworkOptions{});

  const core::LineScan scan =
      core::make_line_scan({-30.0, 0.0}, {30.0, 0.0}, 601);
  io::CsvWriter csv(config.out_dir + "/fig3_line_scan.csv");
  csv.header({"x_um", "fem_sxx", "ls_sxx", "pf_sxx"});

  double worst_ls = 0.0, worst_pf = 0.0;
  double worst_ls_x = 0.0;
  for (std::size_t i = 0; i < scan.points.size(); ++i) {
    const geo::Point& p = scan.points[i];
    const double fem_v = golden.stress.sample(p).s11;
    const double ls_v = ls.stress_at(p).s11;
    const double pf_v = pf.stress_at(p).s11;
    csv.row(std::vector<double>{p.x, fem_v, ls_v, pf_v});
    // Compare in the substrate between and around the TSVs.
    if (!pair.inside_any_tsv(p)) {
      if (std::abs(ls_v - fem_v) > worst_ls) {
        worst_ls = std::abs(ls_v - fem_v);
        worst_ls_x = p.x;
      }
      worst_pf = std::max(worst_pf, std::abs(pf_v - fem_v));
    }
  }
  std::printf("wrote %s\n", csv.path().c_str());
  std::printf("substrate worst |error| along the line: LS %.1f MPa (at x = "
              "%.2f um), PF %.1f MPa\n", worst_ls, worst_ls_x, worst_pf);
  std::printf("midpoint sigma_xx: FEM %.1f, LS %.1f, PF %.1f MPa (paper: LS "
              "overestimates between the TSVs)\n",
              golden.stress.sample({0.0, 0.0}).s11,
              ls.stress_at({0.0, 0.0}).s11, pf.stress_at({0.0, 0.0}).s11);
  return 0;
}
