// Reproduces Table 1 of the paper: error of sigma_xx for a two-TSV
// placement with BCB liner, pitch swept 8..30 um, LS vs PF against the FEM
// golden. Monitored region 60x30 um, thresholds 10/50 MPa, critical region
// r <= 3.3 um.

#include "common.h"

int main(int argc, char** argv) {
  const auto config = tsv::bench::BenchConfig::parse(argc, argv);
  tsv::bench::run_pair_sweep(
      tsv::tsvlib::TsvStructure::baseline_bcb(),
      tsv::core::StressMeasure::kSigmaXX,
      {8.0, 9.0, 10.0, 11.0, 12.0, 18.0, 30.0}, config,
      "=== Table 1: two TSVs, BCB liner, sigma_xx ===");
  return 0;
}
