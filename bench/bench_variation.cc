// Variation bench: Monte Carlo sweep cost through the resident incremental
// engine vs the cold full-recompute baseline, on seeded full-chip designs.
//
// For each design size the bench
//   1. builds a VariationEngine (one resident IncrementalEngine over the
//      design, quantized Stage II tables by default),
//   2. streams N jitter+CTE samples through it (each sample is an edit
//      batch, never a fresh build), collecting the per-point statistics and
//      the pitch regression,
//   3. times both recompute baselines a naive Monte Carlo loop could pay
//      per sample: cold (fresh characterization + engine build, which is
//      the bench's own build_seconds) and warm (in-place rebuild() with all
//      tables cached),
//   4. reports speedup_cold = cold_build_s / mean_sample_s — the
//      acceptance floor is >= 50x at 1k TSVs (tools/check_kernel_perf.py
//      --variation gates CI on it) — plus speedup_warm for transparency.
//
// Per-sample cost scales with the edit batch: ~2 x jitter_tsvs moves
// (revert the previous sample's subset + jitter the next) at roughly a
// fixed cost per move, on top of an O(points) accumulation pass. The
// default batch jitters 4 TSVs per sample.
//
// One JSON row per design is appended to <out-dir>/variation.jsonl via the
// shared bench::append_jsonl helper.
//
// Options (beyond --fast):
//   --designs=1000         TSV counts to sweep
//   --samples=24           Monte Carlo samples per design
//   --seed=1               sampler seed
//   --jitter-tsvs=4        TSVs jittered per sample
//   --density=0.0025       TSVs per um^2
//   --quant=0.25           Stage II pitch quantization step, um
//   --spacing=2.5          simulation-point grid spacing, um
//   --surrogate            fit + use the certified Stage II surrogate
//   --threads=1            threads for the accumulation pass
//   --out-dir=results      where variation.jsonl goes

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "stats/variation_engine.h"
#include "tsv/fullchip.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  std::vector<std::size_t> designs = {1000};
  std::size_t samples = 24;
  std::uint64_t seed = 1;
  std::size_t jitter_tsvs = 4;
  double density = 0.25e-2;
  double quant_step = 0.25;
  double spacing = 2.5;
  bool surrogate = false;
  std::size_t threads = 1;
  bool fast = false;
  std::string out_dir = "results";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--fast") {
      o.fast = true;
      o.designs = {200};
      o.samples = 8;
      o.spacing = 4.0;
    } else if (arg.rfind("--designs=", 0) == 0) {
      o.designs.clear();
      std::string list = value("--designs=");
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        o.designs.push_back(std::stoul(list.substr(pos, end - pos)));
        pos = end + 1;
      }
    } else if (arg.rfind("--samples=", 0) == 0) {
      o.samples = std::stoul(value("--samples="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--jitter-tsvs=", 0) == 0) {
      o.jitter_tsvs = std::stoul(value("--jitter-tsvs="));
    } else if (arg.rfind("--density=", 0) == 0) {
      o.density = std::stod(value("--density="));
    } else if (arg.rfind("--quant=", 0) == 0) {
      o.quant_step = std::stod(value("--quant="));
    } else if (arg.rfind("--spacing=", 0) == 0) {
      o.spacing = std::stod(value("--spacing="));
    } else if (arg == "--surrogate") {
      o.surrogate = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      o.threads = std::stoul(value("--threads="));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      o.out_dir = value("--out-dir=");
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsv;
  const Options opt = parse(argc, argv);
  std::filesystem::create_directories(opt.out_dir);

  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();

  std::printf("=== Variation workloads: Monte Carlo samples as edit batches "
              "===\n");
  std::printf("samples=%zu jitter_tsvs=%zu seed=%llu spacing=%.3g um "
              "quant=%.3g um surrogate=%d threads=%zu\n",
              opt.samples, opt.jitter_tsvs,
              static_cast<unsigned long long>(opt.seed), opt.spacing,
              opt.quant_step, opt.surrogate ? 1 : 0, opt.threads);

  for (const std::size_t count : opt.designs) {
    const tsvlib::FullChipSpec spec =
        tsvlib::spec_for_count(count, opt.density, 90000 + count);
    const tsvlib::FullChipDesign design =
        tsvlib::make_fullchip(structure, spec);
    const geo::Box roi = design.placement.bounding_box().expanded(25.0);
    const geo::SampleGrid grid =
        geo::SampleGrid::with_spacing(roi, opt.spacing);

    std::printf("\n--- design %zu TSVs, %zu points ---\n",
                design.placement.size(), grid.size());

    stats::VariationSpec vspec;
    vspec.seed = opt.seed;
    vspec.samples = opt.samples;
    vspec.jitter_tsvs = std::min(opt.jitter_tsvs, design.placement.size());
    stats::VariationOptions vopt;
    vopt.engine.stage2.use_lookup_table = true;
    vopt.engine.stage2.pitch_quant_step = opt.quant_step;
    vopt.fit_surrogate = opt.surrogate;
    vopt.num_threads = opt.threads;

    stats::VariationEngine engine(design.placement, grid, vspec, vopt);
    const std::vector<stats::CornerResult> results = engine.run();
    const stats::CornerResult& res = results.front();

    const double mean_sample_s =
        res.samples > 0
            ? res.sample_seconds / static_cast<double>(res.samples)
            : 0.0;
    std::printf("build (characterization + full evaluation): %.3fs\n",
                res.build_seconds);
    std::printf("samples: %zu in %.3fs -> %.4g ms/sample (%zu point "
                "updates)\n",
                res.samples, res.sample_seconds, 1e3 * mean_sample_s,
                res.point_updates);
    std::printf("peak von Mises: mean %.1f MPa, sigma %.2f, max %.1f\n",
                res.sample_peak.mean(), res.sample_peak.stddev(),
                res.sample_peak.max());
    if (res.pitch_fit.ok)
      std::printf("pitch vs local peak: slope %.3f MPa/um, r %.3f (n=%llu)\n",
                  res.pitch_fit.slope, res.pitch_fit.r,
                  static_cast<unsigned long long>(res.pitch_fit.n));

    // The naive alternatives, one full recompute per sample. Cold is what
    // "not a fresh full build" contrasts with: characterize + build a new
    // engine for the perturbed placement (the bench's own build cost).
    // Warm keeps every table cached and only re-evaluates fields in place.
    const double cold_s = res.build_seconds;
    const auto t_warm0 = Clock::now();
    const double drift_mpa = engine.engine(0).rebuild();
    const double warm_s = seconds_since(t_warm0);
    const double speedup_cold =
        mean_sample_s > 0.0 ? cold_s / mean_sample_s : 0.0;
    const double speedup_warm =
        mean_sample_s > 0.0 ? warm_s / mean_sample_s : 0.0;
    std::printf("full recompute: cold %.3fs (%.0fx per sample), warm %.3fs "
                "(%.0fx, drift %.3g MPa)\n",
                cold_s, speedup_cold, warm_s, speedup_warm, drift_mpa);

    // Mean exceedance probability over the grid at the 100 MPa-class
    // threshold (the last configured one).
    const std::vector<double>& p100 = res.exceedance.back();
    double p100_mean = 0.0;
    for (const double p : p100) p100_mean += p;
    p100_mean /= static_cast<double>(p100.empty() ? 1 : p100.size());

    bench::JsonRow row("variation");
    row.uint("tsvs", design.placement.size())
        .uint("points", grid.size())
        .uint("samples", res.samples)
        .uint("jitter_tsvs", vspec.jitter_tsvs)
        .num("spacing_um", opt.spacing, "%.3g")
        .num("quant_step_um", opt.quant_step, "%.3g")
        .boolean("surrogate", opt.surrogate)
        .uint("threads", opt.threads)
        .num("build_s", res.build_seconds, "%.4f")
        .num("mean_sample_s", mean_sample_s, "%.6f")
        .num("sample_seconds", res.sample_seconds, "%.4f")
        .uint("point_updates", res.point_updates)
        .num("cold_recompute_s", cold_s, "%.4f")
        .num("warm_recompute_s", warm_s, "%.4f")
        .num("speedup_cold", speedup_cold, "%.1f")
        .num("speedup_warm", speedup_warm, "%.1f")
        .num("peak_vm_mean_mpa", res.sample_peak.mean(), "%.2f")
        .num("peak_vm_sigma_mpa", res.sample_peak.stddev(), "%.3f")
        .num("exceed_p100_mean", p100_mean, "%.4g")
        .num("pitch_slope_mpa_per_um", res.pitch_fit.slope, "%.4f")
        .num("pitch_r", res.pitch_fit.r, "%.4f")
        .num("koz_mean_radius_um", res.koz.mean_radius, "%.3f")
        .num("koz_worst_radius_um", res.koz.worst_radius, "%.3f");
    bench::append_jsonl(opt.out_dir + "/variation.jsonl", row);
  }
  return 0;
}
