#pragma once
// Shared plumbing for the paper-table benches: CLI options, the FEM
// characterization pipeline (Stage-I table + Stage-II K from a single-TSV
// FEM solve — the paper's methodology with COMSOL), golden solves, and the
// paper-style error-table printing.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analytic/interaction.h"
#include "core/framework.h"
#include "core/metrics.h"
#include "core/stress_map_table.h"
#include "core/stress_table.h"
#include "fem/thermo_solver.h"
#include "io/table_printer.h"
#include "tsv/placement.h"

namespace tsv::bench {

struct BenchConfig {
  double element_size = 0.25;  ///< FEM golden/characterization mesh, um
  double spacing = 0.5;        ///< simulation-point grid spacing, um
  double margin = 25.0;        ///< FEM domain margin, um
  bool fast = false;           ///< --fast: coarse preview (0.5 um mesh)
  std::string out_dir = ".";   ///< where CSV artifacts go
  std::size_t threads = 8;     ///< parallel rows/runs (0 = hardware)

  /// Parses --fast, --element-size=X, --spacing=X, --out-dir=PATH,
  /// --threads=N.
  static BenchConfig parse(int argc, char** argv);
};

/// FEM-characterized single-TSV data shared across a sweep. The Stage-I
/// table is the full 2D stress map of the isolated TSV (the original LS
/// method's characterization format), so the model and the golden share the
/// same discretized single-TSV field.
struct Characterization {
  std::shared_ptr<const core::StressMapTable> table;
  double k_fem = 0.0;  ///< effective K, MPa um^2
  std::shared_ptr<const ana::InclusionResponse> response;
  std::shared_ptr<const ana::InteractiveStressModel> model;
  double seconds = 0.0;
};

Characterization characterize(const tsvlib::TsvStructure& structure,
                              const mat::ThermalLoad& load,
                              const BenchConfig& config);

/// Golden FEM solve over `roi` (expanded by the configured margin).
fem::FemSolution golden_solve(const tsvlib::Placement& placement,
                              const mat::ThermalLoad& load,
                              const geo::Box& roi, const BenchConfig& config);

/// Samples a FEM field at the given points.
std::vector<num::SymTensor2> sample_field(const fem::StressField& field,
                                          const std::vector<geo::Point>& pts);

/// One LS or PF row of the paper's error tables.
std::vector<double> stats_row(const core::ErrorStats& st);

/// Column headers matching Tables 1-5.
std::vector<std::string> table_headers(const std::string& first_column);

/// The two-TSV pitch-sweep experiment shared by Tables 1/3/4/5: for each
/// pitch, solve the FEM golden on the 60x30 um monitored region, evaluate
/// LS and PF on the sample grid, and print both error rows. Also reports
/// run-time ratio (Stage II vs Stage I). Returns the printed stats
/// (per pitch: {ls, pf}) for scripting.
struct PairSweepResult {
  double pitch;
  core::ErrorStats ls;
  core::ErrorStats pf;
  double stage1_seconds;
  double stage2_seconds;
};

std::vector<PairSweepResult> run_pair_sweep(
    const tsvlib::TsvStructure& structure, core::StressMeasure measure,
    const std::vector<double>& pitches, const BenchConfig& config,
    const std::string& title);

/// One machine-readable result row, emitted as a single JSON object in key
/// insertion order. Replaces the ad-hoc snprintf JSON in the benches so
/// every bench appends trajectory rows (<out-dir>/*.jsonl) the same way.
///
///   JsonRow row("fullchip");
///   row.uint("tsvs", n).num("stage1_s", s1, "%.4f").str("mode", "quant");
///   append_jsonl(out_dir + "/fullchip.jsonl", row);
///
/// num() takes a printf format so rows keep their established field
/// precision (trajectory diffs stay byte-stable across refactors).
class JsonRow {
 public:
  /// Every row starts with {"bench":"<name>"}.
  explicit JsonRow(const std::string& bench_name);

  JsonRow& str(const std::string& key, const std::string& value);
  JsonRow& num(const std::string& key, double value, const char* fmt = "%.6g");
  JsonRow& uint(const std::string& key, std::uint64_t value);
  JsonRow& boolean(const std::string& key, bool value);

  /// The row as a one-line JSON object (no trailing newline).
  std::string json() const;

 private:
  JsonRow& raw(const std::string& key, const std::string& value);
  std::string body_;  ///< comma-joined "key":value pairs
};

/// Appends `row` as one line to `path` (creating the file if needed) and
/// echoes it to stdout as `json: {...}`.
void append_jsonl(const std::string& path, const JsonRow& row);

}  // namespace tsv::bench
