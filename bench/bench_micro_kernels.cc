// Micro-benchmarks (google-benchmark) for the framework's hot kernels:
// Laurent/potential evaluation, radial table look-ups, spatial-index
// queries, per-point Stage I/II evaluation, and sparse kernels.

#include <benchmark/benchmark.h>

#include <random>

#include "analytic/interaction.h"
#include "core/framework.h"
#include "core/stress_table.h"
#include "geometry/grid_index.h"
#include "numeric/cg.h"
#include "numeric/parallel.h"
#include "numeric/sparse_cholesky.h"
#include "tsv/generators.h"

namespace {

using namespace tsv;

const tsvlib::TsvStructure& structure() {
  static const auto s = tsvlib::TsvStructure::baseline_bcb();
  return s;
}

const ana::SingleTsvModel& single_model() {
  static const ana::SingleTsvModel m(structure(), mat::ThermalLoad{});
  return m;
}

std::shared_ptr<const ana::InteractiveStressModel> interactive_model() {
  static const auto model =
      std::make_shared<const ana::InteractiveStressModel>(structure(),
                                                          mat::ThermalLoad{});
  return model;
}

void BM_LaurentEvaluate(benchmark::State& state) {
  num::LaurentSeries f(-16, 16);
  for (int n = -16; n <= 16; ++n)
    f.coeff(n) = num::Complex{1.0 / (1.0 + std::abs(n)), 0.01 * n};
  const num::Complex z{1.3, 0.4};
  for (auto _ : state) benchmark::DoNotOptimize(f.evaluate(z));
}
BENCHMARK(BM_LaurentEvaluate);

void BM_PotentialFieldStress(benchmark::State& state) {
  const ana::RegionField& rf =
      interactive_model()->response().response_to_psi(3);
  const num::Complex z{1.4, 0.3};
  for (auto _ : state) benchmark::DoNotOptimize(rf.substrate.stress(z));
}
BENCHMARK(BM_PotentialFieldStress);

void BM_RadialTableLookup(benchmark::State& state) {
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single_model(), 30.0, 4096);
  const geo::Point c{0, 0};
  double r = 1.0;
  for (auto _ : state) {
    r = r < 24.0 ? r + 0.37 : 1.0;
    benchmark::DoNotOptimize(table.stress_at(c, {r, 0.7 * r}));
  }
}
BENCHMARK(BM_RadialTableLookup);

void BM_InteractivePairEval(benchmark::State& state) {
  const auto model = interactive_model();
  const ana::RegionField& combined = model->combined_for_pitch(10.0);
  const geo::Point v{0, 0}, a{10, 0};
  double y = 0.0;
  for (auto _ : state) {
    y = y < 20.0 ? y + 0.13 : 0.0;
    benchmark::DoNotOptimize(
        model->stress_with_combined(combined, v, a, 10.0, {4.0, y}));
  }
}
BENCHMARK(BM_InteractivePairEval);

void BM_GridIndexQuery(benchmark::State& state) {
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 1000, 1.0e-2, 10.0, 7);
  const geo::GridIndex index(p.centers(), p.bounding_box(), 12.5);
  std::vector<std::uint32_t> out;
  double x = 0.0;
  for (auto _ : state) {
    x = x < 300.0 ? x + 1.7 : 0.0;
    index.query_radius({x, 150.0}, 25.0, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridIndexQuery);

void BM_Stage1Point(benchmark::State& state) {
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 100, 1.0e-2, 10.0, 7);
  core::FrameworkOptions opt;
  opt.enable_interactive = false;
  const core::StressFramework fw(p, opt);
  double x = 0.0;
  for (auto _ : state) {
    x = x < 90.0 ? x + 0.71 : 0.0;
    benchmark::DoNotOptimize(fw.stress_at({x, 45.0}));
  }
}
BENCHMARK(BM_Stage1Point);

void BM_Stage2Point(benchmark::State& state) {
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 100, 1.0e-2, 10.0, 7);
  const core::InteractiveStage stage(p, interactive_model());
  double x = 0.0;
  for (auto _ : state) {
    x = x < 90.0 ? x + 0.71 : 0.0;
    benchmark::DoNotOptimize(stage.stress_at({x, 45.0}));
  }
}
BENCHMARK(BM_Stage2Point);

void BM_SparseMatVec(benchmark::State& state) {
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  std::vector<num::Triplet> t;
  const auto id = [nx](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * nx + j);
  };
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < nx; ++j) {
      t.push_back({id(i, j), id(i, j), 4.0});
      if (i + 1 < nx) {
        t.push_back({id(i, j), id(i + 1, j), -1.0});
        t.push_back({id(i + 1, j), id(i, j), -1.0});
      }
      if (j + 1 < nx) {
        t.push_back({id(i, j), id(i, j + 1), -1.0});
        t.push_back({id(i, j + 1), id(i, j), -1.0});
      }
    }
  const num::SparseMatrix a = num::SparseMatrix::from_triplets(nx * nx, t);
  num::Vector x(a.size(), 1.0), y;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.nonzeros()));
}
BENCHMARK(BM_SparseMatVec)->Arg(64)->Arg(256);

void BM_CombineForPitch(benchmark::State& state) {
  const auto model = interactive_model();
  double d = 8.0;
  for (auto _ : state) {
    // Vary the pitch so the per-pitch cache misses (worst case).
    d += 1e-4;
    benchmark::DoNotOptimize(&model->combined_for_pitch(d));
  }
}
// Iteration-capped: every iteration inserts a new cache entry.
BENCHMARK(BM_CombineForPitch)->Iterations(5000);

void BM_PairTableLookup(benchmark::State& state) {
  const auto model = interactive_model();
  const ana::PairStressTable& table = model->table_for_pitch(10.0, 25.0);
  const geo::Point v{0, 0}, a{10, 0};
  double y = 0.0;
  for (auto _ : state) {
    y = y < 20.0 ? y + 0.13 : 0.0;
    benchmark::DoNotOptimize(table.stress_at(v, a, {4.0, y}));
  }
}
BENCHMARK(BM_PairTableLookup);

// Thread-scaling benches for the parallel engine. Arg = thread count; run
// with --benchmark_filter=Scaling and compare against the Arg(1) row. On a
// single-core host the pool degenerates to inline execution and all rows
// should coincide (the overhead rows then measure dispatch cost).

void BM_ParallelForScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1 << 16;
  std::vector<double> out(n);
  for (auto _ : state) {
    num::parallel_for(n, threads, [&](std::size_t i) {
      const double x = 1e-3 * static_cast<double>(i);
      out[i] = std::sin(x) * std::exp(-x) + std::sqrt(x + 1.0);
    });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Stage1BatchScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 100, 1.0e-2, 10.0, 7);
  core::SuperpositionOptions opt;
  opt.num_threads = threads;
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single_model(), 30.0, 4096);
  const core::LinearSuperposition stage1(p, table, opt);
  const geo::SampleGrid grid(p.bounding_box().expanded(25.0), 200, 200);
  const std::vector<geo::Point> pts = grid.points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage1.evaluate(pts).data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage1BatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Stage2BatchScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 60, 1.0e-2, 10.0, 7);
  core::InteractiveOptions opt;
  opt.num_threads = threads;
  const core::InteractiveStage stage2(p, interactive_model(), opt);
  const geo::SampleGrid grid(p.bounding_box().expanded(10.0), 120, 120);
  const std::vector<geo::Point> pts = grid.points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage2.evaluate(pts).data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage2BatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SparseCholeskyFactorize(benchmark::State& state) {
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  std::vector<num::Triplet> t;
  const auto id = [nx](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * nx + j);
  };
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < nx; ++j) {
      t.push_back({id(i, j), id(i, j), 4.0});
      if (i + 1 < nx) {
        t.push_back({id(i, j), id(i + 1, j), -1.0});
        t.push_back({id(i + 1, j), id(i, j), -1.0});
      }
      if (j + 1 < nx) {
        t.push_back({id(i, j), id(i, j + 1), -1.0});
        t.push_back({id(i, j + 1), id(i, j), -1.0});
      }
    }
  const num::SparseMatrix a = num::SparseMatrix::from_triplets(nx * nx, t);
  for (auto _ : state) {
    const num::SparseCholesky chol(a);
    benchmark::DoNotOptimize(chol.factor_nonzeros());
  }
}
BENCHMARK(BM_SparseCholeskyFactorize)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
