// Micro-benchmarks (google-benchmark) for the framework's hot kernels:
// Laurent/potential evaluation, radial table look-ups, spatial-index
// queries, per-point Stage I/II evaluation, and sparse kernels.
//
// Besides the google-benchmark rows, the binary always appends scalar-vs-
// batch timings for the Stage I/II point kernels to <out-dir>/kernels.jsonl
// (--out-dir=PATH, default "."). tools/check_kernel_perf.py guards those
// rows against tools/kernel_baseline.json in CI. The stage2_surrogate batch
// row's "speedup" is measured against the Stage II *table* batch kernel in
// the same run (the ratio the ISSUE acceptance floor of 2.5x refers to),
// not against the surrogate's own scalar path.
//
// A fit-order sweep for the surrogate (orders vs certified bound vs
// ns/eval) additionally lands in <out-dir>/surrogate.jsonl; EXPERIMENTS.md
// quotes that table.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "analytic/interaction.h"
#include "analytic/surrogate.h"
#include "common.h"
#include "core/framework.h"
#include "core/stress_table.h"
#include "geometry/grid_index.h"
#include "numeric/cg.h"
#include "numeric/parallel.h"
#include "numeric/sparse_cholesky.h"
#include "tsv/generators.h"

namespace {

using namespace tsv;

const tsvlib::TsvStructure& structure() {
  static const auto s = tsvlib::TsvStructure::baseline_bcb();
  return s;
}

const ana::SingleTsvModel& single_model() {
  static const ana::SingleTsvModel m(structure(), mat::ThermalLoad{});
  return m;
}

std::shared_ptr<const ana::InteractiveStressModel> interactive_model() {
  static const auto model =
      std::make_shared<const ana::InteractiveStressModel>(structure(),
                                                          mat::ThermalLoad{});
  return model;
}

void BM_LaurentEvaluate(benchmark::State& state) {
  num::LaurentSeries f(-16, 16);
  for (int n = -16; n <= 16; ++n)
    f.coeff(n) = num::Complex{1.0 / (1.0 + std::abs(n)), 0.01 * n};
  const num::Complex z{1.3, 0.4};
  for (auto _ : state) benchmark::DoNotOptimize(f.evaluate(z));
}
BENCHMARK(BM_LaurentEvaluate);

void BM_PotentialFieldStress(benchmark::State& state) {
  const ana::RegionField& rf =
      interactive_model()->response().response_to_psi(3);
  const num::Complex z{1.4, 0.3};
  for (auto _ : state) benchmark::DoNotOptimize(rf.substrate.stress(z));
}
BENCHMARK(BM_PotentialFieldStress);

void BM_RadialTableLookup(benchmark::State& state) {
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single_model(), 30.0, 4096);
  const geo::Point c{0, 0};
  double r = 1.0;
  for (auto _ : state) {
    r = r < 24.0 ? r + 0.37 : 1.0;
    benchmark::DoNotOptimize(table.stress_at(c, {r, 0.7 * r}));
  }
}
BENCHMARK(BM_RadialTableLookup);

void BM_InteractivePairEval(benchmark::State& state) {
  const auto model = interactive_model();
  const ana::RegionField& combined = model->combined_for_pitch(10.0);
  const geo::Point v{0, 0}, a{10, 0};
  double y = 0.0;
  for (auto _ : state) {
    y = y < 20.0 ? y + 0.13 : 0.0;
    benchmark::DoNotOptimize(
        model->stress_with_combined(combined, v, a, 10.0, {4.0, y}));
  }
}
BENCHMARK(BM_InteractivePairEval);

void BM_GridIndexQuery(benchmark::State& state) {
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 1000, 1.0e-2, 10.0, 7);
  const geo::GridIndex index(p.centers(), p.bounding_box(), 12.5);
  std::vector<std::uint32_t> out;
  double x = 0.0;
  for (auto _ : state) {
    x = x < 300.0 ? x + 1.7 : 0.0;
    index.query_radius({x, 150.0}, 25.0, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_GridIndexQuery);

void BM_Stage1Point(benchmark::State& state) {
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 100, 1.0e-2, 10.0, 7);
  core::FrameworkOptions opt;
  opt.enable_interactive = false;
  const core::StressFramework fw(p, opt);
  double x = 0.0;
  for (auto _ : state) {
    x = x < 90.0 ? x + 0.71 : 0.0;
    benchmark::DoNotOptimize(fw.stress_at({x, 45.0}));
  }
}
BENCHMARK(BM_Stage1Point);

void BM_Stage2Point(benchmark::State& state) {
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 100, 1.0e-2, 10.0, 7);
  const core::InteractiveStage stage(p, interactive_model());
  double x = 0.0;
  for (auto _ : state) {
    x = x < 90.0 ? x + 0.71 : 0.0;
    benchmark::DoNotOptimize(stage.stress_at({x, 45.0}));
  }
}
BENCHMARK(BM_Stage2Point);

// --- Scalar-vs-batch point kernels ---------------------------------------
//
// The same workloads the kernels.jsonl rows time below, exposed as
// google-benchmark rows for interactive runs. "Scalar" is the retained
// trig reference path (stress_at per point), "batch" the flat trig-free
// kernel (accumulate over the whole point set).

std::vector<geo::Point> kernel_points(std::size_t n, double radius,
                                      unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coord(-radius, radius);
  std::vector<geo::Point> pts(n);
  for (geo::Point& p : pts) p = {coord(rng), coord(rng)};
  return pts;
}

const core::RadialStressTable& stage1_kernel_table() {
  static const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single_model(), 30.0, 4096);
  return table;
}

void BM_Stage1KernelScalar(benchmark::State& state) {
  const core::RadialStressTable& table = stage1_kernel_table();
  const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 17);
  const geo::Point c{0, 0};
  std::vector<num::SymTensor2> out(pts.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < pts.size(); ++i)
      out[i] += table.stress_at(c, pts[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage1KernelScalar);

void BM_Stage1KernelBatch(benchmark::State& state) {
  const core::RadialStressTable& table = stage1_kernel_table();
  const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 17);
  const geo::Point c{0, 0};
  std::vector<num::SymTensor2> out(pts.size());
  for (auto _ : state) {
    table.accumulate(c, pts.data(), pts.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage1KernelBatch);

void BM_Stage2KernelScalar(benchmark::State& state) {
  const ana::PairStressTable& table =
      interactive_model()->table_for_pitch(10.0, 25.0);
  const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 19);
  const geo::Point v{0, 0}, a{10, 0};
  std::vector<num::SymTensor2> out(pts.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < pts.size(); ++i)
      out[i] += table.stress_at(v, a, pts[i]);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage2KernelScalar);

void BM_Stage2KernelBatch(benchmark::State& state) {
  const ana::PairStressTable& table =
      interactive_model()->table_for_pitch(10.0, 25.0);
  const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 19);
  const geo::Point v{0, 0}, a{10, 0};
  std::vector<num::SymTensor2> out(pts.size());
  for (auto _ : state) {
    table.accumulate(v, a, pts.data(), pts.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage2KernelBatch);

void BM_Stage2SurrogateBatch(benchmark::State& state) {
  static const ana::PairSurrogate surrogate =
      ana::PairSurrogate::fit(*interactive_model());
  const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 19);
  const geo::Point v{0, 0}, a{10, 0};
  std::vector<num::SymTensor2> out(pts.size());
  for (auto _ : state) {
    surrogate.accumulate(v, a, pts.data(), pts.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage2SurrogateBatch);

void BM_SparseMatVec(benchmark::State& state) {
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  std::vector<num::Triplet> t;
  const auto id = [nx](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * nx + j);
  };
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < nx; ++j) {
      t.push_back({id(i, j), id(i, j), 4.0});
      if (i + 1 < nx) {
        t.push_back({id(i, j), id(i + 1, j), -1.0});
        t.push_back({id(i + 1, j), id(i, j), -1.0});
      }
      if (j + 1 < nx) {
        t.push_back({id(i, j), id(i, j + 1), -1.0});
        t.push_back({id(i, j + 1), id(i, j), -1.0});
      }
    }
  const num::SparseMatrix a = num::SparseMatrix::from_triplets(nx * nx, t);
  num::Vector x(a.size(), 1.0), y;
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.nonzeros()));
}
BENCHMARK(BM_SparseMatVec)->Arg(64)->Arg(256);

void BM_CombineForPitch(benchmark::State& state) {
  const auto model = interactive_model();
  double d = 8.0;
  for (auto _ : state) {
    // Vary the pitch so the per-pitch cache misses (worst case).
    d += 1e-4;
    benchmark::DoNotOptimize(&model->combined_for_pitch(d));
  }
}
// Iteration-capped: every iteration inserts a new cache entry.
BENCHMARK(BM_CombineForPitch)->Iterations(5000);

void BM_PairTableLookup(benchmark::State& state) {
  const auto model = interactive_model();
  const ana::PairStressTable& table = model->table_for_pitch(10.0, 25.0);
  const geo::Point v{0, 0}, a{10, 0};
  double y = 0.0;
  for (auto _ : state) {
    y = y < 20.0 ? y + 0.13 : 0.0;
    benchmark::DoNotOptimize(table.stress_at(v, a, {4.0, y}));
  }
}
BENCHMARK(BM_PairTableLookup);

// Thread-scaling benches for the parallel engine. Arg = thread count; run
// with --benchmark_filter=Scaling and compare against the Arg(1) row. On a
// single-core host the pool degenerates to inline execution and all rows
// should coincide (the overhead rows then measure dispatch cost).

void BM_ParallelForScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 1 << 16;
  std::vector<double> out(n);
  for (auto _ : state) {
    num::parallel_for(n, threads, [&](std::size_t i) {
      const double x = 1e-3 * static_cast<double>(i);
      out[i] = std::sin(x) * std::exp(-x) + std::sqrt(x + 1.0);
    });
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Stage1BatchScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 100, 1.0e-2, 10.0, 7);
  core::SuperpositionOptions opt;
  opt.num_threads = threads;
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single_model(), 30.0, 4096);
  const core::LinearSuperposition stage1(p, table, opt);
  const geo::SampleGrid grid(p.bounding_box().expanded(25.0), 200, 200);
  const std::vector<geo::Point> pts = grid.points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage1.evaluate(pts).data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage1BatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Stage2BatchScaling(benchmark::State& state) {
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const tsvlib::Placement p = tsvlib::make_jittered_array(
      structure(), 60, 1.0e-2, 10.0, 7);
  core::InteractiveOptions opt;
  opt.num_threads = threads;
  const core::InteractiveStage stage2(p, interactive_model(), opt);
  const geo::SampleGrid grid(p.bounding_box().expanded(10.0), 120, 120);
  const std::vector<geo::Point> pts = grid.points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(stage2.evaluate(pts).data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_Stage2BatchScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SparseCholeskyFactorize(benchmark::State& state) {
  const std::size_t nx = static_cast<std::size_t>(state.range(0));
  std::vector<num::Triplet> t;
  const auto id = [nx](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * nx + j);
  };
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < nx; ++j) {
      t.push_back({id(i, j), id(i, j), 4.0});
      if (i + 1 < nx) {
        t.push_back({id(i, j), id(i + 1, j), -1.0});
        t.push_back({id(i + 1, j), id(i, j), -1.0});
      }
      if (j + 1 < nx) {
        t.push_back({id(i, j), id(i, j + 1), -1.0});
        t.push_back({id(i, j + 1), id(i, j), -1.0});
      }
    }
  const num::SparseMatrix a = num::SparseMatrix::from_triplets(nx * nx, t);
  for (auto _ : state) {
    const num::SparseCholesky chol(a);
    benchmark::DoNotOptimize(chol.factor_nonzeros());
  }
}
BENCHMARK(BM_SparseCholeskyFactorize)->Arg(32)->Arg(64);

// --- kernels.jsonl emission ----------------------------------------------

/// Best-of-7 wall time per eval (one warmup rep first): robust against
/// scheduler noise without google-benchmark's per-row startup cost.
template <typename F>
double best_ns_per_eval(std::size_t evals, F&& run) {
  using Clock = std::chrono::steady_clock;
  run();
  double best = 1e300;
  for (int rep = 0; rep < 7; ++rep) {
    const auto t0 = Clock::now();
    run();
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    best = std::min(best, ns / static_cast<double>(evals));
  }
  return best;
}

void append_kernel_row(const std::string& path, const char* kernel,
                       const char* mode, std::size_t evals, double ns_per_eval,
                       double speedup) {
  bench::JsonRow row("kernels");
  row.str("kernel", kernel)
      .str("mode", mode)
      .uint("evals", evals)
      .num("ns_per_eval", ns_per_eval, "%.3f")
      .num("evals_per_sec", 1e9 / ns_per_eval, "%.6g");
  if (speedup > 0.0) row.num("speedup", speedup, "%.3f");
  bench::append_jsonl(path, row);
}

std::string orders_to_string(const std::vector<std::size_t>& orders) {
  std::string s;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    if (i > 0) s += "/";
    s += std::to_string(orders[i]);
  }
  return s;
}

/// Fits one surrogate configuration, times its batch kernel on the shared
/// Stage II workload, and appends a sweep row to surrogate.jsonl. The
/// speedup column is against the Stage II table batch kernel timed in the
/// same process, so the ratio is host-independent.
void emit_surrogate_sweep_row(const std::string& path, const char* config,
                              const ana::SurrogateFitOptions& opt,
                              double table_batch_ns) {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kReps = 16;
  const auto t0 = Clock::now();
  const ana::PairSurrogate sur =
      ana::PairSurrogate::fit(*interactive_model(), opt);
  const double fit_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 19);
  const geo::Point v{0, 0}, a{10, 0};
  std::vector<num::SymTensor2> out(pts.size());
  const std::size_t evals = kReps * pts.size();
  const double batch_ns = best_ns_per_eval(evals, [&] {
    for (std::size_t rep = 0; rep < kReps; ++rep)
      sur.accumulate(v, a, pts.data(), pts.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  });

  const ana::SurrogateCertificate& cert = sur.certificate();
  bench::JsonRow row("surrogate");
  row.str("config", config)
      .uint("pitch_order", static_cast<std::size_t>(opt.pitch_order))
      .str("radial_orders", orders_to_string(opt.radial_orders))
      .str("angular_orders", orders_to_string(opt.angular_orders))
      .uint("coefficients", sur.coefficient_count())
      .num("fit_ms", fit_ms, "%.1f")
      .num("cert_rel_bound", cert.certified_rel_bound, "%.3g")
      .num("ns_per_eval", batch_ns, "%.3f")
      .num("speedup_vs_table", table_batch_ns / batch_ns, "%.3f");
  bench::append_jsonl(path, row);
}

/// Times the retained scalar paths against the trig-free batch kernels on
/// identical workloads and appends one row per (kernel, mode).
void emit_kernel_rows(const std::string& out_dir) {
  std::filesystem::create_directories(out_dir);
  const std::string path = out_dir + "/kernels.jsonl";
  constexpr std::size_t kReps = 16;

  {
    const core::RadialStressTable& table = stage1_kernel_table();
    const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 17);
    const geo::Point c{0, 0};
    std::vector<num::SymTensor2> out(pts.size());
    const std::size_t evals = kReps * pts.size();
    const double scalar_ns = best_ns_per_eval(evals, [&] {
      for (std::size_t rep = 0; rep < kReps; ++rep)
        for (std::size_t i = 0; i < pts.size(); ++i)
          out[i] += table.stress_at(c, pts[i]);
      benchmark::DoNotOptimize(out.data());
    });
    const double batch_ns = best_ns_per_eval(evals, [&] {
      for (std::size_t rep = 0; rep < kReps; ++rep)
        table.accumulate(c, pts.data(), pts.size(), out.data());
      benchmark::DoNotOptimize(out.data());
    });
    append_kernel_row(path, "stage1_point", "scalar", evals, scalar_ns, 0.0);
    append_kernel_row(path, "stage1_point", "batch", evals, batch_ns,
                      scalar_ns / batch_ns);
  }

  double stage2_table_batch_ns = 0.0;
  {
    const ana::PairStressTable& table =
        interactive_model()->table_for_pitch(10.0, 25.0);
    const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 19);
    const geo::Point v{0, 0}, a{10, 0};
    std::vector<num::SymTensor2> out(pts.size());
    const std::size_t evals = kReps * pts.size();
    const double scalar_ns = best_ns_per_eval(evals, [&] {
      for (std::size_t rep = 0; rep < kReps; ++rep)
        for (std::size_t i = 0; i < pts.size(); ++i)
          out[i] += table.stress_at(v, a, pts[i]);
      benchmark::DoNotOptimize(out.data());
    });
    const double batch_ns = best_ns_per_eval(evals, [&] {
      for (std::size_t rep = 0; rep < kReps; ++rep)
        table.accumulate(v, a, pts.data(), pts.size(), out.data());
      benchmark::DoNotOptimize(out.data());
    });
    append_kernel_row(path, "stage2_point", "scalar", evals, scalar_ns, 0.0);
    append_kernel_row(path, "stage2_point", "batch", evals, batch_ns,
                      scalar_ns / batch_ns);
    stage2_table_batch_ns = batch_ns;
  }

  // Certified surrogate vs the Stage II table on the identical workload.
  // The batch row's "speedup" is table_batch / surrogate_batch from this
  // same run — the ratio the 2.5x acceptance floor in
  // tools/kernel_baseline.json guards.
  {
    const ana::PairSurrogate sur =
        ana::PairSurrogate::fit(*interactive_model());
    const std::vector<geo::Point> pts = kernel_points(4096, 20.0, 19);
    const geo::Point v{0, 0}, a{10, 0};
    std::vector<num::SymTensor2> out(pts.size());
    const std::size_t evals = kReps * pts.size();
    const double scalar_ns = best_ns_per_eval(evals, [&] {
      for (std::size_t rep = 0; rep < kReps; ++rep)
        for (std::size_t i = 0; i < pts.size(); ++i)
          out[i] += sur.stress_at(v, a, pts[i]);
      benchmark::DoNotOptimize(out.data());
    });
    const double batch_ns = best_ns_per_eval(evals, [&] {
      for (std::size_t rep = 0; rep < kReps; ++rep)
        sur.accumulate(v, a, pts.data(), pts.size(), out.data());
      benchmark::DoNotOptimize(out.data());
    });
    append_kernel_row(path, "stage2_surrogate", "scalar", evals, scalar_ns,
                      0.0);
    append_kernel_row(path, "stage2_surrogate", "batch", evals, batch_ns,
                      stage2_table_batch_ns / batch_ns);
  }

  // Fit-order sweep (surrogate.jsonl): the calibrated defaults, a trimmed
  // variant at the same certified bound, and a deliberately coarse config
  // that misses the 1e-6 budget — showing both sides of the accuracy/cost
  // trade the defaults sit on.
  {
    const std::string sweep_path = out_dir + "/surrogate.jsonl";
    emit_surrogate_sweep_row(sweep_path, "default", ana::SurrogateFitOptions{},
                             stage2_table_batch_ns);
    ana::SurrogateFitOptions lean;
    lean.radial_orders = {12, 8, 12, 6, 5};
    lean.angular_orders = {18, 18, 16, 12, 10};
    emit_surrogate_sweep_row(sweep_path, "lean", lean, stage2_table_batch_ns);
    ana::SurrogateFitOptions coarse;
    coarse.pitch_order = 10;
    coarse.radial_orders = {8, 6, 8, 4, 4};
    coarse.angular_orders = {12, 12, 10, 8, 6};
    emit_surrogate_sweep_row(sweep_path, "coarse", coarse,
                             stage2_table_batch_ns);
  }
}

}  // namespace

// BENCHMARK_MAIN plus --out-dir= handling (stripped before google-benchmark
// sees the flags) and the kernels.jsonl rows after the registered rows run.
int main(int argc, char** argv) {
  std::string out_dir = ".";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out-dir=", 0) == 0)
      out_dir = arg.substr(10);
    else
      args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&bench_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  emit_kernel_rows(out_dir);
  return 0;
}
