// Reproduces Figure 4: spatial maps of the sigma_xx error of LS and PF for
// the two-TSV BCB placement at d = 10 um (right half shown in the paper).
// Writes fig4_error_ls.csv / fig4_error_pf.csv and prints the map summary
// the paper quotes: LS errors up to ~70 MPa, PF generally below ~25 MPa.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "io/csv.h"
#include "tsv/generators.h"

int main(int argc, char** argv) {
  using namespace tsv;
  const auto config = bench::BenchConfig::parse(argc, argv);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  const double pitch = 10.0;

  std::printf("=== Figure 4: sigma_xx error maps, two TSVs, d = %.0f um, BCB "
              "===\n", pitch);
  const bench::Characterization ch =
      bench::characterize(structure, load, config);
  const tsvlib::Placement pair = tsvlib::make_pair(structure, pitch);
  const geo::Box roi = geo::Box::centered({0.0, 0.0}, 60.0, 30.0);
  const fem::FemSolution golden = bench::golden_solve(pair, load, roi, config);

  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi,
                                                             config.spacing);
  const std::vector<geo::Point> pts = grid.points();
  const std::vector<num::SymTensor2> gold =
      bench::sample_field(golden.stress, pts);

  core::FrameworkOptions ls_opt;
  ls_opt.enable_interactive = false;
  const core::StressFramework ls(pair, ch.table, nullptr, ls_opt);
  const core::StressFramework pf(pair, ch.table, ch.model,
                                 core::FrameworkOptions{});
  const auto r_ls = ls.evaluate(pts);
  const auto r_pf = pf.evaluate(pts);

  // The golden smears the liner/substrate interface over ~2 elements
  // (staircase discretization); points inside that band compare the model's
  // sharp jump against the smeared one, so both the full-substrate maximum
  // and the beyond-band maximum are reported.
  const double band = structure.outer_radius() + 2.5 * config.element_size;
  std::vector<double> err_ls(pts.size()), err_pf(pts.size());
  double max_ls = 0.0, max_pf = 0.0;
  double far_ls = 0.0, far_pf = 0.0;
  std::size_t above25_ls = 0, above25_pf = 0, substrate_pts = 0;
  const auto min_dist = [&](const geo::Point& p) {
    double d = 1e300;
    for (const auto& c : pair.centers())
      d = std::min(d, geo::distance(c, p));
    return d;
  };
  for (std::size_t i = 0; i < pts.size(); ++i) {
    err_ls[i] = r_ls.stress[i].s11 - gold[i].s11;
    err_pf[i] = r_pf.stress[i].s11 - gold[i].s11;
    if (pair.inside_any_tsv(pts[i])) continue;
    ++substrate_pts;
    max_ls = std::max(max_ls, std::abs(err_ls[i]));
    max_pf = std::max(max_pf, std::abs(err_pf[i]));
    if (min_dist(pts[i]) > band) {
      far_ls = std::max(far_ls, std::abs(err_ls[i]));
      far_pf = std::max(far_pf, std::abs(err_pf[i]));
    }
    if (std::abs(err_ls[i]) > 25.0) ++above25_ls;
    if (std::abs(err_pf[i]) > 25.0) ++above25_pf;
  }
  io::write_scalar_field(config.out_dir + "/fig4_error_ls.csv", pts, err_ls);
  io::write_scalar_field(config.out_dir + "/fig4_error_pf.csv", pts, err_pf);
  std::printf("wrote fig4_error_ls.csv / fig4_error_pf.csv (%zu points)\n",
              pts.size());
  std::printf("substrate max |error|: LS %.1f MPa, PF %.1f MPa\n", max_ls,
              max_pf);
  std::printf("beyond the interface smear band (r > %.2f um): LS %.1f MPa, "
              "PF %.1f MPa\n", band, far_ls, far_pf);
  std::printf("substrate points with |error| > 25 MPa: LS %zu (%.2f%%), PF "
              "%zu (%.2f%%)\n",
              above25_ls, 100.0 * above25_ls / substrate_pts, above25_pf,
              100.0 * above25_pf / substrate_pts);
  return 0;
}
