// Reproduces Table 4 (Appendix A.2): sigma_xx error for the two-TSV
// placement with SiO2 liner — the weak-mismatch case where LS is already
// acceptable but PF still improves it.

#include "common.h"

int main(int argc, char** argv) {
  const auto config = tsv::bench::BenchConfig::parse(argc, argv);
  tsv::bench::run_pair_sweep(
      tsv::tsvlib::TsvStructure::baseline_sio2(),
      tsv::core::StressMeasure::kSigmaXX,
      {8.0, 9.0, 10.0, 11.0, 12.0, 18.0, 30.0}, config,
      "=== Table 4: two TSVs, SiO2 liner, sigma_xx ===");
  return 0;
}
