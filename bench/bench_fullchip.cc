// Full-chip scalability bench: synthetic designs (regular arrays +
// clustered banks + random logic TSVs, see tsv/fullchip.h) evaluated with
// the tiled streaming driver. For each design size it times Stage I and
// three Stage II configurations at equal thread count:
//
//   series   — the exact potential series (the accuracy-bench path),
//   lookup   — the polar look-up table with exact-pitch caching: regular
//              arrays hit the cache, but every unique bank/logic pitch
//              builds its own table,
//   quant    — the pitch-quantized table cache (--quant, default 0.25 um):
//              all pairs in a quantization bucket share one table, so the
//              whole design needs ~(pitch range / step) builds,
//   surrogate— the certified Chebyshev surrogate (analytic/surrogate.h)
//              fitted once up front; pairs whose pitch falls outside the
//              fitted domain fall back to the quantized table cache, and
//              the per-design fallback counters are reported.
//   farfield — the hierarchical far-field aggregate (core/far_field.h) on
//              top of the surrogate+quant configuration: pairs are exact
//              only inside the blend disc and the thin edge ring, the
//              mid-zone comes from per-cluster bicubic tiles. The row
//              reports the build (fold) time, the machine-checked
//              certificate bound, and the fold dispatch counters.
//
// Above kSeriesLimit TSVs the exact-series row is skipped (it dominates
// wall time); accuracy is still measured exactly by evaluating the exact
// framework on the strided probe points only.
//
// The quant configuration is then re-run with tiled checkpointing enabled
// (io::evaluate_with_checkpoint, ~3 checkpoints per run) to measure the
// wall-time overhead of crash tolerance — the README quotes a <= 5% budget.
//
// Prints a human table plus one machine-readable JSON line per design
// (also appended to <out-dir>/fullchip.jsonl) for trajectory tracking.
//
// Options (beyond the shared bench flags):
//   --designs=1000,10000   TSV counts to sweep
//   --density=0.0025       TSVs per um^2 (chip is sized from count/density)
//   --quant=0.25           pitch quantization step, um
//   --skip-uncached        skip the exact-pitch lookup rows (they dominate
//                          wall time at 10k+ TSVs: one table build per
//                          unique pitch)
//
// No FEM solve is needed: Stage I uses the analytic radial table.

#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analytic/surrogate.h"
#include "common.h"
#include "core/far_field.h"
#include "core/tiled_evaluator.h"
#include "io/snapshot.h"
#include "io/table_printer.h"
#include "numeric/parallel.h"
#include "tsv/fullchip.h"

namespace {

struct Options {
  std::vector<std::size_t> designs = {1000, 10000};
  double density = 0.25e-2;    // paper Table 6 sparse case
  double quant_step = 0.25;    // um
  double spacing = 2.0;        // um, simulation-point grid
  std::size_t threads = 1;
  std::size_t tile_points = 64 * 1024;
  bool skip_uncached = false;
  bool fast = false;
  std::string out_dir = ".";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--fast") {
      o.fast = true;
      o.spacing = 4.0;
      o.designs = {1000};
    } else if (arg == "--skip-uncached") {
      o.skip_uncached = true;
    } else if (arg.rfind("--designs=", 0) == 0) {
      o.designs.clear();
      std::string list = value("--designs=");
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end = comma == std::string::npos ? list.size()
                                                           : comma;
        o.designs.push_back(std::stoul(list.substr(pos, end - pos)));
        pos = end + 1;
      }
    } else if (arg.rfind("--density=", 0) == 0) {
      o.density = std::stod(value("--density="));
    } else if (arg.rfind("--quant=", 0) == 0) {
      o.quant_step = std::stod(value("--quant="));
    } else if (arg.rfind("--spacing=", 0) == 0) {
      o.spacing = std::stod(value("--spacing="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      o.threads = std::stoul(value("--threads="));
    } else if (arg.rfind("--tile-points=", 0) == 0) {
      o.tile_points = std::stoul(value("--tile-points="));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      o.out_dir = value("--out-dir=");
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

double peak_rss_mb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// One Stage II configuration evaluated through the tiled driver with a
/// fresh interactive model (so every run pays its own table builds).
struct RunResult {
  tsv::core::TiledStats stats;
  tsv::ana::PairTableCacheStats cache;
  std::size_t tables = 0;
  double max_vm = 0.0;
  double wall_seconds = 0.0;  ///< full evaluate() wall time, consumer included
  double build_seconds = 0.0;  ///< framework ctor (includes far-field fold)
  std::vector<tsv::num::SymTensor2> probe;  ///< strided field subsample
  std::vector<tsv::geo::Point> probe_pts;   ///< coordinates of the probes
  // Far-field aggregate reporting (farfield row only).
  bool far_active = false;
  double far_bound = -1.0;
  std::size_t far_clusters = 0;
  tsv::core::FarFieldBuildStats far_stats;
  double far_tile_mb = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tsv;
  const Options opt = parse(argc, argv);
  const std::size_t threads = num::resolve_thread_count(opt.threads);
  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};

  std::printf("=== Full-chip workloads: tiled evaluation + pitch-quantized "
              "Stage II cache ===\n");
  std::printf("host hardware threads: %zu; rows use threads=%zu, spacing=%.3g "
              "um, tile=%zu points, quant step=%.3g um\n",
              num::hardware_thread_count(), threads, opt.spacing,
              opt.tile_points, opt.quant_step);

  const ana::SingleTsvModel single(structure, load);
  const core::RadialStressTable table =
      core::RadialStressTable::from_analytic(single, 30.0, 4096);
  const auto response =
      std::make_shared<const ana::InclusionResponse>(structure);

  // One certified surrogate fit up front (design-independent: the fit is a
  // property of the structure/load, not the placement); every surrogate row
  // below shares it, so the fit cost is paid once per process like a
  // characterization step.
  const auto fit_start = std::chrono::steady_clock::now();
  const auto surrogate = [&] {
    const ana::InteractiveStressModel fit_model(response, single.k_hat());
    return std::make_shared<const ana::PairSurrogate>(
        ana::PairSurrogate::fit(fit_model));
  }();
  const double fit_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - fit_start)
                            .count();
  std::printf("surrogate: %zu coefficients fitted in %.0f ms, certified rel "
              "bound %.3g over pitch [%.3g, %.3g] um\n",
              surrogate->coefficient_count(), fit_ms,
              surrogate->certificate().certified_rel_bound,
              surrogate->pitch_min(), surrogate->pitch_max());

  for (const std::size_t count : opt.designs) {
    const tsvlib::FullChipSpec spec =
        tsvlib::spec_for_count(count, opt.density, 90000 + count);
    const tsvlib::FullChipDesign design = tsvlib::make_fullchip(structure,
                                                               spec);
    const std::string csv_path =
        opt.out_dir + "/fullchip_" + std::to_string(count) + ".csv";
    tsvlib::write_fullchip_csv(csv_path, design);

    const geo::Box roi = design.placement.bounding_box().expanded(25.0);
    const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi,
                                                               opt.spacing);
    std::printf("\n--- design %zu TSVs (arrays %zu, banks %zu, logic %zu), "
                "chip %.0f x %.0f um, %zu points -> %s ---\n",
                design.placement.size(),
                design.count(tsvlib::TsvKind::kArray),
                design.count(tsvlib::TsvKind::kBank),
                design.count(tsvlib::TsvKind::kRandom), spec.chip.width(),
                spec.chip.height(), grid.size(), csv_path.c_str());

    // Every run gets a fresh interactive model so the table cache starts
    // cold; the probe keeps a strided subsample for cross-run accuracy
    // checks without holding the O(chip) field.
    std::size_t ckpt_every = 8;
    const auto run = [&](bool lookup, double quant,
                         const std::string& ckpt_path = std::string(),
                         bool use_surrogate = false, bool use_far = false) {
      const auto model = std::make_shared<const ana::InteractiveStressModel>(
          response, single.k_hat());
      if (use_surrogate) model->attach_surrogate(surrogate);
      core::FrameworkOptions fopt;
      fopt.num_threads = threads;
      fopt.stage2.use_lookup_table = lookup;
      fopt.stage2.pitch_quant_step = quant;
      fopt.stage2.use_far_field = use_far;
      const auto build_start = std::chrono::steady_clock::now();
      const core::StressFramework framework(design.placement, table, model,
                                            fopt);
      core::TiledOptions topt;
      topt.max_tile_points = opt.tile_points;
      const core::TiledEvaluator tiled(framework, topt);
      RunResult r;
      r.build_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - build_start)
                            .count();
      if (use_far && framework.stage2() != nullptr) {
        const core::FarFieldAggregate* far =
            framework.stage2()->attached_far_field();
        if (far != nullptr) {
          r.far_active = framework.stage2()->active_far_field() != nullptr;
          r.far_bound = far->certificate().certified_rel_bound;
          r.far_clusters = far->cluster_count();
          r.far_stats = far->build_stats();
          r.far_tile_mb =
              static_cast<double>(far->tile_bytes()) / (1024.0 * 1024.0);
        }
      }
      std::size_t seen = 0;
      const auto consume = [&](const core::Tile& tile) {
        for (std::size_t i = 0; i < tile.stress.size(); ++i, ++seen) {
          r.max_vm = std::max(r.max_vm,
                              num::von_mises_plane_stress(tile.stress[i]));
          if (seen % 101 == 0) {
            r.probe.push_back(tile.stress[i]);
            r.probe_pts.push_back(tile.points[i]);
          }
        }
      };
      const auto start = std::chrono::steady_clock::now();
      r.stats = ckpt_path.empty()
                    ? tiled.evaluate(grid, consume)
                    : io::evaluate_with_checkpoint(tiled, grid, consume,
                                                   ckpt_path, ckpt_every);
      r.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      r.cache = model->table_cache_stats();
      r.tables = model->table_cache_size();
      return r;
    };

    // The exact-series row dominates wall time at scale; above the limit it
    // is skipped and the exact reference is instead evaluated only at the
    // strided probe points (same framework, exact configuration).
    constexpr std::size_t kSeriesLimit = 20000;
    const bool ran_series = design.placement.size() <= kSeriesLimit;
    RunResult series;
    if (ran_series) series = run(false, 0.0);
    RunResult lookup;
    // The exact-pitch cache keeps one table per unique pitch alive — at 10k
    // TSVs that is tens of GB of tables, so the uncached reference row only
    // runs for small designs (the quantized speedup is measured there).
    constexpr std::size_t kUncachedLimit = 2000;
    const bool ran_uncached =
        !opt.skip_uncached && design.placement.size() <= kUncachedLimit;
    if (!ran_uncached && !opt.skip_uncached)
      std::printf("(skipping exact-pitch lookup row: > %zu TSVs)\n",
                  kUncachedLimit);
    if (ran_uncached) lookup = run(true, 0.0);
    const RunResult quant = run(true, opt.quant_step);

    // Surrogate fast path on top of the quantized cache: in-domain pairs go
    // through the certified kernel, out-of-domain pitches fall back to the
    // quantized tables. The use counters are process-wide on the shared fit,
    // so reset before the run to report per-design numbers.
    surrogate->reset_use_stats();
    const RunResult surro = run(true, opt.quant_step, std::string(), true);
    const ana::SurrogateUseStats sur_use = surrogate->use_stats();

    // Hierarchical far-field row: surrogate + quantized cache for the near
    // disc and edge ring, per-cluster bicubic tiles for the mid zone. The
    // fold (framework build) is timed separately from the evaluate.
    surrogate->reset_use_stats();
    const RunResult farf = run(true, opt.quant_step, std::string(), true,
                               true);
    const ana::SurrogateUseStats far_use = surrogate->use_stats();

    // Checkpointed re-run of the quantized configuration: same field, plus
    // resumable checkpoints (io::evaluate_with_checkpoint). Each checkpoint
    // holds the whole finished prefix of the field, so the cadence sets the
    // total bytes written; ~3 checkpoints per run keeps the wall-time delta
    // against the plain quant run inside the <= 5% budget.
    const std::string ckpt_path =
        opt.out_dir + "/fullchip_" + std::to_string(count) + ".ckpt";
    // Roughly 3 checkpoints per run whatever the tile count (8 on the 25-tile
    // 10k design), so small designs still exercise the write path.
    ckpt_every = std::max<std::size_t>(1, quant.stats.tiles / 3);
    const RunResult quant_ckpt = run(true, opt.quant_step, ckpt_path);
    // One more interleaved trial per variant, min wall each: single-run
    // deltas on a shared host are dominated by scheduler noise (the plain
    // quant wall itself moves a few percent between runs).
    const double plain_wall =
        std::min(quant.wall_seconds, run(true, opt.quant_step).wall_seconds);
    const double ckpt_wall =
        std::min(quant_ckpt.wall_seconds,
                 run(true, opt.quant_step, ckpt_path).wall_seconds);
    const double ckpt_overhead =
        plain_wall > 0.0 ? ckpt_wall / plain_wall - 1.0 : 0.0;

    // Max probe deviation of each fast path vs the exact series, relative
    // to the field scale (the documented look-up budget is ~1%). When the
    // full series row was skipped, the exact reference is still computed —
    // framework.evaluate() on the probe coordinates only.
    std::vector<num::SymTensor2> exact_probe;
    if (ran_series) {
      exact_probe = series.probe;
    } else {
      const auto model = std::make_shared<const ana::InteractiveStressModel>(
          response, single.k_hat());
      core::FrameworkOptions fopt;
      fopt.num_threads = threads;
      const core::StressFramework exact_fw(design.placement, table, model,
                                           fopt);
      exact_probe = exact_fw.evaluate(quant.probe_pts).stress;
    }
    double scale = 0.0;
    double worst = 0.0;
    double sur_worst = 0.0;
    double far_worst = 0.0;
    for (std::size_t i = 0; i < exact_probe.size(); ++i) {
      scale = std::max({scale, std::abs(exact_probe[i].s11),
                        std::abs(exact_probe[i].s22)});
      worst = std::max({worst,
                        std::abs(quant.probe[i].s11 - exact_probe[i].s11),
                        std::abs(quant.probe[i].s22 - exact_probe[i].s22),
                        std::abs(quant.probe[i].s12 - exact_probe[i].s12)});
      sur_worst = std::max({sur_worst,
                            std::abs(surro.probe[i].s11 - exact_probe[i].s11),
                            std::abs(surro.probe[i].s22 - exact_probe[i].s22),
                            std::abs(surro.probe[i].s12 -
                                     exact_probe[i].s12)});
      far_worst = std::max({far_worst,
                            std::abs(farf.probe[i].s11 - exact_probe[i].s11),
                            std::abs(farf.probe[i].s22 - exact_probe[i].s22),
                            std::abs(farf.probe[i].s12 -
                                     exact_probe[i].s12)});
    }
    const double field_err = scale > 0.0 ? worst / scale : 0.0;
    const double sur_field_err = scale > 0.0 ? sur_worst / scale : 0.0;
    const double far_field_err = scale > 0.0 ? far_worst / scale : 0.0;

    io::TablePrinter out({"stage II path", "stageI(s)", "stageII(s)",
                          "tables", "hits", "misses", "hit%"});
    const auto add_row = [&](const char* name, const RunResult& r) {
      out.add_row({name, io::TablePrinter::format(r.stats.stage1_seconds, 3),
                   io::TablePrinter::format(r.stats.stage2_seconds, 3),
                   std::to_string(r.tables), std::to_string(r.cache.hits),
                   std::to_string(r.cache.misses),
                   io::TablePrinter::format(100.0 * r.cache.hit_rate(), 3)});
    };
    if (ran_series) add_row("series", series);
    if (ran_uncached) add_row("lookup (exact pitch)", lookup);
    add_row("lookup (quantized)", quant);
    add_row("surrogate (+quant fb)", surro);
    add_row("farfield (hier tiles)", farf);
    out.print(std::cout);

    const double speedup_vs_lookup =
        ran_uncached && quant.stats.stage2_seconds > 0.0
            ? lookup.stats.stage2_seconds / quant.stats.stage2_seconds
            : 0.0;
    const double speedup_vs_series =
        ran_series && quant.stats.stage2_seconds > 0.0
            ? series.stats.stage2_seconds / quant.stats.stage2_seconds
            : 0.0;
    std::printf("tiles %zu (%zu x %zu, peak %zu points); pair culling "
                "%zu/%zu evaluated\n",
                quant.stats.tiles, quant.stats.tiles_x,
                quant.stats.tiles_y, quant.stats.peak_tile_points,
                quant.stats.culled_pairs,
                quant.stats.total_pairs * quant.stats.tiles);
    if (!ran_series)
      std::printf("(series row skipped above %zu TSVs; exact reference "
                  "evaluated at the %zu probe points only)\n",
                  kSeriesLimit, exact_probe.size());
    if (ran_uncached)
      std::printf("quantized cache speedup: %.1fx vs exact-pitch lookup, "
                  "%.1fx vs series\n",
                  speedup_vs_lookup, speedup_vs_series);
    else if (ran_series)
      std::printf("quantized cache speedup: %.1fx vs series (uncached row "
                  "skipped)\n", speedup_vs_series);
    std::printf("quantized field vs series (probe of %zu points): max dev "
                "%.2f%% of field scale; max von Mises %.1f MPa; peak RSS "
                "%.0f MB\n",
                exact_probe.size(), 100.0 * field_err, quant.max_vm,
                peak_rss_mb());
    const double sur_speedup =
        ran_series && surro.stats.stage2_seconds > 0.0
            ? series.stats.stage2_seconds / surro.stats.stage2_seconds
            : 0.0;
    std::printf("surrogate: %.1fx vs series (%.1fx vs quantized); pairs "
                "%llu surrogate / %llu fallback; field vs series max dev "
                "%.4f%% of scale\n",
                sur_speedup,
                surro.stats.stage2_seconds > 0.0
                    ? quant.stats.stage2_seconds / surro.stats.stage2_seconds
                    : 0.0,
                static_cast<unsigned long long>(sur_use.surrogate_pairs),
                static_cast<unsigned long long>(sur_use.fallback_pairs),
                100.0 * sur_field_err);
    std::printf("farfield: %s (cert bound %.4f, tol 1e-2); build (fold) "
                "%.3f s, %zu clusters, %.1f MB tiles; fold pairs %zu "
                "(%zu surrogate / %zu table / %zu series); stage II %.3f s "
                "(%.1fx vs quantized); field vs series max dev %.4f%% of "
                "scale\n",
                farf.far_active ? "ACTIVE" : "INERT (gate rejected)",
                farf.far_bound, farf.build_seconds, farf.far_clusters,
                farf.far_tile_mb, farf.far_stats.pairs,
                farf.far_stats.surrogate_pairs, farf.far_stats.table_pairs,
                farf.far_stats.series_pairs, farf.stats.stage2_seconds,
                farf.stats.stage2_seconds > 0.0
                    ? quant.stats.stage2_seconds / farf.stats.stage2_seconds
                    : 0.0,
                100.0 * far_field_err);
    std::printf("checkpointing (every %zu tiles): %zu checkpoints, %.3f s "
                "writing; wall %.3f s vs %.3f s plain (min of 2 each) -> "
                "overhead %+.2f%%\n",
                ckpt_every, quant_ckpt.stats.checkpoints_written,
                quant_ckpt.stats.checkpoint_seconds, ckpt_wall, plain_wall,
                100.0 * ckpt_overhead);

    bench::JsonRow row("fullchip");
    row.uint("tsvs", design.placement.size())
        .uint("arrays", design.count(tsvlib::TsvKind::kArray))
        .uint("banks", design.count(tsvlib::TsvKind::kBank))
        .uint("logic", design.count(tsvlib::TsvKind::kRandom))
        .num("chip_um", spec.chip.width(), "%.1f")
        .uint("points", grid.size())
        .num("spacing_um", opt.spacing, "%.3g")
        .uint("threads", threads)
        .uint("tiles", quant.stats.tiles)
        .uint("peak_tile_points", quant.stats.peak_tile_points)
        .uint("total_pairs", quant.stats.total_pairs)
        .num("stage1_s", quant.stats.stage1_seconds, "%.4f")
        .num("stage2_series_s",
             ran_series ? series.stats.stage2_seconds : -1.0, "%.4f")
        .num("stage2_lookup_s",
             ran_uncached ? lookup.stats.stage2_seconds : -1.0, "%.4f")
        .num("stage2_quant_s", quant.stats.stage2_seconds, "%.4f")
        .num("stage2_surrogate_s", surro.stats.stage2_seconds, "%.4f")
        .uint("surrogate_pairs", sur_use.surrogate_pairs)
        .uint("surrogate_fallbacks", sur_use.fallback_pairs)
        .num("surrogate_cert_bound",
             surrogate->certificate().certified_rel_bound, "%.3g")
        .num("surrogate_field_err_frac", sur_field_err, "%.6f")
        .num("stage2_farfield_s", farf.stats.stage2_seconds, "%.4f")
        .num("farfield_build_s", farf.build_seconds, "%.4f")
        .uint("farfield_active", farf.far_active ? 1 : 0)
        .num("farfield_cert_bound", farf.far_bound, "%.5f")
        .uint("farfield_clusters", farf.far_clusters)
        .num("farfield_tile_mb", farf.far_tile_mb, "%.2f")
        .uint("farfield_fold_pairs", farf.far_stats.pairs)
        .uint("farfield_fold_surrogate", farf.far_stats.surrogate_pairs)
        .uint("farfield_fold_table", farf.far_stats.table_pairs)
        .uint("farfield_fold_series", farf.far_stats.series_pairs)
        .uint("farfield_near_surrogate", far_use.surrogate_pairs)
        .uint("farfield_near_fallback", far_use.fallback_pairs)
        .num("farfield_field_err_frac", far_field_err, "%.6f")
        .num("quant_step_um", opt.quant_step, "%.3g")
        .uint("quant_tables", quant.tables)
        .uint("quant_hits", quant.cache.hits)
        .uint("quant_misses", quant.cache.misses)
        .num("quant_hit_rate", quant.cache.hit_rate(), "%.4f")
        .num("speedup_vs_lookup", speedup_vs_lookup, "%.2f")
        .num("speedup_vs_series", speedup_vs_series, "%.2f")
        .num("field_err_frac", field_err, "%.5f")
        .num("max_vm_mpa", quant.max_vm, "%.2f")
        .uint("checkpoint_every_tiles", ckpt_every)
        .uint("checkpoints_written", quant_ckpt.stats.checkpoints_written)
        .num("checkpoint_write_s", quant_ckpt.stats.checkpoint_seconds, "%.4f")
        .num("quant_wall_s", plain_wall, "%.4f")
        .num("quant_ckpt_wall_s", ckpt_wall, "%.4f")
        .num("checkpoint_overhead_frac", ckpt_overhead, "%.4f")
        .num("peak_rss_mb", peak_rss_mb(), "%.1f");
    bench::append_jsonl(opt.out_dir + "/fullchip.jsonl", row);
  }
  return 0;
}
