// Reproduces Table 5 (Appendix A.2): von Mises error for the two-TSV
// placement with SiO2 liner.

#include "common.h"

int main(int argc, char** argv) {
  const auto config = tsv::bench::BenchConfig::parse(argc, argv);
  tsv::bench::run_pair_sweep(
      tsv::tsvlib::TsvStructure::baseline_sio2(),
      tsv::core::StressMeasure::kVonMises,
      {8.0, 9.0, 10.0, 11.0, 12.0, 18.0, 30.0}, config,
      "=== Table 5: two TSVs, SiO2 liner, von Mises ===");
  return 0;
}
