// ECO bench: incremental (delta) evaluation vs full recompute on full-chip
// designs, plus the snapshot warm-start path.
//
// For each design size the bench
//   1. cold-builds an IncrementalEngine (full two-stage evaluation),
//   2. saves / reloads the engine snapshot (io/snapshot), timing both and
//      checking the restored fields are bitwise identical,
//   3. applies K random legal single-TSV moves through apply(), timing each
//      and counting dirty points,
//   4. full-recomputes once (rebuild()) to time the non-incremental baseline
//      and measure the worst drift the incremental fields accumulated.
//
// One JSON row per design is appended to <out-dir>/eco.jsonl via the shared
// bench::append_jsonl helper. The headline numbers are `speedup`
// (full-recompute seconds / mean apply seconds) and `drift_frac`
// (max per-component drift / field scale — the <= 1e-12 acceptance bound).
//
// Options (beyond --fast):
//   --designs=1000,10000   TSV counts to sweep
//   --moves=20             random single-TSV moves per design
//   --seed=7               RNG seed for the move sequence
//   --density=0.0025       TSVs per um^2
//   --quant=0.25           Stage II pitch quantization step, um
//   --spacing=2.0          simulation-point grid spacing, um
//   --threads=1            threads for the cold build / rebuild
//   --out-dir=results      where eco.jsonl and snapshots go

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "core/incremental_engine.h"
#include "io/snapshot.h"
#include "numeric/parallel.h"
#include "tsv/fullchip.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Options {
  std::vector<std::size_t> designs = {1000, 10000};
  std::size_t moves = 20;
  std::uint64_t seed = 7;
  double density = 0.25e-2;
  double quant_step = 0.25;
  double spacing = 2.0;
  std::size_t threads = 1;
  bool fast = false;
  std::string out_dir = "results";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg == "--fast") {
      o.fast = true;
      o.designs = {200};
      o.moves = 5;
      o.spacing = 4.0;
    } else if (arg.rfind("--designs=", 0) == 0) {
      o.designs.clear();
      std::string list = value("--designs=");
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        o.designs.push_back(std::stoul(list.substr(pos, end - pos)));
        pos = end + 1;
      }
    } else if (arg.rfind("--moves=", 0) == 0) {
      o.moves = std::stoul(value("--moves="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      o.seed = std::stoull(value("--seed="));
    } else if (arg.rfind("--density=", 0) == 0) {
      o.density = std::stod(value("--density="));
    } else if (arg.rfind("--quant=", 0) == 0) {
      o.quant_step = std::stod(value("--quant="));
    } else if (arg.rfind("--spacing=", 0) == 0) {
      o.spacing = std::stod(value("--spacing="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      o.threads = std::stoul(value("--threads="));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      o.out_dir = value("--out-dir=");
    } else {
      throw std::invalid_argument("unknown bench option: " + arg);
    }
  }
  return o;
}

double field_scale(const std::vector<tsv::num::SymTensor2>& field) {
  double s = 0.0;
  for (const auto& t : field)
    s = std::max({s, std::abs(t.s11), std::abs(t.s22), std::abs(t.s12)});
  return s;
}

bool bitwise_equal(const std::vector<tsv::num::SymTensor2>& a,
                   const std::vector<tsv::num::SymTensor2>& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(),
                     a.size() * sizeof(tsv::num::SymTensor2)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsv;
  const Options opt = parse(argc, argv);
  const std::size_t threads = num::resolve_thread_count(opt.threads);
  std::filesystem::create_directories(opt.out_dir);

  const tsvlib::TsvStructure structure = tsvlib::TsvStructure::baseline_bcb();
  const mat::ThermalLoad load{};
  const ana::SingleTsvModel single(structure, load);
  const auto table = std::make_shared<const core::RadialStressTable>(
      core::RadialStressTable::from_analytic(single, 30.0, 4096));
  const auto response =
      std::make_shared<const ana::InclusionResponse>(structure);

  std::printf("=== ECO workloads: incremental apply vs full recompute ===\n");
  std::printf("threads=%zu spacing=%.3g um quant=%.3g um moves=%zu seed=%llu\n",
              threads, opt.spacing, opt.quant_step, opt.moves,
              static_cast<unsigned long long>(opt.seed));

  for (const std::size_t count : opt.designs) {
    const tsvlib::FullChipSpec spec =
        tsvlib::spec_for_count(count, opt.density, 90000 + count);
    const tsvlib::FullChipDesign design =
        tsvlib::make_fullchip(structure, spec);
    const geo::Box roi = design.placement.bounding_box().expanded(25.0);
    const geo::SampleGrid grid =
        geo::SampleGrid::with_spacing(roi, opt.spacing);

    std::printf("\n--- design %zu TSVs, %zu points ---\n",
                design.placement.size(), grid.size());

    const auto model = std::make_shared<const ana::InteractiveStressModel>(
        response, single.k_hat());
    core::IncrementalOptions eopt;
    eopt.stage2.use_lookup_table = true;
    eopt.stage2.pitch_quant_step = opt.quant_step;
    eopt.num_threads = threads;

    const auto t_build0 = Clock::now();
    core::IncrementalEngine engine(design.placement, grid, table, model,
                                   eopt);
    const double build_s = seconds_since(t_build0);
    std::printf("cold build (full two-stage evaluation): %.3fs\n", build_s);

    // Snapshot round trip: a warm start skips the build above entirely.
    const std::string snap_path =
        opt.out_dir + "/eco_" + std::to_string(count) + ".snap";
    const auto t_save0 = Clock::now();
    io::save_engine_state(snap_path, engine);
    const double save_s = seconds_since(t_save0);
    const auto snap_bytes = std::filesystem::file_size(snap_path);
    const auto t_load0 = Clock::now();
    const core::IncrementalEngine warmed = io::load_engine_state(snap_path);
    const double load_s = seconds_since(t_load0);
    const bool snap_bitwise =
        bitwise_equal(engine.stage1_field(), warmed.stage1_field()) &&
        bitwise_equal(engine.stage2_field(), warmed.stage2_field());
    std::printf("snapshot: save %.3fs, %.1f MB, load %.3fs, fields %s\n",
                save_s, static_cast<double>(snap_bytes) / (1024.0 * 1024.0),
                load_s, snap_bitwise ? "bitwise identical" : "MISMATCH");

    // K random legal single-TSV moves: displacement uniform in [-8, 8] um,
    // retried (fresh id + displacement) when it would violate min pitch.
    std::mt19937_64 rng(opt.seed);
    std::uniform_real_distribution<double> jump(-8.0, 8.0);
    const std::vector<std::uint32_t> ids = engine.active_ids();
    std::uniform_int_distribution<std::size_t> pick(0, ids.size() - 1);

    double total_apply_s = 0.0;
    std::size_t total_dirty = 0;
    std::size_t applied = 0;
    double worst_apply_s = 0.0;
    for (std::size_t k = 0; k < opt.moves; ++k) {
      for (int attempt = 0; attempt < 100; ++attempt) {
        const std::uint32_t id = ids[pick(rng)];
        const geo::Point c = engine.center(id);
        const geo::Point target{c.x + jump(rng), c.y + jump(rng)};
        try {
          const core::ApplyStats st =
              engine.apply({core::EcoOp::move(id, target)});
          total_apply_s += st.seconds;
          worst_apply_s = std::max(worst_apply_s, st.seconds);
          total_dirty += st.dirty_points;
          ++applied;
          break;
        } catch (const std::invalid_argument&) {
          // Illegal move (overlap) — retry with a fresh id/displacement.
        }
      }
    }
    const double mean_apply_s =
        applied > 0 ? total_apply_s / static_cast<double>(applied) : 0.0;
    const double mean_dirty =
        applied > 0 ? static_cast<double>(total_dirty) /
                          static_cast<double>(applied)
                    : 0.0;

    // Full-recompute baseline + accumulated drift of the incremental path.
    const double scale = field_scale(engine.total_field());
    const auto t_full0 = Clock::now();
    const double drift_mpa = engine.rebuild();
    const double full_s = seconds_since(t_full0);
    const double drift_frac = scale > 0.0 ? drift_mpa / scale : 0.0;
    const double speedup = mean_apply_s > 0.0 ? full_s / mean_apply_s : 0.0;

    std::printf("moves: %zu applied, mean %.4g ms (worst %.4g ms), mean "
                "dirty points %.0f / %zu\n",
                applied, 1e3 * mean_apply_s, 1e3 * worst_apply_s, mean_dirty,
                grid.size());
    std::printf("full recompute: %.3fs -> speedup %.0fx; drift %.3g MPa "
                "(%.3g of field scale %.1f MPa)\n",
                full_s, speedup, drift_mpa, drift_frac, scale);

    bench::JsonRow row("eco");
    row.uint("tsvs", design.placement.size())
        .uint("points", grid.size())
        .num("spacing_um", opt.spacing, "%.3g")
        .uint("threads", threads)
        .num("quant_step_um", opt.quant_step, "%.3g")
        .num("build_s", build_s, "%.4f")
        .num("snapshot_save_s", save_s, "%.4f")
        .uint("snapshot_bytes", snap_bytes)
        .num("snapshot_load_s", load_s, "%.4f")
        .boolean("snapshot_bitwise", snap_bitwise)
        .uint("moves", applied)
        .num("mean_apply_s", mean_apply_s, "%.6f")
        .num("worst_apply_s", worst_apply_s, "%.6f")
        .num("mean_dirty_points", mean_dirty, "%.1f")
        .num("full_recompute_s", full_s, "%.4f")
        .num("speedup", speedup, "%.1f")
        .num("drift_mpa", drift_mpa, "%.3g")
        .num("drift_frac", drift_frac, "%.3g");
    bench::append_jsonl(opt.out_dir + "/eco.jsonl", row);
  }
  return 0;
}
