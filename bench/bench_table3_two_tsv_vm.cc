// Reproduces Table 3 (Appendix A.2): error of von Mises stress for the
// two-TSV BCB placement, pitch swept 8..30 um, LS vs PF vs FEM golden.

#include "common.h"

int main(int argc, char** argv) {
  const auto config = tsv::bench::BenchConfig::parse(argc, argv);
  tsv::bench::run_pair_sweep(
      tsv::tsvlib::TsvStructure::baseline_bcb(),
      tsv::core::StressMeasure::kVonMises,
      {8.0, 9.0, 10.0, 11.0, 12.0, 18.0, 30.0}, config,
      "=== Table 3: two TSVs, BCB liner, von Mises ===");
  return 0;
}
