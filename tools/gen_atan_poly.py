#!/usr/bin/env python3
"""Generates the odd-polynomial atan coefficients used by
num::detail::atan_core (src/numeric/kernels.h).

The Stage II table batch kernel folds its per-point lookup angle
atan2(y, x) (y >= 0) onto a single atan(t) with |t| <= tan(pi/8) via the
octant identities, so one polynomial on that short interval replaces the
libm call.  atan(t) = t * q(t^2) where q(s) = atan(sqrt(s))/sqrt(s) is
analytic on s in [0, tan(pi/8)^2] (nearest singularity at s = -1), so a
Chebyshev interpolant of q converges geometrically: degree 11 in s
(degree 23 in t) already leaves the truncation error below double
rounding (~1e-16 rad absolute; test_kernels sweeps this against
std::atan2).

Pure stdlib on purpose: the CI image has no numpy.  Run from the repo
root and paste the emitted array over kAtanCoeffs when retuning:

  python3 tools/gen_atan_poly.py
"""

import math

A = math.tan(math.pi / 8.0)  # fold bound
B = A * A                    # s-domain upper end
M = 11                       # Chebyshev degree in s


def g(s):
    """atan(sqrt(s)) / sqrt(s), continuous at 0."""
    if s <= 0.0:
        return 1.0
    t = math.sqrt(s)
    return math.atan(t) / t


def cheb_coeffs(f, degree):
    """Chebyshev-interpolation coefficients of f on [-1, 1]."""
    n = degree + 1
    nodes = [math.cos(math.pi * (j + 0.5) / n) for j in range(n)]
    vals = [f(u) for u in nodes]
    coeffs = []
    for k in range(n):
        c = 2.0 / n * sum(vals[j] * math.cos(math.pi * k * (j + 0.5) / n)
                          for j in range(n))
        coeffs.append(c / 2.0 if k == 0 else c)
    return coeffs


def cheb_to_monomial(coeffs):
    """Sum c_k T_k(u) as monomial coefficients in u (ascending)."""
    # T_0 = 1, T_1 = u, T_{k+1} = 2u T_k - T_{k-1}
    t_prev, t_cur = [1.0], [0.0, 1.0]
    out = [0.0] * len(coeffs)

    def add(poly, scale):
        for i, p in enumerate(poly):
            out[i] += scale * p

    add(t_prev, coeffs[0])
    if len(coeffs) > 1:
        add(t_cur, coeffs[1])
    for k in range(2, len(coeffs)):
        t_next = [0.0] + [2.0 * c for c in t_cur]
        for i, p in enumerate(t_prev):
            t_next[i] -= p
        add(t_next, coeffs[k])
        t_prev, t_cur = t_cur, t_next
    return out


def substitute_affine(poly_u, alpha, beta):
    """p(u) with u = alpha*s + beta -> coefficients in s (ascending)."""
    # Horner over polynomial arithmetic.
    out = [poly_u[-1]]
    for c in reversed(poly_u[:-1]):
        nxt = [0.0] * (len(out) + 1)
        for i, p in enumerate(out):
            nxt[i + 1] += alpha * p
            nxt[i] += beta * p
        nxt[0] += c
        out = nxt
    return out


def main():
    cheb = cheb_coeffs(lambda u: g(B * (u + 1.0) / 2.0), M)
    poly_s = substitute_affine(cheb_to_monomial(cheb), 2.0 / B, -1.0)

    # Verify: dense sweep of t * q(t^2) against math.atan over the fold range.
    worst = 0.0
    n = 200001
    for i in range(n):
        t = -A + 2.0 * A * i / (n - 1)
        s = t * t
        q = 0.0
        for c in reversed(poly_s):
            q = q * s + c
        worst = max(worst, abs(t * q - math.atan(t)))
    print(f"// max |poly - atan| over [-tan(pi/8), tan(pi/8)]: {worst:.3e} rad")
    print("inline constexpr double kAtanCoeffs[] = {")
    for c in poly_s:
        print(f"    {c!r},")
    print("};")


if __name__ == "__main__":
    main()
