#!/usr/bin/env sh
# End-to-end smoke test for the stress-service daemon: starts a real
# tsvstress_server on a Unix socket, drives it with scripted
# `tsvstress_cli client` sessions (point query, edit batch, eviction +
# transparent reload, stats, clean shutdown), and asserts the CLI exit
# codes follow the error taxonomy (0 ok, 2 invalid input). Also checks the
# durability contract: a region map re-read after eviction and after a full
# daemon restart is byte-identical (%.17g CSV) to the original, and an eco
# batch acked before a kill -9 survives the crash via journal replay — with
# a duplicate-seq retry of that batch acked as a no-op.
#
# Usage: server_smoke.sh <path-to-tsvstress_server> <path-to-tsvstress_cli>
set -u

SERVER="$1"
CLI="$2"
WORK="$(mktemp -d)"
SOCK="$WORK/daemon.sock"
SNAPS="$WORK/snaps"
DAEMON_PID=""
fails=0

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
  "$SERVER" --unix="$SOCK" --snapshot-dir="$SNAPS" \
    >>"$WORK/server.log" 2>&1 &
  DAEMON_PID=$!
  tries=0
  while [ ! -S "$SOCK" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
      echo "FAIL [daemon start]: socket never appeared" >&2
      sed 's/^/  server: /' "$WORK/server.log" >&2
      exit 1
    fi
    sleep 0.1
  done
}

client() {
  "$CLI" client "--connect=unix:$SOCK" "$@"
}

expect_code() {
  want="$1"
  label="$2"
  shift 2
  client "$@" >"$WORK/out.log" 2>"$WORK/err.log"
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL [$label]: expected exit $want, got $got" >&2
    sed 's/^/  stderr: /' "$WORK/err.log" >&2
    fails=$((fails + 1))
  else
    echo "ok [$label]: exit $got"
  fi
}

expect_identical() {
  label="$1"
  if cmp -s "$2" "$3"; then
    echo "ok [$label]"
  else
    echo "FAIL [$label]: files differ" >&2
    fails=$((fails + 1))
  fi
}

cat >"$WORK/chip.tsv" <<EOF
structure 2.5 0.1 BCB
tsv 0 0
tsv 10 0
tsv 5 8
EOF
cat >"$WORK/edits.txt" <<EOF
move 1 11 0.5
add 12 10
EOF
cat >"$WORK/bad_edits.txt" <<EOF
move 1 0.5 0
EOF

start_daemon

# --- the happy path -------------------------------------------------------
expect_code 0 "ping" ping
expect_code 0 "open session" \
  open --session=chip "--placement=$WORK/chip.tsv" --spacing=1 --margin=5
expect_code 0 "point query" query --session=chip --at=0,0 --at=5.2,4.1
expect_code 0 "eco edit batch" eco --session=chip "--edits=$WORK/edits.txt"
expect_code 0 "region map" \
  region --session=chip "--out=$WORK/before.csv"
expect_code 0 "koz contours" koz --session=chip --limit=60 --rays=16
expect_code 0 "stats" stats

# --- error taxonomy over the wire ----------------------------------------
expect_code 2 "query on unknown session" query --session=ghost --at=0,0
expect_code 2 "illegal edit (overlap)" \
  eco --session=chip "--edits=$WORK/bad_edits.txt"
expect_code 2 "open duplicate session" \
  open --session=chip "--placement=$WORK/chip.tsv"

# --- eviction + transparent reload ---------------------------------------
expect_code 0 "force eviction" evict --session=chip
if [ -f "$SNAPS/chip.snap" ]; then
  echo "ok [snapshot written on eviction]"
else
  echo "FAIL [snapshot written on eviction]: no $SNAPS/chip.snap" >&2
  fails=$((fails + 1))
fi
expect_code 0 "region map after reload" \
  region --session=chip "--out=$WORK/after_evict.csv"
expect_identical "reloaded field is byte-identical" \
  "$WORK/before.csv" "$WORK/after_evict.csv"

# --- clean shutdown persists sessions, restart recovers them -------------
expect_code 0 "shutdown" shutdown
wait "$DAEMON_PID"
daemon_exit=$?
DAEMON_PID=""
if [ "$daemon_exit" -eq 0 ]; then
  echo "ok [daemon clean exit]: exit 0"
else
  echo "FAIL [daemon clean exit]: exit $daemon_exit" >&2
  fails=$((fails + 1))
fi

start_daemon
expect_code 0 "region map after daemon restart" \
  region --session=chip "--out=$WORK/after_restart.csv"
expect_identical "recovered field is byte-identical" \
  "$WORK/before.csv" "$WORK/after_restart.csv"

# --- kill -9 mid-session: journal replay + duplicate-seq dedupe ----------
cat >"$WORK/edits2.txt" <<EOF
add 20 20
EOF
expect_code 0 "journaled eco (seq=1)" \
  eco --session=chip "--edits=$WORK/edits2.txt" --seq=1
expect_code 0 "region map after journaled eco" \
  region --session=chip "--out=$WORK/replay_before.csv"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=""
start_daemon
expect_code 0 "region map after kill -9 + replay" \
  region --session=chip "--out=$WORK/replay_after.csv" --retries=3
expect_identical "replayed field is byte-identical" \
  "$WORK/replay_before.csv" "$WORK/replay_after.csv"
expect_code 0 "duplicate eco retry (seq=1)" \
  eco --session=chip "--edits=$WORK/edits2.txt" --seq=1
if grep -q '"duplicate":true' "$WORK/out.log"; then
  echo "ok [duplicate seq acked as no-op]"
else
  echo "FAIL [duplicate seq acked as no-op]: response lacked duplicate:true" >&2
  fails=$((fails + 1))
fi
expect_code 0 "region map after duplicate retry" \
  region --session=chip "--out=$WORK/replay_dup.csv"
expect_identical "duplicate retry applied nothing" \
  "$WORK/replay_before.csv" "$WORK/replay_dup.csv"

expect_code 0 "close session (discard)" close --session=chip --discard
if [ -e "$SNAPS/chip.snap" ]; then
  echo "FAIL [discard removes snapshot]: $SNAPS/chip.snap survived" >&2
  fails=$((fails + 1))
else
  echo "ok [discard removes snapshot]"
fi
expect_code 0 "second shutdown" shutdown
wait "$DAEMON_PID"
DAEMON_PID=""

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all server smoke checks passed"
