#!/usr/bin/env bash
# Machine-checks the race-freedom claim of the parallel evaluation engine:
# configures a sanitizer-instrumented build (-DTSV_SANITIZE=...) and runs
# the `tsan`-labeled parallel test suite under it.
#
# Usage:
#   tools/run_tsan.sh                 # ThreadSanitizer, build-tsan/
#   tools/run_tsan.sh build-asan address,undefined
#
# Any report (race, leak, UB) makes the instrumented tests — and hence this
# script — fail.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZER="${2:-thread}"
BUILD_DIR="${1:-build-${SANITIZER//,/-}}"

cmake -B "$BUILD_DIR" -S . \
  -DTSV_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

# Only the parallel suite needs instrumented binaries; building just these
# targets keeps the sanitizer build turnaround short.
cmake --build "$BUILD_DIR" -j --target \
  test_parallel test_superposition test_interactive_stage \
  test_framework_parallel test_tiled_evaluator test_koz \
  test_incremental_engine

(cd "$BUILD_DIR" && ctest -L tsan --output-on-failure -j)
echo "sanitizer=${SANITIZER}: all labeled tests passed with zero reports"
