#!/usr/bin/env python3
"""CI guard for the Stage I/II point-kernel timings.

bench_micro_kernels appends one row per (kernel, mode) to
results/kernels.jsonl; this script compares the latest rows against the
committed baseline (tools/kernel_baseline.json) and fails when

  * any ns_per_eval regresses more than `max_regression` (default 25%)
    over its baseline value, or
  * a kernel's batch-row speedup — measured within the same run, so it is
    host-speed independent — drops below the baseline's `min_speedup`
    floor. For stage1_point/stage2_point the speedup is batch-vs-scalar;
    for stage2_surrogate it is surrogate-batch vs Stage II *table* batch
    (the certified fast path's advertised >= 2.5x advantage).

With --variation, the guard additionally checks bench_variation's
results/variation.jsonl against the baseline's "variation" section: at the
baseline TSV count, a Monte Carlo variation sample streamed through the
resident incremental engine must stay at least `min_sample_speedup` times
cheaper than a cold full recompute (speedup_cold in the row — fresh
characterization + engine build per sample). Host-speed independent, like
the batch-speedup floors.

With --fullchip, the guard also compares bench_fullchip's peak_rss_mb
against the committed per-design peaks in the baseline's "rss" section
(a list of {tsvs, spacing_um, peak_rss_mb, max_growth} entries). This
check FAILS the job on growth beyond `max_growth`: the float32 table
tier cut the fast-mode peak from 3.3 GB to under 1 GB, and the gate keeps
it there (the earlier warn-only variant let a 2x regression linger).
The baseline's "farfield" section additionally locks the hierarchical
far-field row at its design point: the aggregate must be ACTIVE (its
machine-checked certificate passed the tolerance), the certificate bound
must stay under `max_cert_bound`, and the far-field Stage II time must
beat the quantized row by at least `min_speedup_vs_quant`.

Usage:
  tools/check_kernel_perf.py <kernels.jsonl> <baseline.json>
  tools/check_kernel_perf.py <kernels.jsonl> <baseline.json> \
      --variation results/variation.jsonl --fullchip results/fullchip.jsonl
  tools/check_kernel_perf.py <kernels.jsonl> <baseline.json> --write-baseline

--write-baseline refreshes the committed timings from the given run
(keeping the existing speedup floors and the variation/rss sections)
instead of checking.
"""

import argparse
import json
import sys

MODES = ("scalar", "batch")
# Floors used for kernels absent from the baseline when writing a fresh one.
DEFAULT_MIN_SPEEDUP = {
    "stage1_point": 2.0,
    "stage2_point": 1.2,
    "stage2_surrogate": 2.5,
}


def latest_rows(path):
    """Last row per (kernel, mode) in file order."""
    rows = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "kernels":
                continue
            rows[(row["kernel"], row["mode"])] = row
    return rows


def write_baseline(rows, baseline_path, old, max_regression):
    kernels = {}
    for (kernel, mode), row in sorted(rows.items()):
        spec = kernels.setdefault(kernel, {})
        spec[f"{mode}_ns_per_eval"] = row["ns_per_eval"]
    for kernel, spec in kernels.items():
        old_spec = old.get("kernels", {}).get(kernel, {})
        spec["min_speedup"] = old_spec.get(
            "min_speedup", DEFAULT_MIN_SPEEDUP.get(kernel, 1.0))
    data = {"max_regression": max_regression, "kernels": kernels}
    if "variation" in old:
        data["variation"] = old["variation"]
    if "rss" in old:
        data["rss"] = old["rss"]
    if "farfield" in old:
        data["farfield"] = old["farfield"]
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2)
        f.write("\n")
    print(f"wrote {baseline_path}")


def latest_variation_row(path, min_tsvs):
    """Last bench_variation row at >= min_tsvs TSVs, or None."""
    latest = None
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "variation":
                continue
            if row.get("tsvs", 0) >= min_tsvs:
                latest = row
    return latest


def check_variation(path, baseline):
    spec = baseline.get("variation")
    if spec is None:
        return ["baseline has no 'variation' section (add one or drop "
                "--variation)"]
    tsvs = spec.get("tsvs", 1000)
    floor = spec.get("min_sample_speedup", 50.0)
    row = latest_variation_row(path, tsvs)
    if row is None:
        return [f"variation: no row with tsvs >= {tsvs} in {path}"]
    speedup = row.get("speedup_cold", 0.0)
    verdict = "ok" if speedup >= floor else "BELOW FLOOR"
    print(f"variation @ {row['tsvs']} TSVs: per-sample speedup "
          f"{speedup:.1f}x vs cold full recompute "
          f"(floor {floor:.1f}x) {verdict}")
    if speedup < floor:
        return [f"variation: per-sample speedup {speedup:.1f}x at "
                f"{row['tsvs']} TSVs is below the floor {floor:.1f}x"]
    return []


def latest_fullchip_row(path, tsvs, spacing):
    """Last bench_fullchip row at the baseline design point, or None."""
    latest = None
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("bench") != "fullchip":
                continue
            if row.get("tsvs") != tsvs:
                continue
            if spacing is not None and row.get("spacing_um") != spacing:
                continue
            latest = row
    return latest


def check_rss(path, baseline):
    """Failing memory guard: each committed per-design peak in the
    baseline's "rss" list must not grow more than its `max_growth`
    fraction. Accepts the legacy single-dict form too.
    """
    specs = baseline.get("rss")
    if specs is None:
        print("rss: baseline has no 'rss' section; skipping")
        return []
    if isinstance(specs, dict):
        specs = [specs]
    failures = []
    for spec in specs:
        tsvs = spec.get("tsvs", 1000)
        spacing = spec.get("spacing_um")
        row = latest_fullchip_row(path, tsvs, spacing)
        if row is None:
            where = f"tsvs == {tsvs}"
            if spacing is not None:
                where += f", spacing_um == {spacing}"
            failures.append(f"rss: no fullchip row with {where} in {path}")
            continue
        measured = row.get("peak_rss_mb", 0.0)
        base = spec["peak_rss_mb"]
        max_growth = spec.get("max_growth", 0.25)
        allowed = base * (1.0 + max_growth)
        verdict = "ok" if measured <= allowed else "GREW"
        print(f"fullchip rss @ {tsvs} TSVs: peak {measured:.1f} MB "
              f"(baseline {base:.1f}, allowed <= {allowed:.1f}) {verdict}")
        if measured > allowed:
            failures.append(
                f"fullchip peak RSS {measured:.1f} MB at {tsvs} TSVs "
                f"exceeds the baseline {base:.1f} MB by more than "
                f"{100 * max_growth:.0f}%")
    return failures


def check_farfield(path, baseline):
    """Far-field floor: the hierarchical row must be active (certificate
    passed), its bound under max_cert_bound, and its Stage II time at
    least min_speedup_vs_quant times faster than the quantized row.
    """
    spec = baseline.get("farfield")
    if spec is None:
        print("farfield: baseline has no 'farfield' section; skipping")
        return []
    tsvs = spec.get("tsvs", 1000)
    spacing = spec.get("spacing_um")
    row = latest_fullchip_row(path, tsvs, spacing)
    if row is None:
        return [f"farfield: no fullchip row with tsvs == {tsvs} in {path}"]
    failures = []
    active = row.get("farfield_active", 0) == 1
    bound = row.get("farfield_cert_bound", -1.0)
    max_bound = spec.get("max_cert_bound", 0.01)
    quant_s = row.get("stage2_quant_s", 0.0)
    far_s = row.get("stage2_farfield_s", 0.0)
    floor = spec.get("min_speedup_vs_quant", 1.5)
    speedup = quant_s / far_s if far_s > 0.0 else 0.0
    print(f"fullchip farfield @ {tsvs} TSVs: "
          f"{'ACTIVE' if active else 'INERT'}, cert bound {bound:.5f} "
          f"(max {max_bound}), stage II {far_s:.3f} s vs quant "
          f"{quant_s:.3f} s -> {speedup:.2f}x (floor {floor}x)")
    if not active:
        failures.append(f"farfield: aggregate INERT at {tsvs} TSVs (the "
                        f"certificate gate rejected it)")
    if bound < 0.0 or bound > max_bound:
        failures.append(f"farfield: certificate bound {bound:.5f} exceeds "
                        f"{max_bound}")
    if speedup < floor:
        failures.append(f"farfield: stage II speedup {speedup:.2f}x vs the "
                        f"quantized row is below the floor {floor}x")
    return failures


def check(rows, baseline):
    failures = []
    max_regression = baseline.get("max_regression", 0.25)
    for kernel, spec in baseline["kernels"].items():
        for mode in MODES:
            key = f"{mode}_ns_per_eval"
            if key not in spec:
                continue
            row = rows.get((kernel, mode))
            if row is None:
                failures.append(f"{kernel}/{mode}: no row in kernels.jsonl")
                continue
            measured = row["ns_per_eval"]
            allowed = spec[key] * (1.0 + max_regression)
            verdict = "ok" if measured <= allowed else "REGRESSED"
            print(f"{kernel}/{mode}: {measured:.3f} ns/eval "
                  f"(baseline {spec[key]:.3f}, allowed <= {allowed:.3f}) "
                  f"{verdict}")
            if measured > allowed:
                failures.append(
                    f"{kernel}/{mode}: {measured:.3f} ns/eval exceeds "
                    f"baseline {spec[key]:.3f} by more than "
                    f"{100 * max_regression:.0f}%")
        floor = spec.get("min_speedup")
        batch = rows.get((kernel, "batch"))
        if floor is not None and batch is not None:
            speedup = batch.get("speedup", 0.0)
            verdict = "ok" if speedup >= floor else "BELOW FLOOR"
            print(f"{kernel}: batch speedup {speedup:.3f}x "
                  f"(floor {floor:.3f}x) {verdict}")
            if speedup < floor:
                failures.append(
                    f"{kernel}: batch speedup {speedup:.3f}x is below the "
                    f"floor {floor:.3f}x")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("jsonl", help="kernels.jsonl from bench_micro_kernels")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--write-baseline", action="store_true",
                        help="refresh the baseline from this run's rows")
    parser.add_argument("--variation", metavar="PATH", default=None,
                        help="also check bench_variation's variation.jsonl "
                             "against the baseline's per-sample floor")
    parser.add_argument("--fullchip", metavar="PATH", default=None,
                        help="also gate bench_fullchip's per-design peak "
                             "RSS ('rss' section) and the hierarchical "
                             "far-field floor ('farfield' section)")
    parser.add_argument("--max-regression", type=float, default=None,
                        help="override the baseline's allowed fraction")
    args = parser.parse_args()

    rows = latest_rows(args.jsonl)
    if not rows:
        print(f"error: no kernel rows found in {args.jsonl}", file=sys.stderr)
        return 1

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        if not args.write_baseline:
            print(f"error: baseline {args.baseline} not found "
                  f"(create it with --write-baseline)", file=sys.stderr)
            return 1
        baseline = {}

    if args.max_regression is not None:
        baseline["max_regression"] = args.max_regression

    if args.write_baseline:
        write_baseline(rows, args.baseline, baseline,
                       baseline.get("max_regression", 0.25))
        return 0

    failures = check(rows, baseline)
    if args.variation is not None:
        failures += check_variation(args.variation, baseline)
    if args.fullchip is not None:
        failures += check_rss(args.fullchip, baseline)
        failures += check_farfield(args.fullchip, baseline)
    if failures:
        print("\nkernel perf guard FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nkernel perf guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
