// tsvstress command-line front end.
//
//   tsvstress_cli evaluate  <placement.tsv> [options]   one-shot field eval
//   tsvstress_cli eco       <placement.tsv> [options]   incremental edits
//   tsvstress_cli variation <placement.tsv> [options]   Monte Carlo sweep
//   tsvstress_cli snapshot save <placement.tsv> [options]
//   tsvstress_cli snapshot info <file.snap>
//   tsvstress_cli client --connect=unix:PATH|HOST:PORT <op> [options]
//                                                        talk to the daemon
//                                                        (tsvstress_server)
//
// Invocations that start with a placement file (no subcommand) are treated
// as an implicit `evaluate`, so pre-subcommand scripts keep working:
//
//   tsvstress_cli design.tsv --spacing=1 --out=field.csv
//
// evaluate options:
//   --spacing=X       grid spacing, um (default 0.5)
//   --margin=X        halo around the placement bounding box, um (default 25)
//   --ls-only         linear superposition only (no interactive stage)
//   --lookup          Stage II via polar look-up tables (faster, ~1% accuracy)
//   --measure=M       sigma_xx | sigma_yy | sigma_xy | von_mises | max_tensile
//                     (default von_mises)
//   --out=FILE        output CSV (default stress.csv)
//   --checkpoint=FILE tiled evaluation with crash resilience: periodically
//                     save completed-tile state to FILE, resume from it if
//                     present (stale/corrupt checkpoints restart clean),
//                     delete it on success
//   --checkpoint-every=N   checkpoint after every N computed tiles (default
//                     16, with --checkpoint)
//   --surrogate       Stage II via the certified Chebyshev surrogate (fits
//                     and certifies one per process, ~40 ms)
//   --surrogate-file=FILE  persist the fitted surrogate: load FILE when it
//                     holds a valid surrogate snapshot (skipping the fit),
//                     fit + save it otherwise. The file must come from the
//                     same TSV structure; the embedded certificate still
//                     gates use per evaluation.
//
// Exit codes (see src/core/error.h): 0 success, 2 invalid input, 3 numeric
// failure (all solver backends failed), 4 on-disk corruption, 5 resource
// limit, 1 anything uncategorized.
//
// eco options (besides --spacing/--margin/--measure/--out/--lookup):
//   --snapshot=FILE       warm-start from an engine snapshot instead of
//                         building from the placement (placement arg optional)
//   --moves=K             apply K random legal single-TSV moves
//   --seed=S              RNG seed for --moves (default 7)
//   --edits=FILE          apply an edit script as one atomic batch; lines:
//                             add <x_um> <y_um>
//                             move <id> <x_um> <y_um>
//                             remove <id>
//   --verify              full recompute afterwards; report the drift of the
//                         incremental fields
//   --save-snapshot=FILE  save the engine state after the edits
//   --quant=X             Stage II pitch quantization step, um (default 0.25,
//                         only with --lookup)
//   --threads=N           threads for the cold build / --verify recompute
//
// variation options (besides --spacing/--margin/--lookup/--quant/
// --surrogate/--threads/--out):
//   --samples=N       Monte Carlo samples per corner (default 128)
//   --seed=S          sampler seed (default 1)
//   --jitter-tsvs=K   TSVs jittered per sample (default 8)
//   --jitter-sigma=X  per-axis placement jitter sigma, um (default 0.5)
//   --cte-sigma=X     relative sigma of the thermal-load scale (default 0.05)
//   --corners=MODE    none | materials ({Cu,CNT} x {BCB,SiO2}) | geometry
//                     (+/- radius and liner corners); default none
// Per corner the sweep streams every sample through a resident incremental
// engine (an edit batch, never a full rebuild) and writes a per-point CSV
// (mean/sigma/quantiles/exceedance); multiple corners write
// <out-stem>.<corner>.csv.
//
// snapshot save: builds the engine (same knobs as eco) and writes the
// engine-state snapshot to --out=FILE (default engine.snap). A later
// `eco --snapshot=FILE` then skips characterization and evaluation —
// including the surrogate fit when the engine had one attached (the
// snapshot embeds it, certificate and all).
// snapshot info: prints the header of any snapshot file (kind, version,
// payload size, checksum) after validating its checksum.
//
// Placement format (see src/tsv/placement_io.h):
//   structure <body_radius_um> <liner_thickness_um> <BCB|SiO2>
//   tsv <x_um> <y_um>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/framework.h"
#include "server/client.h"
#include "core/incremental_engine.h"
#include "core/metrics.h"
#include "core/tiled_evaluator.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "stats/variation_engine.h"
#include "tsv/placement_io.h"

namespace {

using namespace tsv;

core::StressMeasure parse_measure(const std::string& name) {
  if (name == "sigma_xx") return core::StressMeasure::kSigmaXX;
  if (name == "sigma_yy") return core::StressMeasure::kSigmaYY;
  if (name == "sigma_xy") return core::StressMeasure::kSigmaXY;
  if (name == "von_mises") return core::StressMeasure::kVonMises;
  if (name == "max_tensile") return core::StressMeasure::kMaxTensile;
  throw std::invalid_argument("unknown measure: " + name);
}

/// Flags shared by every subcommand that evaluates a field.
struct CommonOptions {
  std::string placement_path;
  std::string out_path;
  double spacing = 0.5;
  double margin = 25.0;
  bool ls_only = false;
  bool lookup = false;
  double quant_step = 0.25;
  std::size_t threads = 1;
  core::StressMeasure measure = core::StressMeasure::kVonMises;
  std::string checkpoint_path;        ///< --checkpoint= (empty: disabled)
  std::size_t checkpoint_every = 16;  ///< --checkpoint-every=
  bool surrogate = false;             ///< --surrogate
  std::string surrogate_file;         ///< --surrogate-file= (empty: none)
};

/// variation-specific flags.
struct VariationCliOptions {
  std::size_t samples = 128;
  std::uint64_t seed = 1;
  std::size_t jitter_tsvs = 8;
  double jitter_sigma = 0.5;
  double cte_sigma = 0.05;
  std::string corners = "none";  ///< none | materials | geometry
  bool parallel_corners = false;  ///< sweep corners on the shared pool
};

/// eco-specific flags (also parsed by `snapshot save` where they apply).
struct EcoOptions {
  std::string snapshot_path;       ///< warm start (--snapshot=)
  std::string save_snapshot_path;  ///< --save-snapshot=
  std::string edits_path;          ///< --edits=
  std::size_t moves = 0;           ///< --moves=
  std::uint64_t seed = 7;
  bool verify = false;
};

/// Parses one flag into `c`/`e`; returns false when the flag is unknown.
bool parse_flag(const std::string& arg, CommonOptions& c, EcoOptions& e) {
  const auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg == "--ls-only") {
    c.ls_only = true;
  } else if (arg == "--lookup") {
    c.lookup = true;
  } else if (arg == "--verify") {
    e.verify = true;
  } else if (arg.rfind("--spacing=", 0) == 0) {
    c.spacing = std::stod(value("--spacing="));
  } else if (arg.rfind("--margin=", 0) == 0) {
    c.margin = std::stod(value("--margin="));
  } else if (arg.rfind("--measure=", 0) == 0) {
    c.measure = parse_measure(value("--measure="));
  } else if (arg.rfind("--out=", 0) == 0) {
    c.out_path = value("--out=");
  } else if (arg.rfind("--quant=", 0) == 0) {
    c.quant_step = std::stod(value("--quant="));
  } else if (arg.rfind("--checkpoint=", 0) == 0) {
    c.checkpoint_path = value("--checkpoint=");
  } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
    c.checkpoint_every = std::stoul(value("--checkpoint-every="));
  } else if (arg.rfind("--threads=", 0) == 0) {
    c.threads = std::stoul(value("--threads="));
  } else if (arg.rfind("--snapshot=", 0) == 0) {
    e.snapshot_path = value("--snapshot=");
  } else if (arg.rfind("--save-snapshot=", 0) == 0) {
    e.save_snapshot_path = value("--save-snapshot=");
  } else if (arg.rfind("--edits=", 0) == 0) {
    e.edits_path = value("--edits=");
  } else if (arg.rfind("--moves=", 0) == 0) {
    e.moves = std::stoul(value("--moves="));
  } else if (arg.rfind("--seed=", 0) == 0) {
    e.seed = std::stoull(value("--seed="));
  } else if (arg == "--surrogate") {
    c.surrogate = true;
  } else if (arg.rfind("--surrogate-file=", 0) == 0) {
    c.surrogate_file = value("--surrogate-file=");
  } else {
    return false;
  }
  return true;
}

void parse_args(const std::vector<std::string>& args, CommonOptions& c,
                EcoOptions& e, const std::string& usage) {
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      if (!parse_flag(arg, c, e))
        throw std::invalid_argument("unknown option: " + arg + "\n" + usage);
    } else if (c.placement_path.empty()) {
      c.placement_path = arg;
    } else {
      throw std::invalid_argument("unexpected argument: " + arg + "\n" +
                                  usage);
    }
  }
}

/// Applies --surrogate / --surrogate-file to a characterized model: reuse
/// the snapshot when it loads cleanly, otherwise fit (and persist the fit
/// when a file was named). The attached certificate gates use either way.
void setup_surrogate(const ana::InteractiveStressModel& model,
                     const CommonOptions& c) {
  if (!c.surrogate && c.surrogate_file.empty()) return;
  if (!c.surrogate_file.empty()) {
    if (std::optional<ana::PairSurrogate> loaded =
            io::try_load_surrogate(c.surrogate_file)) {
      std::printf("surrogate: reused %s (certified rel bound %.3g)\n",
                  c.surrogate_file.c_str(),
                  loaded->certificate().certified_rel_bound);
      model.attach_surrogate(
          std::make_shared<const ana::PairSurrogate>(std::move(*loaded)));
      return;
    }
  }
  auto fitted = std::make_shared<const ana::PairSurrogate>(
      ana::PairSurrogate::fit(model));
  std::printf("surrogate: fitted (certified rel bound %.3g)\n",
              fitted->certificate().certified_rel_bound);
  if (!c.surrogate_file.empty()) {
    io::save_surrogate(c.surrogate_file, *fitted);
    std::printf("surrogate: saved to %s\n", c.surrogate_file.c_str());
  }
  model.attach_surrogate(std::move(fitted));
}

void write_field_csv(const std::string& out_path,
                     const std::vector<geo::Point>& pts,
                     const std::vector<num::SymTensor2>& field,
                     core::StressMeasure measure) {
  std::vector<double> values(pts.size());
  double peak = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    values[i] = core::extract(measure, field[i]);
    peak = std::max(peak, std::abs(values[i]));
  }
  io::write_scalar_field(out_path, pts, values);
  std::printf("wrote %s (%s, peak |value| %.1f MPa)\n", out_path.c_str(),
              core::to_string(measure), peak);
}

// --- evaluate ------------------------------------------------------------

int run_evaluate(const std::vector<std::string>& args) {
  constexpr const char* kUsage =
      "usage: tsvstress_cli evaluate <placement.tsv> [--spacing=X] "
      "[--margin=X] [--ls-only] [--lookup] [--measure=M] [--out=FILE] "
      "[--checkpoint=FILE] [--checkpoint-every=N]";
  CommonOptions c;
  EcoOptions e;
  parse_args(args, c, e, kUsage);
  if (c.placement_path.empty()) throw std::invalid_argument(kUsage);
  if (c.out_path.empty()) c.out_path = "stress.csv";

  const tsvlib::Placement placement =
      tsvlib::read_placement_file(c.placement_path);
  placement.validate_no_overlap();
  std::printf("placement: %zu TSVs (R=%.2f um, liner %s), min pitch %.2f "
              "um\n", placement.size(), placement.structure().body_radius,
              placement.structure().liner.name.c_str(),
              placement.min_pitch());

  core::FrameworkOptions options;
  options.enable_interactive = !c.ls_only;
  options.stage2.use_lookup_table = c.lookup;
  options.num_threads = c.threads;

  // With a surrogate request the model is built here so the surrogate can
  // be attached (loaded or fitted) before the framework wraps it.
  std::shared_ptr<const ana::InteractiveStressModel> model;
  if (!c.ls_only && (c.surrogate || !c.surrogate_file.empty())) {
    const ana::SingleTsvModel single(placement.structure(), options.load);
    model = std::make_shared<const ana::InteractiveStressModel>(
        std::make_shared<const ana::InclusionResponse>(placement.structure()),
        single.k_hat());
    setup_surrogate(*model, c);
  }
  const core::StressFramework framework =
      model != nullptr ? core::StressFramework(placement, model, options)
                       : core::StressFramework(placement, options);

  const geo::Box roi = placement.bounding_box().expanded(c.margin);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi, c.spacing);
  std::printf("grid: %zu x %zu points, spacing %.3g um\n", grid.nx(),
              grid.ny(), c.spacing);

  if (!c.checkpoint_path.empty()) {
    // Tiled evaluation with periodic checkpoints: an interrupted run
    // re-invoked with the same flags resumes at the first unfinished tile.
    const core::TiledEvaluator tiled(framework);
    std::vector<num::SymTensor2> field(grid.size());
    const auto consume = [&](const core::Tile& t) {
      std::size_t k = 0;
      for (std::size_t iy = t.iy0; iy < t.iy0 + t.ny; ++iy)
        for (std::size_t ix = t.ix0; ix < t.ix0 + t.nx; ++ix, ++k)
          field[iy * grid.nx() + ix] = t.stress[k];
    };
    const core::TiledStats stats = io::evaluate_with_checkpoint(
        tiled, grid, consume, c.checkpoint_path, c.checkpoint_every);
    std::printf("tiles: %zu evaluated + %zu resumed, %zu checkpoints "
                "(%.3fs); stage I %.2fs, stage II %.2fs\n",
                stats.tiles - stats.resumed_tiles, stats.resumed_tiles,
                stats.checkpoints_written, stats.checkpoint_seconds,
                stats.stage1_seconds, stats.stage2_seconds);
    write_field_csv(c.out_path, grid.points(), field, c.measure);
    return 0;
  }

  const core::StressResult result = framework.evaluate(grid);
  std::printf("stage I %.2fs, stage II %.2fs\n", result.stage1_seconds,
              result.stage2_seconds);
  write_field_csv(c.out_path, grid.points(), result.stress, c.measure);
  return 0;
}

// --- eco -----------------------------------------------------------------

/// Parses the --edits script: one op per line, `#` comments and blank lines
/// skipped. The whole file is one atomic Delta.
core::Delta read_edit_script(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInputError("cannot open edit script: " + path);
  core::Delta delta;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ss(line);
    std::string op;
    if (!(ss >> op) || op[0] == '#') continue;
    const auto fail = [&](const std::string& what) {
      throw InvalidInputError(path + ":" + std::to_string(lineno) + ": " +
                              what);
    };
    if (op == "add") {
      geo::Point p;
      if (!(ss >> p.x >> p.y)) fail("expected: add <x_um> <y_um>");
      delta.push_back(core::EcoOp::add(p));
    } else if (op == "move") {
      std::uint32_t id = 0;
      geo::Point p;
      if (!(ss >> id >> p.x >> p.y))
        fail("expected: move <id> <x_um> <y_um>");
      delta.push_back(core::EcoOp::move(id, p));
    } else if (op == "remove") {
      std::uint32_t id = 0;
      if (!(ss >> id)) fail("expected: remove <id>");
      delta.push_back(core::EcoOp::remove(id));
    } else {
      fail("unknown edit op: " + op);
    }
  }
  return delta;
}

/// Builds a cold engine from a placement file (characterizes the structure,
/// evaluates both stages over the placement's expanded bounding box).
core::IncrementalEngine build_engine(const CommonOptions& c) {
  const tsvlib::Placement placement =
      tsvlib::read_placement_file(c.placement_path);
  placement.validate_no_overlap();
  std::printf("placement: %zu TSVs, min pitch %.2f um\n", placement.size(),
              placement.min_pitch());

  const mat::ThermalLoad load{};
  const ana::SingleTsvModel single(placement.structure(), load);
  const auto table = std::make_shared<const core::RadialStressTable>(
      core::RadialStressTable::from_analytic(single, 30.0, 4096));
  std::shared_ptr<const ana::InteractiveStressModel> model;
  if (!c.ls_only)
    model = std::make_shared<const ana::InteractiveStressModel>(
        std::make_shared<const ana::InclusionResponse>(placement.structure()),
        single.k_hat());

  if (model != nullptr) setup_surrogate(*model, c);

  core::IncrementalOptions opt;
  opt.enable_interactive = !c.ls_only;
  opt.stage2.use_lookup_table = c.lookup;
  opt.stage2.pitch_quant_step = c.quant_step;
  opt.num_threads = c.threads;

  const geo::Box roi = placement.bounding_box().expanded(c.margin);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi, c.spacing);
  std::printf("grid: %zu x %zu points, spacing %.3g um\n", grid.nx(),
              grid.ny(), c.spacing);
  return core::IncrementalEngine(placement, grid, table, model, opt);
}

int run_eco(const std::vector<std::string>& args) {
  constexpr const char* kUsage =
      "usage: tsvstress_cli eco <placement.tsv | --snapshot=FILE> "
      "[--moves=K] [--seed=S] [--edits=FILE] [--verify] "
      "[--save-snapshot=FILE] [--out=FILE] [--measure=M] [eval flags]";
  CommonOptions c;
  EcoOptions e;
  parse_args(args, c, e, kUsage);
  if (c.placement_path.empty() && e.snapshot_path.empty())
    throw std::invalid_argument(kUsage);

  core::IncrementalEngine engine =
      e.snapshot_path.empty() ? build_engine(c)
                              : io::load_engine_state(e.snapshot_path);
  if (!e.snapshot_path.empty()) {
    std::printf("warm start from %s: %zu TSVs, %zu points\n",
                e.snapshot_path.c_str(), engine.active_count(),
                engine.grid().size());
    const std::shared_ptr<const ana::InteractiveStressModel> model =
        engine.model();
    if (model != nullptr) {
      if (const auto surrogate = model->surrogate())
        // Embedded in the snapshot — the refit is skipped entirely.
        std::printf("surrogate: reused from snapshot (certified rel bound "
                    "%.3g)\n",
                    surrogate->certificate().certified_rel_bound);
      else
        setup_surrogate(*model, c);
    }
  }

  if (!e.edits_path.empty()) {
    const core::Delta delta = read_edit_script(e.edits_path);
    const core::ApplyStats st = engine.apply(delta);
    std::printf("applied %zu edits in %.4g ms (%zu dirty points, "
                "%zu/%zu pairs removed/added)\n",
                st.ops, 1e3 * st.seconds, st.dirty_points, st.removed_pairs,
                st.added_pairs);
  }

  if (e.moves > 0) {
    std::mt19937_64 rng(e.seed);
    std::uniform_real_distribution<double> jump(-8.0, 8.0);
    const std::vector<std::uint32_t> ids = engine.active_ids();
    if (ids.empty()) throw InvalidInputError("--moves on an empty engine");
    std::uniform_int_distribution<std::size_t> pick(0, ids.size() - 1);
    double total_s = 0.0;
    std::size_t applied = 0;
    for (std::size_t k = 0; k < e.moves; ++k) {
      for (int attempt = 0; attempt < 100; ++attempt) {
        const std::uint32_t id = ids[pick(rng)];
        const geo::Point p = engine.center(id);
        try {
          const core::ApplyStats st = engine.apply(
              {core::EcoOp::move(id, {p.x + jump(rng), p.y + jump(rng)})});
          total_s += st.seconds;
          ++applied;
          break;
        } catch (const std::invalid_argument&) {
          // Overlap — retry with a fresh id/displacement.
        }
      }
    }
    std::printf("applied %zu random moves, mean %.4g ms\n", applied,
                applied > 0 ? 1e3 * total_s / static_cast<double>(applied)
                            : 0.0);
  }

  if (e.verify) {
    const double drift = engine.rebuild();
    std::printf("verify: full recompute drift %.3g MPa\n", drift);
  }
  if (!e.save_snapshot_path.empty()) {
    io::save_engine_state(e.save_snapshot_path, engine);
    std::printf("saved engine snapshot to %s\n",
                e.save_snapshot_path.c_str());
  }
  if (!c.out_path.empty())
    write_field_csv(c.out_path, engine.grid().points(), engine.total_field(),
                    c.measure);
  return 0;
}

// --- variation -----------------------------------------------------------

bool parse_variation_flag(const std::string& arg, VariationCliOptions& v) {
  const auto value = [&](const char* prefix) {
    return arg.substr(std::strlen(prefix));
  };
  if (arg.rfind("--samples=", 0) == 0) {
    v.samples = std::stoul(value("--samples="));
  } else if (arg.rfind("--jitter-tsvs=", 0) == 0) {
    v.jitter_tsvs = std::stoul(value("--jitter-tsvs="));
  } else if (arg.rfind("--jitter-sigma=", 0) == 0) {
    v.jitter_sigma = std::stod(value("--jitter-sigma="));
  } else if (arg.rfind("--cte-sigma=", 0) == 0) {
    v.cte_sigma = std::stod(value("--cte-sigma="));
  } else if (arg.rfind("--corners=", 0) == 0) {
    v.corners = value("--corners=");
  } else if (arg == "--parallel-corners") {
    v.parallel_corners = true;
  } else {
    return false;
  }
  return true;
}

/// Per-point statistics CSV of one corner result:
/// x,y,mean,sigma,q<levels...>,p_gt_<thresholds...>.
void write_variation_csv(const std::string& path,
                         const geo::SampleGrid& grid,
                         const stats::VariationOptions& options,
                         const stats::CornerResult& res) {
  io::CsvWriter csv(path);
  std::vector<std::string> columns{"x", "y", "mean", "sigma"};
  char buf[64];
  for (const double q : options.quantiles) {
    std::snprintf(buf, sizeof(buf), "q%02.0f", 100.0 * q);
    columns.emplace_back(buf);
  }
  for (const double t : options.thresholds) {
    std::snprintf(buf, sizeof(buf), "p_gt_%g", t);
    columns.emplace_back(buf);
  }
  csv.header(columns);
  std::vector<double> row(columns.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const geo::Point p = grid.point(i);
    std::size_t col = 0;
    row[col++] = p.x;
    row[col++] = p.y;
    row[col++] = res.mean[i];
    row[col++] = res.sigma[i];
    for (const auto& q : res.quantile) row[col++] = q[i];
    for (const auto& ex : res.exceedance) row[col++] = ex[i];
    csv.row(row);
  }
}

int run_variation(const std::vector<std::string>& args) {
  constexpr const char* kUsage =
      "usage: tsvstress_cli variation <placement.tsv> [--samples=N] "
      "[--seed=S] [--jitter-tsvs=K] [--jitter-sigma=X] [--cte-sigma=X] "
      "[--corners=none|materials|geometry] [--parallel-corners] "
      "[--surrogate] [--lookup] "
      "[--quant=X] [--threads=N] [--spacing=X] [--margin=X] [--out=FILE]";
  CommonOptions c;
  EcoOptions e;
  e.seed = 1;  // the sampler's documented default, not eco's move seed
  VariationCliOptions v;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      if (!parse_variation_flag(arg, v) && !parse_flag(arg, c, e))
        throw std::invalid_argument("unknown option: " + arg + "\n" + kUsage);
    } else if (c.placement_path.empty()) {
      c.placement_path = arg;
    } else {
      throw std::invalid_argument("unexpected argument: " + arg + "\n" +
                                  kUsage);
    }
  }
  if (c.placement_path.empty()) throw std::invalid_argument(kUsage);
  if (c.out_path.empty()) c.out_path = "variation.csv";
  v.seed = e.seed;

  const tsvlib::Placement placement =
      tsvlib::read_placement_file(c.placement_path);
  placement.validate_no_overlap();
  std::printf("placement: %zu TSVs, min pitch %.2f um\n", placement.size(),
              placement.min_pitch());

  stats::VariationSpec spec;
  spec.seed = v.seed;
  spec.samples = v.samples;
  spec.jitter_tsvs = std::min(v.jitter_tsvs, placement.size());
  spec.jitter_sigma = v.jitter_sigma;
  spec.cte_sigma = v.cte_sigma;
  if (v.corners == "materials") {
    spec.corners = stats::material_corners(placement.structure());
  } else if (v.corners == "geometry") {
    spec.corners = stats::geometry_corners(placement.structure(), 0.25, 0.1);
  } else if (v.corners != "none") {
    throw std::invalid_argument("unknown --corners mode: " + v.corners +
                                "\n" + kUsage);
  }

  stats::VariationOptions options;
  options.engine.stage2.use_lookup_table = c.lookup;
  options.engine.stage2.pitch_quant_step = c.quant_step;
  options.engine.enable_interactive = !c.ls_only;
  options.num_threads = c.threads;
  options.parallel_corners = v.parallel_corners;
  options.fit_surrogate = c.surrogate && !c.ls_only;

  const geo::Box roi = placement.bounding_box().expanded(c.margin);
  const geo::SampleGrid grid = geo::SampleGrid::with_spacing(roi, c.spacing);
  std::printf("grid: %zu x %zu points, spacing %.3g um; %zu samples, "
              "jittering %zu TSVs per sample\n",
              grid.nx(), grid.ny(), c.spacing, spec.samples,
              spec.jitter_tsvs);

  stats::VariationEngine engine(placement, grid, spec, options);
  const std::vector<stats::CornerResult> results = engine.run();

  for (const stats::CornerResult& res : results) {
    const double ms_per_sample =
        res.samples > 0
            ? 1e3 * res.sample_seconds / static_cast<double>(res.samples)
            : 0.0;
    std::printf("corner %s: %zu samples in %.3f s (%.3g ms/sample, "
                "build %.3f s)\n",
                res.name.c_str(), res.samples, res.sample_seconds,
                ms_per_sample, res.build_seconds);
    std::printf("  peak von Mises: mean %.1f MPa, sigma %.2f, max %.1f\n",
                res.sample_peak.mean(), res.sample_peak.stddev(),
                res.sample_peak.max());
    if (res.pitch_fit.ok)
      std::printf("  pitch vs local peak: slope %.3f MPa/um, r %.3f "
                  "(n=%llu)\n",
                  res.pitch_fit.slope, res.pitch_fit.r,
                  static_cast<unsigned long long>(res.pitch_fit.n));
    std::printf("  statistical KOZ (P(vm>%g) >= %g): mean radius %.2f um, "
                "worst %.2f um (tsv %zu), total area %.0f um^2\n",
                options.koz_limit, options.koz_alpha, res.koz.mean_radius,
                res.koz.worst_radius, res.koz.worst_tsv,
                res.koz.total_area);

    std::string out = c.out_path;
    if (results.size() > 1) {
      const std::size_t dot = out.rfind('.');
      const std::string stem = dot == std::string::npos ? out
                                                        : out.substr(0, dot);
      const std::string ext =
          dot == std::string::npos ? ".csv" : out.substr(dot);
      out = stem + "." + res.name + ext;
    }
    write_variation_csv(out, grid, options, res);
    std::printf("  wrote %s\n", out.c_str());
  }
  return 0;
}

// --- snapshot ------------------------------------------------------------

int run_snapshot(const std::vector<std::string>& args) {
  constexpr const char* kUsage =
      "usage: tsvstress_cli snapshot save <placement.tsv> [--out=FILE] "
      "[eval flags]\n"
      "       tsvstress_cli snapshot info <file.snap>";
  if (args.empty()) throw std::invalid_argument(kUsage);
  const std::string verb = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  if (verb == "info") {
    if (rest.size() != 1) throw std::invalid_argument(kUsage);
    const io::SnapshotInfo info = io::read_snapshot_info(rest[0]);
    std::printf("%s: kind %s, format version %u, payload %llu bytes, "
                "checksum %016llx (valid)\n",
                rest[0].c_str(), io::to_string(info.kind), info.version,
                static_cast<unsigned long long>(info.payload_bytes),
                static_cast<unsigned long long>(info.checksum));
    return 0;
  }
  if (verb == "save") {
    CommonOptions c;
    EcoOptions e;
    parse_args(rest, c, e, kUsage);
    if (c.placement_path.empty()) throw std::invalid_argument(kUsage);
    if (c.out_path.empty()) c.out_path = "engine.snap";
    const core::IncrementalEngine engine = build_engine(c);
    io::save_engine_state(c.out_path, engine);
    const io::SnapshotInfo info = io::read_snapshot_info(c.out_path);
    std::printf("saved engine snapshot to %s (%llu payload bytes)\n",
                c.out_path.c_str(),
                static_cast<unsigned long long>(info.payload_bytes));
    return 0;
  }
  throw std::invalid_argument("unknown snapshot verb: " + verb + "\n" +
                              kUsage);
}

// --- client --------------------------------------------------------------

server::Client connect_client(const std::string& endpoint) {
  if (endpoint.empty())
    throw std::invalid_argument("--connect=unix:PATH or --connect=HOST:PORT "
                                "is required");
  if (endpoint.rfind("unix:", 0) == 0)
    return server::Client::connect_unix(endpoint.substr(5));
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("--connect needs unix:PATH or HOST:PORT, got " +
                                endpoint);
  return server::Client::connect_tcp(endpoint.substr(0, colon),
                                     std::stoi(endpoint.substr(colon + 1)));
}

server::RetryingClient retrying_client(const std::string& endpoint,
                                       server::RetryPolicy policy) {
  if (endpoint.rfind("unix:", 0) == 0)
    return server::RetryingClient::unix_endpoint(endpoint.substr(5), policy);
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("--connect needs unix:PATH or HOST:PORT, got " +
                                endpoint);
  return server::RetryingClient::tcp_endpoint(
      endpoint.substr(0, colon), std::stoi(endpoint.substr(colon + 1)),
      policy);
}

server::JsonValue delta_to_json(const core::Delta& delta) {
  server::JsonValue ops = server::JsonValue::array();
  for (const core::EcoOp& o : delta) {
    server::JsonValue row = server::JsonValue::object();
    switch (o.kind) {
      case core::EcoOp::Kind::kAdd:
        row.set("op", server::JsonValue("add"));
        row.set("x", server::JsonValue(o.center.x));
        row.set("y", server::JsonValue(o.center.y));
        break;
      case core::EcoOp::Kind::kMove:
        row.set("op", server::JsonValue("move"));
        row.set("id", server::JsonValue(o.id));
        row.set("x", server::JsonValue(o.center.x));
        row.set("y", server::JsonValue(o.center.y));
        break;
      case core::EcoOp::Kind::kRemove:
        row.set("op", server::JsonValue("remove"));
        row.set("id", server::JsonValue(o.id));
        break;
    }
    ops.items().push_back(std::move(row));
  }
  return ops;
}

int run_client(const std::vector<std::string>& args) {
  constexpr const char* kUsage =
      "usage: tsvstress_cli client --connect=unix:PATH|HOST:PORT <op> "
      "[options]\n"
      "  ops: ping | open | query | region | koz | eco | stats | evict | "
      "close | shutdown\n"
      "  open:   --session=S --placement=FILE [--spacing=X] [--margin=X]\n"
      "          [--lookup] [--quant=X] [--surrogate]\n"
      "  query:  --session=S --at=X,Y [--at=X,Y ...] [--measure=M]\n"
      "  region: --session=S [--box=x0,y0,x1,y1] [--measure=M] [--out=CSV]\n"
      "  koz:    --session=S [--limit=MPa] [--rays=N] [--radial-step=X]\n"
      "          [--max-radius=X] [--measure=M]\n"
      "  eco:    --session=S --edits=FILE [--seq=N]  (same script as eco;\n"
      "          --seq makes the batch idempotent under retry)\n"
      "  evict/close: --session=S [--discard]\n"
      "  any op: --retries=N  retry transport failures with reconnect +\n"
      "          jittered backoff (retry-safe requests only)";
  std::string connect;
  std::string op;
  std::string session;
  std::string placement_file;
  std::string edits_file;
  std::string out_path;
  std::string measure;
  std::string box;
  std::vector<geo::Point> at;
  double spacing = 0.0, margin = -1.0, quant = 0.0;
  double limit = 0.0, radial_step = 0.0, max_radius = 0.0, rays = 0.0;
  bool lookup = false, surrogate = false, discard = false;
  std::uint64_t seq = 0;
  int retries = 0;
  for (const std::string& arg : args) {
    const auto value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--connect=", 0) == 0) connect = value("--connect=");
    else if (arg.rfind("--session=", 0) == 0) session = value("--session=");
    else if (arg.rfind("--placement=", 0) == 0)
      placement_file = value("--placement=");
    else if (arg.rfind("--edits=", 0) == 0) edits_file = value("--edits=");
    else if (arg.rfind("--out=", 0) == 0) out_path = value("--out=");
    else if (arg.rfind("--measure=", 0) == 0) measure = value("--measure=");
    else if (arg.rfind("--box=", 0) == 0) box = value("--box=");
    else if (arg.rfind("--at=", 0) == 0) {
      geo::Point p;
      if (std::sscanf(value("--at=").c_str(), "%lf,%lf", &p.x, &p.y) != 2)
        throw std::invalid_argument("--at needs X,Y");
      at.push_back(p);
    } else if (arg.rfind("--spacing=", 0) == 0)
      spacing = std::stod(value("--spacing="));
    else if (arg.rfind("--margin=", 0) == 0)
      margin = std::stod(value("--margin="));
    else if (arg.rfind("--quant=", 0) == 0) quant = std::stod(value("--quant="));
    else if (arg.rfind("--limit=", 0) == 0) limit = std::stod(value("--limit="));
    else if (arg.rfind("--rays=", 0) == 0) rays = std::stod(value("--rays="));
    else if (arg.rfind("--radial-step=", 0) == 0)
      radial_step = std::stod(value("--radial-step="));
    else if (arg.rfind("--max-radius=", 0) == 0)
      max_radius = std::stod(value("--max-radius="));
    else if (arg.rfind("--seq=", 0) == 0)
      seq = std::stoull(value("--seq="));
    else if (arg.rfind("--retries=", 0) == 0)
      retries = std::stoi(value("--retries="));
    else if (arg == "--lookup") lookup = true;
    else if (arg == "--surrogate") surrogate = true;
    else if (arg == "--discard") discard = true;
    else if (arg.rfind("--", 0) == 0)
      throw std::invalid_argument("unknown option: " + arg + "\n" + kUsage);
    else if (op.empty()) op = arg;
    else throw std::invalid_argument("unexpected argument: " + arg);
  }
  if (op.empty()) throw std::invalid_argument(kUsage);

  server::JsonValue req = session.empty()
                              ? server::Client::request(op)
                              : server::Client::request(op, session);
  if (op == "open") {
    if (placement_file.empty())
      throw std::invalid_argument("open needs --placement=FILE");
    std::ifstream in(placement_file);
    if (!in)
      throw InvalidInputError("cannot open placement: " + placement_file);
    std::ostringstream text;
    text << in.rdbuf();
    req.set("placement", server::JsonValue(text.str()));
    if (spacing > 0.0) req.set("spacing", server::JsonValue(spacing));
    if (margin >= 0.0) req.set("margin", server::JsonValue(margin));
    if (lookup) req.set("lookup", server::JsonValue(true));
    if (quant > 0.0) req.set("quant", server::JsonValue(quant));
    if (surrogate) req.set("surrogate", server::JsonValue(true));
  } else if (op == "query") {
    if (at.empty()) throw std::invalid_argument("query needs --at=X,Y");
    server::JsonValue points = server::JsonValue::array();
    for (const geo::Point& p : at) {
      server::JsonValue xy = server::JsonValue::array();
      xy.items().push_back(server::JsonValue(p.x));
      xy.items().push_back(server::JsonValue(p.y));
      points.items().push_back(std::move(xy));
    }
    req.set("points", std::move(points));
    if (!measure.empty()) req.set("measure", server::JsonValue(measure));
  } else if (op == "region") {
    if (!box.empty()) {
      double x0, y0, x1, y1;
      if (std::sscanf(box.c_str(), "%lf,%lf,%lf,%lf", &x0, &y0, &x1, &y1) !=
          4)
        throw std::invalid_argument("--box needs x0,y0,x1,y1");
      req.set("x0", server::JsonValue(x0));
      req.set("y0", server::JsonValue(y0));
      req.set("x1", server::JsonValue(x1));
      req.set("y1", server::JsonValue(y1));
    }
    if (!measure.empty()) req.set("measure", server::JsonValue(measure));
  } else if (op == "koz") {
    if (!measure.empty()) req.set("measure", server::JsonValue(measure));
    if (limit > 0.0) req.set("limit", server::JsonValue(limit));
    if (rays > 0.0) req.set("rays", server::JsonValue(rays));
    if (radial_step > 0.0)
      req.set("radial_step", server::JsonValue(radial_step));
    if (max_radius > 0.0) req.set("max_radius", server::JsonValue(max_radius));
  } else if (op == "eco") {
    if (edits_file.empty()) throw std::invalid_argument("eco needs --edits=");
    req.set("ops", delta_to_json(read_edit_script(edits_file)));
    if (seq > 0) req.set("seq", server::JsonValue(static_cast<double>(seq)));
  } else if (op == "close") {
    if (discard) req.set("discard", server::JsonValue(true));
  }

  server::JsonValue resp;
  if (retries > 0) {
    if (connect.empty())
      throw std::invalid_argument(
          "--connect=unix:PATH or --connect=HOST:PORT is required");
    server::RetryPolicy policy;
    policy.max_attempts = retries + 1;
    server::RetryingClient client = retrying_client(connect, policy);
    resp = client.call(req);
  } else {
    server::Client client = connect_client(connect);
    resp = client.call(req);
  }
  if (op == "query") {
    const auto& xs = resp.at("x").as_array();
    const auto& ys = resp.at("y").as_array();
    const auto& vs = resp.at("value").as_array();
    for (std::size_t i = 0; i < vs.size(); ++i)
      std::printf("%.17g %.17g %.17g\n", xs[i].as_number(), ys[i].as_number(),
                  vs[i].as_number());
  } else if (op == "region" && !out_path.empty()) {
    const auto nx = static_cast<std::size_t>(resp.at("nx").as_number());
    const auto ny = static_cast<std::size_t>(resp.at("ny").as_number());
    const double x0 = resp.at("x0").as_number();
    const double y0 = resp.at("y0").as_number();
    const double dx = resp.at("dx").as_number();
    const double dy = resp.at("dy").as_number();
    const auto& vs = resp.at("value").as_array();
    std::ofstream out(out_path);
    if (!out) throw InvalidInputError("cannot write " + out_path);
    out << "x_um,y_um,value\n";
    char line[96];
    for (std::size_t iy = 0; iy < ny; ++iy)
      for (std::size_t ix = 0; ix < nx; ++ix) {
        std::snprintf(line, sizeof(line), "%.17g,%.17g,%.17g\n",
                      x0 + static_cast<double>(ix) * dx,
                      y0 + static_cast<double>(iy) * dy,
                      vs[iy * nx + ix].as_number());
        out << line;
      }
    std::printf("wrote %zu points to %s\n", nx * ny, out_path.c_str());
  } else {
    std::printf("%s\n", resp.dump().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage =
      "usage: tsvstress_cli <evaluate|eco|variation|snapshot|client> ...\n"
      "       tsvstress_cli <placement.tsv> [options]   (implicit evaluate)";
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty()) throw std::invalid_argument(kUsage);
    const std::string& cmd = args[0];
    const std::vector<std::string> rest(args.begin() + 1, args.end());
    if (cmd == "evaluate") return run_evaluate(rest);
    if (cmd == "eco") return run_eco(rest);
    if (cmd == "variation") return run_variation(rest);
    if (cmd == "snapshot") return run_snapshot(rest);
    if (cmd == "client") return run_client(rest);
    // Flat invocation: first argument is the placement file.
    return run_evaluate(args);
  } catch (const tsv::Error& e) {
    std::fprintf(stderr, "error [%s]: %s\n", tsv::to_string(e.category()),
                 e.what());
    return tsv::exit_code(e.category());
  } catch (const std::invalid_argument& e) {
    // Bad flags / call-contract violations are the user's input too.
    std::fprintf(stderr, "error [invalid-input]: %s\n", e.what());
    return tsv::exit_code(tsv::ErrorCategory::kInvalidInput);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
