// tsvstress command-line front end: read a placement file, evaluate the
// stress field on a grid, write CSV.
//
//   tsvstress_cli <placement.tsv> [options]
//
// Options:
//   --spacing=X       grid spacing, um (default 0.5)
//   --margin=X        halo around the placement bounding box, um (default 25)
//   --ls-only         linear superposition only (no interactive stage)
//   --lookup          Stage II via polar look-up tables (faster, ~1% accuracy)
//   --measure=M       sigma_xx | sigma_yy | sigma_xy | von_mises | max_tensile
//                     (default von_mises)
//   --out=FILE        output CSV (default stress.csv)
//
// Placement format (see src/tsv/placement_io.h):
//   structure <body_radius_um> <liner_thickness_um> <BCB|SiO2>
//   tsv <x_um> <y_um>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/framework.h"
#include "core/metrics.h"
#include "io/csv.h"
#include "tsv/placement_io.h"

namespace {

using namespace tsv;

struct CliOptions {
  std::string placement_path;
  std::string out_path = "stress.csv";
  double spacing = 0.5;
  double margin = 25.0;
  bool ls_only = false;
  bool lookup = false;
  core::StressMeasure measure = core::StressMeasure::kVonMises;
};

core::StressMeasure parse_measure(const std::string& name) {
  if (name == "sigma_xx") return core::StressMeasure::kSigmaXX;
  if (name == "sigma_yy") return core::StressMeasure::kSigmaYY;
  if (name == "sigma_xy") return core::StressMeasure::kSigmaXY;
  if (name == "von_mises") return core::StressMeasure::kVonMises;
  if (name == "max_tensile") return core::StressMeasure::kMaxTensile;
  throw std::invalid_argument("unknown measure: " + name);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--ls-only") {
      o.ls_only = true;
    } else if (arg == "--lookup") {
      o.lookup = true;
    } else if (arg.rfind("--spacing=", 0) == 0) {
      o.spacing = std::stod(arg.substr(10));
    } else if (arg.rfind("--margin=", 0) == 0) {
      o.margin = std::stod(arg.substr(9));
    } else if (arg.rfind("--measure=", 0) == 0) {
      o.measure = parse_measure(arg.substr(10));
    } else if (arg.rfind("--out=", 0) == 0) {
      o.out_path = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      throw std::invalid_argument("unknown option: " + arg);
    } else if (o.placement_path.empty()) {
      o.placement_path = arg;
    } else {
      throw std::invalid_argument("unexpected argument: " + arg);
    }
  }
  if (o.placement_path.empty())
    throw std::invalid_argument(
        "usage: tsvstress_cli <placement.tsv> [--spacing=X] [--margin=X] "
        "[--ls-only] [--lookup] [--measure=M] [--out=FILE]");
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions cli = parse(argc, argv);
    const tsvlib::Placement placement =
        tsvlib::read_placement_file(cli.placement_path);
    placement.validate_no_overlap();
    std::printf("placement: %zu TSVs (R=%.2f um, liner %s), min pitch %.2f "
                "um\n", placement.size(), placement.structure().body_radius,
                placement.structure().liner.name.c_str(),
                placement.min_pitch());

    core::FrameworkOptions options;
    options.enable_interactive = !cli.ls_only;
    options.stage2.use_lookup_table = cli.lookup;
    const core::StressFramework framework(placement, options);

    const geo::Box roi = placement.bounding_box().expanded(cli.margin);
    const geo::SampleGrid grid =
        geo::SampleGrid::with_spacing(roi, cli.spacing);
    std::printf("grid: %zu x %zu points, spacing %.3g um\n", grid.nx(),
                grid.ny(), cli.spacing);

    const core::StressResult result = framework.evaluate(grid);
    std::printf("stage I %.2fs, stage II %.2fs\n", result.stage1_seconds,
                result.stage2_seconds);

    const std::vector<geo::Point> pts = grid.points();
    std::vector<double> values(pts.size());
    double peak = 0.0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      values[i] = core::extract(cli.measure, result.stress[i]);
      peak = std::max(peak, std::abs(values[i]));
    }
    io::write_scalar_field(cli.out_path, pts, values);
    std::printf("wrote %s (%s, peak |value| %.1f MPa)\n",
                cli.out_path.c_str(), core::to_string(cli.measure), peak);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
