// tsvstress_server: the stress-as-a-service daemon.
//
//   tsvstress_server [options]
//     --unix=PATH             listen on a Unix-domain socket (recommended)
//     --host=H --port=P       listen on TCP instead (port 0 = ephemeral;
//                             the bound endpoint is printed on stdout)
//     --snapshot-dir=DIR      session snapshot directory (default
//                             "snapshots"); scanned for crash recovery on
//                             startup
//     --max-sessions=N        resident engines at once (default 16)
//     --session-budget-mb=N   per-session admission budget (default 512)
//     --global-budget-mb=N    total resident budget (default 2048)
//     --io-timeout=SECS       close a connection idle this long between
//                             requests (fractional ok; default: never)
//     --op-deadline=SECS      a started request frame must complete (and
//                             its response be writable) within this budget
//                             or the client gets a typed resource-limit
//                             error and is disconnected (default: unlimited)
//
// The daemon prints "listening on <endpoint>" once it accepts connections
// and serves until a `shutdown` request or SIGINT/SIGTERM; every resident
// session is snapshot-evicted on the way out, so a restart against the same
// snapshot directory resumes them. Protocol: src/server/protocol.h; exit
// codes mirror tsvstress_cli (src/core/error.h).

#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include <csignal>

#include "core/error.h"
#include "server/server.h"

namespace {

tsv::server::StressServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsv;
  try {
    server::ServerOptions options;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&](const char* prefix) {
        return arg.substr(std::strlen(prefix));
      };
      if (arg.rfind("--unix=", 0) == 0) {
        options.unix_path = value("--unix=");
      } else if (arg.rfind("--host=", 0) == 0) {
        options.host = value("--host=");
      } else if (arg.rfind("--port=", 0) == 0) {
        options.port = std::stoi(value("--port="));
      } else if (arg.rfind("--snapshot-dir=", 0) == 0) {
        options.snapshot_dir = value("--snapshot-dir=");
      } else if (arg.rfind("--max-sessions=", 0) == 0) {
        options.limits.max_sessions = std::stoul(value("--max-sessions="));
      } else if (arg.rfind("--session-budget-mb=", 0) == 0) {
        options.limits.session_budget_bytes =
            std::stoull(value("--session-budget-mb=")) << 20;
      } else if (arg.rfind("--global-budget-mb=", 0) == 0) {
        options.limits.global_budget_bytes =
            std::stoull(value("--global-budget-mb=")) << 20;
      } else if (arg.rfind("--io-timeout=", 0) == 0) {
        options.io_timeout_ms =
            static_cast<int>(std::stod(value("--io-timeout=")) * 1000.0);
      } else if (arg.rfind("--op-deadline=", 0) == 0) {
        options.op_deadline_ms =
            static_cast<int>(std::stod(value("--op-deadline=")) * 1000.0);
      } else {
        throw InvalidInputError("unknown option: " + arg);
      }
    }

    server::StressServer server(options);
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    for (const std::string& name : server.sessions().recovered())
      std::printf("recovered session %s (evicted; reloads on first use)\n",
                  name.c_str());
    std::printf("listening on %s\n", server.endpoint().c_str());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
    std::printf("shut down; sessions snapshotted to %s\n",
                server.sessions().snapshot_dir().c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error (%s): %s\n", to_string(e.category()),
                 e.what());
    return exit_code(e.category());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
