#include "numeric/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tsv::num {
namespace {

TEST(Parallel, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_EQ(resolve_thread_count(0), hardware_thread_count());
  EXPECT_GE(hardware_thread_count(), 1u);
}

TEST(Parallel, EmptyRangeNeverCallsBody) {
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](std::size_t) { ++calls; });
  parallel_for_chunks(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    ++calls;
  });
  EXPECT_EQ(calls.load(), 0);
  // A reduce over nothing returns the bare accumulator.
  const int total = parallel_reduce<int>(
      0, 4, [] { return 42; }, [](int&, std::size_t, std::size_t) {},
      [](int& a, const int& b) { a += b; });
  EXPECT_EQ(total, 42);
}

TEST(Parallel, EveryIndexVisitedExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  parallel_for(n, 4, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(Parallel, RangeSmallerThanThreadCount) {
  const std::size_t n = 3;
  std::vector<int> hits(n, 0);
  parallel_for(n, 16, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(Parallel, ChunksPartitionTheRangeInOrder) {
  const std::size_t n = 103;
  const std::size_t threads = 7;
  std::vector<std::pair<std::size_t, std::size_t>> bounds(threads,
                                                          {n + 1, n + 1});
  parallel_for_chunks(n, threads,
                      [&](std::size_t b, std::size_t e, std::size_t c) {
                        ASSERT_LT(c, threads);
                        bounds[c] = {b, e};
                      });
  EXPECT_EQ(bounds.front().first, 0u);
  EXPECT_EQ(bounds.back().second, n);
  for (std::size_t c = 1; c < threads; ++c) {
    EXPECT_EQ(bounds[c].first, bounds[c - 1].second) << c;
    EXPECT_LT(bounds[c].first, bounds[c].second) << c;
  }
}

TEST(Parallel, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(100, 4,
                   [&](std::size_t i) {
                     if (i == 37) throw std::runtime_error("worker boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after an aborted region.
  std::atomic<std::size_t> sum{0};
  parallel_for(64, 4, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 64u * 63u / 2u);
}

TEST(Parallel, NestedCallsRunSeriallyWithoutDeadlock) {
  std::atomic<std::size_t> inner_total{0};
  std::atomic<bool> saw_region{false};
  parallel_for(8, 4, [&](std::size_t) {
    if (in_parallel_region()) saw_region = true;
    // Nested region: must run inline instead of waiting on the pool.
    parallel_for(16, 4, [&](std::size_t j) { inner_total += j; });
  });
  EXPECT_EQ(inner_total.load(), 8u * (16u * 15u / 2u));
  // With > 1 hardware thread the outer body runs inside a region; on a
  // single-core host the outer loop itself degenerates to serial.
  if (hardware_thread_count() > 1) EXPECT_TRUE(saw_region.load());
  EXPECT_FALSE(in_parallel_region());
}

TEST(Parallel, ReduceMergesPartialsInChunkOrder) {
  // Concatenating each chunk's indices must reproduce 0..n-1 exactly —
  // proof that partials merge in chunk index order, not completion order.
  const std::size_t n = 100;
  for (const std::size_t threads : {2u, 3u, 7u, 16u}) {
    const auto order = parallel_reduce<std::vector<std::size_t>>(
        n, threads, [] { return std::vector<std::size_t>{}; },
        [](std::vector<std::size_t>& acc, std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) acc.push_back(i);
        },
        [](std::vector<std::size_t>& total,
           const std::vector<std::size_t>& part) {
          total.insert(total.end(), part.begin(), part.end());
        });
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(Parallel, ReduceMatchesSerialSumWithinTolerance) {
  const std::size_t n = 20000;
  const auto sum_with = [&](std::size_t threads) {
    return parallel_reduce<double>(
        n, threads, [] { return 0.0; },
        [](double& acc, std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i)
            acc += 1.0 / static_cast<double>(i + 1);
        },
        [](double& total, const double& part) { total += part; });
  };
  const double serial = sum_with(1);
  for (const std::size_t threads : {2u, 4u, 8u})
    EXPECT_NEAR(sum_with(threads), serial, std::abs(serial) * 1e-12);
}

TEST(Parallel, SerialPathIsBitwiseIdenticalToPlainLoop) {
  const std::size_t n = 4096;
  std::vector<double> plain(n), pooled(n);
  for (std::size_t i = 0; i < n; ++i)
    plain[i] = std::sin(0.001 * static_cast<double>(i));
  parallel_for(n, 1, [&](std::size_t i) {
    pooled[i] = std::sin(0.001 * static_cast<double>(i));
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(plain[i], pooled[i]);
}

TEST(Parallel, StressRepeatedInvocations) {
  // Hammer the shared pool with many back-to-back regions of varying
  // shapes; totals must always come out exact.
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round % 97);
    const std::size_t threads = 1 + static_cast<std::size_t>(round % 5);
    parallel_for(n, threads, [&](std::size_t i) { total += i + 1; });
  }
  std::size_t expect = 0;
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round % 97);
    expect += n * (n + 1) / 2;
  }
  EXPECT_EQ(total.load(), expect);
}

TEST(Parallel, ConcurrentRegionsFromUserThreadsSerialize) {
  // Several user threads issuing regions at once must not corrupt the pool
  // (regions serialize internally on the run mutex).
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> users;
  users.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    users.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round)
        parallel_for(128, 3, [&](std::size_t i) { total += i; });
    });
  }
  for (std::thread& u : users) u.join();
  EXPECT_EQ(total.load(),
            static_cast<std::size_t>(kThreads) * kRounds * (128u * 127u / 2u));
}

TEST(Parallel, PoolRunExecutesAllChunks) {
  std::vector<int> hits(11, 0);
  ThreadPool::shared().run(hits.size(),
                           [&](std::size_t c) { ++hits[c]; });
  for (std::size_t c = 0; c < hits.size(); ++c) EXPECT_EQ(hits[c], 1) << c;
}

TEST(Parallel, DedicatedPoolConstructsAndDrains) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.worker_threads(), 2u);
  std::atomic<int> calls{0};
  pool.run(8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

}  // namespace
}  // namespace tsv::num
