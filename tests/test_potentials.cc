#include "analytic/potentials.h"

#include <gtest/gtest.h>

#include <cmath>

#include "materials/material.h"

namespace tsv::ana {
namespace {

using num::LaurentSeries;

TEST(Potentials, UniformTensionFromLinearPhi) {
  // phi = (S/4) z, psi = -(S/2) z gives uniaxial tension sxx = S... in the
  // standard convention: sxx+syy = 4 Re phi' = S; syy - sxx + 2i sxy =
  // 2 psi' = -S  =>  sxx = S, syy = 0, sxy = 0.
  const double s = 80.0;
  LaurentSeries phi(0, 1), psi(0, 1);
  phi.coeff(1) = s / 4.0;
  psi.coeff(1) = -s / 2.0;
  const PotentialField f(phi, psi);
  for (const Complex z : {Complex{0.3, 0.7}, Complex{-1.2, 0.1}}) {
    const num::SymTensor2 st = f.stress(z);
    EXPECT_NEAR(st.s11, s, 1e-10);
    EXPECT_NEAR(st.s22, 0.0, 1e-10);
    EXPECT_NEAR(st.s12, 0.0, 1e-10);
  }
}

TEST(Potentials, AggressorStressMatchesIsolatedTsvField) {
  // psi = khat/(z - d): the eq. (6) field recentered at z = d.
  const double k_hat = 37.0;
  const double d = 4.0;
  for (double rr = 0.5; rr < 6.0; rr += 0.7) {
    for (double th = 0.0; th < 6.2; th += 0.9) {
      const Complex z = Complex{d, 0.0} + rr * Complex{std::cos(th), std::sin(th)};
      const num::SymTensor2 cart = aggressor_stress(z, d, k_hat);
      const num::SymTensor2 cyl = num::cartesian_to_cylindrical(cart, th);
      EXPECT_NEAR(cyl.s11, k_hat / (rr * rr), 1e-9);
      EXPECT_NEAR(cyl.s22, -k_hat / (rr * rr), 1e-9);
      EXPECT_NEAR(cyl.s12, 0.0, 1e-9);
    }
  }
}

TEST(Potentials, SeriesMatchesClosedFormAggressor) {
  // Expanding psi = khat/(z-d) as a power series must reproduce the closed
  // form within the convergence radius.
  const double k_hat = -12.0;
  const double d = 3.5;
  LaurentSeries psi(0, 40);
  for (int n = 0; n <= 40; ++n) psi.coeff(n) = -k_hat / std::pow(d, n + 1);
  const PotentialField f(LaurentSeries{}, psi);
  for (const Complex z : {Complex{0.9, 0.4}, Complex{-1.0, -1.2}}) {
    const num::SymTensor2 got = f.stress(z);
    const num::SymTensor2 want = aggressor_stress(z, d, k_hat);
    EXPECT_NEAR(got.s11, want.s11, 1e-8);
    EXPECT_NEAR(got.s22, want.s22, 1e-8);
    EXPECT_NEAR(got.s12, want.s12, 1e-8);
  }
}

TEST(Potentials, RadialTractionConsistentWithStressTensor) {
  LaurentSeries phi(-3, 2), psi(-3, 2);
  phi.coeff(-2) = Complex{1.0, 0.5};
  phi.coeff(1) = Complex{0.2, -0.1};
  psi.coeff(-3) = Complex{-0.7, 0.0};
  psi.coeff(2) = Complex{0.05, 0.15};
  const PotentialField f(phi, psi);
  for (double th = 0.1; th < 6.0; th += 0.6) {
    const Complex z = 1.3 * Complex{std::cos(th), std::sin(th)};
    const num::SymTensor2 cart = f.stress(z);
    const num::SymTensor2 cyl = num::cartesian_to_cylindrical(cart, th);
    const Complex t = f.radial_traction(z);
    EXPECT_NEAR(t.real(), cyl.s11, 1e-10);
    EXPECT_NEAR(-t.imag(), cyl.s12, 1e-10);
  }
}

TEST(Potentials, DisplacementGradientMatchesStrain) {
  // Numerical differentiation of the displacement field must reproduce the
  // strains implied by the stress through plane-stress Hooke's law.
  const mat::Material m = mat::silicon();
  LaurentSeries phi(0, 3), psi(0, 3);
  phi.coeff(2) = Complex{0.8, -0.3};
  psi.coeff(3) = Complex{-0.2, 0.6};
  const PotentialField f(phi, psi);
  const Complex z{0.7, -0.4};
  const double h = 1e-6;
  const Complex ux_px = f.displacement(z + Complex{h, 0}, m);
  const Complex ux_mx = f.displacement(z - Complex{h, 0}, m);
  const Complex ux_py = f.displacement(z + Complex{0, h}, m);
  const Complex ux_my = f.displacement(z - Complex{0, h}, m);
  const double exx = (ux_px.real() - ux_mx.real()) / (2 * h);
  const double eyy = (ux_py.imag() - ux_my.imag()) / (2 * h);
  const double exy = 0.5 * ((ux_py.real() - ux_my.real()) / (2 * h) +
                            (ux_px.imag() - ux_mx.imag()) / (2 * h));
  const num::SymTensor2 s = f.stress(z);
  const double e = m.youngs_modulus;
  const double nu = m.poisson_ratio;
  EXPECT_NEAR(exx, (s.s11 - nu * s.s22) / e, 1e-6);
  EXPECT_NEAR(eyy, (s.s22 - nu * s.s11) / e, 1e-6);
  EXPECT_NEAR(exy, (1.0 + nu) / e * s.s12, 1e-6);
}

TEST(Potentials, AggressorDisplacementMatchesRadialForm) {
  // In the substrate u_r = B/r with B = -K(1+nu)/E; check along the x-axis
  // through the aggressor.
  const mat::Material si = mat::silicon();
  const double k_hat = 25.0;
  const double d = 0.0;  // aggressor at origin for this check
  const double b = -k_hat * (1.0 + si.poisson_ratio) / si.youngs_modulus;
  for (double r = 1.0; r < 10.0; r *= 1.8) {
    const Complex u = aggressor_displacement(Complex{r, 0.0}, d, k_hat, si);
    EXPECT_NEAR(u.real(), b / r, 1e-12);
    EXPECT_NEAR(u.imag(), 0.0, 1e-12);
  }
}

TEST(Potentials, AccumulateScalesLinearly) {
  LaurentSeries phi(0, 2), psi(0, 2);
  phi.coeff(2) = Complex{1.0, 0.0};
  psi.coeff(1) = Complex{0.0, 1.0};
  const PotentialField base(phi, psi);
  PotentialField sum;
  sum.accumulate(base, 2.5);
  const Complex z{0.4, 0.9};
  const num::SymTensor2 s1 = base.stress(z);
  const num::SymTensor2 s2 = sum.stress(z);
  EXPECT_NEAR(s2.s11, 2.5 * s1.s11, 1e-12);
  EXPECT_NEAR(s2.s22, 2.5 * s1.s22, 1e-12);
  EXPECT_NEAR(s2.s12, 2.5 * s1.s12, 1e-12);
}

}  // namespace
}  // namespace tsv::ana
