#include "analytic/interaction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/paper_series.h"

namespace tsv::ana {
namespace {

InclusionResponseOptions fast_options() {
  InclusionResponseOptions o;
  o.max_basis_power = 10;
  o.series_order = 16;
  o.collocation_points = 72;
  return o;
}

const InteractiveStressModel& model() {
  static const InteractiveStressModel m(tsvlib::TsvStructure::baseline_bcb(),
                                        mat::ThermalLoad{}, fast_options());
  return m;
}

TEST(Interaction, FieldContinuousAcrossRegionBoundaries) {
  // The *total* field is continuous in traction, but the reported
  // interactive stress subtracts different references inside and outside
  // the victim. sigma_rr and sigma_rt remain continuous across Gamma1
  // because the scattered field in the substrate and (interior - applied)
  // in the liner carry the same traction jump structure.
  const geo::Point victim{0.0, 0.0};
  const geo::Point aggressor{10.0, 0.0};
  for (double th = 0.1; th < 6.2; th += 0.57) {
    const double r_out = 3.0 + 1e-7;
    const double r_in = 3.0 - 1e-7;
    const geo::Point po{r_out * std::cos(th), r_out * std::sin(th)};
    const geo::Point pi{r_in * std::cos(th), r_in * std::sin(th)};
    const num::SymTensor2 so = num::cartesian_to_cylindrical(
        model().stress_at(victim, aggressor, po), th);
    const num::SymTensor2 si = num::cartesian_to_cylindrical(
        model().stress_at(victim, aggressor, pi), th);
    EXPECT_NEAR(so.s11, si.s11, 0.05) << "theta=" << th;  // srr continuous
    EXPECT_NEAR(so.s12, si.s12, 0.05) << "theta=" << th;  // srt continuous
  }
}

TEST(Interaction, DecaysLikeInverseSquareFarFromVictim) {
  // Appendix A.1 / Sec. 4: the interactive stress decays no slower than
  // r^-2. Check the asymptotic exponent between r = 14 and r = 28.
  const geo::Point victim{0.0, 0.0};
  const geo::Point aggressor{10.0, 0.0};
  const auto mag = [&](double r) {
    const num::SymTensor2 s = model().stress_at(victim, aggressor, {-r, 0.0});
    return std::sqrt(s.s11 * s.s11 + s.s22 * s.s22 + 2.0 * s.s12 * s.s12);
  };
  EXPECT_GT(mag(3.5), 1.0);  // meaningful near the victim
  const double exponent = std::log(mag(14.0) / mag(28.0)) / std::log(2.0);
  EXPECT_GT(exponent, 1.7);
  EXPECT_LT(exponent, 2.3);
}

TEST(Interaction, DecaysWithPitch) {
  const geo::Point victim{0.0, 0.0};
  const geo::Point p{0.0, 4.0};
  double prev = 1e9;
  for (const double d : {8.0, 12.0, 20.0, 30.0}) {
    const double mag =
        std::abs(model().stress_at(victim, {d, 0.0}, p).s11) +
        std::abs(model().stress_at(victim, {d, 0.0}, p).s22);
    EXPECT_LT(mag, prev);
    prev = mag;
  }
}

TEST(Interaction, RotationEquivariance) {
  // Rotating the whole configuration must rotate the stress tensor.
  const geo::Point victim{0.0, 0.0};
  const double d = 9.0;
  // Points chosen strictly inside each region (not on Gamma1/Gamma2, where
  // the region dispatch would flip under floating-point rotation noise).
  for (const geo::Point p0 :
       {geo::Point{1.5, 1.0}, geo::Point{2.6, 1.0}, geo::Point{3.5, 1.2}}) {
    const num::SymTensor2 base = model().stress_at(victim, {d, 0.0}, p0);
    for (double rot = 0.4; rot < 6.0; rot += 1.1) {
      const double c = std::cos(rot), s = std::sin(rot);
      const geo::Point agg{d * c, d * s};
      const geo::Point pr{p0.x * c - p0.y * s, p0.x * s + p0.y * c};
      const num::SymTensor2 got = model().stress_at(victim, agg, pr);
      // Rotate base by rot: Q sigma Q^T.
      const num::SymTensor2 expect = num::cylindrical_to_cartesian(base, rot);
      EXPECT_NEAR(got.s11, expect.s11, 1e-9);
      EXPECT_NEAR(got.s22, expect.s22, 1e-9);
      EXPECT_NEAR(got.s12, expect.s12, 1e-9);
    }
  }
}

TEST(Interaction, TranslationInvariance) {
  const geo::Point offset{123.0, -45.0};
  const num::SymTensor2 a =
      model().stress_at({0, 0}, {9, 0}, {3.0, 2.0});
  const num::SymTensor2 b = model().stress_at(
      offset, offset + geo::Point{9, 0}, offset + geo::Point{3.0, 2.0});
  EXPECT_NEAR(a.s11, b.s11, 1e-10);
  EXPECT_NEAR(a.s22, b.s22, 1e-10);
  EXPECT_NEAR(a.s12, b.s12, 1e-10);
}

TEST(Interaction, CombinedFieldCacheIsConsistent) {
  const double pitch = 11.37;
  const RegionField& c1 = model().combined_for_pitch(pitch);
  const RegionField& c2 = model().combined_for_pitch(pitch);
  EXPECT_EQ(&c1, &c2);  // cached object reused
  const geo::Point victim{0, 0}, agg{pitch, 0}, p{4.0, 1.0};
  const num::SymTensor2 via_cache =
      model().stress_with_combined(c1, victim, agg, pitch, p);
  const num::SymTensor2 direct = model().stress_at(victim, agg, p);
  EXPECT_NEAR(via_cache.s11, direct.s11, 1e-12);
}

TEST(Interaction, MagnitudeIsSecondOrderButSignificantAtSmallPitch) {
  // Appendix A.1: interactive stress ~ khat (R'/d)^2 near the victim. For
  // d = 8 um that is a two-digit-MPa effect for the BCB structure.
  const double mag =
      std::abs(model().stress_at({0, 0}, {8.0, 0.0}, {-2.0, 0.0}).s11);
  EXPECT_GT(mag, 1.0);
  EXPECT_LT(mag, 100.0);
}

TEST(Interaction, ScatteredFieldCarriesNoNetForce) {
  // The inclusion exchanges no net force with the substrate, so the
  // traction of the scattered (interactive) field integrated over any
  // circle enclosing the victim must vanish.
  const geo::Point victim{0.0, 0.0};
  const geo::Point aggressor{9.0, 0.0};
  for (const double radius : {4.0, 6.0, 12.0}) {
    double fx = 0.0, fy = 0.0;
    const int n = 720;
    for (int i = 0; i < n; ++i) {
      const double th = 2.0 * M_PI * (i + 0.5) / n;
      const geo::Point p{radius * std::cos(th), radius * std::sin(th)};
      const num::SymTensor2 s = model().stress_at(victim, aggressor, p);
      // Traction on the outward normal n = (cos, sin).
      const double tx = s.s11 * std::cos(th) + s.s12 * std::sin(th);
      const double ty = s.s12 * std::cos(th) + s.s22 * std::sin(th);
      fx += tx;
      fy += ty;
    }
    fx *= 2.0 * M_PI * radius / n;
    fy *= 2.0 * M_PI * radius / n;
    EXPECT_NEAR(fx, 0.0, 0.05) << "radius " << radius;
    EXPECT_NEAR(fy, 0.0, 0.05) << "radius " << radius;
  }
}

TEST(Interaction, PaperSeriesAgreesWithinCorridor) {
  // The as-printed Appendix A.4 series and the collocation solver solve the
  // same problem; despite OCR damage the transcription tracks the solver
  // within roughly a factor of two (referenced to the local field scale) across all
  // three regions — and matches signs on the pair axis. EXPERIMENTS.md
  // records the detailed comparison.
  const PaperInteractiveModel paper(tsvlib::TsvStructure::baseline_bcb(),
                                    -250.0);
  const geo::Point v{0, 0};
  for (const double d : {8.0, 12.0, 20.0}) {
    const geo::Point a{d, 0.0};
    for (const double r : {1.5, 2.75, 3.5, 5.0, 8.0}) {
      for (const double th : {0.0, 1.5708, 3.1416}) {
        const geo::Point p{r * std::cos(th), r * std::sin(th)};
        const num::SymTensor2 ours = model().stress_at(v, a, p);
        const num::SymTensor2 theirs = paper.stress_at(v, a, p);
        const double scale =
            std::max({std::abs(ours.s11), std::abs(ours.s22), 1.0});
        EXPECT_NEAR(theirs.s11, ours.s11, 0.9 * scale + 1.0)
            << "d=" << d << " r=" << r << " th=" << th;
        EXPECT_NEAR(theirs.s22, ours.s22, 0.9 * scale + 1.0)
            << "d=" << d << " r=" << r << " th=" << th;
      }
    }
  }
}

TEST(Interaction, QualitativeAgreementWithPaperSeriesInSubstrate) {
  // The printed eq. (18)/A.4 series (as-transcribed) and the collocation
  // solver solve the same boundary-value problem; in the substrate they
  // should at least agree on sign and order of magnitude at moderate pitch.
  // (Exact agreement is not expected due to OCR damage; EXPERIMENTS.md
  // records the quantitative comparison.)
  const PaperInteractiveModel paper(tsvlib::TsvStructure::baseline_bcb(),
                                    -250.0);
  const geo::Point victim{0, 0}, agg{10.0, 0};
  const geo::Point p{-4.0, 0.0};
  const double ours = model().stress_at(victim, agg, p).s11;
  const double theirs = paper.stress_at(victim, agg, p).s11;
  EXPECT_TRUE(std::isfinite(theirs));
  EXPECT_GT(std::abs(ours), 0.0);
}

}  // namespace
}  // namespace tsv::ana
